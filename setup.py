"""Legacy setup shim: no `wheel` package is available offline, so pip's
PEP 517 editable path can't build; `pip install -e . --no-build-isolation`
falls back to this via setuptools' develop command."""

from setuptools import setup

setup()
