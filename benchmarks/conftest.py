"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one paper figure on the simulator and
prints a paper-vs-measured table (run pytest with ``-s`` to see them;
they are also appended to ``benchmarks/results.txt``).
"""

import os

import pytest

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


class FigureReport:
    """Collects and emits one figure's paper-vs-measured rows."""

    def __init__(self, figure, title):
        self.figure = figure
        self.title = title
        self.lines = ["", "%s — %s" % (figure.upper(), title),
                      "-" * 64]

    def row(self, label, measured, paper=None, unit=""):
        if paper is None:
            self.lines.append("  %-38s %12s %s" % (label, measured, unit))
        else:
            self.lines.append(
                "  %-38s measured %10s   paper %10s %s"
                % (label, measured, paper, unit))

    def series(self, label, pairs, unit=""):
        text = ", ".join("%s:%s" % (k, v) for k, v in pairs)
        self.lines.append("  %-18s [%s] %s" % (label, text, unit))

    def note(self, text):
        self.lines.append("  note: %s" % text)

    def emit(self):
        report = "\n".join(self.lines)
        print(report)
        with open(RESULTS_PATH, "a") as fh:
            fh.write(report + "\n")


@pytest.fixture
def report(request):
    """A per-test FigureReport, emitted automatically at teardown."""
    name = request.node.name
    rep = FigureReport(name.replace("test_", ""), request.node.nodeid)
    yield rep
    rep.emit()


def fmt(value, digits=2):
    if isinstance(value, float):
        return ("%."+str(digits)+"f") % value
    return str(value)
