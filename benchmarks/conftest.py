"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one paper figure on the simulator and
prints a paper-vs-measured table (run pytest with ``-s`` to see them;
they are also appended to ``benchmarks/results.txt``).

The suite runs through the experiment harness's artifact store: one
:class:`repro.harness.RunManifest` per pytest session records each
figure's wall time and pass/fail provenance under the cache root
(``.repro-cache/benchmarks-manifest.json``), so two benchmark runs can
be diffed with ``python -m repro compare``.
"""

import os
import time

import pytest

from repro.harness import RunManifest, cache_dir

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
MANIFEST_NAME = "benchmarks-manifest.json"


class FigureReport:
    """Collects and emits one figure's paper-vs-measured rows."""

    def __init__(self, figure, title):
        self.figure = figure
        self.title = title
        self.lines = ["", "%s — %s" % (figure.upper(), title),
                      "-" * 64]

    def row(self, label, measured, paper=None, unit=""):
        if paper is None:
            self.lines.append("  %-38s %12s %s" % (label, measured, unit))
        else:
            self.lines.append(
                "  %-38s measured %10s   paper %10s %s"
                % (label, measured, paper, unit))

    def series(self, label, pairs, unit=""):
        text = ", ".join("%s:%s" % (k, v) for k, v in pairs)
        self.lines.append("  %-18s [%s] %s" % (label, text, unit))

    def note(self, text):
        self.lines.append("  note: %s" % text)

    def emit(self):
        report = "\n".join(self.lines)
        print(report)
        with open(RESULTS_PATH, "a") as fh:
            fh.write(report + "\n")


@pytest.fixture(scope="session")
def run_manifest():
    """The session-wide harness manifest for this benchmark run."""
    manifest = RunManifest(name="benchmarks")
    yield manifest
    manifest.finish()
    manifest.save(os.path.join(cache_dir(), MANIFEST_NAME))


@pytest.fixture
def report(request, run_manifest):
    """A per-test FigureReport, emitted automatically at teardown.

    Teardown also records the figure's provenance (wall time, outcome)
    in the session's harness manifest.
    """
    name = request.node.name
    rep = FigureReport(name.replace("test_", ""), request.node.nodeid)
    started = time.time()
    yield rep
    rep.emit()
    failed = getattr(request.node, "rep_call_failed", False)
    run_manifest.add_point(
        params={"figure": name.replace("test_", "")},
        record={"wall_s": time.time() - started},
        elapsed_s=time.time() - started,
        error="benchmark assertion failed" if failed else None)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Expose call-phase failure to the report fixture's teardown."""
    outcome = yield
    rep = outcome.get_result()
    if rep.when == "call":
        item.rep_call_failed = rep.failed


def fmt(value, digits=2):
    if isinstance(value, float):
        return ("%."+str(digits)+"f") % value
    return str(value)
