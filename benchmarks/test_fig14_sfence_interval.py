"""Figure 14: bandwidth over sfence intervals.

Paper: single-thread Optane-NI bandwidth peaks around 256 B writes;
flushing during vs after a medium write makes little difference; but
once the write exceeds the cache capacity, flushing after the write
degrades (capacity evictions scramble the stream and raise write
amplification).  We shrink the LLC to 2 MB so the beyond-capacity
regime is reachable quickly; the knee tracks the LLC size, as it did
on the paper's 33 MB-LLC part.
"""

from benchmarks.conftest import fmt
from repro._units import KIB, MIB
from repro.core.figures import figure14
from repro.sim import MachineConfig

SIZES = (64, 256, 4 * KIB, 64 * KIB, 4 * MIB)


def run():
    cfg = MachineConfig()
    cfg.cache.capacity_bytes = 2 * MIB
    return figure14(write_sizes=SIZES, total_bytes=1 * MIB,
                    machine_config=cfg)


def test_fig14_sfence_interval(benchmark, report):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, pts in curves.items():
        report.series(label, [(s, fmt(v, 2)) for s, v in pts], "GB/s")
    every = dict(curves["clwb(every 64B)"])
    after = dict(curves["clwb(write size)"])
    nt = dict(curves["ntstore"])

    # 256 B is at or near the peak of the flushed curves.
    assert every[256] >= every[64]
    # Medium sizes: flush-during vs flush-after barely differ.
    mid_ratio = after[4 * KIB] / every[4 * KIB]
    report.row("4K after/during ratio", fmt(mid_ratio), "~1.0")
    assert 0.7 <= mid_ratio <= 1.35
    # Past the LLC, flushing after the write collapses; flushing during
    # does not.
    big = 4 * MIB
    degraded = after[big] / every[big]
    report.row("beyond-LLC after/during ratio", fmt(degraded), "<0.8")
    assert degraded < 0.85
    # ntstore is insensitive to the fence interval.
    assert nt[big] > 0.75 * nt[4 * KIB]
