"""Figure 13: performance of the persistence instructions.

Paper: flushing after each 64 B store *raises* bandwidth versus
letting the cache evict naturally (EWR 0.26 -> 0.98); ntstore has the
best bandwidth above 256 B and the lower latency above 512 B, while
store+clwb wins latency for small accesses.

The LLC is shrunk to 1 MB so the store-without-flush curve reaches its
eviction-driven steady state with a small working set.
"""

from benchmarks.conftest import fmt
from repro._units import KIB, MIB
from repro.core.figures import figure13
from repro.lattester.bandwidth import measure_bandwidth
from repro.sim import Machine, MachineConfig


def small_llc():
    cfg = MachineConfig()
    cfg.cache.capacity_bytes = 1 * MIB
    return cfg


def run():
    return figure13(access_sizes=(64, 256, 1024, 4096), threads=6,
                    per_thread=384 * KIB, machine_config=small_llc())


def test_fig13_persist_instructions(benchmark, report):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    for instr, pts in out["bandwidth"].items():
        report.series("BW %s" % instr,
                      [(s, fmt(v, 1)) for s, v in pts], "GB/s")
    for instr, pts in out["latency"].items():
        report.series("lat %s" % instr,
                      [(s, fmt(v, 0)) for s, v in pts], "ns")

    bw = {instr: dict(pts) for instr, pts in out["bandwidth"].items()}
    lat = {instr: dict(pts) for instr, pts in out["latency"].items()}

    # ntstore has the top bandwidth for >=256 B accesses.
    for size in (1024, 4096):
        assert bw["ntstore"][size] >= bw["clwb"][size]
    # Flushing beats letting the cache evict, for larger accesses.
    assert bw["clwb"][4096] > bw["store"][4096]
    # store+clwb wins latency at 64 B; ntstore wins at 4 KB.
    report.row("lat clwb@64B vs nt@64B",
               "%s vs %s" % (fmt(lat["clwb"][64], 0),
                             fmt(lat["ntstore"][64], 0)), "62 vs 90", "ns")
    assert lat["clwb"][64] < lat["ntstore"][64]
    assert lat["ntstore"][4096] < lat["clwb"][4096]

    # The EWR story behind it (paper: 0.26 unflushed vs 0.98 flushed).
    m1 = Machine(small_llc())
    store_only = measure_bandwidth(
        kind="optane-ni", op="store", threads=2, access=256,
        pattern="seq", per_thread=2 * MIB, machine=m1)
    m2 = Machine(small_llc())
    flushed = measure_bandwidth(
        kind="optane-ni", op="clwb", threads=2, access=256,
        pattern="seq", per_thread=512 * KIB, machine=m2)
    report.row("store-only EWR", fmt(store_only.ewr), 0.26)
    report.row("store+clwb EWR", fmt(flushed.ewr), 0.98)
    assert store_only.ewr < 0.6
    assert flushed.ewr > 0.9
