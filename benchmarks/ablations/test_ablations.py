"""Ablation benchmarks: remove one modelled mechanism, lose one pathology.

Each test disables a single structure the design (DESIGN.md) calls out
as load-bearing and shows that the corresponding published behaviour
disappears — evidence that the reproduction's results come from the
mechanisms, not from curve fitting.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth
from repro.lattester.tail import hotspot_tail
from repro.lattester.xpbuffer_probe import probe_region
from repro.pmemkv.study import overwrite_benchmark
from repro.sim import Machine, MachineConfig


def test_ablate_xpbuffer_associativity(benchmark, report):
    """Fully-associative XPBuffer: the multi-writer EWR collapse vanishes."""

    def run():
        base = measure_bandwidth(kind="optane-ni", op="ntstore",
                                 threads=8, per_thread=64 * KIB)
        cfg = MachineConfig()
        cfg.xpbuffer.sets = 1
        cfg.xpbuffer.ways = 64          # same capacity, no conflicts
        flat = measure_bandwidth(kind="optane-ni", op="ntstore",
                                 threads=8, per_thread=64 * KIB,
                                 machine=Machine(cfg))
        return base, flat

    base, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row("8-writer EWR, 16x4 buffer", fmt(base.ewr), 0.62)
    report.row("8-writer EWR, fully assoc.", fmt(flat.ewr), "~1.0")
    assert base.ewr < 0.75
    assert flat.ewr > 0.9
    assert flat.gbps > 1.5 * base.gbps

    # ... while the Figure 10 capacity knee stays (it is capacity, not
    # associativity): both geometries combine at 64 lines.
    cfg = MachineConfig()
    cfg.xpbuffer.sets = 1
    cfg.xpbuffer.ways = 64
    p = probe_region(64, rounds=2, machine=Machine(cfg))
    assert p.write_amplification < 1.2


def test_ablate_wear_leveling(benchmark, report):
    """Disable AIT housekeeping: the 50 us tail outliers disappear."""

    def run():
        base = hotspot_tail(hotspot=256, ops=30000)
        cfg = MachineConfig()
        cfg.ait.enabled = False
        quiet = hotspot_tail(hotspot=256, ops=30000,
                             machine=Machine(cfg))
        return base, quiet

    base, quiet = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row("max latency, AIT on", fmt(base.max_ns / 1000, 1),
               "~50", "us")
    report.row("max latency, AIT off", fmt(quiet.max_ns / 1000, 2),
               "<1", "us")
    assert base.max_ns > 45_000
    assert quiet.max_ns < 10 * quiet.p50_ns


def test_ablate_store_window(benchmark, report):
    """Unlimited per-thread WPQ occupancy: Figure 16's head-of-line
    blocking softens markedly."""
    from repro.lattester.contention import contention_experiment

    def run():
        base_1 = contention_experiment(dimms_per_thread=1,
                                       per_thread=48 * KIB)
        base_6 = contention_experiment(dimms_per_thread=6,
                                       per_thread=48 * KIB)
        cfg = MachineConfig()
        cfg.wpq.per_thread_lines = 512          # effectively unlimited
        wide_1 = contention_experiment(dimms_per_thread=1,
                                       per_thread=48 * KIB,
                                       machine=Machine(cfg))
        wide_6 = contention_experiment(dimms_per_thread=6,
                                       per_thread=48 * KIB,
                                       machine=Machine(cfg))
        return base_1, base_6, wide_1, wide_6

    base_1, base_6, wide_1, wide_6 = benchmark.pedantic(
        run, rounds=1, iterations=1)
    base_drop = base_6.bandwidth_gbps / base_1.bandwidth_gbps
    wide_drop = wide_6.bandwidth_gbps / wide_1.bandwidth_gbps
    report.row("6-DIMM/1-DIMM ratio, WPQ=4 lines", fmt(base_drop), "<0.8")
    report.row("6-DIMM/1-DIMM ratio, WPQ unlimited", fmt(wide_drop),
               "closer to 1")
    assert base_drop < 0.85
    assert wide_drop > base_drop + 0.04


def test_ablate_upi_turnaround(benchmark, report):
    """No link turnaround: the remote mixed-traffic collapse (Fig. 18)
    disappears."""
    import random

    from repro._units import CACHELINE, gb_per_s
    from repro.lattester.access import staggered_base
    from repro.sim import run_workloads

    def mixed_remote(cfg):
        m = Machine(cfg)
        ns = m.namespace("optane-remote")
        ts = m.threads(4, socket=0)

        def worker(t):
            rng = random.Random(7 + t.tid)
            base = staggered_base(t.tid, 64 * KIB)
            for i in range(64 * KIB // CACHELINE):
                addr = base + i * CACHELINE
                if rng.random() < 0.5:
                    ns.load(t, addr)
                else:
                    ns.ntstore(t, addr)
                yield
            t.sfence()

        elapsed = run_workloads([(t, worker(t)) for t in ts])
        return gb_per_s(64 * KIB * 4, elapsed)

    def run():
        base = mixed_remote(None)
        cfg = MachineConfig()
        cfg.numa.turnaround_ns = 0.0
        return base, mixed_remote(cfg)

    base, free = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row("remote 1:1 mix x4, turnaround on", fmt(base),
               "collapsed", "GB/s")
    report.row("remote 1:1 mix x4, turnaround off", fmt(free),
               "recovers", "GB/s")
    assert free > 2.0 * base
    # The overwrite application feels it too, more mildly.
    app_base = overwrite_benchmark("optane-remote", threads=8,
                                   ops_per_thread=60)
    cfg = MachineConfig()
    cfg.numa.turnaround_ns = 0.0
    app_free = overwrite_benchmark("optane-remote", threads=8,
                                   ops_per_thread=60,
                                   machine=Machine(cfg))
    assert app_free.bandwidth_gbps > app_base.bandwidth_gbps


def test_extension_btree_fingerprints(benchmark, report):
    """Extension experiment: FPTree's fingerprints on this hardware.

    One hash byte per slot (probed in the metadata cache line) lets a
    lookup skip most slot reads; on 3D XPoint, where every avoidable
    read costs device bandwidth (guideline lore from Section 5.2's
    "avoid the extra read"), fingerprints cut per-get traffic and
    latency measurably.
    """
    from repro.pmdk import PmemPool
    from repro.pmemkv.btree import BPlusTree
    from repro.sim import aggregate

    def per_get_cost(use_fps, n=150, gets=150):
        m = Machine()
        t = m.thread()
        pool = PmemPool.create(m, t)
        tree = BPlusTree(pool, use_fingerprints=use_fps)
        tree.format(t)
        for k in range(n):
            tree.put(t, k, k)
        m.caches[0].drop_all()                  # cold CPU cache
        snaps = pool.ns.counter_snapshots()
        start = t.now
        for k in range(gets):
            assert tree.get(t, (k * 17) % n) == (k * 17) % n
        elapsed = t.now - start
        delta = aggregate(pool.ns.counter_deltas(snaps))
        return delta.imc_read_bytes / gets, elapsed / gets

    def run():
        return per_get_cost(True), per_get_cost(False)

    (fp_bytes, fp_ns), (nofp_bytes, nofp_ns) = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report.row("get with fingerprints",
               "%s B read, %s ns" % (fmt(fp_bytes, 0), fmt(fp_ns, 0)),
               "fewer slot reads")
    report.row("get without fingerprints",
               "%s B read, %s ns" % (fmt(nofp_bytes, 0), fmt(nofp_ns, 0)),
               "reads every slot")
    assert fp_ns < 0.7 * nofp_ns
