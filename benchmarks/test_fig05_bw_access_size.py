"""Figure 5: bandwidth vs access size (random accesses).

Paper: the knee at 256 B (XPLine) for Optane; the interleaved-write
dip at 4 KB (the interleaving size) recovering toward 24 KB (the
stripe); DRAM flat-ish.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth

SIZES = (64, 256, 1024, 4 * KIB, 8 * KIB, 24 * KIB, 64 * KIB)


def run():
    out = {}
    for kind, op, threads in (
            ("optane", "read", 16), ("optane", "ntstore", 4),
            ("optane-ni", "ntstore", 1), ("dram", "read", 24)):
        pts = []
        for size in SIZES:
            span = max(256 * KIB, size * 8)
            pts.append(measure_bandwidth(
                kind=kind, op=op, threads=threads, access=size,
                pattern="rand", per_thread=span))
        out[kind, op] = pts
    return out


def test_fig05_bw_access_size(benchmark, report):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for (kind, op), pts in curves.items():
        report.series("%s %s" % (kind, op),
                      [(r.access, fmt(r.gbps, 1)) for r in pts], "GB/s")
    ni = {r.access: r.gbps for r in curves["optane-ni", "ntstore"]}
    il = {r.access: r.gbps for r in curves["optane", "ntstore"]}
    dram = {r.access: r.gbps for r in curves["dram", "read"]}

    # The 256 B knee: sub-XPLine random writes are poor.
    report.row("optane-ni 64B/256B ratio", fmt(ni[64] / ni[256]),
               "~0.25 (EWR)")
    assert ni[64] < 0.45 * ni[256]

    # The 4 KB interleave dip and the 24 KB recovery.
    report.row("optane 4K dip vs 1K", fmt(il[4 * KIB] / il[1024]), "<1")
    report.row("optane 24K recovery vs 4K",
               fmt(il[24 * KIB] / il[4 * KIB]), ">1.3")
    assert il[4 * KIB] < il[1024]
    assert il[24 * KIB] > 1.25 * il[4 * KIB]

    # DRAM has no XPLine knee.
    assert dram[64] > 0.6 * dram[256]
