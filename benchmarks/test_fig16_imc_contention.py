"""Figure 16: iMC contention as threads spread over more DIMMs.

Paper: with a fixed thread pool, letting each thread touch more DIMMs
*reduces* aggregate bandwidth (per-thread WPQ occupancy causes head-of-
line blocking); pinning threads to DIMMs maximizes bandwidth.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.contention import figure16


def run():
    return {
        "ntstore": figure16(op="ntstore", threads=6,
                            access_sizes=(64, 256, 1024, 4096),
                            dimm_counts=(1, 2, 3, 6),
                            per_thread=64 * KIB),
        "read": figure16(op="read", threads=24,
                         access_sizes=(256, 4096),
                         dimm_counts=(1, 6),
                         per_thread=48 * KIB),
    }


def test_fig16_imc_contention(benchmark, report):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for op, by_dimms in curves.items():
        for n, pts in by_dimms.items():
            report.series(
                "%s %d DIMM(s)/thread" % (op, n),
                [(p.access, fmt(p.bandwidth_gbps, 1)) for p in pts],
                "GB/s")
    nt = curves["ntstore"]

    def mean_bw(n):
        return sum(p.bandwidth_gbps for p in nt[n]) / len(nt[n])

    report.row("ntstore 1 DIMM/thread", fmt(mean_bw(1)), "~12", "GB/s")
    report.row("ntstore 6 DIMMs/thread", fmt(mean_bw(6)), "~6-8", "GB/s")
    # Monotonic decline as each thread spans more DIMMs.
    assert mean_bw(1) > mean_bw(2) > mean_bw(6)
    assert mean_bw(1) > 1.3 * mean_bw(6)
    # Reads suffer too, more mildly.
    rd = curves["read"]
    rd1 = sum(p.bandwidth_gbps for p in rd[1]) / len(rd[1])
    rd6 = sum(p.bandwidth_gbps for p in rd[6]) / len(rd[6])
    report.row("read 1 vs 6 DIMMs/thread",
               "%s vs %s" % (fmt(rd1, 1), fmt(rd6, 1)), "declining")
    assert rd6 <= rd1 * 1.05
