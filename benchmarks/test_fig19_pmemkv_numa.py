"""Figure 19: NUMA degradation for PMemKV.

Paper: migrating the cmap pool to the remote socket costs the
read-modify-write (overwrite) workload up to 4.5x on Optane but only
~8 % on DRAM; local Optane scales with threads, remote flattens out
past two threads.
"""

from benchmarks.conftest import fmt
from repro.pmemkv.study import degradation, figure19

THREADS = (1, 2, 4, 8)


def run():
    return figure19(thread_counts=THREADS, ops_per_thread=150)


def test_fig19_pmemkv_numa(benchmark, report):
    res = benchmark.pedantic(run, rounds=1, iterations=1)
    for kind, pts in res.items():
        report.series(kind,
                      [(n, fmt(r.bandwidth_gbps, 2)) for n, r in pts],
                      "GB/s")
    opt_deg = degradation(res, "optane")
    dram_deg = degradation(res, "dram")
    report.row("optane local/remote", fmt(opt_deg, 1), 4.5, "x")
    report.row("dram local/remote", fmt(dram_deg, 2), "~1.1", "x")
    assert opt_deg > 2.5
    assert dram_deg < 1.6
    assert opt_deg > 2 * dram_deg          # the paper's 18x-vs-DRAM gap

    # Local Optane scales with threads; remote flattens early.
    local = dict(res["optane"])
    remote = dict(res["optane-remote"])
    assert local[8].bandwidth_gbps > 2.5 * local[1].bandwidth_gbps
    assert remote[8].bandwidth_gbps < 1.5 * remote[2].bandwidth_gbps
