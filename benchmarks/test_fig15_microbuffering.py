"""Figure 15: tuning persistence instructions for micro-buffering.

Paper: for Pangolin-style micro-buffered transactions, cached stores
plus clwb beat non-temporal write-back for small objects; ntstore wins
above the ~1 KB crossover.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.pmdk.study import crossover_size, figure15

SIZES = (64, 128, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB, 8 * KIB)


def test_fig15_microbuffering(benchmark, report):
    curves = benchmark.pedantic(
        figure15, kwargs={"sizes": SIZES, "reps": 40},
        rounds=1, iterations=1)
    for variant, pts in curves.items():
        report.series(variant, [(s, fmt(v, 0)) for s, v in pts], "ns")
    nt = dict(curves["PGL-NT"])
    clwb = dict(curves["PGL-CLWB"])
    crossover = crossover_size(curves)
    report.row("crossover", crossover, 1024, "bytes")
    # CLWB wins small, NT wins large; crossover in the paper's regime.
    assert clwb[64] < nt[64]
    assert nt[8 * KIB] < clwb[8 * KIB]
    assert crossover is not None and 128 <= crossover <= 2048
