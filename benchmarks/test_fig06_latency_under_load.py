"""Figure 6: latency under load.

Paper: the latency/bandwidth curve hits its queueing "wall" far
earlier for Optane than DRAM, and Optane is much more
pattern-sensitive than DRAM.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.load import latency_bandwidth_curve

DELAYS = (0, 50, 150, 400, 1200, 3200)


def run():
    out = {}
    for kind, pattern in (("dram", "seq"), ("dram", "rand"),
                          ("optane", "seq"), ("optane", "rand")):
        out[kind, pattern, "read"] = latency_bandwidth_curve(
            kind, "read", threads=16, pattern=pattern, delays=DELAYS,
            per_thread=32 * KIB)
    for kind in ("dram", "optane"):
        out[kind, "seq", "ntstore"] = latency_bandwidth_curve(
            kind, "ntstore", threads=4, pattern="seq", delays=DELAYS,
            per_thread=32 * KIB)
    return out


def test_fig06_latency_under_load(benchmark, report):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for key, pts in curves.items():
        report.series("%s %s %s" % key,
                      [(fmt(p.bandwidth_gbps, 1), fmt(p.latency_ns, 0))
                       for p in pts], "(GB/s, ns)")

    def peak_bw(key):
        return max(p.bandwidth_gbps for p in curves[key])

    def idle_lat(key):
        return curves[key][-1].latency_ns

    def loaded_lat(key):
        return curves[key][0].latency_ns

    # The wall: max bandwidth under load is far lower for Optane.
    assert peak_bw(("dram", "seq", "read")) > \
        2 * peak_bw(("optane", "seq", "read"))
    # Latency rises toward the wall.
    assert loaded_lat(("optane", "seq", "read")) > \
        idle_lat(("optane", "seq", "read"))
    # Pattern sensitivity: Optane's random curve sits well above its
    # sequential one; DRAM's two curves nearly coincide.
    opt_gap = idle_lat(("optane", "rand", "read")) / \
        idle_lat(("optane", "seq", "read"))
    dram_gap = idle_lat(("dram", "rand", "read")) / \
        idle_lat(("dram", "seq", "read"))
    report.row("optane rand/seq latency gap", fmt(opt_gap), ">1.5")
    report.row("dram rand/seq latency gap", fmt(dram_gap), "~1.2")
    assert opt_gap > 1.4
    assert dram_gap < 1.35
