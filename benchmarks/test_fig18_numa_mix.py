"""Figure 18: local vs remote Optane bandwidth over read:write mixes.

Paper: single-threaded remote bandwidth tracks local; multi-threaded
*mixed* remote traffic collapses (the worst sweep gap exceeds 30x),
while pure reads/writes retain ~60 % of local bandwidth.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.core.figures import figure18


def run():
    return figure18(per_thread=64 * KIB)


def test_fig18_numa_mix(benchmark, report):
    res = benchmark.pedantic(run, rounds=1, iterations=1)
    for (kind, threads), pts in sorted(res.items()):
        report.series("%s x%d" % (kind, threads),
                      [(lbl, fmt(v, 1)) for lbl, v in pts], "GB/s")
    loc1 = dict(res["optane", 1])
    rem1 = dict(res["optane-remote", 1])
    loc4 = dict(res["optane", 4])
    rem4 = dict(res["optane-remote", 4])

    # Single-threaded: remote is close to local for every mix.
    for mix in loc1:
        assert rem1[mix] > 0.6 * loc1[mix], mix

    # Multi-threaded pure traffic: ~60 % of local.
    report.row("remote/local pure read x4", fmt(rem4["R"] / loc4["R"]),
               0.59)
    report.row("remote/local pure write x4", fmt(rem4["W"] / loc4["W"]),
               0.62)
    assert 0.45 <= rem4["R"] / loc4["R"] <= 0.95
    assert 0.45 <= rem4["W"] / loc4["W"] <= 0.95

    # Multi-threaded mixed traffic collapses.
    worst = min(rem4[m] / loc4[m] for m in ("4:1", "3:1", "2:1", "1:1"))
    report.row("worst remote/local mixed x4", fmt(worst), "<0.35")
    assert worst < 0.4
    # Mixes hurt remote more than pure traffic does.
    assert rem4["1:1"] < rem4["R"] and rem4["1:1"] < rem4["W"]
