"""Figure 12: file-IO latency with NOVA-datalog.

Paper: NOVA-datalog speeds up 64 B / 256 B random overwrites by
7x / 6.5x over stock NOVA, meeting or beating the DAX file systems
(which give no data consistency); read latency rises only slightly;
the fsync-per-write DAX variants are the slowest by far.
"""

from benchmarks.conftest import fmt
from repro.fs.study import FIG12_SYSTEMS, figure12


def test_fig12_nova_datalog(benchmark, report):
    results = benchmark.pedantic(
        figure12, kwargs={"ops": 250}, rounds=1, iterations=1)
    for system in FIG12_SYSTEMS:
        row = []
        for op, size in (("overwrite", 64), ("overwrite", 256),
                         ("read", 4096)):
            row.append("%s%s=%sus" % (op[:2], size,
                                      fmt(results[system, op, size]
                                          .mean_ns / 1000, 2)))
        report.row(system, "  ".join(row))

    def lat(system, op, size):
        return results[system, op, size].mean_ns

    # Datalog's headline speedups over stock NOVA.
    speed64 = lat("nova", "overwrite", 64) / \
        lat("nova-datalog", "overwrite", 64)
    speed256 = lat("nova", "overwrite", 256) / \
        lat("nova-datalog", "overwrite", 256)
    report.row("datalog speedup @64B", fmt(speed64), 7.0, "x")
    report.row("datalog speedup @256B", fmt(speed256), 6.5, "x")
    assert speed64 > 3.0
    assert speed256 > 3.0

    # Sync DAX variants are the slowest; ext4's journal beats xfs's.
    assert lat("ext4-dax-sync", "overwrite", 64) > \
        lat("xfs-dax-sync", "overwrite", 64) > \
        3 * lat("nova-datalog", "overwrite", 64)

    # Read latency increases only slightly with datalog.
    read_ratio = lat("nova-datalog", "read", 4096) / \
        lat("ext4-dax", "read", 4096)
    report.row("datalog 4K read vs ext4-dax", fmt(read_ratio), "~1.1", "x")
    assert read_ratio < 1.35
