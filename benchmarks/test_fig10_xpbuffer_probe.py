"""Figure 10: inferring the XPBuffer capacity.

Paper: write amplification stays ~1 while the probed region holds at
most 64 XPLines (16 KB) and jumps to ~2 beyond — the buffer combines
across exactly its capacity.
"""

from benchmarks.conftest import fmt
from repro.lattester.xpbuffer_probe import figure10, inferred_buffer_lines

REGIONS = (8, 16, 32, 48, 64, 80, 96, 128, 256, 1024)


def test_fig10_xpbuffer_probe(benchmark, report):
    points = benchmark.pedantic(
        figure10, kwargs={"region_sizes": REGIONS, "rounds": 3},
        rounds=1, iterations=1)
    for p in points:
        report.row("region %4d XPLines (%6d B)"
                   % (p.xplines, p.region_bytes),
                   fmt(p.write_amplification), "1.0 below 64, ~2 above",
                   "WA")
    inferred = inferred_buffer_lines(points)
    report.row("inferred XPBuffer capacity", inferred * 256,
               16384, "bytes")
    assert inferred == 64
    below = [p for p in points if p.xplines <= 64]
    above = [p for p in points if p.xplines > 64]
    assert all(p.write_amplification < 1.2 for p in below)
    assert all(p.write_amplification > 1.6 for p in above)
