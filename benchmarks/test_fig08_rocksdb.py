"""Figure 8: migrating RocksDB to 3D XPoint memory.

Paper: with DRAM standing in for persistent memory, the persistent
memtable wins (+19 % over FLEX); on real 3D XPoint the conclusion
flips and the FLEX WAL wins (+10 %).  Emulation inverts the design
decision.
"""

from benchmarks.conftest import fmt
from repro.kvstore.study import figure8

OPS = 16000


def test_fig08_rocksdb(benchmark, report):
    results = benchmark.pedantic(
        figure8, kwargs={"ops": OPS}, rounds=1, iterations=1)
    for (kind, mode), r in sorted(results.items()):
        report.row("%s %s" % (kind, mode), fmt(r.kops_per_sec, 0),
                   "300-600", "KOps/s")
    dram_flex = results["dram", "wal-flex"].kops_per_sec
    dram_skip = results["dram", "persistent-memtable"].kops_per_sec
    opt_flex = results["optane", "wal-flex"].kops_per_sec
    opt_skip = results["optane", "persistent-memtable"].kops_per_sec

    report.row("DRAM: pskip/flex", fmt(dram_skip / dram_flex),
               "1.19", "x")
    report.row("Optane: flex/pskip", fmt(opt_flex / opt_skip),
               "1.10", "x")
    # The inversion: persistent memtable wins on DRAM, FLEX on Optane.
    assert dram_skip > 1.03 * dram_flex
    assert opt_flex > 1.03 * opt_skip
    # POSIX logging trails FLEX everywhere.
    assert results["optane", "wal-posix"].kops_per_sec < opt_flex
    assert results["dram", "wal-posix"].kops_per_sec < dram_flex
