"""Section 6 (Discussion): how the guidelines fare on future hardware.

The paper speculates about design changes: a larger XPBuffer / WPQ
(weakening guidelines #1 and #3), extending the ADR down to the caches
(removing the flush requirement), Memory Mode's DRAM cache masking the
pathologies, and battery-backed DRAM making most guidelines moot.
Each speculation is runnable here.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth
from repro.sim import Machine, MachineConfig, make_memory_mode_namespace


def test_discussion_bigger_xpbuffer(benchmark, report):
    """4x XPBuffer: small-store locality window grows, contention fades."""

    def run():
        base = measure_bandwidth(kind="optane-ni", op="ntstore",
                                 threads=8, per_thread=64 * KIB)
        cfg = MachineConfig()
        cfg.xpbuffer.sets = 64          # 64 KB buffer, same ways
        big = measure_bandwidth(kind="optane-ni", op="ntstore",
                                threads=8, per_thread=64 * KIB,
                                machine=Machine(cfg))
        return base, big

    base, big = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row("8-writer EWR, 16 KB buffer", fmt(base.ewr), 0.62)
    report.row("8-writer EWR, 64 KB buffer", fmt(big.ewr), "recovers")
    assert big.ewr > base.ewr + 0.2
    assert big.gbps > base.gbps


def test_discussion_eadr_removes_flush_requirement(benchmark, report):
    """Extended ADR: plain stores are durable; flushes become optional."""

    def run():
        cfg = MachineConfig()
        cfg.cache.eadr = True
        m = Machine(cfg)
        ns = m.namespace("optane")
        t = m.thread()
        ns.store(t, 0, 4096, data=b"A" * 4096)     # no flush, no fence
        m.power_fail()
        return ns.read_persistent(0, 4096)

    survived = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row("unflushed 4 KB store after crash",
               "intact" if survived == b"A" * 4096 else "lost",
               "intact under eADR")
    assert survived == b"A" * 4096


def test_discussion_memory_mode_masks_pathologies(benchmark, report):
    """Memory Mode: the DRAM cache hides the small-store penalty."""

    def run():
        import random
        from repro._units import CACHELINE, MIB, gb_per_s
        from repro.sim import run_workloads

        def random_64b_rmw(make_ns):
            # Working set past the (shrunk) CPU cache but inside the
            # DRAM near-cache: every op misses the LLC, so Memory Mode
            # serves it from DRAM while App Direct goes to the media.
            cfg = MachineConfig()
            cfg.cache.capacity_bytes = 256 * KIB
            m = Machine(cfg)
            ns = make_ns(m)
            ts = m.threads(2)
            span = 1 * MIB

            def worker(t, measure):
                rng = random.Random(t.tid)
                base = t.tid * 2 * MIB
                for _ in range(span // CACHELINE // 2):
                    addr = base + rng.randrange(span // CACHELINE) \
                        * CACHELINE
                    ns.load(t, addr)
                    ns.store(t, addr)
                    ns.clwb(t, addr)
                    yield
                t.sfence()

            run_workloads([(t, worker(t, False)) for t in ts])  # warm
            start = max(t.now for t in ts)
            for t in ts:
                t.now = start
            elapsed = run_workloads(
                [(t, worker(t, True)) for t in ts]) - start
            return gb_per_s(2 * (span // 2), elapsed)

        app_direct = random_64b_rmw(lambda m: m.namespace("optane"))
        mem_mode = random_64b_rmw(make_memory_mode_namespace)
        return app_direct, mem_mode

    app_direct, mem_mode = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row("64 B random writes, App Direct", fmt(app_direct),
               "XPLine-penalised", "GB/s")
    report.row("64 B random writes, Memory Mode", fmt(mem_mode),
               "DRAM-cached", "GB/s")
    assert mem_mode > 1.5 * app_direct


def test_discussion_battery_backed_dram(benchmark, report):
    """Battery-backed DRAM: no XPLine, no EWR, no buffer — most
    guidelines are unnecessary (only bulk ntstore still helps)."""

    def run():
        small = measure_bandwidth(kind="dram-ni", op="ntstore", threads=1,
                                  access=64, pattern="rand",
                                  per_thread=64 * KIB)
        full = measure_bandwidth(kind="dram-ni", op="ntstore", threads=1,
                                 access=256, pattern="rand",
                                 per_thread=64 * KIB)
        many = measure_bandwidth(kind="dram-ni", op="ntstore", threads=8,
                                 per_thread=64 * KIB)
        one = measure_bandwidth(kind="dram-ni", op="ntstore", threads=1,
                                per_thread=64 * KIB)
        return small, full, many, one

    small, full, many, one = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    report.row("64 B vs 256 B random writes",
               "%s vs %s" % (fmt(small.gbps), fmt(full.gbps)),
               "no 256 B knee")
    report.row("8 threads vs 1", "%s vs %s"
               % (fmt(many.gbps), fmt(one.gbps)), "no writer collapse")
    assert small.gbps > 0.7 * full.gbps       # guideline 1 moot
    assert many.gbps >= one.gbps              # guideline 3 moot
