"""Figure 9: EWR vs device bandwidth on a single DIMM.

Paper: across a sweep of access size x thread count x power budget,
device bandwidth correlates strongly with EWR (ntstore r^2 = 0.97,
slope ~1); maximizing EWR maximizes bandwidth.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.ewr import correlation, figure9_sweep


def run():
    return figure9_sweep(
        ops=("ntstore", "clwb"),
        accesses=(64, 128, 256, 1024, 4096),
        thread_counts=(1, 2, 4, 8),
        power_budgets=(1.0, 0.7),
        per_thread=64 * KIB)


def test_fig09_ewr_correlation(benchmark, report):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    for op, pts in points.items():
        slope, r2 = correlation(pts)
        report.row("%s: r^2" % op, fmt(r2),
                   {"ntstore": 0.97, "clwb": 0.74}.get(op, ""))
        report.row("%s: slope" % op, fmt(slope),
                   {"ntstore": 1.03, "clwb": 0.67}.get(op, ""), "GB/s/EWR")
        assert slope > 0
    nt_slope, nt_r2 = correlation(points["ntstore"])
    assert nt_r2 > 0.6
    assert 0.5 <= nt_slope <= 4.0
    # EWR spans the full range across the sweep.
    ewrs = [p.ewr for p in points["ntstore"] if p.ewr != float("inf")]
    report.row("EWR range", "%s..%s" % (fmt(min(ewrs)), fmt(max(ewrs))),
               "0.25..1.0")
    assert min(ewrs) < 0.35
    assert max(ewrs) > 0.9
