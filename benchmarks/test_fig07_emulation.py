"""Figure 7: microbenchmarks under emulation.

Paper: none of the emulation mechanisms (plain DRAM, remote-socket
DRAM, PMEP) tracks real Optane — they miss its bandwidth, latency,
asymmetry and pattern sensitivity, in different directions.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.emulation.study import mix_bandwidth, write_latency_bandwidth

METHODS = ("optane", "dram", "dram-remote", "pmep")


def run():
    curves = {m: write_latency_bandwidth(m, threads=4,
                                         per_thread=128 * KIB)
              for m in METHODS}
    mixes = {
        m: {
            "All Rd.": mix_bandwidth(m, 1.0, threads=8,
                                     per_thread=32 * KIB),
            "1:1": mix_bandwidth(m, 0.5, threads=8,
                                 per_thread=32 * KIB),
            "All Wr.": mix_bandwidth(m, 0.0, threads=8,
                                     per_thread=32 * KIB),
        }
        for m in METHODS
    }
    return curves, mixes


def test_fig07_emulation(benchmark, report):
    curves, mixes = benchmark.pedantic(run, rounds=1, iterations=1)
    for m in METHODS:
        bw, lat = curves[m]
        report.row("%s seq-write" % m,
                   "%s GB/s @ %s ns" % (fmt(bw, 1), fmt(lat, 0)),
                   "emulators disagree")
        report.series("%s mixes" % m,
                      [(k, fmt(v, 1)) for k, v in mixes[m].items()],
                      "GB/s")
    optane_bw, optane_lat = curves["optane"]
    # Every emulator misses Optane by a wide margin on at least one axis.
    for m in ("dram", "dram-remote", "pmep"):
        bw, lat = curves[m]
        bw_err = abs(bw - optane_bw) / optane_bw
        lat_err = abs(lat - optane_lat) / optane_lat
        assert max(bw_err, lat_err) > 0.25, m
    # Plain DRAM is wildly optimistic on write bandwidth.
    assert curves["dram"][0] > 1.8 * optane_bw
    # PMEP throttles writes below real Optane.
    assert curves["pmep"][0] < optane_bw
    # Optane's mixed-traffic bandwidth sits below its pure-read.
    assert mixes["optane"]["1:1"] < mixes["optane"]["All Rd."]
