"""Figure 17: multi-DIMM-aware NOVA on FIO.

Paper: pinning writer threads to non-interleaved DIMMs levels the load
and improves NOVA's FIO bandwidth by 3-34 % (average 17 %) over the
interleaved configuration.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.fs.study import figure17


def run():
    return figure17(threads=24, block=4 * KIB, ios=48, file_blocks=24)


def test_fig17_multidimm_nova(benchmark, report):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = []
    for op in ("read", "write"):
        for pattern in ("seq", "rand"):
            for engine in ("sync", "async"):
                interleaved = results[(op, pattern), "I,%s" % engine]
                pinned = results[(op, pattern), "NI,%s" % engine]
                gain = pinned.bandwidth_gbps / interleaved.bandwidth_gbps
                gains.append(gain)
                report.row(
                    "%s %s %s" % (op, pattern, engine),
                    "I=%s NI=%s (+%s%%)" % (
                        fmt(interleaved.bandwidth_gbps, 1),
                        fmt(pinned.bandwidth_gbps, 1),
                        fmt(100 * (gain - 1), 0)),
                    "NI wins 3-34%")
    avg_gain = sum(gains) / len(gains)
    report.row("average NI gain", fmt(100 * (avg_gain - 1), 1), 17, "%")
    # Pinning never substantially loses and wins on average.
    assert avg_gain > 1.05
    assert min(gains) > 0.9
    # Reads land in the paper's 19-33 GB/s band, writes in 4-10 GB/s.
    rd = results[("read", "rand"), "NI,sync"].bandwidth_gbps
    wr = results[("write", "seq"), "NI,sync"].bandwidth_gbps
    assert 15 <= rd <= 40
    assert 3 <= wr <= 12
