"""Figure 3: tail latency vs hotspot size.

Paper: rare (~0.006 %) write stalls of up to ~50 us, most visible at
small hotspots; 99.99th percentile falls as the hotspot grows while
the maximum stays high.
"""

from benchmarks.conftest import fmt
from repro._units import KIB, MIB
from repro.lattester.tail import figure3

HOTSPOTS = (256, 2 * KIB, 16 * KIB, 128 * KIB, 1 * MIB, 8 * MIB)


def test_fig03_tail_latency(benchmark, report):
    results = benchmark.pedantic(
        figure3, kwargs={"hotspots": HOTSPOTS, "ops": 60000},
        rounds=1, iterations=1)
    for r in results:
        report.row(
            "hotspot %7d B" % r.hotspot_bytes,
            "p9999=%sus p99999=%sus max=%sus" % (
                fmt(r.p9999_ns / 1000, 1), fmt(r.p99999_ns / 1000, 1),
                fmt(r.max_ns / 1000, 1)),
            "max ~50us, falling tails")
    small, large = results[0], results[-1]
    assert small.max_ns > 45_000                 # ~50 us outliers exist
    assert small.p9999_ns > large.p9999_ns       # tails fall with size
    assert small.outliers > large.outliers
    rate = small.outliers / small.samples
    report.row("small-hotspot outlier rate", fmt(100 * rate, 4),
               "0.006", "%")
    assert rate < 0.01
