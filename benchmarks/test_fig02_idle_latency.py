"""Figure 2: best-case (idle) latency.

Paper: DRAM read 81/101 ns (seq/rand), Optane 169/305 ns; fenced
store+clwb 57/62 ns and ntstore+fence 86/90 ns (DRAM/Optane).
"""

from benchmarks.conftest import fmt
from repro.lattester.latency import figure2

PAPER = {
    ("dram", "read-seq"): 81, ("dram", "read-rand"): 101,
    ("optane", "read-seq"): 169, ("optane", "read-rand"): 305,
    ("dram", "write-clwb"): 57, ("optane", "write-clwb"): 62,
    ("dram", "write-ntstore"): 86, ("optane", "write-ntstore"): 90,
}


def test_fig02_idle_latency(benchmark, report):
    results = benchmark.pedantic(figure2, rounds=1, iterations=1)
    for key, target in PAPER.items():
        measured = results[key].mean_ns
        report.row("%s %s" % key, fmt(measured, 1), target, "ns")
        assert abs(measured - target) <= 0.15 * target
    # Shape: Optane's random/sequential read gap far exceeds DRAM's.
    opt_gap = results["optane", "read-rand"].mean_ns / \
        results["optane", "read-seq"].mean_ns
    dram_gap = results["dram", "read-rand"].mean_ns / \
        results["dram", "read-seq"].mean_ns
    report.row("optane rand/seq gap", fmt(opt_gap), "1.8x")
    report.row("dram rand/seq gap", fmt(dram_gap), "1.2x")
    assert opt_gap > 1.5 > dram_gap
