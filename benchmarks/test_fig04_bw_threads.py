"""Figure 4: bandwidth vs thread count (256 B sequential accesses).

Paper: DRAM scales monotonically to ~105 GB/s read; a single Optane
DIMM peaks at 6.6 GB/s read (4 threads) / 2.3 GB/s ntstore (1-4
threads) and then *declines*; interleaving scales both by ~5.6-5.8x.
"""

from benchmarks.conftest import fmt
from repro._units import KIB
from repro.lattester.bandwidth import bandwidth_vs_threads

THREADS = (1, 2, 4, 8, 16, 24)
PER_THREAD = 64 * KIB


def run():
    return {
        kind: bandwidth_vs_threads(
            kind, ("read", "ntstore", "clwb"), THREADS,
            per_thread=PER_THREAD)
        for kind in ("dram", "optane-ni", "optane")
    }


def test_fig04_bw_threads(benchmark, report):
    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    for kind, ops in curves.items():
        for op, pts in ops.items():
            report.series("%s %s" % (kind, op),
                          [(r.threads, fmt(r.gbps, 1)) for r in pts],
                          "GB/s")
    ni = curves["optane-ni"]
    il = curves["optane"]
    dram = curves["dram"]

    ni_read_peak = max(r.gbps for r in ni["read"])
    ni_nt_peak = max(r.gbps for r in ni["ntstore"])
    report.row("Optane-NI read peak", fmt(ni_read_peak), 6.6, "GB/s")
    report.row("Optane-NI ntstore peak", fmt(ni_nt_peak), 2.3, "GB/s")
    assert 5.5 <= ni_read_peak <= 7.5
    assert 2.0 <= ni_nt_peak <= 3.0
    # The read peak is reached by ~4 threads and declines after
    # ("performance peaks between one and four threads, then tails
    # off" — for every non-interleaved case).
    read_by_threads = {r.threads: r.gbps for r in ni["read"]}
    assert read_by_threads[4] == max(read_by_threads.values())
    assert read_by_threads[24] < read_by_threads[4]

    # Non-monotonic single-DIMM writes: the 8+-thread tail collapses.
    nt_by_threads = {r.threads: r.gbps for r in ni["ntstore"]}
    assert nt_by_threads[8] < 0.7 * ni_nt_peak
    assert nt_by_threads[24] < 0.7 * ni_nt_peak

    # Interleaving scales ~6x.
    il_read_peak = max(r.gbps for r in il["read"])
    il_nt_peak = max(r.gbps for r in il["ntstore"])
    report.row("interleave read scaling", fmt(il_read_peak / ni_read_peak),
               5.8, "x")
    report.row("interleave write scaling", fmt(il_nt_peak / ni_nt_peak),
               5.6, "x")
    assert 4.5 <= il_read_peak / ni_read_peak <= 6.5

    # DRAM: fast and monotonic.
    dram_read = [r.gbps for r in dram["read"]]
    assert max(dram_read) > 90
    assert all(b >= a * 0.95 for a, b in zip(dram_read, dram_read[1:]))
