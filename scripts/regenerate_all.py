"""Regenerate every reproduced experiment and write a combined report.

Runs each entry of the experiment registry (fig2..fig19) with default
parameters and dumps the raw results to ``experiments_raw.txt``.  For
the asserted paper-vs-measured comparisons, run the benchmark suite
instead (``pytest benchmarks/ --benchmark-only -s``).

Usage: python scripts/regenerate_all.py [out.txt] [figN ...]
"""

import sys
import time

from repro.core.experiments import all_experiments, get


def _dump(fh, value, indent="  "):
    if isinstance(value, dict):
        for key, sub in value.items():
            if isinstance(sub, (dict, list)):
                fh.write("%s%s:\n" % (indent, key))
                _dump(fh, sub, indent + "  ")
            else:
                fh.write("%s%s: %s\n" % (indent, key, sub))
    elif isinstance(value, list):
        for item in value:
            fh.write("%s%s\n" % (indent, item))
    else:
        fh.write("%s%s\n" % (indent, value))


def main(argv):
    out = argv[0] if argv and not argv[0].startswith("fig") \
        else "experiments_raw.txt"
    wanted = [a for a in argv if a.startswith("fig")]
    experiments = [get(f) for f in wanted] if wanted else all_experiments()
    with open(out, "w") as fh:
        for exp in experiments:
            print("running %s — %s ..." % (exp.figure, exp.title),
                  end=" ", flush=True)
            started = time.time()
            result = exp.run()
            elapsed = time.time() - started
            print("%.1f s" % elapsed)
            fh.write("== %s — %s (Section %s)\n"
                     % (exp.figure, exp.title, exp.section))
            fh.write("   workload: %s\n" % exp.workload)
            _dump(fh, result)
            fh.write("\n")
    print("wrote", out)


if __name__ == "__main__":
    main(sys.argv[1:])
