"""Regenerate every reproduced experiment and write a combined report.

Runs each entry of the experiment registry (fig2..fig19) through the
harness's content-addressed cache — a second invocation replays every
unchanged figure instead of re-simulating it — and dumps the raw
results to ``experiments_raw.txt`` plus a run manifest recording
per-figure wall time and provenance.  For the asserted paper-vs-
measured comparisons, run the benchmark suite instead
(``pytest benchmarks/ --benchmark-only -s``).

Usage: python scripts/regenerate_all.py [out.txt] [figN ...]
           [--quick] [--no-cache] [--manifest M]
"""

import argparse
import sys
import time

from repro.core.experiments import all_experiments, get
from repro.harness import ResultCache, RunManifest, point_key

# Figures cheap enough for a smoke pass (--quick): each finishes in a
# few seconds on the simulator.
QUICK_FIGURES = ("fig2", "fig10", "fig13", "fig14")


def _dump(fh, value, indent="  "):
    if isinstance(value, dict):
        for key, sub in value.items():
            if isinstance(sub, (dict, list)):
                fh.write("%s%s:\n" % (indent, key))
                _dump(fh, sub, indent + "  ")
            else:
                fh.write("%s%s: %s\n" % (indent, key, sub))
    elif isinstance(value, list):
        for item in value:
            fh.write("%s%s\n" % (indent, item))
    else:
        fh.write("%s%s\n" % (indent, value))


def build_parser():
    parser = argparse.ArgumentParser(
        description="regenerate registry experiments via the harness")
    parser.add_argument("args", nargs="*", metavar="out.txt|figN",
                        help="output path and/or figure ids")
    parser.add_argument("--quick", action="store_true",
                        help="only the fast figures (%s)"
                        % ", ".join(QUICK_FIGURES))
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every figure, ignore the cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default: .repro-cache)")
    parser.add_argument("--manifest", default=None,
                        help="manifest path (default: <out>.manifest.json)")
    return parser


def main(argv):
    args = build_parser().parse_args(argv)
    out = "experiments_raw.txt"
    wanted = []
    for arg in args.args:
        if arg.startswith("fig"):
            wanted.append(arg)
        else:
            out = arg
    if args.quick and not wanted:
        wanted = list(QUICK_FIGURES)
    try:
        experiments = [get(f) for f in wanted] if wanted \
            else all_experiments()
    except KeyError as exc:
        print("error:", exc.args[0])
        return 2

    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    manifest = RunManifest(name="regenerate_all",
                           grid={"figures": [e.figure
                                             for e in experiments]})
    started = time.time()
    failures = []
    with open(out, "w") as fh:
        for index, exp in enumerate(experiments, 1):
            print("[%d/%d] %s — %s ..." % (index, len(experiments),
                                           exp.figure, exp.title),
                  end=" ", flush=True)
            fig_started = time.time()
            try:
                result, cached = exp.run_cached(cache=cache)
                error = None
            except Exception as exc:
                result, cached = None, False
                error = "%s: %s" % (type(exc).__name__, exc)
            elapsed = time.time() - fig_started
            manifest.add_point(params={"figure": exp.figure},
                               key=point_key("experiment:" + exp.figure,
                                             {}),
                               record=result, cached=cached,
                               elapsed_s=elapsed, error=error)
            if error is not None:
                failures.append((exp.figure, error))
                print("FAILED (%s)" % error)
                continue
            print("%.1f s%s" % (elapsed, " (cached)" if cached else ""))
            fh.write("== %s — %s (Section %s)\n"
                     % (exp.figure, exp.title, exp.section))
            fh.write("   workload: %s\n" % exp.workload)
            _dump(fh, result)
            fh.write("\n")
    manifest.finish(cache=cache)
    manifest_path = args.manifest or out + ".manifest.json"
    manifest.save(manifest_path)

    elapsed = time.time() - started
    print("wrote %s and %s in %.1f s (%.2f figures/s, %d cached)"
          % (out, manifest_path, elapsed,
             len(experiments) / max(elapsed, 1e-9),
             len(manifest.cached_points)))
    if failures:
        print("ERROR: %d figure(s) failed:" % len(failures))
        for figure, error in failures:
            print("  %s: %s" % (figure, error))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
