"""Calibration probe: compares the simulator's headline numbers against
the paper's published values.  Run after touching any timing constant
in repro.sim.config.

Usage: python scripts/calibrate.py [section ...]
Sections: latency bandwidth ewr numa (default: all)
"""

import sys

from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth
from repro.lattester.ewr import ewr_experiment
from repro.lattester.latency import read_latency, write_latency


def show(label, measured, target):
    flag = ""
    if isinstance(target, (int, float)) and target:
        ratio = measured / target
        if not 0.8 <= ratio <= 1.25:
            flag = "  <-- off (%.2fx)" % ratio
    print("  %-42s %10.1f   (paper: %s)%s" % (label, measured, target, flag))


def latency_section():
    print("Idle latency (ns), Figure 2:")
    show("DRAM read seq", read_latency("dram", "seq").mean_ns, 81)
    show("DRAM read rand", read_latency("dram", "rand").mean_ns, 101)
    show("Optane read seq", read_latency("optane", "seq").mean_ns, 169)
    show("Optane read rand", read_latency("optane", "rand").mean_ns, 305)
    show("DRAM store+clwb+fence",
         write_latency("dram", "clwb").mean_ns, 57)
    show("Optane store+clwb+fence",
         write_latency("optane", "clwb").mean_ns, 62)
    show("DRAM ntstore+fence",
         write_latency("dram", "ntstore").mean_ns, 86)
    show("Optane ntstore+fence",
         write_latency("optane", "ntstore").mean_ns, 90)


def bandwidth_section():
    print("Peak bandwidth (GB/s), Figures 4/5:")
    cases = [
        ("Optane-NI read x4", "optane-ni", "read", 4, 6.6),
        ("Optane-NI ntstore x1", "optane-ni", "ntstore", 1, 2.3),
        ("Optane-NI ntstore x8 (declines)", "optane-ni", "ntstore", 8, 1.2),
        ("Optane-NI clwb x1", "optane-ni", "clwb", 1, 1.8),
        ("Optane read x24", "optane", "read", 24, 38.0),
        ("Optane ntstore x4", "optane", "ntstore", 4, 11.0),
        ("Optane clwb x12", "optane", "clwb", 12, 12.0),
        ("DRAM read x24", "dram", "read", 24, 105.0),
        ("DRAM ntstore x24", "dram", "ntstore", 24, 57.0),
        ("DRAM clwb x24", "dram", "clwb", 24, 85.0),
    ]
    for label, kind, op, threads, target in cases:
        r = measure_bandwidth(kind=kind, op=op, threads=threads,
                              per_thread=96 * KIB)
        show(label, r.gbps, target)


def ewr_section():
    print("EWR (single DIMM), Section 5.1:")
    show("64B random ntstore x1 (x100)",
         100 * ewr_experiment(access=64).ewr, 25)
    show("256B random ntstore x1 (x100)",
         100 * ewr_experiment(access=256).ewr, 98)
    show("seq ntstore x8 (x100)",
         100 * ewr_experiment(access=256, pattern="seq", threads=8,
                              per_thread=64 * KIB).ewr, 62)


def numa_section():
    print("NUMA (GB/s), Section 5.4:")
    local = measure_bandwidth(kind="optane", op="read", threads=16,
                              per_thread=64 * KIB)
    remote = measure_bandwidth(kind="optane-remote", op="read",
                               threads=16, per_thread=64 * KIB)
    show("remote/local read x16 (x100)",
         100 * remote.gbps / local.gbps, 59.2)
    wl = measure_bandwidth(kind="optane", op="ntstore", threads=4,
                           per_thread=64 * KIB)
    wr = measure_bandwidth(kind="optane-remote", op="ntstore", threads=4,
                           per_thread=64 * KIB)
    show("remote/local write x4 (x100)",
         100 * wr.gbps / wl.gbps, 61.7)


SECTIONS = {
    "latency": latency_section,
    "bandwidth": bandwidth_section,
    "ewr": ewr_section,
    "numa": numa_section,
}


def main(requested):
    for name, fn in SECTIONS.items():
        if not requested or name in requested:
            fn()


if __name__ == "__main__":
    main(sys.argv[1:])
