"""The full systematic sweep (Section 3.1): thousands of data points.

The paper's LATTester first phase swept access pattern, operation,
access size, stride, power budget, NUMA configuration and interleaving,
collecting over ten thousand data points.  This script reproduces that
scale on the simulator and writes the results to CSV for offline
analysis (Figure 9-style mining).

Usage:  python scripts/full_sweep.py [out.csv] [--quick]
"""

import sys
import time

from repro._units import KIB
from repro.lattester.sweep import sweep_grid, write_csv

FULL_GRID = {
    "kind": ("optane", "optane-ni", "optane-remote", "dram",
             "dram-ni", "dram-remote"),
    "op": ("read", "ntstore", "clwb", "store"),
    "pattern": ("seq", "rand"),
    "access": (64, 128, 256, 512, 1024, 4096, 16384),
    "threads": (1, 2, 4, 8, 16, 24),
}

QUICK_GRID = {
    "kind": ("optane", "optane-ni", "dram"),
    "op": ("read", "ntstore", "clwb"),
    "pattern": ("seq", "rand"),
    "access": (64, 256, 4096),
    "threads": (1, 4, 16),
}


def main(argv):
    out = argv[0] if argv and not argv[0].startswith("-") else "sweep.csv"
    grid = QUICK_GRID if "--quick" in argv else FULL_GRID
    total = 1
    for values in grid.values():
        total *= len(values)
    print("sweeping %d configurations -> %s" % (total, out))
    started = time.time()
    done = []

    def progress(record):
        done.append(record)
        if len(done) % 50 == 0:
            rate = len(done) / (time.time() - started)
            print("  %5d/%d  (%.1f cfg/s)  last: %s/%s %s %dB x%d -> "
                  "%.2f GB/s"
                  % (len(done), total, rate, record["kind"],
                     record["op"], record["pattern"], record["access"],
                     record["threads"], record["gbps"]))

    records = sweep_grid(grid=grid, per_thread=48 * KIB,
                         progress=progress)
    write_csv(records, out)
    print("wrote %d records to %s in %.0f s"
          % (len(records), out, time.time() - started))


if __name__ == "__main__":
    main(sys.argv[1:])
