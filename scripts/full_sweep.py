"""The full systematic sweep (Section 3.1): thousands of data points.

The paper's LATTester first phase swept access pattern, operation,
access size, stride, power budget, NUMA configuration and interleaving,
collecting over ten thousand data points.  This script reproduces that
scale on the simulator through the experiment harness: points fan out
across worker processes, previously measured points replay from the
content-addressed cache, and the run's provenance lands in a manifest
next to the CSV (compare two runs with ``python -m repro compare``).

Usage:  python scripts/full_sweep.py [--quick] [--jobs N] [--no-cache]
                                     [--out sweep.csv] [--manifest M]
"""

import argparse
import sys
import time

from repro._units import KIB
from repro.harness import ResultCache, run_sweep
from repro.lattester.sweep import FULL_GRID, QUICK_GRID, write_csv


def build_parser():
    parser = argparse.ArgumentParser(
        description="systematic LATTester-style sweep via the harness")
    parser.add_argument("out", nargs="?", default="sweep.csv",
                        help="output CSV path (default: sweep.csv)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid for smoke runs")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every point, ignore the cache")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default: .repro-cache)")
    parser.add_argument("--manifest", default=None,
                        help="manifest path (default: <out>.manifest.json)")
    return parser


def main(argv):
    args = build_parser().parse_args(argv)
    grid = QUICK_GRID if args.quick else FULL_GRID
    total = 1
    for values in grid.values():
        total *= len(values)
    print("sweeping %d configurations -> %s" % (total, args.out))
    started = time.time()
    done = [0]

    def progress(outcome):
        done[0] += 1
        if done[0] % 50 == 0 or done[0] == total:
            rate = done[0] / max(time.time() - started, 1e-9)
            record = outcome.value
            if outcome.ok:
                tail = ("last: %s/%s %s %dB x%d -> %.2f GB/s%s"
                        % (record["kind"], record["op"],
                           record["pattern"], record["access"],
                           record["threads"], record["gbps"],
                           " (cached)" if outcome.cached else ""))
            else:
                tail = "last: FAILED (%s)" % outcome.error
            print("  %5d/%d  (%.1f points/s)  %s"
                  % (done[0], total, rate, tail))

    cache = ResultCache(root=args.cache_dir,
                        enabled=not args.no_cache)
    run = run_sweep(grid, per_thread=48 * KIB, jobs=args.jobs,
                    cache=cache, progress=progress, name="full_sweep")
    write_csv(run.records, args.out)
    manifest_path = args.manifest or args.out + ".manifest.json"
    run.manifest.save(manifest_path)

    elapsed = time.time() - started
    stats = run.manifest.cache_stats or {}
    print("wrote %d records to %s in %.1f s (%.1f points/s)"
          % (len(run.records), args.out, elapsed,
             total / max(elapsed, 1e-9)))
    print("cache: %d hits / %d misses (%.0f%% hit rate); manifest: %s"
          % (stats.get("hits", 0), stats.get("misses", 0),
             100.0 * stats.get("hit_rate", 0.0), manifest_path))
    if run.failures:
        print("ERROR: %d of %d points failed:" % (len(run.failures),
                                                  total))
        for point in run.failures[:10]:
            print("  %s: %s" % (point["params"], point["error"]))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
