"""Always-on serving observability.

The pieces, bottom to top:

* :mod:`repro.obs.hist` — deterministic log-linear latency histograms
  with fixed bucket boundaries and exact (associative, commutative)
  merge;
* :mod:`repro.obs.recorder` — the per-run :class:`ObsRecorder`:
  request-granularity latency/counter recording plus virtual-time
  windowed SLO burn tracking, cheap enough that the fused fast paths
  stay enabled (``REPRO_OBS=0`` turns it off);
* :mod:`repro.obs.artifacts` — content-addressed JSON blobs written
  next to run manifests and referenced from them;
* :mod:`repro.obs.schema` — structural validation of those blobs;
* :mod:`repro.obs.report` — the ``python -m repro report`` builder:
  terminal tables, deterministic JSON, and a self-contained HTML page
  with latency distributions, latency-vs-load curves and
  event-correlated chaos timelines.
"""

from repro.obs.artifacts import (
    attach_obs_metrics, externalize_obs, load_obs_blob, obs_address,
    obs_ref,
)
from repro.obs.hist import (
    SUB_BUCKETS, LatencyHistogram, bucket_bounds, bucket_index,
    bucket_midpoint,
)
from repro.obs.recorder import (
    DEFAULT_BUDGET, DEFAULT_SLO_US, DEFAULT_WINDOW_US, ObsRecorder,
    obs_enabled,
)
from repro.obs.report import (
    ObsReportError, build_report, merged_histograms, render_html,
    render_tables, report_json,
)
from repro.obs.schema import validate_obs

__all__ = [
    "SUB_BUCKETS", "LatencyHistogram", "bucket_bounds", "bucket_index",
    "bucket_midpoint",
    "DEFAULT_BUDGET", "DEFAULT_SLO_US", "DEFAULT_WINDOW_US",
    "ObsRecorder", "obs_enabled",
    "attach_obs_metrics", "externalize_obs", "load_obs_blob",
    "obs_address", "obs_ref",
    "ObsReportError", "build_report", "merged_histograms",
    "render_html", "render_tables", "report_json",
    "validate_obs",
]
