"""The always-on serving recorder: histograms, counters, SLO burn.

One :class:`ObsRecorder` rides along with one serve point or chaos
cell.  It records at *request* granularity — never per simulated
event — so the fused substrate fast paths stay enabled and the cost
per request is a couple of list appends in the hot loop plus a bulk
fold after the loop finishes (:meth:`ingest`).

Three kinds of state:

* a :class:`~repro.obs.hist.LatencyHistogram` of per-request latency
  (exactly mergeable across clients, workers and runs);
* per-op-type and named counters (ops, errors, retries, sheds,
  breaker transitions, recoveries — whatever the driver folds in);
* **virtual-time windows** for SLO burn tracking: completion times are
  bucketed into fixed windows, each accumulating
  ``[ops, slo_misses, errors, latency_sum_ns, latency_max_ns]``.  The
  burn rate of a window is its miss fraction over the error budget —
  the SRE error-budget methodology, on the virtual clock.

Everything is deterministic: virtual timestamps, seeded traffic, and
sorted serialization.  ``REPRO_OBS=0`` disables recording entirely
(:meth:`ObsRecorder.from_env` returns ``None``), and drivers treat a
``None`` recorder as zero-cost.
"""

import os

from repro.obs.hist import LatencyHistogram, bucket_index

OBS_VERSION = 1

#: Default SLO and burn-window geometry (virtual microseconds).  The
#: 100 us SLO is the paper-style serving target; 10 us windows give a
#: quick run dozens of windows to track burn across.
DEFAULT_SLO_US = 100.0
DEFAULT_WINDOW_US = 10.0
#: Error budget: the fraction of requests allowed to miss the SLO.
DEFAULT_BUDGET = 0.01

_NS_PER_US = 1e3

#: Fractions reported by :meth:`ObsRecorder.summary`.
SUMMARY_FRACTIONS = (0.50, 0.90, 0.95, 0.99, 0.999)


def obs_enabled():
    """Observability defaults to on; ``REPRO_OBS=0`` switches it off."""
    return os.environ.get("REPRO_OBS", "1") != "0"


class ObsRecorder:
    """Per-run observability state (see module docstring)."""

    def __init__(self, substrate, workload=None, slo_us=DEFAULT_SLO_US,
                 window_us=DEFAULT_WINDOW_US, budget=DEFAULT_BUDGET):
        self.substrate = substrate
        self.workload = workload
        self.slo_us = float(slo_us)
        self.window_us = float(window_us)
        self.budget = float(budget)
        self.hist = LatencyHistogram()
        self.ops = {}          # op -> {"ok": n, "errors": n}
        self.counters = {}     # name -> int
        self.windows = {}      # window index -> [ops, miss, err, sum, max]
        self.events = []       # {"ts": ns, "name": ..., "args": ...}

    @classmethod
    def from_env(cls, substrate, workload=None, **kwargs):
        """A recorder, or ``None`` when ``REPRO_OBS=0``."""
        if not obs_enabled():
            return None
        return cls(substrate, workload=workload, **kwargs)

    # -- ingest (called once, after the hot loop) ---------------------

    def ingest(self, latencies_ns, end_ts_ns):
        """Bulk-fold parallel latency/completion-time lists.

        The hot loops only append to these lists; this does the
        histogram and window work once the loop is over, so recording
        costs two ``list.append`` calls per request while serving.

        A single fused pass keeps the fold cheap: the latency→bucket
        map is memoized (the simulator's latencies come from a small
        set of distinct timings, so the ``frexp`` math runs once per
        distinct value), and completions arrive in nearly
        non-decreasing timestamp order per client, so the current
        window's row is cached instead of re-fetched per request.
        """
        counts = self.hist.counts
        counts_get = counts.get
        slo_ns = self.slo_us * _NS_PER_US
        window_ns = self.window_us * _NS_PER_US
        windows = self.windows
        windows_get = windows.get
        memo = {}
        memo_get = memo.get
        cur_idx = None
        win = None
        for latency, ts in zip(latencies_ns, end_ts_ns):
            bidx = memo_get(latency)
            if bidx is None:
                bidx = memo[latency] = bucket_index(latency)
            counts[bidx] = counts_get(bidx, 0) + 1
            widx = int(ts // window_ns)
            if widx != cur_idx:
                cur_idx = widx
                win = windows_get(widx)
                if win is None:
                    win = windows[widx] = [0, 0, 0, 0.0, 0.0]
            win[0] += 1
            if latency > slo_ns:
                win[1] += 1
            win[3] += latency
            if latency > win[4]:
                win[4] = latency

    def ingest_ops(self, ops_by_type):
        """Fold a driver's per-op success counts."""
        for op, n in ops_by_type.items():
            entry = self.ops.get(op)
            if entry is None:
                entry = self.ops[op] = {"ok": 0, "errors": 0}
            entry["ok"] += n

    # -- inline recording (rare paths only) ---------------------------

    def error(self, op, now_ns):
        """One failed request (client-visible error) at ``now_ns``."""
        entry = self.ops.get(op)
        if entry is None:
            entry = self.ops[op] = {"ok": 0, "errors": 0}
        entry["errors"] += 1
        idx = int(now_ns // (self.window_us * _NS_PER_US))
        win = self.windows.get(idx)
        if win is None:
            win = self.windows[idx] = [0, 0, 0, 0.0, 0.0]
        win[2] += 1

    def event(self, ts_ns, name, args=None):
        """A timeline event (fault injected, breaker moved, recovery)."""
        entry = {"ts": round(ts_ns, 1), "name": name}
        if args:
            entry["args"] = args
        self.events.append(entry)

    def count(self, name, value=1):
        """Bump a named counter (breaker transitions, sheds, ...)."""
        if value:
            self.counters[name] = self.counters.get(name, 0) + value

    # -- merging ------------------------------------------------------

    def merge(self, other):
        """Fold another recorder in (exact; used by the report builder).

        Geometry (SLO, window, budget) must match — merging burn
        windows with different widths would be meaningless.
        """
        if (other.slo_us, other.window_us, other.budget) != \
                (self.slo_us, self.window_us, self.budget):
            raise ValueError("cannot merge recorders with different "
                             "SLO/window geometry")
        self.hist.merge(other.hist)
        for op, entry in other.ops.items():
            mine = self.ops.get(op)
            if mine is None:
                mine = self.ops[op] = {"ok": 0, "errors": 0}
            mine["ok"] += entry["ok"]
            mine["errors"] += entry["errors"]
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for idx, win in other.windows.items():
            mine = self.windows.get(idx)
            if mine is None:
                self.windows[idx] = list(win)
            else:
                mine[0] += win[0]
                mine[1] += win[1]
                mine[2] += win[2]
                mine[3] += win[3]
                if win[4] > mine[4]:
                    mine[4] = win[4]
        self.events.extend(other.events)
        return self

    # -- summaries ----------------------------------------------------

    def latency_us(self, fractions=SUMMARY_FRACTIONS):
        """Percentiles in microseconds, read from the histogram."""
        out = {}
        for frac in fractions:
            name = "p" + ("%g" % (frac * 100)).replace(".", "")
            out[name] = round(
                self.hist.percentile(frac) / _NS_PER_US, 3)
        return out

    def burn(self):
        """SLO burn summary over the recorded windows.

        ``total_burn`` is the whole run's miss fraction over the
        budget (1.0 = the run spent exactly its error budget);
        ``worst_window_burn`` is the hottest single window's rate —
        the number a paging alert would fire on.
        """
        total_ops = sum(w[0] for w in self.windows.values())
        total_miss = sum(w[1] for w in self.windows.values())
        total_err = sum(w[2] for w in self.windows.values())
        worst = 0.0
        for win in self.windows.values():
            if win[0]:
                rate = (win[1] / win[0]) / self.budget
                if rate > worst:
                    worst = rate
        total = (total_miss / total_ops) / self.budget if total_ops \
            else 0.0
        return {
            "slo_us": self.slo_us,
            "window_us": self.window_us,
            "budget": self.budget,
            "windows": len(self.windows),
            "slo_misses": total_miss,
            "errors": total_err,
            "total_burn": round(total, 6),
            "worst_window_burn": round(worst, 6),
        }

    def summary(self):
        """The compact digest reports and comparisons use."""
        return {
            "ops": self.hist.total(),
            "latency_us": self.latency_us(),
            "burn": self.burn(),
        }

    # -- serialization ------------------------------------------------

    def to_dict(self):
        """The obs artifact blob (deterministic, strict JSON)."""
        events = sorted(self.events,
                        key=lambda ev: (ev["ts"], ev["name"]))
        return {
            "obs_version": OBS_VERSION,
            "substrate": self.substrate,
            "workload": self.workload,
            "slo_us": self.slo_us,
            "window_us": self.window_us,
            "budget": self.budget,
            "hist": self.hist.to_dict(),
            "ops": {op: dict(self.ops[op]) for op in sorted(self.ops)},
            "counters": {name: self.counters[name]
                         for name in sorted(self.counters)},
            "windows": {str(idx): [self.windows[idx][0],
                                   self.windows[idx][1],
                                   self.windows[idx][2],
                                   round(self.windows[idx][3], 3),
                                   round(self.windows[idx][4], 3)]
                        for idx in sorted(self.windows)},
            "events": events,
        }

    @classmethod
    def from_dict(cls, data):
        rec = cls(data.get("substrate"), workload=data.get("workload"),
                  slo_us=data.get("slo_us", DEFAULT_SLO_US),
                  window_us=data.get("window_us", DEFAULT_WINDOW_US),
                  budget=data.get("budget", DEFAULT_BUDGET))
        hist_data = data.get("hist")
        if hist_data:
            rec.hist = LatencyHistogram.from_dict(hist_data)
        rec.ops = {op: {"ok": int(v.get("ok", 0)),
                        "errors": int(v.get("errors", 0))}
                   for op, v in data.get("ops", {}).items()}
        rec.counters = {name: int(v)
                        for name, v in data.get("counters", {}).items()}
        rec.windows = {int(idx): [int(w[0]), int(w[1]), int(w[2]),
                                  float(w[3]), float(w[4])]
                       for idx, w in data.get("windows", {}).items()}
        rec.events = [dict(ev) for ev in data.get("events", ())]
        return rec
