"""The ``repro report`` builder: tables, JSON and a one-file HTML page.

Input is a run manifest (serve or chaos, externalized or fresh); the
builder resolves every point's obs blob, merges them per substrate,
and produces one deterministic report structure:

* **substrates** — merged latency percentiles, SLO burn, per-op and
  named counters per substrate;
* **curves** — throughput / latency-vs-load points from open-loop
  serve measurements (offered vs achieved kops, p50/p99);
* **cells** — chaos timelines: each cell's injected faults, breaker
  transitions and recovery audits, correlated against the latency
  windows they perturbed (each event is annotated with the burn state
  of the window it landed in).

The JSON form contains only virtual-time quantities, counts and
content derived from manifest records — no wall clock, no filesystem
paths — so a ``--jobs 4`` run reports byte-identically to ``--jobs 1``
(the CI ``report-smoke`` job compares exactly that).

The HTML report is a single self-contained file (inline CSS + SVG, no
external assets, no JavaScript dependencies) so it can be attached to
CI artifacts and opened anywhere.
"""

import html as _html
import json

from repro.harness.keys import canonical_json
from repro.lattester.report import table
from repro.obs.artifacts import load_obs_blob
from repro.obs.recorder import ObsRecorder
from repro.obs.schema import validate_obs

REPORT_VERSION = 1

_NS_PER_US = 1e3


class ObsReportError(ValueError):
    """An obs blob failed validation while building a report."""


def _point_blobs(points, base_dir):
    """Yield ``(point, blob)`` for every obs-carrying point, validated.

    A serve manifest may list the same measurement twice (a saturation
    probe that landed on a curve rate); duplicates are skipped by point
    key so nothing merges or plots double.
    """
    seen = set()
    for index, point in enumerate(points):
        key = point.get("key") or canonical_json(
            point.get("params") or {})
        if key in seen:
            continue
        seen.add(key)
        blob = load_obs_blob(point, base_dir)
        if blob is None:
            continue
        problems = validate_obs(blob)
        if problems:
            raise ObsReportError(
                "point %d has an invalid obs artifact: %s"
                % (index, "; ".join(problems)))
        yield point, blob


def _window_series(rec):
    """Burn windows as a sorted, JSON-able series.

    Each row is ``[window_index, ops, slo_misses, errors, mean_us,
    max_us]`` — the timeline the chaos correlation draws against.
    """
    rows = []
    for idx in sorted(rec.windows):
        ops, miss, err, total, peak = rec.windows[idx]
        mean_us = round((total / ops) / _NS_PER_US, 3) if ops else 0.0
        rows.append([idx, ops, miss, err, mean_us,
                     round(peak / _NS_PER_US, 3)])
    return rows


def _annotate_events(rec):
    """Events with the burn state of the window each landed in."""
    window_ns = rec.window_us * _NS_PER_US
    out = []
    for event in rec.events:
        idx = int(event["ts"] // window_ns)
        entry = {"ts_us": round(event["ts"] / _NS_PER_US, 3),
                 "name": event["name"], "window": idx}
        if "args" in event:
            entry["args"] = event["args"]
        win = rec.windows.get(idx)
        if win and win[0]:
            entry["window_burn"] = round((win[1] / win[0]) / rec.budget,
                                         6)
            entry["window_max_us"] = round(win[4] / _NS_PER_US, 3)
        out.append(entry)
    return out


def build_report(manifest, base_dir="."):
    """Build the report dict from a manifest (object or plain dict).

    Raises :class:`ObsReportError` when a blob fails validation.  A
    manifest with no obs artifacts at all still yields a report (with
    ``with_obs == 0``) so obs-off runs do not crash the verb.
    """
    points = manifest.points if hasattr(manifest, "points") \
        else manifest.get("points", ())
    merged = {}        # substrate -> ObsRecorder
    curves = {}        # substrate -> [curve point, ...]
    cells = []
    with_obs = 0
    for point, blob in _point_blobs(points, base_dir):
        with_obs += 1
        rec = ObsRecorder.from_dict(blob)
        substrate = rec.substrate or "?"
        if substrate in merged:
            merged[substrate].merge(rec)
        else:
            merged[substrate] = ObsRecorder.from_dict(blob)
        params = point.get("params") or {}
        record = point.get("record") or {}
        if "scenario" in params:
            cell_rec = ObsRecorder.from_dict(blob)
            cells.append({
                "workload": params.get("workload"),
                "substrate": params.get("substrate"),
                "scenario": params.get("scenario"),
                "mode": params.get("mode", "closed"),
                "summary": cell_rec.summary(),
                "windows": _window_series(cell_rec),
                "events": _annotate_events(cell_rec),
            })
        elif params.get("mode") == "open" and "rate_kops" in params:
            curves.setdefault(substrate, []).append({
                "offered_kops": params["rate_kops"],
                "achieved_kops": record.get("achieved_kops"),
                "p50_us": rec.latency_us((0.50,))["p50"],
                "p99_us": rec.latency_us((0.99,))["p99"],
            })
    for series in curves.values():
        series.sort(key=lambda p: p["offered_kops"])
    substrates = {}
    for substrate in sorted(merged):
        rec = merged[substrate]
        substrates[substrate] = {
            "summary": rec.summary(),
            "ops": {op: dict(rec.ops[op]) for op in sorted(rec.ops)},
            "counters": {name: rec.counters[name]
                         for name in sorted(rec.counters)},
        }
    kind = "chaos" if cells else "serve"
    return {
        "obs_report_version": REPORT_VERSION,
        "kind": kind,
        "points": len(points),
        "with_obs": with_obs,
        "substrates": substrates,
        "curves": {s: curves[s] for s in sorted(curves)},
        "cells": cells,
    }


# -- terminal rendering ------------------------------------------------------


def render_tables(report):
    """ASCII tables for the terminal; returns one string."""
    blocks = []
    rows = []
    for substrate, data in report["substrates"].items():
        lat = data["summary"]["latency_us"]
        burn = data["summary"]["burn"]
        rows.append([substrate, data["summary"]["ops"],
                     lat["p50"], lat["p95"], lat["p99"], lat["p999"],
                     burn["total_burn"], burn["worst_window_burn"]])
    if rows:
        blocks.append(table(
            ["substrate", "ops", "p50 us", "p95 us", "p99 us",
             "p999 us", "burn", "worst win"],
            rows, title="Latency and SLO burn per substrate "
                        "(SLO %s us, budget %s)"
                        % (_geometry(report))))
    for substrate, series in report["curves"].items():
        rows = [[p["offered_kops"], p["achieved_kops"], p["p50_us"],
                 p["p99_us"]] for p in series]
        blocks.append(table(
            ["offered kops", "achieved kops", "p50 us", "p99 us"],
            rows, title="Latency vs load: %s" % substrate))
    if report["cells"]:
        rows = []
        for cell in report["cells"]:
            summary = cell["summary"]
            faults = sum(1 for ev in cell["events"]
                         if ev["name"].startswith("chaos."))
            breaker = sum(1 for ev in cell["events"]
                          if ev["name"].startswith("breaker."))
            rows.append(["%s/%s" % (cell["workload"], cell["substrate"]),
                         cell["scenario"], cell["mode"],
                         summary["ops"],
                         summary["latency_us"]["p99"],
                         summary["burn"]["worst_window_burn"],
                         faults, breaker])
        blocks.append(table(
            ["cell", "scenario", "mode", "ops", "p99 us", "worst burn",
             "faults", "breaker"],
            rows, title="Chaos cells"))
    counter_rows = []
    for substrate, data in report["substrates"].items():
        for name, value in data["counters"].items():
            counter_rows.append([substrate, name, value])
    if counter_rows:
        blocks.append(table(["substrate", "counter", "value"],
                            counter_rows, title="Counters"))
    if not blocks:
        blocks.append("no obs artifacts in this manifest "
                      "(%d points; was the run made with REPRO_OBS=0?)"
                      % report["points"])
    return "\n\n".join(blocks)


def _geometry(report):
    for data in report["substrates"].values():
        burn = data["summary"]["burn"]
        return (burn["slo_us"], burn["budget"])
    return ("?", "?")


# -- HTML rendering ----------------------------------------------------------

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro observability report</title>
<style>
body {{ font-family: -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 960px; color: #1a1a2e; }}
h1 {{ font-size: 1.5em; }}  h2 {{ font-size: 1.15em; margin-top: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
th, td {{ border: 1px solid #cbd5e1; padding: 0.3em 0.7em;
          text-align: right; font-variant-numeric: tabular-nums; }}
th {{ background: #eef2f7; }}
td:first-child, th:first-child {{ text-align: left; }}
svg {{ background: #fafbfd; border: 1px solid #cbd5e1; }}
.legend {{ font-size: 0.85em; color: #475569; }}
.event {{ font-size: 0.8em; }}
</style>
</head>
<body>
<h1>repro observability report ({kind})</h1>
<p class="legend">{points} manifest points, {with_obs} with obs
artifacts.  All times are virtual nanosecond-clock quantities;
histogram buckets are log-linear (32 sub-buckets per octave, &le;3.125%
relative width).</p>
{body}
</body>
</html>
"""


def _esc(value):
    return _html.escape(str(value))


def _html_table(headers, rows):
    head = "".join("<th>%s</th>" % _esc(h) for h in headers)
    body = "".join(
        "<tr>%s</tr>" % "".join("<td>%s</td>" % _esc(c) for c in row)
        for row in rows)
    return ("<table><thead><tr>%s</tr></thead>"
            "<tbody>%s</tbody></table>" % (head, body))


def _svg_bars(pairs, width=880, height=160, color="#2563eb"):
    """A simple bar chart from ``[(label, value), ...]``."""
    if not pairs:
        return ""
    peak = max(v for _, v in pairs) or 1
    n = len(pairs)
    bar_w = max(1.0, (width - 40) / n - 1)
    parts = []
    for i, (_label, value) in enumerate(pairs):
        h = (height - 30) * value / peak
        x = 30 + i * ((width - 40) / n)
        y = height - 20 - h
        parts.append('<rect x="%.1f" y="%.1f" width="%.1f" '
                     'height="%.1f" fill="%s"/>'
                     % (x, y, bar_w, h, color))
    first, last = pairs[0][0], pairs[-1][0]
    parts.append('<text x="30" y="%d" font-size="10">%s</text>'
                 % (height - 6, _esc(first)))
    parts.append('<text x="%d" y="%d" font-size="10" '
                 'text-anchor="end">%s</text>'
                 % (width - 10, height - 6, _esc(last)))
    return ('<svg width="%d" height="%d" role="img">%s</svg>'
            % (width, height, "".join(parts)))


def _svg_curve(series, width=880, height=220):
    """p99-vs-offered-load polyline for one substrate's curve."""
    if len(series) < 2:
        return ""
    xs = [p["offered_kops"] for p in series]
    ys = [p["p99_us"] for p in series]
    x_lo, x_hi = min(xs), max(xs)
    y_hi = max(ys) or 1.0
    span_x = (x_hi - x_lo) or 1.0

    def sx(x):
        return 40 + (width - 60) * (x - x_lo) / span_x

    def sy(y):
        return height - 25 - (height - 45) * y / y_hi

    pts = " ".join("%.1f,%.1f" % (sx(x), sy(y))
                   for x, y in zip(xs, ys))
    dots = "".join('<circle cx="%.1f" cy="%.1f" r="3" fill="#dc2626"/>'
                   % (sx(x), sy(y)) for x, y in zip(xs, ys))
    labels = ('<text x="40" y="%d" font-size="10">%s kops</text>'
              '<text x="%d" y="%d" font-size="10" text-anchor="end">'
              '%s kops</text>'
              '<text x="8" y="20" font-size="10">p99 %s us</text>'
              % (height - 8, _esc(round(x_lo, 1)), width - 20,
                 height - 8, _esc(round(x_hi, 1)),
                 _esc(round(y_hi, 1))))
    return ('<svg width="%d" height="%d" role="img">'
            '<polyline points="%s" fill="none" stroke="#dc2626" '
            'stroke-width="1.5"/>%s%s</svg>'
            % (width, height, pts, dots, labels))


def _hist_pairs(blob_hist, limit=64):
    """Downsample a histogram dict to ``(midpoint_us, count)`` bars."""
    from repro.obs.hist import bucket_midpoint
    counts = {int(k): v for k, v in blob_hist.get("counts", {}).items()}
    pairs = [(round(bucket_midpoint(idx) / _NS_PER_US, 2), counts[idx])
             for idx in sorted(counts)]
    if len(pairs) > limit:
        step = len(pairs) / float(limit)
        pairs = [pairs[int(i * step)] for i in range(limit)]
    return pairs


def render_html(report, merged_hists=None):
    """The self-contained HTML page; returns one string.

    ``merged_hists`` optionally maps substrate to a histogram dict
    (``LatencyHistogram.to_dict()`` form) for the distribution charts;
    the builder's callers pass the per-substrate merges.
    """
    parts = []
    for substrate, data in report["substrates"].items():
        parts.append("<h2>%s</h2>" % _esc(substrate))
        lat = data["summary"]["latency_us"]
        burn = data["summary"]["burn"]
        parts.append(_html_table(
            ["ops", "p50 us", "p90 us", "p95 us", "p99 us", "p999 us",
             "SLO burn", "worst window"],
            [[data["summary"]["ops"], lat["p50"], lat["p90"],
              lat["p95"], lat["p99"], lat["p999"],
              burn["total_burn"], burn["worst_window_burn"]]]))
        if merged_hists and substrate in merged_hists:
            pairs = _hist_pairs(merged_hists[substrate])
            if pairs:
                parts.append("<p class='legend'>Latency distribution "
                             "(bucket midpoints, us)</p>")
                parts.append(_svg_bars(pairs))
        if data["counters"]:
            parts.append(_html_table(
                ["counter", "value"],
                [[name, value]
                 for name, value in data["counters"].items()]))
    for substrate, series in report["curves"].items():
        parts.append("<h2>Latency vs load: %s</h2>" % _esc(substrate))
        parts.append(_svg_curve(series))
        parts.append(_html_table(
            ["offered kops", "achieved kops", "p50 us", "p99 us"],
            [[p["offered_kops"], p["achieved_kops"], p["p50_us"],
              p["p99_us"]] for p in series]))
    for cell in report["cells"]:
        parts.append("<h2>Chaos: %s/%s %s (%s)</h2>"
                     % (_esc(cell["workload"]), _esc(cell["substrate"]),
                        _esc(cell["scenario"]), _esc(cell["mode"])))
        windows = cell["windows"]
        if windows:
            parts.append("<p class='legend'>Per-window max latency "
                         "(us) over virtual time; markers below list "
                         "injected faults, breaker transitions and "
                         "recovery audits.</p>")
            parts.append(_svg_bars(
                [(w[0], w[5]) for w in windows], color="#7c3aed"))
        if cell["events"]:
            rows = []
            for ev in cell["events"]:
                rows.append([
                    ev["ts_us"], ev["name"], ev["window"],
                    ev.get("window_burn", ""),
                    ev.get("window_max_us", ""),
                    json.dumps(ev.get("args", {}), sort_keys=True),
                ])
            parts.append(_html_table(
                ["ts us", "event", "window", "window burn",
                 "window max us", "args"], rows))
    if not parts:
        parts.append("<p>No obs artifacts in this manifest.</p>")
    return _PAGE.format(kind=_esc(report["kind"]),
                        points=report["points"],
                        with_obs=report["with_obs"],
                        body="\n".join(parts))


def merged_histograms(manifest, base_dir="."):
    """Per-substrate merged histogram dicts (for the HTML charts)."""
    points = manifest.points if hasattr(manifest, "points") \
        else manifest.get("points", ())
    merged = {}
    for _point, blob in _point_blobs(points, base_dir):
        rec = ObsRecorder.from_dict(blob)
        substrate = rec.substrate or "?"
        if substrate in merged:
            merged[substrate].merge(rec.hist)
        else:
            merged[substrate] = rec.hist
    return {s: merged[s].to_dict() for s in sorted(merged)}


def report_json(report):
    """The canonical serialized form (what the CI byte-compares)."""
    return json.dumps(report, sort_keys=True, indent=1,
                      allow_nan=False) + "\n"
