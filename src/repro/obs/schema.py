"""Structural validation of obs artifact blobs.

Mirrors :func:`repro.telemetry.export.validate_chrome_trace`: a plain
checker returning a list of human-readable problems (empty = valid),
strict about exactly the parts the report builder and the comparator
rely on.  Used by the CI ``report-smoke`` job and the obs tests; the
``repro report`` verb refuses to render an invalid blob.
"""

from repro.obs.hist import SUB_BUCKETS
from repro.obs.recorder import OBS_VERSION

#: Fields every blob must carry, with their required types.
_REQUIRED = (
    ("obs_version", int),
    ("substrate", str),
    ("slo_us", (int, float)),
    ("window_us", (int, float)),
    ("budget", (int, float)),
    ("hist", dict),
    ("ops", dict),
    ("counters", dict),
    ("windows", dict),
    ("events", list),
)


def validate_obs(blob):
    """Validate one obs blob; returns a list of problems."""
    problems = []
    if not isinstance(blob, dict):
        return ["obs blob must be an object, got %s"
                % type(blob).__name__]
    for field, types in _REQUIRED:
        if field not in blob:
            problems.append("missing field %r" % field)
        elif not isinstance(blob[field], types) \
                or isinstance(blob[field], bool):
            problems.append("field %r has type %s"
                            % (field, type(blob[field]).__name__))
    if problems:
        return problems
    if blob["obs_version"] != OBS_VERSION:
        problems.append("obs_version %r (this build reads %d)"
                        % (blob["obs_version"], OBS_VERSION))
    hist = blob["hist"]
    if hist.get("sub_buckets") != SUB_BUCKETS:
        problems.append("hist.sub_buckets %r (expected %d)"
                        % (hist.get("sub_buckets"), SUB_BUCKETS))
    for idx, count in hist.get("counts", {}).items():
        if not _is_int_key(idx) or not _is_count(count):
            problems.append("hist.counts[%r] = %r is not a "
                            "bucket count" % (idx, count))
    for op, entry in blob["ops"].items():
        if not isinstance(entry, dict) \
                or not _is_count(entry.get("ok", 0)) \
                or not _is_count(entry.get("errors", 0)):
            problems.append("ops[%r] = %r is not an "
                            "{ok, errors} entry" % (op, entry))
    for name, value in blob["counters"].items():
        if not _is_count(value):
            problems.append("counters[%r] = %r is not a count"
                            % (name, value))
    for idx, win in blob["windows"].items():
        if not _is_int_key(idx):
            problems.append("windows key %r is not an integer" % idx)
            continue
        if (not isinstance(win, list) or len(win) != 5
                or not all(isinstance(v, (int, float))
                           and not isinstance(v, bool) for v in win)
                or any(v < 0 for v in win)):
            problems.append("windows[%s] = %r is not "
                            "[ops, misses, errors, sum, max]"
                            % (idx, win))
    for i, event in enumerate(blob["events"]):
        where = "events[%d]" % i
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append("%s: missing name" % where)
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
    return problems


def _is_int_key(key):
    try:
        int(key)
    except (TypeError, ValueError):
        return False
    return True


def _is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0
