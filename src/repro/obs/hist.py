"""Deterministic log-linear latency histograms (HdrHistogram-style).

The recorder that stays on while the fused fast paths run needs a
latency sketch that is

* **cheap** — classifying a value is one ``frexp`` plus integer
  arithmetic, no search;
* **fixed** — bucket boundaries depend only on the value, never on the
  data seen so far, so two histograms built on different workers (or
  different hosts) agree bucket-for-bucket;
* **exactly mergeable** — a merge is integer addition of sparse count
  dicts: associative, commutative, lossless.  Merging the per-client
  histograms of a ``--jobs 4`` run gives byte-identically the
  histogram a serial run records.

The scheme is the log-linear one HdrHistogram popularized: the value's
binary exponent picks a major bucket, and ``SUB_BUCKETS`` linear
sub-buckets split each power of two.  With 32 sub-buckets every bucket
spans at most ``1/32`` (3.125%) of its value, so any quantile read
from bucket midpoints is within ±1.6% of the exact sample — the bound
the obs tests enforce against exact-sample percentiles.

Everything is pure Python floats/ints on virtual-time nanoseconds;
there is no wall clock and no randomness anywhere in this module.
"""

from math import ceil, frexp

#: Linear sub-buckets per power of two (must be a power of two).
SUB_BUCKETS = 32
_SHIFT = 5                    # log2(SUB_BUCKETS)
#: Offset added to the binary exponent so indexes stay positive for
#: any representable positive double (exponents reach -1074).
_E_OFFSET = 1100

#: Index 0 is reserved for values <= 0 (a latency can legitimately be
#: 0.0 when a request completes in the same virtual instant).
ZERO_BUCKET = 0


def bucket_index(value):
    """The fixed bucket index of ``value`` (virtual ns, float).

    ``frexp`` gives ``value = m * 2**e`` with ``m in [0.5, 1)``; the
    sub-bucket is the linear position of ``m`` inside that octave.
    """
    if value <= 0.0:
        return ZERO_BUCKET
    m, e = frexp(value)
    return ((e + _E_OFFSET) << _SHIFT) + int((m - 0.5) * (2.0 * SUB_BUCKETS))


def bucket_bounds(index):
    """The ``[lo, hi)`` value range of a bucket index."""
    if index == ZERO_BUCKET:
        return (0.0, 0.0)
    e = (index >> _SHIFT) - _E_OFFSET
    sub = index & (SUB_BUCKETS - 1)
    base = 2.0 ** (e - 1)
    width = base / SUB_BUCKETS
    lo = base + sub * width
    return (lo, lo + width)


def bucket_midpoint(index):
    """The representative value of a bucket (its midpoint)."""
    lo, hi = bucket_bounds(index)
    return (lo + hi) / 2.0


class LatencyHistogram:
    """A sparse log-linear histogram with exact merge.

    Counts live in a plain ``{index: count}`` dict; only touched
    buckets exist, so a quick run's histogram is a handful of entries.
    """

    __slots__ = ("counts",)

    def __init__(self, counts=None):
        self.counts = dict(counts) if counts else {}

    # -- recording ----------------------------------------------------

    def record(self, value):
        idx = bucket_index(value)
        counts = self.counts
        counts[idx] = counts.get(idx, 0) + 1

    def record_many(self, values):
        """Bulk fold an iterable of values (the post-loop ingest path)."""
        counts = self.counts
        for value in values:
            if value <= 0.0:
                idx = ZERO_BUCKET
            else:
                m, e = frexp(value)
                idx = ((e + _E_OFFSET) << _SHIFT) \
                    + int((m - 0.5) * (2.0 * SUB_BUCKETS))
            counts[idx] = counts.get(idx, 0) + 1

    # -- merging ------------------------------------------------------

    def merge(self, other):
        """Add ``other``'s counts into this histogram (exact)."""
        counts = self.counts
        for idx, n in other.counts.items():
            counts[idx] = counts.get(idx, 0) + n
        return self

    def copy(self):
        return LatencyHistogram(self.counts)

    # -- queries ------------------------------------------------------

    def total(self):
        return sum(self.counts.values())

    def percentile(self, frac):
        """Nearest-rank percentile, read from bucket midpoints.

        Matches :func:`repro.lattester.stats.percentile`'s rank
        convention (1-based ``ceil(n * p)``), so the histogram answer
        for a quantile lands in the same bucket as the exact sample.
        """
        total = self.total()
        if total == 0:
            return 0.0
        rank = ceil(total * frac)
        if rank < 1:
            rank = 1
        elif rank > total:
            rank = total
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            if cumulative >= rank:
                return bucket_midpoint(idx)
        return bucket_midpoint(max(self.counts))

    def max_value(self):
        """Upper bound of the highest occupied bucket (0.0 if empty)."""
        if not self.counts:
            return 0.0
        return bucket_bounds(max(self.counts))[1]

    # -- serialization ------------------------------------------------

    def to_dict(self):
        """JSON-able form; count keys are strings for strict JSON."""
        return {
            "sub_buckets": SUB_BUCKETS,
            "counts": {str(idx): self.counts[idx]
                       for idx in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, data):
        if data.get("sub_buckets") != SUB_BUCKETS:
            raise ValueError(
                "histogram recorded with sub_buckets=%r; this build "
                "uses %d" % (data.get("sub_buckets"), SUB_BUCKETS))
        return cls({int(idx): int(n)
                    for idx, n in data.get("counts", {}).items()})

    def __len__(self):
        return len(self.counts)

    def __eq__(self, other):
        return isinstance(other, LatencyHistogram) \
            and self.counts == other.counts

    def __repr__(self):
        return ("LatencyHistogram(buckets=%d, total=%d)"
                % (len(self.counts), self.total()))
