"""Content-addressed obs artifacts, referenced from run manifests.

A fresh serve point or chaos cell carries its obs blob *inline* in the
record (so cache replay keeps it).  Before a manifest is saved, the
CLI calls :func:`externalize_obs`: each inline blob is popped out of
the record, written as ``obs/obs-<address>.json`` next to the manifest
(the address is the SHA-256 of the blob's canonical JSON, so identical
content gets identical filenames whatever the run was called), and the
manifest point gains an ``"obs"`` reference to the relative path.

Two runs of the same matrix therefore produce byte-identical manifests
— the references are content addresses, never run-specific paths — and
the blobs dedupe on disk for free.

:func:`attach_obs_metrics` is the comparator hook: it folds each
point's obs blob down to a tiny ``obs_latency_us`` summary inside the
record (and drops the raw blob), so ``repro compare`` gains
p50/p95/p99 delta lines without flooding the metric diff with hundreds
of raw bucket counts.
"""

import hashlib
import json
import os

from repro.harness.keys import canonical_json
from repro.obs.recorder import ObsRecorder

#: Subdirectory (next to the manifest) that holds externalized blobs.
OBS_DIR = "obs"


def obs_address(blob):
    """The 16-hex-char content address of an obs blob."""
    return hashlib.sha256(
        canonical_json(blob).encode("utf-8")).hexdigest()[:16]


def obs_ref(blob):
    """The manifest-relative reference path of a blob."""
    return "%s/obs-%s.json" % (OBS_DIR, obs_address(blob))


def write_obs_blob(blob, manifest_path):
    """Write one blob next to ``manifest_path``; returns its ref."""
    ref = obs_ref(blob)
    target = os.path.join(os.path.dirname(os.path.abspath(manifest_path)),
                          *ref.split("/"))
    os.makedirs(os.path.dirname(target), exist_ok=True)
    # Content-addressed: an existing file already holds these bytes.
    if not os.path.exists(target):
        with open(target, "w") as fh:
            json.dump(blob, fh, sort_keys=True, indent=1,
                      allow_nan=False)
            fh.write("\n")
    return ref


def externalize_obs(manifest, manifest_path):
    """Move inline obs blobs out of a manifest's records.

    Mutates the manifest's points in place; returns the number of
    blobs externalized.  Points without obs are untouched, so obs-off
    runs save byte-identical manifests to pre-obs versions.
    """
    moved = 0
    for point in manifest.points:
        record = point.get("record")
        if not isinstance(record, dict) or "obs" not in record:
            continue
        blob = record.pop("obs")
        if blob is None:
            continue
        point["obs"] = write_obs_blob(blob, manifest_path)
        moved += 1
    return moved


def load_obs_blob(point, base_dir):
    """The obs blob of one manifest point, or ``None``.

    Handles both forms: an inline ``record["obs"]`` dict (a manifest
    that was never externalized, e.g. straight from ``serve()``) and
    an externalized ``point["obs"]`` reference resolved against the
    manifest's directory.
    """
    record = point.get("record")
    if isinstance(record, dict):
        blob = record.get("obs")
        if isinstance(blob, dict):
            return blob
    ref = point.get("obs")
    if not isinstance(ref, str):
        return None
    path = os.path.join(base_dir, *ref.split("/"))
    with open(path) as fh:
        return json.load(fh)


#: Percentiles the comparator sees per obs-carrying point.
COMPARE_FRACTIONS = (0.50, 0.95, 0.99)


def attach_obs_metrics(manifest, manifest_path):
    """Summarize obs blobs into each record for ``repro compare``.

    Each point that carries obs (inline or by reference) gains
    ``record["obs_latency_us"] = {"p50": ..., "p95": ..., "p99": ...}``
    and loses the raw blob, so the comparator's numeric-leaf walk
    yields three latency metrics per point instead of every bucket.
    Returns the number of points summarized.
    """
    base_dir = os.path.dirname(os.path.abspath(manifest_path))
    attached = 0
    for point in manifest.points:
        record = point.get("record")
        try:
            blob = load_obs_blob(point, base_dir)
        except (OSError, ValueError):
            blob = None
        if isinstance(record, dict):
            record.pop("obs", None)
        if blob is None or not isinstance(record, dict):
            continue
        rec = ObsRecorder.from_dict(blob)
        record["obs_latency_us"] = rec.latency_us(COMPARE_FRACTIONS)
        attached += 1
    return attached
