"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                — the experiment registry (figure, title, bench)
* ``run fig10 [...]``     — run experiments and print their raw results
* ``calibrate``           — the headline paper-vs-measured numbers
* ``guidelines``          — print the four best practices
* ``audit --access N ...``— audit an access pattern against them
"""

import argparse
import sys

from repro.core.experiments import all_experiments, get
from repro.core.guidelines import (
    AccessPlan, Violation, audit_access_pattern,
)
from repro.lattester.report import table


def cmd_list(_args):
    rows = [[e.figure, "§" + e.section, e.title, e.bench]
            for e in all_experiments()]
    print(table(["figure", "section", "title", "benchmark"], rows,
                title="Reproduced experiments"))
    return 0


def cmd_run(args):
    for figure in args.figures:
        exp = get(figure)
        print("== %s — %s (workload: %s)" % (exp.figure, exp.title,
                                             exp.workload))
        result = exp.run()
        _pretty(result)
    return 0


def _pretty(result, indent="  "):
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, (dict, list)):
                print("%s%s:" % (indent, key))
                _pretty(value, indent + "  ")
            else:
                print("%s%s: %s" % (indent, key, value))
    elif isinstance(result, list):
        for item in result:
            print("%s%s" % (indent, item))
    else:
        print("%s%s" % (indent, result))


def cmd_calibrate(_args):
    from scripts import calibrate  # pragma: no cover - path dependent
    calibrate.main([])
    return 0


def _calibrate_inline():
    """Fallback when scripts/ is not importable (installed package)."""
    from repro.lattester.latency import read_latency, write_latency
    rows = [
        ["DRAM read seq", read_latency("dram", "seq").mean_ns, 81],
        ["DRAM read rand", read_latency("dram", "rand").mean_ns, 101],
        ["Optane read seq", read_latency("optane", "seq").mean_ns, 169],
        ["Optane read rand", read_latency("optane", "rand").mean_ns, 305],
        ["store+clwb+fence (Optane)",
         write_latency("optane", "clwb").mean_ns, 62],
        ["ntstore+fence (Optane)",
         write_latency("optane", "ntstore").mean_ns, 90],
    ]
    print(table(["experiment", "measured ns", "paper ns"], rows,
                title="Calibration (Figure 2)"))


def cmd_guidelines(_args):
    print("Best practices for 3D XPoint DIMMs (Section 5):")
    for num, name in sorted(Violation.GUIDELINE_NAMES.items()):
        print("  %d. %s" % (num, name.capitalize()))
    return 0


def cmd_audit(args):
    plan = AccessPlan(
        access_bytes=args.access,
        pattern=args.pattern,
        is_write=not args.read,
        threads=args.threads,
        dimms=args.dimms,
        remote=args.remote,
        mixed_read_write=args.mixed,
        working_set_bytes=args.working_set,
        flushes_promptly=not args.no_flush,
    )
    violations = audit_access_pattern(plan)
    if not violations:
        print("no guideline violations — ship it")
        return 0
    for v in violations:
        print(" ", v)
    return 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FAST'20 scalable-persistent-memory reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduced experiments")
    run = sub.add_parser("run", help="run experiments by figure id")
    run.add_argument("figures", nargs="+", metavar="figN")
    sub.add_parser("calibrate", help="paper-vs-measured headline numbers")
    sub.add_parser("guidelines", help="print the four best practices")
    audit = sub.add_parser("audit", help="audit an access pattern")
    audit.add_argument("--access", type=int, default=64,
                       help="access size in bytes")
    audit.add_argument("--pattern", choices=("seq", "rand"),
                       default="rand")
    audit.add_argument("--read", action="store_true",
                       help="reads instead of writes")
    audit.add_argument("--threads", type=int, default=1)
    audit.add_argument("--dimms", type=int, default=6)
    audit.add_argument("--remote", action="store_true")
    audit.add_argument("--mixed", action="store_true",
                       help="mixed read/write traffic")
    audit.add_argument("--working-set", type=int, default=0)
    audit.add_argument("--no-flush", action="store_true",
                       help="stores are not promptly flushed")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "guidelines": cmd_guidelines,
        "audit": cmd_audit,
    }
    if args.command == "calibrate":
        try:
            return cmd_calibrate(args)
        except ImportError:
            _calibrate_inline()
            return 0
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
