"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                — the experiment registry (figure, title, bench)
* ``run fig10 [...]``     — run experiments and print their raw results
* ``trace bandwidth|figN``— run one experiment with tracing on; write a
  Chrome ``trace_event`` JSON (chrome://tracing / Perfetto) and
  optionally a flat metrics CSV
* ``sweep [--quick] ...`` — the systematic sweep through the harness
  (``--trace-dir`` records a per-point trace artifact)
* ``cache stats|clear``   — inspect or empty the result cache
* ``compare a b``         — diff two run manifests for metric drift
* ``faults run [...]``    — chaos matrix: crash x tear x poison sweep
  (``--trace-dir`` records fault instants per case)
* ``serve ycsb-a lsm``    — YCSB-style serving study of one substrate:
  closed-loop throughput, the open-loop latency-vs-load curve, and a
  binary search for the max offered load meeting a p99 SLO
  (``--pmcheck`` rides the persistency-order checker along)
* ``pmcheck ycsb-a lsm``  — persistency-order check: run the traffic
  with the durability checker installed and report missing, misordered
  or redundant flushes with call-site attribution
* ``report serve.json.manifest.json`` — render the always-on
  observability artifacts of a serve or chaos run: latency/SLO-burn
  tables per substrate, latency-vs-load curves, chaos timelines
  (``--json`` for the canonical JSON, ``--html`` for a self-contained
  single-file page)
* ``bench [--quick]``     — wall-clock microbenchmarks of the
  simulator's hot paths; ``--compare old.json`` exits 1 on a >20%
  throughput regression
* ``calibrate``           — the headline paper-vs-measured numbers
* ``guidelines``          — print the four best practices
* ``audit --access N ...``— audit an access pattern against them
"""

import argparse
import sys

from repro.core.experiments import REGISTRY, all_experiments, get
from repro.core.guidelines import (
    AccessPlan, Violation, audit_access_pattern,
)
from repro.lattester.report import table


def cmd_list(_args):
    rows = [[e.figure, "§" + e.section, e.title, e.bench]
            for e in all_experiments()]
    print(table(["figure", "section", "title", "benchmark"], rows,
                title="Reproduced experiments"))
    return 0


def cmd_run(args):
    unknown = [f for f in args.figures if f not in REGISTRY]
    if unknown:
        print("unknown figure%s: %s" % ("s" if len(unknown) > 1 else "",
                                        ", ".join(unknown)),
              file=sys.stderr)
        print("valid figures: %s"
              % ", ".join(e.figure for e in all_experiments()),
              file=sys.stderr)
        return 2
    for figure in args.figures:
        exp = get(figure)
        print("== %s — %s (workload: %s)" % (exp.figure, exp.title,
                                             exp.workload))
        result = exp.run()
        _pretty(result)
    return 0


def cmd_trace(args):
    from repro.telemetry import (
        recording, write_chrome_trace, write_metrics_csv,
    )

    if args.target == "bandwidth":
        from repro._units import KIB
        from repro.lattester.bandwidth import measure_bandwidth

        def runner():
            return measure_bandwidth(
                kind=args.kind, op=args.op, threads=args.threads,
                access=args.access, pattern=args.pattern,
                per_thread=args.per_thread * KIB)
    elif args.target in REGISTRY:
        runner = get(args.target).run
    else:
        print("unknown trace target %r" % args.target, file=sys.stderr)
        print("valid targets: bandwidth, %s"
              % ", ".join(e.figure for e in all_experiments()),
              file=sys.stderr)
        return 2
    with recording(capacity=args.buffer,
                   counter_interval_ns=args.counter_interval) as tracer:
        result = runner()
        tracer.sample_now()
    write_chrome_trace(tracer, args.out)
    counts = tracer.category_counts()
    print("traced %s: %d events -> %s%s"
          % (args.target, len(tracer), args.out,
             " (%d dropped: raise --buffer)" % tracer.dropped
             if tracer.dropped else ""))
    print("  " + "  ".join("%s=%d" % (cat, counts[cat])
                           for cat in sorted(counts)))
    if args.metrics:
        write_metrics_csv(tracer, args.metrics)
        print("counter timeline -> %s" % args.metrics)
    _pretty(result)
    return 0


def cmd_sweep(args):
    import time

    from repro._units import KIB
    from repro.harness import ResultCache, run_sweep
    from repro.lattester.sweep import FULL_GRID, QUICK_GRID, write_csv

    grid = QUICK_GRID if args.quick else FULL_GRID
    total = 1
    for values in grid.values():
        total *= len(values)
    started = time.time()
    done = [0]

    def progress(outcome):
        done[0] += 1
        if done[0] % 50 == 0 or done[0] == total:
            rate = done[0] / max(time.time() - started, 1e-9)
            print("  %5d/%d  (%.1f points/s)" % (done[0], total, rate))

    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    run = run_sweep(grid, per_thread=48 * KIB, jobs=args.jobs,
                    cache=cache, progress=progress, name="sweep",
                    trace_dir=args.trace_dir)
    write_csv(run.records, args.out)
    manifest_path = args.manifest or args.out + ".manifest.json"
    run.manifest.save(manifest_path)
    stats = run.manifest.cache_stats or {}
    print("wrote %d records to %s (+ %s); cache %d/%d hits"
          % (len(run.records), args.out, manifest_path,
             stats.get("hits", 0),
             stats.get("hits", 0) + stats.get("misses", 0)))
    if run.failures:
        print("ERROR: %d point(s) failed" % len(run.failures),
              file=sys.stderr)
        return 1
    return 0


def cmd_cache(args):
    from repro.harness import ResultCache

    cache = ResultCache(root=args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print("removed %d cached artifact(s) from %s"
              % (removed, cache.root))
        return 0
    stats = cache.stats()
    print("cache root: %s" % stats["root"])
    print("artifacts:  %d (%.1f KiB)"
          % (stats["artifacts"], stats["total_bytes"] / 1024.0))
    for experiment in sorted(stats["by_experiment"]):
        print("  %-28s %d" % (experiment,
                              stats["by_experiment"][experiment]))
    return 0


def cmd_compare(args):
    import json

    from repro.harness import RunManifest, compare_manifests

    try:
        a = RunManifest.load(args.a)
        b = RunManifest.load(args.b)
    except (OSError, json.JSONDecodeError) as exc:
        print("cannot read manifest: %s" % exc, file=sys.stderr)
        return 2
    # Fold each point's obs blob down to p50/p95/p99 so the diff gains
    # latency-distribution drift lines without raw bucket noise.
    from repro.obs import attach_obs_metrics
    attach_obs_metrics(a, args.a)
    attach_obs_metrics(b, args.b)
    comparison = compare_manifests(a, b, tolerance=args.tolerance)
    print("comparing %s (%s) vs %s (%s), tolerance %.1f%%"
          % (args.a, a.version, args.b, b.version,
             100.0 * args.tolerance))
    print(comparison.summary())
    return 0 if comparison.clean else 1


def cmd_faults(args):
    import time

    from repro.faults.chaos import run_chaos

    started = time.time()
    done = [0]

    def progress(_outcome):
        done[0] += 1
        if done[0] % 25 == 0:
            rate = done[0] / max(time.time() - started, 1e-9)
            print("  %5d cases  (%.1f cases/s)" % (done[0], rate))

    run = run_chaos(quick=args.quick, seed=args.seed, jobs=args.jobs,
                    naive=args.naive, progress=progress,
                    timeout_s=args.timeout, retries=args.retries,
                    trace_dir=args.trace_dir)
    run.manifest.save(args.out)
    crashed = sum(1 for o in run.outcomes
                  if o.value and o.value["crashed"])
    torn = sum(o.value["torn_chunks"] for o in run.outcomes if o.value)
    lossy = sum(1 for o in run.outcomes
                if o.value and o.value["report"]
                and o.value["report"]["lost"])
    print("%d cases: %d crashed, %d torn chunks, %d with data loss "
          "reported; manifest -> %s"
          % (run.cases, crashed, torn, lossy, args.out))
    status = 0
    if run.failures:
        print("ERROR: %d case(s) failed to execute" % len(run.failures),
              file=sys.stderr)
        for outcome in run.failures[:10]:
            print("  %s: %s" % (outcome.payload, outcome.error),
                  file=sys.stderr)
        status = 1
    if run.violations:
        print("%d invariant violation(s):%s"
              % (len(run.violations),
                 " (expected: --naive disables CRCs)"
                 if args.naive else ""),
              file=sys.stderr)
        for v in run.violations[:20]:
            print("  [%s crash=%s tear=%s poison=%s] %s"
                  % (v["workload"], v["crash_at"], v["tear"],
                     v["poison_site"], v["violation"]), file=sys.stderr)
        status = 1
    return status


def _pretty(result, indent="  "):
    if isinstance(result, dict):
        for key, value in result.items():
            if isinstance(value, (dict, list)):
                print("%s%s:" % (indent, key))
                _pretty(value, indent + "  ")
            else:
                print("%s%s: %s" % (indent, key, value))
    elif isinstance(result, list):
        for item in result:
            print("%s%s" % (indent, item))
    else:
        print("%s%s" % (indent, result))


def cmd_calibrate(_args):
    from scripts import calibrate  # pragma: no cover - path dependent
    calibrate.main([])
    return 0


def _calibrate_inline():
    """Fallback when scripts/ is not importable (installed package)."""
    from repro.lattester.latency import read_latency, write_latency
    rows = [
        ["DRAM read seq", read_latency("dram", "seq").mean_ns, 81],
        ["DRAM read rand", read_latency("dram", "rand").mean_ns, 101],
        ["Optane read seq", read_latency("optane", "seq").mean_ns, 169],
        ["Optane read rand", read_latency("optane", "rand").mean_ns, 305],
        ["store+clwb+fence (Optane)",
         write_latency("optane", "clwb").mean_ns, 62],
        ["ntstore+fence (Optane)",
         write_latency("optane", "ntstore").mean_ns, 90],
    ]
    print(table(["experiment", "measured ns", "paper ns"], rows,
                title="Calibration (Figure 2)"))


def cmd_guidelines(_args):
    print("Best practices for 3D XPoint DIMMs (Section 5):")
    for num, name in sorted(Violation.GUIDELINE_NAMES.items()):
        print("  %d. %s" % (num, name.capitalize()))
    return 0


def cmd_audit(args):
    plan = AccessPlan(
        access_bytes=args.access,
        pattern=args.pattern,
        is_write=not args.read,
        threads=args.threads,
        dimms=args.dimms,
        remote=args.remote,
        mixed_read_write=args.mixed,
        working_set_bytes=args.working_set,
        flushes_promptly=not args.no_flush,
    )
    violations = audit_access_pattern(plan)
    if not violations:
        print("no guideline violations — ship it")
        return 0
    for v in violations:
        print(" ", v)
    return 1


def cmd_bench(args):
    from repro.bench import main as bench_main
    return bench_main(args)


def _cmd_serve_chaos(args):
    """The ``serve --chaos`` path: the fault matrix plus the oracle."""
    import json

    from repro.chaos_serve import format_violation, run_chaos_serve
    from repro.harness import ResultCache

    workload = None if args.workload == "all" else args.workload
    substrate = None if args.substrate == "all" else args.substrate
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    try:
        run = run_chaos_serve(
            workload=workload, substrate=substrate, quick=args.quick,
            seed=args.seed, naive=args.naive, jobs=args.jobs,
            cache=cache, trace_dir=args.trace_dir,
            pmcheck=args.pmcheck)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2

    # The report keeps its pre-obs byte layout: obs blobs live in the
    # manifest's content-addressed artifacts, not in the report cells.
    cells = [{k: v for k, v in rec.items() if k != "obs"}
             for rec in run.records]
    report = {"cells": cells, "violations": run.violations}
    if args.pmcheck:
        report["pmcheck_violations"] = run.pmcheck_violations
    with open(args.out, "w") as fh:
        json.dump(report, fh, sort_keys=True, indent=1, allow_nan=False)
        fh.write("\n")
    from repro.obs import externalize_obs
    manifest_path = args.out + ".manifest.json"
    externalize_obs(run.manifest, manifest_path)
    run.manifest.save(manifest_path)

    print("chaos serving%s%s: %d cells, seed %d"
          % (" (quick)" if args.quick else "",
             " [NAIVE: protections off]" if args.naive else "",
             len(run.manifest.points), args.seed))
    for rec in run.records:
        faults = rec["faults"]
        print("  %-7s %-8s %-10s %-6s ok=%-4d crashes=%d torn=%-3d "
              "retries=%-2d violations=%d"
              % (rec["workload"], rec["substrate"], rec["scenario"],
                 rec["mode"], rec["results"].get("ok", 0),
                 faults["crashes"], faults["torn_chunks"],
                 rec["degrade"]["retries"], len(rec["violations"])))
    print("report -> %s (+ %s)" % (args.out,
                                   args.out + ".manifest.json"))
    if run.failures:
        for point in run.failures:
            print("CELL FAILED: %s: %s" % (point["params"],
                                           point["error"]),
                  file=sys.stderr)
        return 1
    status = 0
    if run.violations:
        print("\nDURABILITY VIOLATIONS (%d):" % len(run.violations))
        for v in run.violations:
            cell = v["cell"]
            print("[%s/%s/%s/%s]" % (cell["workload"],
                                     cell["substrate"],
                                     cell["scenario"], cell["mode"]))
            print(format_violation(v))
        status = 1
    else:
        print("no durability violations: every acknowledged write "
              "survived or was reported lost")
    if args.pmcheck:
        from repro.pmcheck import format_violation as fmt_pm
        if run.pmcheck_violations:
            print("\nPERSISTENCY-ORDER VIOLATIONS (%d):"
                  % len(run.pmcheck_violations))
            for v in run.pmcheck_violations:
                print(fmt_pm(v, cell=v.get("cell")))
            status = 1
        else:
            print("pmcheck: every cell's persist ordering is clean")
    return status


def cmd_serve(args):
    import json

    from repro.harness import ResultCache
    from repro.workloads import SUBSTRATES, WORKLOADS
    from repro.workloads.saturation import serve

    if args.chaos:
        return _cmd_serve_chaos(args)
    if args.naive:
        print("--naive only applies to --chaos runs", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print("unknown workload: %s" % args.workload, file=sys.stderr)
        print("valid workloads: %s" % ", ".join(sorted(WORKLOADS)),
              file=sys.stderr)
        return 2
    if args.substrate not in SUBSTRATES:
        print("unknown substrate: %s" % args.substrate, file=sys.stderr)
        print("valid substrates: %s" % ", ".join(sorted(SUBSTRATES)),
              file=sys.stderr)
        return 2
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    report, manifest = serve(
        args.workload, args.substrate, quick=args.quick,
        slo_p99_us=args.slo_p99_us, seed=args.seed, jobs=args.jobs,
        cache=cache, trace_dir=args.trace_dir, pmcheck=args.pmcheck)
    with open(args.out, "w") as fh:
        json.dump(report, fh, sort_keys=True, indent=1,
                  allow_nan=False)
        fh.write("\n")
    from repro.obs import externalize_obs
    manifest_path = args.out + ".manifest.json"
    externalize_obs(manifest, manifest_path)
    manifest.save(manifest_path)

    sat = report["saturation"]
    closed = report["closed"]
    print("serving %s on %s%s: %d ops over %d records"
          % (args.workload, args.substrate,
             " (quick)" if args.quick else "",
             report["shape"]["ops"], report["shape"]["records"]))
    print("closed loop: %.1f kops/s, p99 %.2f us (%d clients)"
          % (closed["achieved_kops"], closed["latency_us"]["p99"],
             closed["clients"]))
    print("latency vs load (offered kops/s -> p99 us):")
    for point in report["curve"]:
        print("  %10.1f -> %10.2f" % (point["offered_kops"],
                                      point["p99_us"]))
    slo_note = "" if sat["slo_explicit"] else " (default: 10x closed p99)"
    print("SLO p99 <= %.2f us%s: " % (sat["slo_p99_us"], slo_note),
          end="")
    if not sat["slo_met"]:
        print("NOT met at any probed rate")
    elif not sat["saturated"]:
        print("met at every probed rate (max %.1f kops/s offered)"
              % sat["max_kops"])
    else:
        print("max offered %.1f kops/s (%.0f%% of closed-loop)"
              % (sat["max_kops"],
                 100.0 * sat["max_kops"] / max(sat["closed_kops"],
                                               1e-9)))
    print("report -> %s (+ %s)" % (args.out,
                                   args.out + ".manifest.json"))
    if args.pmcheck:
        from repro.pmcheck import format_violation as fmt_pm
        pm = report.get("pmcheck", {})
        if pm.get("violations"):
            print("\nPERSISTENCY-ORDER VIOLATIONS (%d):"
                  % len(pm["violations"]))
            for v in pm["violations"]:
                print(fmt_pm(v, cell=v.get("cell")))
            return 1
        print("pmcheck: persist ordering clean across every point")
    return 0


def cmd_pmcheck(args):
    """The ``pmcheck`` verb: the checker matrix over YCSB traffic."""
    import json

    from repro.harness import ResultCache
    from repro.pmcheck import format_violation, run_pmcheck

    workload = None if args.workload == "all" else args.workload
    substrate = None if args.substrate == "all" else args.substrate
    cache = ResultCache(root=args.cache_dir, enabled=not args.no_cache)
    try:
        run = run_pmcheck(
            workload=workload, substrate=substrate, quick=args.quick,
            seed=args.seed, naive=args.naive, jobs=args.jobs,
            cache=cache, trace_dir=args.trace_dir)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2

    report = {"cells": run.records, "violations": run.violations}
    with open(args.out, "w") as fh:
        json.dump(report, fh, sort_keys=True, indent=1, allow_nan=False)
        fh.write("\n")
    run.manifest.save(args.out + ".manifest.json")

    print("persistency-order check%s%s: %d cells, seed %d"
          % (" (quick)" if args.quick else "",
             " [NAIVE: protections off]" if args.naive else "",
             len(run.manifest.points), args.seed))
    for rec in run.records:
        summary = rec["pmcheck"]
        kinds = summary.get("kinds", {})
        print("  %-7s %-8s ops=%-5d %s"
              % (rec["workload"], rec["substrate"],
                 rec["served"]["ops"],
                 "clean" if not summary["total"] else
                 "%d violation(s): %s"
                 % (summary["total"],
                    ", ".join("%s x%d" % (k, kinds[k])
                              for k in sorted(kinds)))))
    print("report -> %s (+ %s)" % (args.out,
                                   args.out + ".manifest.json"))
    if run.failures:
        for point in run.failures:
            print("CELL FAILED: %s: %s" % (point["params"],
                                           point["error"]),
                  file=sys.stderr)
        return 1
    if run.violations:
        print("\nPERSISTENCY-ORDER VIOLATIONS (%d):"
              % len(run.violations))
        for v in run.violations:
            print(format_violation(v, cell=v.get("cell")))
        return 1
    print("every store was flushed, fenced and acknowledged in order")
    return 0


def cmd_report(args):
    """The ``report`` verb: render a run's obs artifacts."""
    import glob
    import json
    import os

    from repro.harness import RunManifest
    from repro.obs import (
        ObsReportError, build_report, merged_histograms, render_html,
        render_tables, report_json,
    )

    if os.path.isdir(args.target):
        if args.json or args.html:
            print("--json/--html need a single manifest, not a "
                  "directory", file=sys.stderr)
            return 2
        paths = sorted(glob.glob(os.path.join(args.target,
                                              "*.manifest.json")))
        if not paths:
            print("no *.manifest.json under %s" % args.target,
                  file=sys.stderr)
            return 2
    else:
        paths = [args.target]
    status = 0
    for path in paths:
        try:
            manifest = RunManifest.load(path)
        except (OSError, json.JSONDecodeError) as exc:
            print("cannot read manifest: %s" % exc, file=sys.stderr)
            return 2
        base_dir = os.path.dirname(os.path.abspath(path))
        try:
            report = build_report(manifest, base_dir=base_dir)
        except ObsReportError as exc:
            print("%s: %s" % (path, exc), file=sys.stderr)
            status = 1
            continue
        if len(paths) > 1:
            print("== %s" % path)
        print(render_tables(report))
        if args.json:
            with open(args.json, "w") as fh:
                fh.write(report_json(report))
            print("report JSON -> %s" % args.json)
        if args.html:
            hists = merged_histograms(manifest, base_dir=base_dir)
            with open(args.html, "w") as fh:
                fh.write(render_html(report, merged_hists=hists))
            print("HTML report -> %s" % args.html)
    return status


#: Every CLI verb, in help order (unknown-verb errors print this).
COMMANDS = (
    "list", "run", "trace", "sweep", "serve", "pmcheck", "report",
    "cache", "compare", "faults", "bench", "calibrate", "guidelines",
    "audit",
)


class _Parser(argparse.ArgumentParser):
    """An ArgumentParser whose errors follow the ``run`` convention.

    Unknown verbs and unknown arguments alike exit 2 and print the
    full verb list to stderr, instead of argparse's bare usage line —
    so every bad invocation tells the user what the CLI *does* accept.
    Subparsers inherit this class automatically.
    """

    def error(self, message):
        self.print_usage(sys.stderr)
        print("%s: error: %s" % (self.prog, message), file=sys.stderr)
        print("valid commands: %s" % ", ".join(COMMANDS),
              file=sys.stderr)
        raise SystemExit(2)


def build_parser():
    parser = _Parser(
        prog="python -m repro",
        description="FAST'20 scalable-persistent-memory reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproduced experiments")
    run = sub.add_parser("run", help="run experiments by figure id")
    run.add_argument("figures", nargs="+", metavar="figN")
    trace = sub.add_parser(
        "trace", help="run one experiment with tracing on")
    trace.add_argument("target",
                       help="'bandwidth' or a registry figure id")
    trace.add_argument("--kind", default="optane",
                       help="namespace kind for bandwidth "
                            "(default: optane)")
    trace.add_argument("--op", default="ntstore",
                       choices=("read", "ntstore", "clwb", "store"),
                       help="bandwidth operation (default: ntstore)")
    trace.add_argument("--threads", type=int, default=4)
    trace.add_argument("--access", type=int, default=256,
                       help="access size in bytes (default: 256)")
    trace.add_argument("--pattern", choices=("seq", "rand"),
                       default="seq")
    trace.add_argument("--per-thread", type=int, default=64,
                       help="KiB issued per thread (default: 64)")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace output path")
    trace.add_argument("--metrics", default=None,
                       help="also write the counter timeline CSV here")
    trace.add_argument("--buffer", type=int, default=1 << 16,
                       help="ring-buffer capacity in events "
                            "(default: 65536)")
    trace.add_argument("--counter-interval", type=float, default=5000.0,
                       help="counter-sample interval in virtual ns "
                            "(default: 5000)")
    sweep = sub.add_parser(
        "sweep", help="systematic sweep through the harness")
    sweep.add_argument("--quick", action="store_true",
                       help="small grid for smoke runs")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per CPU)")
    sweep.add_argument("--out", default="sweep.csv",
                       help="output CSV path")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute every point")
    sweep.add_argument("--cache-dir", default=None,
                       help="cache root (default: .repro-cache)")
    sweep.add_argument("--manifest", default=None,
                       help="manifest path (default: <out>.manifest.json)")
    sweep.add_argument("--trace-dir", default=None,
                       help="write a Chrome trace per freshly computed "
                            "point into this directory")
    serve = sub.add_parser(
        "serve", help="YCSB-style serving study of one substrate")
    serve.add_argument("workload",
                       help="traffic mix (ycsb-a..f, pointer-chase, "
                            "log-append)")
    serve.add_argument("substrate",
                       help="service under test (lsm, pmemkv, nova, "
                            "pmdk)")
    serve.add_argument("--chaos", action="store_true",
                       help="chaos serving: inject faults mid-serve, "
                            "recover, and audit durable "
                            "linearizability (pass 'all' as workload/"
                            "substrate to widen the matrix)")
    serve.add_argument("--naive", action="store_true",
                       help="with --chaos: disable the degradation "
                            "layer and crash-consistency hardening "
                            "(the matrix should catch violations)")
    serve.add_argument("--pmcheck", action="store_true",
                       help="ride the persistency-order checker along "
                            "and fail on any flush/fence misordering")
    serve.add_argument("--quick", action="store_true",
                       help="small shapes for smoke runs")
    serve.add_argument("--slo-p99-us", type=float, default=None,
                       help="p99 SLO in microseconds (default: 10x "
                            "the closed-loop p99)")
    serve.add_argument("--seed", type=int, default=0,
                       help="traffic seed (default: 0)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per CPU)")
    serve.add_argument("--out", default="serve.json",
                       help="report path (default: serve.json)")
    serve.add_argument("--no-cache", action="store_true",
                       help="recompute every point")
    serve.add_argument("--cache-dir", default=None,
                       help="cache root (default: .repro-cache)")
    serve.add_argument("--trace-dir", default=None,
                       help="write a Chrome trace per freshly computed "
                            "point into this directory")
    pmcheck = sub.add_parser(
        "pmcheck", help="check persistency ordering under traffic")
    pmcheck.add_argument("workload", nargs="?", default="all",
                         help="traffic mix (ycsb-a..f) or 'all' "
                              "(default: all)")
    pmcheck.add_argument("substrate", nargs="?", default="all",
                         help="service under test (lsm, pmemkv, nova, "
                              "pmdk) or 'all' (default: all)")
    pmcheck.add_argument("--quick", action="store_true",
                         help="small shapes for smoke runs")
    pmcheck.add_argument("--naive", action="store_true",
                         help="drop the ordering protections (the "
                              "checker should catch every class)")
    pmcheck.add_argument("--seed", type=int, default=0,
                         help="traffic seed (default: 0)")
    pmcheck.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: one per CPU)")
    pmcheck.add_argument("--out", default="pmcheck.json",
                         help="report path (default: pmcheck.json)")
    pmcheck.add_argument("--no-cache", action="store_true",
                         help="recompute every cell")
    pmcheck.add_argument("--cache-dir", default=None,
                         help="cache root (default: .repro-cache)")
    pmcheck.add_argument("--trace-dir", default=None,
                         help="write a Chrome trace per freshly "
                              "computed cell into this directory")
    report = sub.add_parser(
        "report", help="render a run's observability artifacts")
    report.add_argument("target",
                        help="a run manifest (*.manifest.json) or a "
                             "directory of them")
    report.add_argument("--json", default=None, metavar="PATH",
                        help="also write the canonical report JSON "
                             "here (byte-identical across job counts)")
    report.add_argument("--html", default=None, metavar="PATH",
                        help="also write a self-contained single-file "
                             "HTML report here")
    cache = sub.add_parser("cache", help="result-cache maintenance")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache-dir", default=None,
                       help="cache root (default: .repro-cache)")
    compare = sub.add_parser(
        "compare", help="diff two run manifests for metric drift")
    compare.add_argument("a", help="baseline manifest (JSON)")
    compare.add_argument("b", help="candidate manifest (JSON)")
    compare.add_argument("--tolerance", type=float, default=0.05,
                         help="max relative drift per metric "
                              "(default: 0.05)")
    faults = sub.add_parser(
        "faults", help="fault-injection chaos matrix")
    faults.add_argument("action", choices=("run",))
    faults.add_argument("--quick", action="store_true",
                        help="sampled matrix for smoke runs")
    faults.add_argument("--seed", type=int, default=0,
                        help="fault-injector seed (default: 0)")
    faults.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: one per CPU)")
    faults.add_argument("--out", default="faults.manifest.json",
                        help="manifest path")
    faults.add_argument("--naive", action="store_true",
                        help="replay WALs without CRCs (expected to "
                             "surface violations)")
    faults.add_argument("--timeout", type=float, default=120.0,
                        help="per-case timeout in seconds")
    faults.add_argument("--retries", type=int, default=1,
                        help="retries per timed-out case")
    faults.add_argument("--trace-dir", default=None,
                        help="write a Chrome trace per chaos case into "
                             "this directory")
    bench = sub.add_parser(
        "bench", help="wall-clock microbenchmarks of the simulator")
    bench.add_argument("--quick", action="store_true",
                       help="smaller workloads for smoke runs")
    bench.add_argument("--repeats", type=int, default=None, metavar="N",
                       help="timed runs per benchmark; the minimum "
                            "wall time is kept (default: 3, or 5 "
                            "with --quick)")
    bench.add_argument("--out", default="BENCH_sim.json",
                       help="result path (default: BENCH_sim.json)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="print per-benchmark ops/s deltas vs this "
                            "earlier result file; exit 1 past the fail "
                            "tolerance")
    bench.add_argument("--warn-tolerance", type=float, default=None,
                       metavar="FRAC", dest="warn_tolerance",
                       help="relative loss that only warns "
                            "(default: 0.10)")
    bench.add_argument("--fail-tolerance", type=float, default=None,
                       metavar="FRAC", dest="fail_tolerance",
                       help="relative loss that fails --compare "
                            "(default: 0.20)")
    bench.add_argument("--obs-tolerance", type=float, default=None,
                       metavar="FRAC", dest="obs_tolerance",
                       help="max throughput the obs recorder may cost "
                            "vs serve_closed (default: 0.05; exceeding "
                            "it fails the run)")
    bench.add_argument("--profile", default=None, metavar="NAME",
                       help="cProfile one benchmark instead of timing "
                            "the suite; writes a .pstats dump and "
                            "prints the top 25 by cumulative time")
    bench.add_argument("--profile-out", default=None, metavar="PATH",
                       dest="profile_out",
                       help="pstats dump path (default: "
                            "bench_profile_<name>.pstats)")
    sub.add_parser("calibrate", help="paper-vs-measured headline numbers")
    sub.add_parser("guidelines", help="print the four best practices")
    audit = sub.add_parser("audit", help="audit an access pattern")
    audit.add_argument("--access", type=int, default=64,
                       help="access size in bytes")
    audit.add_argument("--pattern", choices=("seq", "rand"),
                       default="rand")
    audit.add_argument("--read", action="store_true",
                       help="reads instead of writes")
    audit.add_argument("--threads", type=int, default=1)
    audit.add_argument("--dimms", type=int, default=6)
    audit.add_argument("--remote", action="store_true")
    audit.add_argument("--mixed", action="store_true",
                       help="mixed read/write traffic")
    audit.add_argument("--working-set", type=int, default=0)
    audit.add_argument("--no-flush", action="store_true",
                       help="stores are not promptly flushed")
    return parser


def main(argv=None):
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # _Parser.error and --help raise instead of exiting so that
        # programmatic callers (tests, scripts) get a return code.
        return exc.code
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "trace": cmd_trace,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "pmcheck": cmd_pmcheck,
        "report": cmd_report,
        "cache": cmd_cache,
        "compare": cmd_compare,
        "faults": cmd_faults,
        "bench": cmd_bench,
        "guidelines": cmd_guidelines,
        "audit": cmd_audit,
    }
    if args.command == "calibrate":
        try:
            return cmd_calibrate(args)
        except ImportError:
            _calibrate_inline()
            return 0
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
