"""repro — reproduction of "An Empirical Guide to the Behavior and Use of
Scalable Persistent Memory" (Yang et al., FAST 2020).

The package builds, in pure Python, everything the paper's evaluation
needs: a calibrated simulator of the Optane DC PMM memory hierarchy
(:mod:`repro.sim`), the LATTester microbenchmark suite
(:mod:`repro.lattester`), the emulation methodologies the paper debunks
(:mod:`repro.emulation`), the paper's four guidelines as a programmatic
advisor (:mod:`repro.core`), and the application case studies: an LSM
key-value store (:mod:`repro.kvstore`), a NOVA-like file system
(:mod:`repro.fs`), a PMDK-like transactional library
(:mod:`repro.pmdk`) and a concurrent persistent KV engine
(:mod:`repro.pmemkv`).
"""

from repro.sim import Machine, MachineConfig, default_config

__version__ = "1.9.0"

__all__ = ["Machine", "MachineConfig", "default_config", "__version__"]
