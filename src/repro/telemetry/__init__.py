"""repro.telemetry — tracing and metrics for the simulated hierarchy.

The paper explains its results by watching *inside* the DIMM: EWR from
hardware counters, WPQ head-of-line blocking, XPBuffer locality.  This
package gives the simulator the same observability: a zero-overhead-
when-off tracer threaded through the memory hierarchy, a counter
timeline, and exporters for chrome://tracing (Perfetto) and CSV.

Typical use::

    from repro.telemetry import recording, write_chrome_trace

    with recording() as tr:
        result = measure_bandwidth(kind="optane", op="ntstore")
    write_chrome_trace(tr, "trace.json")

or, from the command line::

    python -m repro trace bandwidth --op ntstore --out trace.json

Tracing is a pure observation: with the same seed, results are
byte-identical whether a tracer is installed or not, and two traced
runs produce byte-identical trace files.
"""

from repro.telemetry.events import (
    CAT_AIT, CAT_COUNTER, CAT_DRAM, CAT_FAULT, CAT_MEDIA, CAT_MEM,
    CAT_UPI, CAT_WPQ, CAT_XPBUFFER, CATEGORIES, TraceEvent,
)
from repro.telemetry.export import (
    chrome_trace, load_and_validate, metrics_rows, validate_chrome_trace,
    write_chrome_trace, write_metrics_csv,
)
from repro.telemetry.tracer import (
    DEFAULT_CAPACITY, DEFAULT_COUNTER_INTERVAL_NS, Tracer,
    current_tracer, install, recording, uninstall,
)

__all__ = [
    "CAT_AIT", "CAT_COUNTER", "CAT_DRAM", "CAT_FAULT", "CAT_MEDIA",
    "CAT_MEM", "CAT_UPI", "CAT_WPQ", "CAT_XPBUFFER", "CATEGORIES",
    "DEFAULT_CAPACITY", "DEFAULT_COUNTER_INTERVAL_NS", "TraceEvent",
    "Tracer", "chrome_trace", "current_tracer", "install",
    "load_and_validate", "metrics_rows", "recording", "uninstall",
    "validate_chrome_trace", "write_chrome_trace", "write_metrics_csv",
]
