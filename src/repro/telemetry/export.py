"""Exporters: Chrome ``trace_event`` JSON and a flat metrics CSV.

The Chrome format is the JSON array flavour documented for
chrome://tracing and understood by Perfetto: one object per event with
``name``/``cat``/``ph``/``ts`` (microseconds) plus ``dur`` for complete
events and ``args`` for everything else.  Each distinct tracer track
becomes one named thread row via ``thread_name`` metadata events, so
the viewer shows per-thread WPQ activity above per-DIMM buffer/media
rows.

Everything here is deterministic: keys are sorted, timestamps are
virtual, and ``allow_nan=False`` guarantees the output is strict JSON
(a NaN/Infinity sneaking into event args is a bug, not a formatting
choice).
"""

import csv
import json

from repro.telemetry.events import (
    CATEGORIES, PHASE_COMPLETE, PHASE_COUNTER, PHASE_INSTANT,
)

_NS_PER_US = 1000.0


def _track_ids(events):
    """Assign a stable integer tid to each distinct track (sorted)."""
    tracks = sorted({ev.track for ev in events})
    return {track: tid for tid, track in enumerate(tracks)}


def chrome_trace(tracer, pid=0):
    """Render a tracer's buffer as a Chrome ``trace_event`` dict."""
    events = tracer.events()
    tids = _track_ids(events)
    out = []
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
    for ev in events:
        rec = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": ev.ph,
            "ts": ev.ts / _NS_PER_US,
            "pid": pid,
            "tid": tids[ev.track],
        }
        if ev.ph == PHASE_COMPLETE:
            rec["dur"] = ev.dur / _NS_PER_US
        if ev.ph == PHASE_INSTANT:
            rec["s"] = "t"            # instant scope: thread
        if ev.args:
            rec["args"] = ev.args
        elif ev.ph == PHASE_COUNTER:
            rec["args"] = {}
        out.append(rec)
    return {
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "virtual-ns",
            "dropped_events": tracer.dropped,
            "buffer_capacity": tracer.capacity,
            "complete": tracer.dropped == 0,
        },
        "traceEvents": out,
    }


def write_chrome_trace(tracer, path, pid=0):
    """Write the Chrome trace JSON; returns ``path``.

    A tracer that overflowed its ring buffer silently lost the run's
    *oldest* events, so the trace is a suffix of the truth — warn
    loudly on stderr (the header's ``dropped_events`` carries the same
    count for tools).
    """
    if tracer.dropped:
        import sys
        print("WARNING: trace %s is incomplete: %d event(s) dropped "
              "from a %d-event ring buffer; raise --buffer (or the "
              "recording(capacity=...) argument) to capture the full "
              "run" % (path, tracer.dropped, tracer.capacity),
              file=sys.stderr)
    data = chrome_trace(tracer, pid=pid)
    with open(path, "w") as fh:
        json.dump(data, fh, sort_keys=True, allow_nan=False,
                  separators=(",", ":"))
    return path


#: Phases a valid trace may contain ("M" = metadata).
_VALID_PHASES = (PHASE_COMPLETE, PHASE_INSTANT, PHASE_COUNTER, "M")


def validate_chrome_trace(data):
    """Validate a Chrome trace dict; returns a list of problems.

    An empty list means the trace is structurally valid.  Used by the
    CI ``trace-smoke`` job and the telemetry tests; intentionally
    strict about the parts chrome://tracing/Perfetto require.
    """
    problems = []
    if not isinstance(data, dict):
        return ["top level must be an object, got %s" % type(data).__name__]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append("%s: bad phase %r" % (where, ph))
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append("%s: missing name" % where)
        if ph == "M":
            continue
        if ev.get("cat") not in CATEGORIES:
            problems.append("%s: unknown category %r"
                            % (where, ev.get("cat")))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad ts %r" % (where, ts))
        if ph == PHASE_COMPLETE:
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append("%s: bad dur %r" % (where, dur))
        if ph == PHASE_COUNTER and not isinstance(ev.get("args"), dict):
            problems.append("%s: counter event without args" % where)
    return problems


def load_and_validate(path):
    """Parse ``path`` as strict JSON and validate; returns problems."""
    with open(path) as fh:
        try:
            data = json.load(fh, parse_constant=_reject_constant)
        except ValueError as exc:
            return ["not strict JSON: %s" % exc]
    return validate_chrome_trace(data)


def _reject_constant(name):
    raise ValueError("non-finite constant %r is not strict JSON" % name)


# -- metrics CSV -------------------------------------------------------------

def metrics_rows(tracer):
    """Counter-timeline samples as flat dict rows (ts_ns, track, ...)."""
    rows = []
    for ev in tracer.events():
        if ev.ph != PHASE_COUNTER:
            continue
        row = {"ts_ns": ev.ts, "track": ev.track, "name": ev.name}
        row.update(ev.args or {})
        rows.append(row)
    return rows


def write_metrics_csv(tracer, path):
    """Write the counter timeline as CSV; returns the row count."""
    rows = metrics_rows(tracer)
    lead = ["ts_ns", "track", "name"]
    extra = sorted({k for row in rows for k in row} - set(lead))
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=lead + extra,
                                restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)
