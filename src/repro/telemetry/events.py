"""Typed trace events.

One event is one observation of the simulated memory hierarchy at a
virtual-time instant (or over a virtual-time span).  Events are plain
named tuples so the hot emission path allocates nothing but the tuple
itself; the Chrome ``trace_event`` phase vocabulary is reused directly:

* ``"X"`` — *complete* event: something occupied ``[ts, ts + dur)``
  (a WPQ insertion, a media bank booking, a UPI transfer);
* ``"i"`` — *instant* event: something happened at ``ts`` (an AIT
  wear-levelling migration, an injected fault, a power failure);
* ``"C"`` — *counter* sample: ``args`` maps counter names to values
  at ``ts`` (the periodic per-DIMM counter timeline).

``track`` names the hardware structure the event belongs to ("t3" for
simulated thread 3, "xp.s0.d2" for a DIMM, "upi" for the cross-socket
link); the exporter turns each distinct track into one named row of
the Chrome trace viewer.
"""

from typing import NamedTuple

#: Event categories used by the built-in instrumentation.
CAT_WPQ = "wpq"            # iMC write-pending-queue inserts and stalls
CAT_XPBUFFER = "xpbuffer"  # on-DIMM write-combining buffer activity
CAT_AIT = "ait"            # address-indirection-table housekeeping
CAT_MEDIA = "media"        # 3D XPoint media bank occupancy
CAT_UPI = "upi"            # cross-socket interconnect transfers
CAT_DRAM = "dram"          # DDR4 bank/row activity
CAT_MEM = "mem"            # CPU-side load fills
CAT_FAULT = "fault"        # injected faults (repro.faults)
CAT_SERVE = "serve"        # per-request serving spans (repro.workloads)
CAT_COUNTER = "counter"    # periodic counter-timeline samples
CAT_CHAOS = "chaos"        # mid-serve fault injection and recovery spans
CAT_DEGRADE = "degrade"    # retries, breaker transitions, shed requests
CAT_PMCHECK = "pmcheck"    # persistency-order violations (repro.pmcheck)

CATEGORIES = (
    CAT_WPQ, CAT_XPBUFFER, CAT_AIT, CAT_MEDIA, CAT_UPI, CAT_DRAM,
    CAT_MEM, CAT_FAULT, CAT_SERVE, CAT_COUNTER, CAT_CHAOS, CAT_DEGRADE,
    CAT_PMCHECK,
)

#: Chrome trace_event phases emitted by the tracer.
PHASE_COMPLETE = "X"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"


class TraceEvent(NamedTuple):
    """One observation: ``(ts, cat, name, ph, dur, track, args)``.

    ``ts`` and ``dur`` are in simulated nanoseconds.  ``args`` is a
    small dict of JSON-able context (or None).
    """

    ts: float
    cat: str
    name: str
    ph: str
    dur: float
    track: str
    args: dict
