"""The tracer: a bounded ring buffer of typed events.

Design constraints, in order:

1. **Zero overhead when off.**  Components never consult a global
   flag on the hot path; they hold a ``tracer`` reference that is
   ``None`` unless tracing was requested, so the disabled cost is one
   attribute load and an ``is not None`` test.
2. **Determinism.**  Events are timestamped in *virtual* nanoseconds
   only — never wall clock — so the same seed produces a byte-identical
   trace, and tracing cannot perturb simulated results (emission is a
   pure observation).
3. **Bounded memory.**  The ring buffer keeps the newest ``capacity``
   events; older ones are dropped and counted in :attr:`Tracer.dropped`
   so a truncated trace is never mistaken for a complete one.

The module-level *current tracer* is how tracing reaches experiments
that build their own :class:`~repro.sim.platform.Machine` internally:
``recording()`` installs a tracer, every Machine constructed inside the
``with`` block picks it up, and the block yields the tracer for export.
"""

from collections import deque
from contextlib import contextmanager

from repro.telemetry.events import (
    PHASE_COMPLETE, PHASE_COUNTER, PHASE_INSTANT, TraceEvent,
)

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 1 << 16

#: Default virtual-time interval between counter-timeline samples.
DEFAULT_COUNTER_INTERVAL_NS = 5_000.0


class Tracer:
    """Collects :class:`TraceEvent` observations into a ring buffer."""

    def __init__(self, capacity=DEFAULT_CAPACITY,
                 counter_interval_ns=DEFAULT_COUNTER_INTERVAL_NS):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._events = deque(maxlen=capacity)
        self.dropped = 0
        self.last_ts = 0.0
        self.counter_interval_ns = counter_interval_ns
        self._samplers = []
        self._next_sample_ns = 0.0

    # -- emission (hot path) ----------------------------------------------

    def complete(self, ts, cat, name, dur, track="sim", args=None):
        """A span: something occupied ``[ts, ts + dur)``."""
        self._add(TraceEvent(ts, cat, name, PHASE_COMPLETE, dur,
                             track, args))

    def instant(self, ts, cat, name, track="sim", args=None):
        """A point observation at ``ts``."""
        self._add(TraceEvent(ts, cat, name, PHASE_INSTANT, 0.0,
                             track, args))

    def counter(self, ts, name, values, track="counters"):
        """A counter sample: ``values`` maps counter names to numbers."""
        self._append(TraceEvent(ts, "counter", name, PHASE_COUNTER,
                                0.0, track, dict(values)))

    def _add(self, event):
        self._append(event)
        if self._samplers and event.ts >= self._next_sample_ns:
            self._sample(event.ts)

    def _append(self, event):
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        if event.ts > self.last_ts:
            self.last_ts = event.ts

    # -- counter timeline --------------------------------------------------

    def attach_sampler(self, sampler):
        """Register a callable returning ``[(track, name, values), ...]``.

        The tracer invokes the sampler each time virtual time crosses
        the next ``counter_interval_ns`` boundary, turning the returned
        values into ``"C"`` events — the counter timeline.

        Attachment is latest-wins: a new machine replaces the previous
        machine's sampler (virtual clocks restart at zero per machine,
        so samples from a finished run would never fire again anyway).
        """
        if self.counter_interval_ns is None:
            return
        self._samplers = [sampler]
        self._next_sample_ns = 0.0

    def _sample(self, now):
        # Advance the deadline first: samplers may emit through us.
        interval = self.counter_interval_ns
        self._next_sample_ns = now + interval
        for sampler in self._samplers:
            for track, name, values in sampler():
                self.counter(now, name, values, track=track)

    def sample_now(self, now=None):
        """Force one counter-timeline sample (e.g. at end of run)."""
        if self._samplers:
            self._sample(self.last_ts if now is None else now)

    # -- inspection --------------------------------------------------------

    def events(self):
        """The buffered events, oldest first."""
        return list(self._events)

    def __len__(self):
        return len(self._events)

    def category_counts(self):
        """``{category: event count}`` over the buffered events."""
        counts = {}
        for ev in self._events:
            counts[ev.cat] = counts.get(ev.cat, 0) + 1
        return counts

    def clear(self):
        self._events.clear()
        self.dropped = 0
        self.last_ts = 0.0
        self._next_sample_ns = 0.0
        self._samplers = []


#: The installed tracer (None = tracing off everywhere).
_current = None


def current_tracer():
    """The tracer new Machines should observe into (None when off)."""
    return _current


def install(tracer):
    """Make ``tracer`` the current tracer; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


def uninstall():
    """Turn tracing off; returns the tracer that was installed."""
    return install(None)


@contextmanager
def recording(tracer=None, capacity=DEFAULT_CAPACITY,
              counter_interval_ns=DEFAULT_COUNTER_INTERVAL_NS):
    """Context manager: install a tracer for the duration of a block.

    ``with recording() as tr:`` builds a fresh :class:`Tracer`; pass an
    existing one to reuse it.  The previous tracer (usually None) is
    restored on exit, even on error.
    """
    if tracer is None:
        tracer = Tracer(capacity=capacity,
                        counter_interval_ns=counter_interval_ns)
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)
