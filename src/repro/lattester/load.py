"""Latency under load (Figure 6).

A fixed thread pool performs cache-line accesses with a configurable
idle delay between consecutive accesses; sweeping the delay from large
to zero traces out the classic latency/bandwidth curve with its
queuing "wall".  3D XPoint hits the wall much earlier than DRAM and is
far more pattern-sensitive.
"""

import statistics
from dataclasses import dataclass

from repro._units import CACHELINE, KIB, gb_per_s
from repro.lattester.access import (
    address_stream, auto_yield_every, ntstore_kernel, read_kernel,
    staggered_base,
)
from repro.sim import Machine, run_workloads


@dataclass
class LoadPoint:
    """One point of the latency-vs-bandwidth curve."""

    delay_ns: float
    bandwidth_gbps: float
    latency_ns: float


def loaded_latency(kind="optane", op="read", threads=16, pattern="seq",
                   delay_ns=0.0, per_thread=64 * KIB, machine=None,
                   span=8 * 1024 * KIB):
    """Measure (bandwidth, mean latency) at one offered-load level.

    ``per_thread`` is the traffic volume; random addresses are drawn
    from a private ``span``-sized region so repeats (cache hits) do not
    dilute the measured latency.
    """
    m = machine if machine is not None else Machine()
    ns = m.namespace(kind)
    ts = [t.collect_latencies() for t in m.threads(threads)]
    pairs = []
    batch = auto_yield_every(threads)
    for t in ts:
        region = span if pattern == "rand" else per_thread
        base = staggered_base(t.tid, region)
        limit = per_thread // CACHELINE if pattern == "rand" else None
        addrs = address_stream(base, region, CACHELINE, pattern,
                               seed=31 + t.tid, limit=limit)
        if op == "read":
            gen = read_kernel(ns, t, addrs, CACHELINE, delay_ns=delay_ns,
                              yield_every=batch)
        elif op == "ntstore":
            gen = ntstore_kernel(ns, t, addrs, CACHELINE, delay_ns=delay_ns,
                                 yield_every=batch)
        else:
            raise ValueError("op must be 'read' or 'ntstore'")
        pairs.append((t, gen))
    elapsed = run_workloads(pairs)
    lats = []
    for t in ts:
        if t.latencies:
            lats.extend(t.latencies)
    return LoadPoint(
        delay_ns=delay_ns,
        bandwidth_gbps=gb_per_s(per_thread * threads, elapsed),
        latency_ns=statistics.fmean(lats),
    )


def latency_bandwidth_curve(kind="optane", op="read", threads=16,
                            pattern="seq",
                            delays=(0, 50, 100, 200, 400, 800, 1600, 3200),
                            per_thread=64 * KIB):
    """Figure 6: the whole curve, densest load first."""
    return [
        loaded_latency(kind, op, threads, pattern, delay_ns=d,
                       per_thread=per_thread)
        for d in delays
    ]
