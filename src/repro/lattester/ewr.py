"""Effective Write Ratio studies (Figure 9, Section 5.1).

EWR = bytes the iMC issued / bytes the media wrote.  ``ewr_experiment``
runs one store workload against a single DIMM and reports both EWR and
device bandwidth; ``figure9_sweep`` reproduces the scatter of Figure 9
by sweeping access size, thread count and power budget for each store
instruction.
"""

from dataclasses import dataclass

from repro._units import KIB, gb_per_s
from repro.lattester.access import address_stream, make_kernel, staggered_base
from repro.sim import (
    Machine, aggregate, effective_write_ratio, is_ewr_defined,
    run_workloads,
)


@dataclass
class EWRPoint:
    """One experiment of the EWR/bandwidth scatter."""

    op: str
    access: int
    threads: int
    pattern: str
    power_budget: float
    ewr: float
    device_bandwidth_gbps: float


def ewr_experiment(op="ntstore", access=256, threads=1, pattern="rand",
                   per_thread=256 * KIB, power_budget=1.0, machine=None):
    """Run one store workload on Optane-NI; returns an :class:`EWRPoint`.

    ``device_bandwidth`` counts bytes the application asked to write
    over elapsed time (what Figure 9 calls effective device bandwidth).
    """
    if machine is None:
        m = Machine()
    else:
        m = machine
    if power_budget != 1.0:
        m.config.media.power_budget = power_budget
    ns = m.namespace("optane-ni")
    ts = m.threads(threads)
    snaps = ns.counter_snapshots()
    pairs = []
    for t in ts:
        base = staggered_base(t.tid, per_thread)
        addrs = address_stream(base, per_thread, access, pattern,
                               seed=55 + t.tid)
        pairs.append((t, make_kernel(op, ns, t, addrs, access)))
    elapsed = run_workloads(pairs)
    for dimm in ns.dimms:
        dimm.drain(elapsed)
    delta = aggregate(ns.counter_deltas(snaps))
    return EWRPoint(
        op=op, access=access, threads=threads, pattern=pattern,
        power_budget=power_budget,
        ewr=effective_write_ratio(delta),
        device_bandwidth_gbps=gb_per_s(per_thread * threads, elapsed),
    )


def figure9_sweep(ops=("ntstore", "store", "clwb"),
                  accesses=(64, 128, 256, 1024, 4096),
                  thread_counts=(1, 2, 4, 8),
                  power_budgets=(1.0, 0.7),
                  per_thread=128 * KIB):
    """The systematic sweep behind Figure 9's three scatter plots."""
    points = {op: [] for op in ops}
    for op in ops:
        for access in accesses:
            for threads in thread_counts:
                for budget in power_budgets:
                    points[op].append(ewr_experiment(
                        op=op, access=access, threads=threads,
                        per_thread=per_thread, power_budget=budget))
    return points


def correlation(points):
    """Least-squares slope and r^2 of bandwidth against EWR."""
    xs = [p.ewr for p in points if is_ewr_defined(p.ewr)]
    ys = [p.device_bandwidth_gbps
          for p in points if is_ewr_defined(p.ewr)]
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two finite points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 0.0, 0.0
    slope = sxy / sxx
    r2 = (sxy * sxy) / (sxx * syy)
    return slope, r2


__all__ = ["EWRPoint", "correlation", "ewr_experiment", "figure9_sweep"]
