"""Shared order statistics for the latency studies.

One percentile implementation for all of ``lattester`` (Figure 3's
tails, report tables, ad-hoc analyses), using the **nearest-rank**
definition: the p-th percentile of n sorted samples is the element at
rank ``ceil(n * p)`` (1-based), i.e. the smallest sample such that at
least ``p`` of the distribution is at or below it.

The previous ad-hoc version indexed ``int(n * p)``, which is a
0-based *upper* neighbour: for even n it returned the element *above*
the median (p50 of ``[1, 2, 3, 4]`` came back 3, not 2), and for
extreme percentiles it aliased the maximum one rank early (p99.999 of
100 000 samples returned ``max`` instead of the second-largest).
"""

import math


def percentile(sorted_samples, p):
    """Nearest-rank percentile of an ascending-sorted sequence.

    ``p`` is a fraction in ``[0, 1]``.  ``p=0`` returns the minimum,
    ``p=1`` the maximum; ranks are clamped to the valid range so tiny
    samples never index out of bounds.
    """
    n = len(sorted_samples)
    if n == 0:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= p <= 1.0:
        raise ValueError("percentile fraction must be in [0, 1], got %r"
                         % (p,))
    rank = math.ceil(n * p)          # 1-based nearest rank
    if rank < 1:
        rank = 1
    elif rank > n:
        rank = n
    return sorted_samples[rank - 1]


def percentiles(samples, fractions):
    """Sort once, then read several percentiles.

    Returns a list aligned with ``fractions``.  ``samples`` need not be
    pre-sorted (unlike :func:`percentile`, which trusts its input).
    """
    ordered = sorted(samples)
    return [percentile(ordered, p) for p in fractions]


__all__ = ["percentile", "percentiles"]
