"""Result formatting: ASCII tables and series for experiment output.

LATTester's results are plain dataclasses; this module renders them
the way the paper's tables/figures organise them, for the CLI
(``python -m repro``) and the benchmark reports.
"""


def format_value(value, digits=2):
    """Human-friendly scalar formatting."""
    if isinstance(value, float):
        if value != value:                    # NaN
            return "nan"
        if abs(value) >= 1000:
            return "%.0f" % value
        return ("%." + str(digits) + "f") % value
    return str(value)


def table(headers, rows, title=None):
    """Render an ASCII table; every cell is formatted with format_value."""
    cells = [[format_value(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(series, x_label="x", unit="", title=None):
    """Render ``{curve_name: [(x, y), ...]}`` as one aligned table."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            lookup = dict(series[name])
            row.append(lookup.get(x, ""))
        rows.append(row)
    text = table(headers, rows, title=title)
    if unit:
        text += "\n(values in %s)" % unit
    return text


def latency_table(results, title="Latency"):
    """Render {label: LatencyResult} as mean +- stdev rows."""
    rows = [
        [label, r.mean_ns, r.stdev_ns, r.samples]
        for label, r in results.items()
    ]
    return table(["experiment", "mean ns", "stdev", "n"], rows,
                 title=title)


def bandwidth_table(results, title="Bandwidth"):
    """Render a list of BandwidthResult as a table."""
    from repro.sim.counters import is_ewr_defined
    rows = [
        ["%s/%dB x%d" % (r.pattern, r.access, r.threads), r.op,
         r.gbps, r.ewr if is_ewr_defined(r.ewr) else "-"]
        for r in results
    ]
    return table(["workload", "op", "GB/s", "EWR"], rows, title=title)


def comparison(label, measured, paper, unit=""):
    """One paper-vs-measured line, benchmark-report style."""
    return "%-40s measured %10s   paper %10s %s" % (
        label, format_value(measured), format_value(paper), unit)
