"""Bandwidth measurement (Figures 4, 5, 13, 14, 16, 18).

``measure_bandwidth`` runs N concurrent kernels over private regions
and reports aggregate GB/s plus the EWR observed on the namespace's
DIMMs during the run.
"""

from dataclasses import dataclass

from repro._units import KIB, gb_per_s
from repro.lattester.access import (
    address_stream, auto_yield_every, make_kernel, staggered_base,
    stream_signature,
)
from repro.sim import Machine, aggregate, effective_write_ratio, run_workloads
from repro.sim import engine as _engine
from repro.telemetry.tracer import current_tracer

#: Within-process memo of experiment points that are provably the same
#: simulation: a fresh machine plus an identical per-line instruction
#: stream yields an identical result, so e.g. the sequential rows of a
#: sweep — whose expanded line sequence does not depend on the access
#: size — are computed once.  Only the four measured numbers are
#: stored; the echo fields (op/access/pattern) always come from the
#: caller's request.  Disabled alongside the other fast paths
#: (``REPRO_FASTPATH=0``) and whenever a tracer is active, a machine is
#: supplied, or non-default kernel arguments are in play.
_POINT_MEMO = {}


def clear_point_memo():
    """Drop all memoized points (tests and long-lived processes)."""
    _POINT_MEMO.clear()


@dataclass
class BandwidthResult:
    """Aggregate outcome of one bandwidth experiment."""

    gbps: float
    elapsed_ns: float
    total_bytes: int
    ewr: float
    threads: int
    op: str
    access: int
    pattern: str

    def __repr__(self):
        return ("BandwidthResult(%s %s/%dB x%d: %.2f GB/s, EWR %.2f)"
                % (self.op, self.pattern, self.access, self.threads,
                   self.gbps, self.ewr))


def measure_bandwidth(kind="optane", op="read", threads=4, access=256,
                      pattern="seq", per_thread=256 * KIB, machine=None,
                      socket=0, ns_socket=None, drain=True, stride=None,
                      **kernel_kwargs):
    """Run one bandwidth experiment on a fresh (or given) machine.

    ``kind`` selects the namespace ("optane", "optane-ni", "dram", ...);
    ``op`` is 'read', 'ntstore', 'clwb' or 'store'; threads are pinned
    to ``socket`` while the namespace may live elsewhere (NUMA tests
    pass ``kind="optane-remote"``).
    """
    kernel_kwargs.setdefault("yield_every", auto_yield_every(threads))
    memo_key = None
    if (machine is None and _engine.FASTPATH_ENABLED
            and current_tracer() is None
            and not (kernel_kwargs.keys() - {"yield_every"})):
        # Fresh machine, no tracer, default kernel shape: the result is
        # a pure function of the expanded per-line streams and the
        # device/op selection, so an earlier identical point can be
        # replayed (see ``stream_signature`` for the stream proof).
        memo_key = (
            kind, op, threads, socket, ns_socket, drain, per_thread,
            kernel_kwargs["yield_every"],
            tuple(stream_signature(
                staggered_base(tid, per_thread), per_thread, access,
                pattern, seed=77 + tid, stride=stride)
                for tid in range(threads)))
        hit = _POINT_MEMO.get(memo_key)
        if hit is not None:
            gbps, elapsed, total, ewr = hit
            return BandwidthResult(
                gbps=gbps, elapsed_ns=elapsed, total_bytes=total,
                ewr=ewr, threads=threads, op=op, access=access,
                pattern=pattern)
    m = machine if machine is not None else Machine()
    ns = m.namespace(kind) if ns_socket is None else \
        m.namespace(kind, socket=ns_socket)
    ts = m.threads(threads, socket=socket)
    snaps = ns.counter_snapshots()
    pairs = []
    for t in ts:
        base = staggered_base(t.tid, per_thread)
        addrs = address_stream(
            base, per_thread, access, pattern, seed=77 + t.tid,
            stride=stride)
        pairs.append((t, make_kernel(op, ns, t, addrs, access,
                                     **kernel_kwargs)))
    elapsed = run_workloads(pairs)
    if drain:
        for dimm in ns.dimms:
            dimm.drain(elapsed)
    deltas = ns.counter_deltas(snaps)
    total = per_thread * threads
    gbps = gb_per_s(total, elapsed)
    ewr = effective_write_ratio(aggregate(deltas))
    if memo_key is not None:
        _POINT_MEMO[memo_key] = (gbps, elapsed, total, ewr)
    return BandwidthResult(
        gbps=gbps,
        elapsed_ns=elapsed,
        total_bytes=total,
        ewr=ewr,
        threads=threads,
        op=op,
        access=access,
        pattern=pattern,
    )


def bandwidth_vs_threads(kind, ops, thread_counts, access=256,
                         pattern="seq", per_thread=256 * KIB):
    """Figure 4: one curve per op, bandwidth as thread count grows."""
    curves = {}
    for op in ops:
        curves[op] = [
            measure_bandwidth(kind=kind, op=op, threads=n, access=access,
                              pattern=pattern, per_thread=per_thread)
            for n in thread_counts
        ]
    return curves


def bandwidth_vs_access_size(kind, ops_threads, access_sizes,
                             pattern="rand", per_thread=256 * KIB):
    """Figure 5: one curve per (op, best-thread-count) pair vs access size."""
    curves = {}
    for op, nthreads in ops_threads.items():
        pts = []
        for access in access_sizes:
            span = max(per_thread, access * 8)
            pts.append(measure_bandwidth(
                kind=kind, op=op, threads=nthreads, access=access,
                pattern=pattern, per_thread=span))
        curves[op] = pts
    return curves
