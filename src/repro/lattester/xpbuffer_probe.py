"""XPBuffer capacity inference (Figure 10).

The paper's probe: allocate N contiguous XPLines; each round, write the
*first half* (128 B) of every line in turn, then the *second half* of
every line.  While N is at or below the buffer's 64-line capacity the
second-half writes merge with the still-buffered first halves and
write amplification stays ~1; beyond it, every half-line is evicted
partial, forcing read-modify-writes, and amplification jumps.
"""

from dataclasses import dataclass

from repro._units import CACHELINE, XPLINE
from repro.sim import EWR_UNDEFINED, Machine, aggregate, write_amplification


@dataclass
class ProbePoint:
    """Write amplification measured for one region size."""

    region_bytes: int
    xplines: int
    write_amplification: float
    ewr: float


def probe_region(xplines, rounds=4, kind="optane-ni", machine=None):
    """Run the half-line/half-line rounds over ``xplines`` lines."""
    m = machine if machine is not None else Machine()
    ns = m.namespace(kind)
    t = m.thread()
    half = XPLINE // 2
    # Warm-up round so cold-allocation effects don't skew the ratio.
    for phase in (0, half):
        for i in range(xplines):
            base = i * XPLINE + phase
            for off in range(0, half, CACHELINE):
                ns.ntstore(t, base + off)
    # No final drain: over R rounds the flush-on-overwrite traffic of
    # round k+1 accounts for round k's data, so the steady-state ratio
    # is exact (the warm-up round's flushes stand in for the last
    # round's still-buffered lines).
    snaps = ns.counter_snapshots()
    for _ in range(rounds):
        for phase in (0, half):
            for i in range(xplines):
                base = i * XPLINE + phase
                for off in range(0, half, CACHELINE):
                    ns.ntstore(t, base + off)
        t.sfence()
    delta = aggregate(ns.counter_deltas(snaps))
    wa = write_amplification(delta)
    return ProbePoint(
        region_bytes=xplines * XPLINE,
        xplines=xplines,
        write_amplification=wa,
        ewr=(1.0 / wa) if wa else EWR_UNDEFINED,
    )


def figure10(region_sizes=(4, 8, 16, 32, 48, 64, 80, 96, 128, 256, 1024),
             rounds=4):
    """Write amplification as the probed region grows (in XPLines)."""
    return [probe_region(n, rounds=rounds) for n in region_sizes]


def inferred_buffer_lines(points, threshold=1.25):
    """The largest region that still combines (WA below threshold)."""
    best = 0
    for p in points:
        if p.write_amplification <= threshold and p.xplines > best:
            best = p.xplines
    return best
