"""Access kernels: the inner loops every LATTester experiment shares.

A *kernel* is a generator that drives one simulated thread through a
stream of memory accesses, yielding to the scheduler after every 64 B
beat so that cross-thread interleaving at the iMC and DIMM is modelled
at the same granularity as the hardware's.

``yield_every`` batches that: a kernel may process N cache lines per
scheduler interaction through the namespace run entry points
(``load_run`` / ``store_run`` / ``ntstore_run``), which book exactly
the same per-line events in the same order — only the generator/heap
overhead is amortized.  Batching is therefore byte-identical for a
single thread; multi-thread runs must keep ``yield_every=1`` so the
scheduler can interleave beats (``auto_yield_every`` encodes that
rule).

Thread placement matters on this platform: ``staggered_base`` hands
each thread a stripe-aligned private region whose first block lands on
DIMM ``tid % 6``, which is how the paper's peak-bandwidth numbers
spread load evenly across the interleave set.
"""

import random

from repro._units import CACHELINE, KIB, align_up
from repro.sim import engine as _engine

#: Default batch granularity (in cache lines) for single-thread runs.
BATCH_LINES = 64


def auto_yield_every(threads):
    """The largest semantics-preserving batch size for a run.

    A lone thread has nobody to interleave with, so batching cannot
    change any booking order; concurrent threads must yield per beat or
    contention modelling would coarsen.  Returns 1 when the fast path
    is globally disabled (``REPRO_FASTPATH=0``).
    """
    if threads == 1 and _engine.FASTPATH_ENABLED:
        return BATCH_LINES
    return 1


def staggered_base(tid, span, block_bytes=4 * KIB, dimms=6):
    """A private, stripe-aligned region base for thread ``tid``.

    The base is shifted by ``(tid % dimms)`` interleave blocks so that
    concurrent sequential streams start on distinct DIMMs.
    """
    stripe = block_bytes * dimms
    region = align_up(span + stripe, stripe)
    return tid * region + (tid % dimms) * block_bytes


def address_stream(base, span, access, pattern, seed=0, stride=None,
                   limit=None):
    """Access addresses of the given size/pattern inside a region.

    Patterns: ``"seq"`` (contiguous), ``"rand"`` (uniform over the
    region) or ``"stride"`` (fixed-stride walk — the third axis of the
    paper's systematic sweep; pass ``stride`` in bytes, default 4x the
    access size).

    Returns a precomputed list so the RNG call stays out of the
    simulation inner loop; ``limit`` truncates to the first ``limit``
    addresses (drawing exactly that many variates for ``"rand"``, so a
    limited stream is a prefix of the unlimited one).
    """
    count = span // access
    if limit is not None and limit < count:
        count = limit
    if pattern == "seq":
        return [base + i * access for i in range(count)]
    if pattern == "rand":
        rng = random.Random(seed)
        randrange = rng.randrange
        slots = span // access
        return [base + randrange(slots) * access for _ in range(count)]
    if pattern == "stride":
        step = stride if stride is not None else 4 * access
        slots = max(1, span // step)
        return [base + (i % slots) * step for i in range(count)]
    raise ValueError("unknown pattern: %r" % (pattern,))


def stream_signature(base, span, access, pattern, seed=0, stride=None):
    """An exact determinant of a stream's expanded cache-line sequence.

    Two parameter sets with equal signatures produce *identical*
    per-line address sequences once the kernels expand each access
    into its ``range(0, access, CACHELINE)`` lines:

    * ``"seq"`` with line-aligned ``access`` expands to the contiguous
      lines of ``[base, base + (span // access) * access)`` — the
      access size cancels out, so it is *not* part of the signature
      (this is why a sweep's sequential rows repeat across the access
      axis: they are the same simulation).
    * every other case (random, strided, or unaligned access) keeps
      the full parameter tuple, since any of them changes the stream.

    Used to memoize whole experiment points that are provably the same
    simulation; see ``measure_bandwidth``.
    """
    if pattern == "seq" and access >= CACHELINE and \
            access % CACHELINE == 0:
        return ("seq", base, span // access * access)
    return (pattern, base, span, access, seed, stride)


def _run_stream(addrs, access, yield_every):
    """Chunk an address stream into contiguous ``(start, n_lines)`` runs.

    Large accesses are split into runs of at most ``yield_every``
    lines; *contiguous* consecutive accesses (a sequential stream of
    small accesses) are merged up to the same cap.  Line order is
    exactly the order the per-line loops would issue, so the run
    boundaries are free to move.
    """
    per_access = len(range(0, access, CACHELINE))
    run_start = 0
    run_lines = 0
    for addr in addrs:
        if run_lines and addr == run_start + run_lines * CACHELINE:
            run_lines += per_access
        else:
            if run_lines:
                yield run_start, run_lines
            run_start = addr
            run_lines = per_access
        while run_lines >= yield_every:
            yield run_start, yield_every
            run_start += yield_every * CACHELINE
            run_lines -= yield_every
    if run_lines:
        yield run_start, run_lines


def read_kernel(ns, thread, addrs, access, delay_ns=0.0, yield_every=1):
    """Issue loads; yields after every ``yield_every`` cache lines."""
    if yield_every > 1:
        load_run = ns.load_run
        if not delay_ns:
            for start, lines in _run_stream(addrs, access, yield_every):
                load_run(thread, start, lines)
                yield
            return
        for addr in addrs:
            for start, lines in _run_stream((addr,), access, yield_every):
                load_run(thread, start, lines)
                yield
            thread.sleep(delay_ns)
        return
    load_line = ns._load_line                # aligned single-line loads
    if not delay_ns:
        # No per-access bookkeeping: issue the precomputed line list in
        # one flat loop (same lines, same order, one yield per line).
        for line in [a + off for a in addrs
                     for off in range(0, access, CACHELINE)]:
            load_line(thread, line)
            yield
        return
    for addr in addrs:
        for off in range(0, access, CACHELINE):
            load_line(thread, addr + off)
            yield
        if delay_ns:
            thread.sleep(delay_ns)


def ntstore_kernel(ns, thread, addrs, access, fence_every=None,
                   delay_ns=0.0, yield_every=1):
    """Issue non-temporal stores; yields after every ``yield_every`` lines.

    ``fence_every`` inserts an sfence after that many bytes (None means
    one fence at the very end, as a bandwidth benchmark would).  Runs
    are split at fence boundaries so the fence lands between the same
    two lines as in the per-line loop.
    """
    if yield_every > 1:
        ntstore_run = ns.ntstore_run
        since_fence = 0
        groups = [addrs] if not delay_ns else ((a,) for a in addrs)
        for group in groups:
            for start, lines in _run_stream(group, access, yield_every):
                while lines:
                    run = lines
                    if fence_every:
                        until = -(-(fence_every - since_fence) // CACHELINE)
                        if run > until:
                            run = until
                    ntstore_run(thread, start, run)
                    start += run * CACHELINE
                    lines -= run
                    since_fence += run * CACHELINE
                    if fence_every and since_fence >= fence_every:
                        thread.sfence()
                        since_fence = 0
                yield
            if delay_ns:
                thread.sleep(delay_ns)
        thread.sfence()
        return
    nt_line = ns._ntstore_line               # aligned single-line stores
    if not fence_every and not delay_ns:
        # Flat variant of the loop below for the common bandwidth shape
        # (one fence at the very end): identical line order and yields.
        for line in [a + off for a in addrs
                     for off in range(0, access, CACHELINE)]:
            nt_line(thread, line)
            yield
        thread.sfence()
        return
    since_fence = 0
    for addr in addrs:
        for off in range(0, access, CACHELINE):
            nt_line(thread, addr + off)
            since_fence += CACHELINE
            if fence_every and since_fence >= fence_every:
                thread.sfence()
                since_fence = 0
            yield
        if delay_ns:
            thread.sleep(delay_ns)
    thread.sfence()


def store_clwb_kernel(ns, thread, addrs, access, flush=True,
                      flush_at_end=False, fence_every=None, delay_ns=0.0,
                      yield_every=1):
    """Cached stores, optionally followed by per-line clwb.

    ``flush=False`` gives the "store only" curve (durability left to
    natural cache evictions); ``flush_at_end`` issues the clwbs after
    the whole access instead of after each line (Figure 14's
    ``clwb(write size)`` variant).
    """
    if yield_every > 1:
        store_run = ns.store_run
        per_line_clwb = flush and not flush_at_end
        since_fence = 0
        per_access = flush_at_end or bool(delay_ns)
        groups = [addrs] if not per_access else ((a,) for a in addrs)
        for group in groups:
            for start, lines in _run_stream(group, access, yield_every):
                while lines:
                    run = lines
                    if fence_every:
                        until = -(-(fence_every - since_fence) // CACHELINE)
                        if run > until:
                            run = until
                    store_run(thread, start, run, clwb=per_line_clwb)
                    start += run * CACHELINE
                    lines -= run
                    since_fence += run * CACHELINE
                    if fence_every and since_fence >= fence_every:
                        thread.sfence()
                        since_fence = 0
                yield
            if flush and flush_at_end:
                for start, lines in _run_stream(group, access, yield_every):
                    ns.clwb(thread, start, lines * CACHELINE)
                    yield
            if delay_ns:
                thread.sleep(delay_ns)
        if flush:
            thread.sfence()
        return
    store_line = ns._store_line              # aligned single-line stores
    clwb_line = ns._clwb_line
    store_clwb = ns._store_clwb_line
    per_line_clwb = flush and not flush_at_end
    if not fence_every and not delay_ns and not (flush and flush_at_end):
        # Flat variant for the common bandwidth shapes (store+clwb per
        # line, or store-only): identical line order and yields.
        line_op = store_clwb if per_line_clwb else store_line
        for line in [a + off for a in addrs
                     for off in range(0, access, CACHELINE)]:
            line_op(thread, line)
            yield
        if flush:
            thread.sfence()
        return
    since_fence = 0
    for addr in addrs:
        for off in range(0, access, CACHELINE):
            line = addr + off
            if per_line_clwb:
                store_clwb(thread, line)
            else:
                store_line(thread, line)
            since_fence += CACHELINE
            if fence_every and since_fence >= fence_every:
                thread.sfence()
                since_fence = 0
            yield
        if flush and flush_at_end:
            for off in range(0, access, CACHELINE):
                clwb_line(thread, addr + off)
                yield
        if delay_ns:
            thread.sleep(delay_ns)
    if flush:
        thread.sfence()


def make_kernel(op, ns, thread, addrs, access, **kwargs):
    """Kernel factory: ``op`` is 'read', 'ntstore', 'clwb' or 'store'."""
    if op == "read":
        return read_kernel(ns, thread, addrs, access, **kwargs)
    if op == "ntstore":
        return ntstore_kernel(ns, thread, addrs, access, **kwargs)
    if op == "clwb":
        return store_clwb_kernel(ns, thread, addrs, access, **kwargs)
    if op == "store":
        return store_clwb_kernel(
            ns, thread, addrs, access, flush=False, **kwargs)
    raise ValueError("unknown op: %r" % (op,))
