"""Access kernels: the inner loops every LATTester experiment shares.

A *kernel* is a generator that drives one simulated thread through a
stream of memory accesses, yielding to the scheduler after every 64 B
beat so that cross-thread interleaving at the iMC and DIMM is modelled
at the same granularity as the hardware's.

Thread placement matters on this platform: ``staggered_base`` hands
each thread a stripe-aligned private region whose first block lands on
DIMM ``tid % 6``, which is how the paper's peak-bandwidth numbers
spread load evenly across the interleave set.
"""

import random

from repro._units import CACHELINE, KIB, align_up


def staggered_base(tid, span, block_bytes=4 * KIB, dimms=6):
    """A private, stripe-aligned region base for thread ``tid``.

    The base is shifted by ``(tid % dimms)`` interleave blocks so that
    concurrent sequential streams start on distinct DIMMs.
    """
    stripe = block_bytes * dimms
    region = align_up(span + stripe, stripe)
    return tid * region + (tid % dimms) * block_bytes


def address_stream(base, span, access, pattern, seed=0, stride=None):
    """Yield access addresses of the given size/pattern inside a region.

    Patterns: ``"seq"`` (contiguous), ``"rand"`` (uniform over the
    region) or ``"stride"`` (fixed-stride walk — the third axis of the
    paper's systematic sweep; pass ``stride`` in bytes, default 4x the
    access size).
    """
    count = span // access
    if pattern == "seq":
        for i in range(count):
            yield base + i * access
    elif pattern == "rand":
        rng = random.Random(seed)
        slots = span // access
        for _ in range(count):
            yield base + rng.randrange(slots) * access
    elif pattern == "stride":
        step = stride if stride is not None else 4 * access
        slots = max(1, span // step)
        for i in range(count):
            yield base + (i % slots) * step
    else:
        raise ValueError("unknown pattern: %r" % (pattern,))


def read_kernel(ns, thread, addrs, access, delay_ns=0.0):
    """Issue loads; yields after every cache line."""
    for addr in addrs:
        for off in range(0, access, CACHELINE):
            ns.load(thread, addr + off)
            yield
        if delay_ns:
            thread.sleep(delay_ns)


def ntstore_kernel(ns, thread, addrs, access, fence_every=None,
                   delay_ns=0.0):
    """Issue non-temporal stores; yields after every cache line.

    ``fence_every`` inserts an sfence after that many bytes (None means
    one fence at the very end, as a bandwidth benchmark would).
    """
    since_fence = 0
    for addr in addrs:
        for off in range(0, access, CACHELINE):
            ns.ntstore(thread, addr + off)
            since_fence += CACHELINE
            if fence_every and since_fence >= fence_every:
                thread.sfence()
                since_fence = 0
            yield
        if delay_ns:
            thread.sleep(delay_ns)
    thread.sfence()


def store_clwb_kernel(ns, thread, addrs, access, flush=True,
                      flush_at_end=False, fence_every=None, delay_ns=0.0):
    """Cached stores, optionally followed by per-line clwb.

    ``flush=False`` gives the "store only" curve (durability left to
    natural cache evictions); ``flush_at_end`` issues the clwbs after
    the whole access instead of after each line (Figure 14's
    ``clwb(write size)`` variant).
    """
    since_fence = 0
    for addr in addrs:
        for off in range(0, access, CACHELINE):
            line = addr + off
            ns.store(thread, line)
            if flush and not flush_at_end:
                ns.clwb(thread, line)
            since_fence += CACHELINE
            if fence_every and since_fence >= fence_every:
                thread.sfence()
                since_fence = 0
            yield
        if flush and flush_at_end:
            for off in range(0, access, CACHELINE):
                ns.clwb(thread, addr + off)
                yield
        if delay_ns:
            thread.sleep(delay_ns)
    if flush:
        thread.sfence()


def make_kernel(op, ns, thread, addrs, access, **kwargs):
    """Kernel factory: ``op`` is 'read', 'ntstore', 'clwb' or 'store'."""
    if op == "read":
        return read_kernel(ns, thread, addrs, access, **kwargs)
    if op == "ntstore":
        return ntstore_kernel(ns, thread, addrs, access, **kwargs)
    if op == "clwb":
        return store_clwb_kernel(ns, thread, addrs, access, **kwargs)
    if op == "store":
        return store_clwb_kernel(
            ns, thread, addrs, access, flush=False, **kwargs)
    raise ValueError("unknown op: %r" % (op,))
