"""iMC contention study (Figure 16).

A fixed pool of threads accesses N of the six interleaved DIMMs, with
the DIMM sets evenly distributed across threads.  As each thread's
DIMM set grows, per-DIMM writer counts rise and the per-thread WPQ
allotment causes head-of-line blocking: aggregate bandwidth *drops*
even though more DIMMs should mean more parallelism.  The guideline:
pin threads to DIMMs.
"""

import random
from dataclasses import dataclass

from repro._units import CACHELINE, KIB, gb_per_s
from repro.sim import Machine, run_workloads


@dataclass
class ContentionPoint:
    """Aggregate bandwidth with each thread spanning ``dimms`` DIMMs."""

    dimms_per_thread: int
    threads: int
    op: str
    access: int
    bandwidth_gbps: float


def _block_addresses(rng, dimm_set, blocks_per_dimm, block_bytes, total_dimms):
    """Random interleave-block base addresses restricted to a DIMM set."""
    while True:
        dimm = rng.choice(dimm_set)
        row = rng.randrange(blocks_per_dimm)
        yield (row * total_dimms + dimm) * block_bytes


def contention_experiment(op="ntstore", threads=6, dimms_per_thread=1,
                          access=256, per_thread=96 * KIB, machine=None):
    """One point of Figure 16: N DIMMs per thread, even distribution."""
    m = machine if machine is not None else Machine()
    ns = m.namespace("optane")
    total_dimms = m.config.dimms_per_socket
    block_bytes = m.config.interleave.block_bytes
    ts = m.threads(threads)

    def worker(t):
        rng = random.Random(17 + t.tid)
        start = t.tid % total_dimms
        dimm_set = [(start + i) % total_dimms
                    for i in range(dimms_per_thread)]
        blocks = _block_addresses(rng, dimm_set, 256, block_bytes,
                                  total_dimms)
        issued = 0
        while issued < per_thread:
            base = next(blocks) + rng.randrange(
                max(1, block_bytes // access)) * access
            for off in range(0, access, CACHELINE):
                if op == "read":
                    ns.load(t, base + off)
                else:
                    ns.ntstore(t, base + off)
                yield
            issued += access
        if op != "read":
            t.sfence()

    elapsed = run_workloads([(t, worker(t)) for t in ts])
    return ContentionPoint(
        dimms_per_thread=dimms_per_thread,
        threads=threads,
        op=op,
        access=access,
        bandwidth_gbps=gb_per_s(per_thread * threads, elapsed),
    )


def figure16(op="ntstore", threads=6, access_sizes=(64, 256, 1024, 4096),
             dimm_counts=(1, 2, 3, 6), per_thread=96 * KIB):
    """Bandwidth curves over access size, one per DIMMs-per-thread."""
    curves = {}
    for n in dimm_counts:
        curves[n] = [
            contention_experiment(op=op, threads=threads,
                                  dimms_per_thread=n, access=a,
                                  per_thread=per_thread)
            for a in access_sizes
        ]
    return curves
