"""LATTester: the microbenchmark toolkit of Section 3.

Re-implements the paper's kernel-mode measurement suite against the
simulated platform:

* :mod:`repro.lattester.latency` — idle load/store latency (Fig. 2);
* :mod:`repro.lattester.tail` — hotspot tail latency (Fig. 3);
* :mod:`repro.lattester.bandwidth` — bandwidth vs threads / access
  size / instruction / fence interval (Figs. 4, 5, 13, 14);
* :mod:`repro.lattester.load` — latency under load (Fig. 6);
* :mod:`repro.lattester.ewr` — Effective Write Ratio studies (Fig. 9);
* :mod:`repro.lattester.xpbuffer_probe` — buffer capacity (Fig. 10);
* :mod:`repro.lattester.contention` — iMC contention (Fig. 16);
* :mod:`repro.lattester.sweep` — the systematic parameter sweep.
"""

from repro.lattester.access import (
    address_stream, make_kernel, ntstore_kernel, read_kernel,
    staggered_base, store_clwb_kernel,
)
from repro.lattester.bandwidth import (
    BandwidthResult, bandwidth_vs_access_size, bandwidth_vs_threads,
    measure_bandwidth,
)
from repro.lattester.contention import (
    ContentionPoint, contention_experiment, figure16,
)
from repro.lattester.ewr import (
    EWRPoint, correlation, ewr_experiment, figure9_sweep,
)
from repro.lattester.latency import (
    LatencyResult, figure2, read_latency, write_latency,
)
from repro.lattester.load import (
    LoadPoint, latency_bandwidth_curve, loaded_latency,
)
from repro.lattester.stats import percentile, percentiles
from repro.lattester.sweep import (
    best_thread_count, filter_records, sweep_grid,
)
from repro.lattester.tail import TailResult, figure3, hotspot_tail
from repro.lattester.xpbuffer_probe import (
    ProbePoint, figure10, inferred_buffer_lines, probe_region,
)

__all__ = [
    "BandwidthResult", "ContentionPoint", "EWRPoint", "LatencyResult",
    "LoadPoint", "ProbePoint", "TailResult", "address_stream",
    "bandwidth_vs_access_size", "bandwidth_vs_threads",
    "best_thread_count", "contention_experiment", "correlation",
    "ewr_experiment", "figure2", "figure3", "figure9_sweep", "figure10",
    "figure16", "filter_records", "hotspot_tail",
    "inferred_buffer_lines", "latency_bandwidth_curve", "loaded_latency",
    "make_kernel", "measure_bandwidth", "ntstore_kernel", "percentile",
    "percentiles", "probe_region", "read_kernel", "read_latency",
    "staggered_base", "store_clwb_kernel", "sweep_grid", "write_latency",
]
