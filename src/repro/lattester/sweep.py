"""The systematic parameter sweep (Section 3.1).

LATTester's first phase is a broad sweep over access pattern,
operation, access size, thread count, NUMA placement and interleaving.
``systematic_sweep`` reproduces that: it returns a flat list of records
(dicts) that the targeted experiments and Figure 9's scatter are mined
from.  Over the default grid this produces several hundred data points;
the paper collected "over ten thousand" across both phases.
"""

import csv
from itertools import product

from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth

CSV_FIELDS = ("kind", "op", "pattern", "access", "threads",
              "gbps", "ewr", "elapsed_ns")

DEFAULT_GRID = {
    "kind": ("optane", "optane-ni", "dram"),
    "op": ("read", "ntstore", "clwb"),
    "pattern": ("seq", "rand"),
    "access": (64, 256, 4096),
    "threads": (1, 4, 16),
}


def sweep_grid(grid=None, per_thread=64 * KIB, progress=None):
    """Run the full cartesian sweep; returns a list of result records."""
    grid = dict(DEFAULT_GRID if grid is None else grid)
    keys = list(grid)
    records = []
    for values in product(*(grid[k] for k in keys)):
        params = dict(zip(keys, values))
        result = measure_bandwidth(per_thread=per_thread, **params)
        record = dict(params)
        record["gbps"] = result.gbps
        record["ewr"] = result.ewr
        record["elapsed_ns"] = result.elapsed_ns
        records.append(record)
        if progress is not None:
            progress(record)
    return records


def filter_records(records, **criteria):
    """Select sweep records matching all the given field values."""
    out = []
    for rec in records:
        if all(rec.get(k) == v for k, v in criteria.items()):
            out.append(rec)
    return out


def write_csv(records, path):
    """Persist sweep records to a CSV file (one row per experiment)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS,
                                extrasaction="ignore")
        writer.writeheader()
        for rec in records:
            writer.writerow(rec)


def read_csv(path):
    """Load sweep records back, with numeric fields restored."""
    out = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            row["access"] = int(row["access"])
            row["threads"] = int(row["threads"])
            row["gbps"] = float(row["gbps"])
            row["ewr"] = float(row["ewr"])
            row["elapsed_ns"] = float(row["elapsed_ns"])
            out.append(row)
    return out


def best_thread_count(records, kind, op, access=None):
    """The thread count achieving peak bandwidth for a configuration."""
    matches = [
        r for r in records
        if r["kind"] == kind and r["op"] == op
        and (access is None or r["access"] == access)
    ]
    if not matches:
        raise ValueError("no sweep records for %s/%s" % (kind, op))
    return max(matches, key=lambda r: r["gbps"])["threads"]
