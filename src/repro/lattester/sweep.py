"""The systematic parameter sweep (Section 3.1).

LATTester's first phase is a broad sweep over access pattern,
operation, access size, thread count, NUMA placement and interleaving.
``sweep_grid`` reproduces that: it returns a flat list of records
(dicts) that the targeted experiments and Figure 9's scatter are mined
from.  Over the default grid this produces several hundred data points;
the paper collected "over ten thousand" across both phases.

Sweeps run through :mod:`repro.harness`: pass ``jobs`` to fan points
out across worker processes and ``cache`` (or rely on the default
on-disk cache when ``jobs`` is given) to never re-measure a point the
harness has already seen.  The default call stays serial and uncached,
exactly as before the harness existed.
"""

import csv

from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth

CSV_FIELDS = ("kind", "op", "pattern", "access", "threads",
              "gbps", "ewr", "elapsed_ns")

DEFAULT_GRID = {
    "kind": ("optane", "optane-ni", "dram"),
    "op": ("read", "ntstore", "clwb"),
    "pattern": ("seq", "rand"),
    "access": (64, 256, 4096),
    "threads": (1, 4, 16),
}

# The quick grid is the historical default; the full grid matches the
# paper-scale sweep of scripts/full_sweep.py.
QUICK_GRID = DEFAULT_GRID

FULL_GRID = {
    "kind": ("optane", "optane-ni", "optane-remote", "dram",
             "dram-ni", "dram-remote"),
    "op": ("read", "ntstore", "clwb", "store"),
    "pattern": ("seq", "rand"),
    "access": (64, 128, 256, 512, 1024, 4096, 16384),
    "threads": (1, 2, 4, 8, 16, 24),
}


def sweep_grid(grid=None, per_thread=64 * KIB, progress=None,
               jobs=None, cache=None):
    """Run the full cartesian sweep; returns a list of result records.

    With ``jobs`` or ``cache`` unset the sweep runs serially in-process
    with no memoization (the historical behavior).  Otherwise it runs
    through the experiment harness: points fan out across ``jobs``
    worker processes and previously measured points are replayed from
    the content-addressed ``cache``.  Records are in grid order either
    way, and a point that fails under the harness raises, matching the
    serial path.
    """
    grid = dict(DEFAULT_GRID if grid is None else grid)
    if jobs is None and cache is None:
        return _sweep_serial(grid, per_thread, progress)
    from repro.harness import run_sweep
    run = run_sweep(grid, per_thread=per_thread, jobs=jobs, cache=cache,
                    progress=None if progress is None
                    else (lambda outcome: outcome.ok
                          and progress(outcome.value)))
    if run.failures:
        first = run.failures[0]
        raise RuntimeError("sweep point %s failed: %s"
                           % (first["params"], first["error"]))
    return run.records


def _sweep_serial(grid, per_thread, progress):
    records = []
    for params in _expand(grid):
        result = measure_bandwidth(per_thread=per_thread, **params)
        record = dict(params)
        record["gbps"] = result.gbps
        record["ewr"] = result.ewr
        record["elapsed_ns"] = result.elapsed_ns
        records.append(record)
        if progress is not None:
            progress(record)
    return records


def _expand(grid):
    from repro.harness.runner import expand_grid
    return expand_grid(grid)


def filter_records(records, **criteria):
    """Select sweep records matching all the given field values."""
    out = []
    for rec in records:
        if all(rec.get(k) == v for k, v in criteria.items()):
            out.append(rec)
    return out


def write_csv(records, path):
    """Persist sweep records to a CSV file (one row per experiment)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS,
                                extrasaction="ignore")
        writer.writeheader()
        for rec in records:
            writer.writerow(rec)


def read_csv(path):
    """Load sweep records back, with numeric fields restored."""
    out = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            row["access"] = int(row["access"])
            row["threads"] = int(row["threads"])
            row["gbps"] = float(row["gbps"])
            row["ewr"] = float(row["ewr"])
            row["elapsed_ns"] = float(row["elapsed_ns"])
            out.append(row)
    return out


def best_thread_count(records, kind, op, access=None):
    """The thread count achieving peak bandwidth for a configuration."""
    matches = [
        r for r in records
        if r["kind"] == kind and r["op"] == op
        and (access is None or r["access"] == access)
    ]
    if not matches:
        raise ValueError("no sweep records for %s/%s" % (kind, op))
    return max(matches, key=lambda r: r["gbps"])["threads"]
