"""The systematic parameter sweep (Section 3.1).

LATTester's first phase is a broad sweep over access pattern,
operation, access size, thread count, NUMA placement and interleaving.
``sweep_grid`` reproduces that: it returns a flat list of records
(dicts) that the targeted experiments and Figure 9's scatter are mined
from.  Over the default grid this produces several hundred data points;
the paper collected "over ten thousand" across both phases.

Sweeps run through :mod:`repro.harness`: pass ``jobs`` to fan points
out across worker processes and ``cache`` (or rely on the default
on-disk cache when ``jobs`` is given) to never re-measure a point the
harness has already seen.  The default call stays serial and uncached,
exactly as before the harness existed.
"""

import csv

from repro._units import KIB
from repro.lattester.bandwidth import measure_bandwidth

CSV_FIELDS = ("kind", "op", "pattern", "access", "threads",
              "gbps", "ewr", "elapsed_ns")

DEFAULT_GRID = {
    "kind": ("optane", "optane-ni", "dram"),
    "op": ("read", "ntstore", "clwb"),
    "pattern": ("seq", "rand"),
    "access": (64, 256, 4096),
    "threads": (1, 4, 16),
}

# The quick grid is the historical default; the full grid matches the
# paper-scale sweep of scripts/full_sweep.py.
QUICK_GRID = DEFAULT_GRID

FULL_GRID = {
    "kind": ("optane", "optane-ni", "optane-remote", "dram",
             "dram-ni", "dram-remote"),
    "op": ("read", "ntstore", "clwb", "store"),
    "pattern": ("seq", "rand"),
    "access": (64, 128, 256, 512, 1024, 4096, 16384),
    "threads": (1, 2, 4, 8, 16, 24),
}


def sweep_grid(grid=None, per_thread=64 * KIB, progress=None,
               jobs=None, cache=None):
    """Run the full cartesian sweep; returns a list of result records.

    With ``jobs`` or ``cache`` unset the sweep runs serially in-process
    with no memoization (the historical behavior).  Otherwise it runs
    through the experiment harness: points fan out across ``jobs``
    worker processes and previously measured points are replayed from
    the content-addressed ``cache``.  Records are in grid order either
    way, and a point that fails under the harness raises, matching the
    serial path.
    """
    grid = dict(DEFAULT_GRID if grid is None else grid)
    if jobs is None and cache is None:
        return _sweep_serial(grid, per_thread, progress)
    from repro.harness import run_sweep
    run = run_sweep(grid, per_thread=per_thread, jobs=jobs, cache=cache,
                    progress=None if progress is None
                    else (lambda outcome: progress(_outcome_record(outcome))))
    if run.failures:
        first = run.failures[0]
        raise RuntimeError("sweep point %s failed: %s"
                           % (first["params"], first["error"]))
    return run.records


def _outcome_record(outcome):
    """Shape a harness :class:`PointOutcome` for the progress callback.

    Successful points pass the measured record through unchanged (the
    same dict the serial path reports).  Failed points used to be
    silently dropped from the callback; now they surface as a record
    with ``"error"`` set so callers can count or log them before
    :func:`sweep_grid` raises at the end of the run.
    """
    if outcome.ok:
        return outcome.value
    record = dict(outcome.payload)
    record.pop("per_thread", None)
    record.pop("trace_path", None)
    record["error"] = outcome.error
    return record


def _sweep_serial(grid, per_thread, progress):
    records = []
    for params in _expand(grid):
        result = measure_bandwidth(per_thread=per_thread, **params)
        record = dict(params)
        record["gbps"] = result.gbps
        record["ewr"] = result.ewr
        record["elapsed_ns"] = result.elapsed_ns
        records.append(record)
        if progress is not None:
            progress(record)
    return records


def _expand(grid):
    from repro.harness.runner import expand_grid
    return expand_grid(grid)


def filter_records(records, **criteria):
    """Select sweep records matching all the given field values."""
    out = []
    for rec in records:
        if all(rec.get(k) == v for k, v in criteria.items()):
            out.append(rec)
    return out


def csv_fieldnames(records):
    """Column order for a set of records: known fields, then extras.

    The well-known :data:`CSV_FIELDS` keep their canonical order (and
    appear only if some record carries them); any other keys — harness
    annotations like ``trace``, future metrics — follow alphabetically
    instead of being silently dropped.
    """
    present = set()
    for rec in records:
        present.update(rec)
    fields = [f for f in CSV_FIELDS if f in present]
    fields.extend(sorted(present - set(CSV_FIELDS)))
    return fields


def write_csv(records, path):
    """Persist sweep records to a CSV file (one row per experiment).

    Columns are derived from the records themselves (see
    :func:`csv_fieldnames`), so extra keys round-trip instead of being
    dropped; records missing a column write an empty cell.
    """
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=csv_fieldnames(records),
                                restval="")
        writer.writeheader()
        for rec in records:
            writer.writerow(rec)


def _restore(text):
    """Undo CSV stringification: int, then float, else the string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(path):
    """Load sweep records back, with numeric fields restored.

    Tolerates absent optional columns (older files written before a
    field existed load fine) and extra ones (restored generically:
    int, then float, then string).  Empty cells — a record that lacked
    that column when written — are omitted from the loaded dict, so
    ``write_csv`` → ``read_csv`` is an identity on the records.
    """
    out = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            out.append({k: _restore(v) for k, v in row.items()
                        if v != ""})
    return out


def best_thread_count(records, kind, op, access=None):
    """The thread count achieving peak bandwidth for a configuration."""
    matches = [
        r for r in records
        if r["kind"] == kind and r["op"] == op
        and (access is None or r["access"] == access)
    ]
    if not matches:
        raise ValueError("no sweep records for %s/%s" % (kind, op))
    return max(matches, key=lambda r: r["gbps"])["threads"]
