"""Idle-latency measurement (Figure 2).

Read latency is the average of individual 8-byte loads to sequential
or random addresses with an ``mfence`` between measurements (emptying
the pipeline, exactly as LATTester does).  Write latency times the two
fenced persistence sequences: ``store; clwb; sfence`` on a pre-loaded
line, and ``ntstore; sfence``.
"""

import random
import statistics
from dataclasses import dataclass

from repro._units import CACHELINE, MIB
from repro.sim import Machine


@dataclass
class LatencyResult:
    """Mean and standard deviation of one latency experiment, in ns."""

    mean_ns: float
    stdev_ns: float
    samples: int

    def __repr__(self):
        return "LatencyResult(%.1f +- %.1f ns, n=%d)" % (
            self.mean_ns, self.stdev_ns, self.samples)


def _result(latencies):
    return LatencyResult(
        mean_ns=statistics.fmean(latencies),
        stdev_ns=statistics.pstdev(latencies),
        samples=len(latencies),
    )


def read_latency(kind="optane", pattern="seq", samples=512, span=32 * MIB,
                 machine=None, socket=0):
    """Average 8 B load latency over fresh lines (no cache hits)."""
    m = machine if machine is not None else Machine()
    ns = m.namespace(kind)
    t = m.thread(socket=socket).collect_latencies()
    if pattern == "seq":
        addrs = [i * CACHELINE for i in range(samples)]
    elif pattern == "rand":
        rng = random.Random(9)
        slots = span // CACHELINE
        addrs = [rng.randrange(slots) * CACHELINE for _ in range(samples)]
    else:
        raise ValueError("unknown pattern: %r" % (pattern,))
    for addr in addrs:
        ns.load(t, addr, 8)
        t.mfence()
    return _result(t.latencies)


def write_latency(kind="optane", instr="clwb", samples=512, machine=None,
                  socket=0):
    """Latency of one fenced persistent store sequence.

    ``instr="clwb"`` measures ``store; clwb; sfence`` on a cached line
    (the line is loaded first, as in the paper's experiment);
    ``instr="ntstore"`` measures ``ntstore; sfence``.
    """
    m = machine if machine is not None else Machine()
    ns = m.namespace(kind)
    t = m.thread(socket=socket)
    for i in range(samples):
        ns.load(t, i * CACHELINE)
    t.mfence()
    lats = []
    for i in range(samples):
        addr = i * CACHELINE
        start = t.now
        if instr == "ntstore":
            ns.ntstore(t, addr)
        elif instr == "clwb":
            ns.store(t, addr)
            ns.clwb(t, addr)
        else:
            raise ValueError("unknown instr: %r" % (instr,))
        t.sfence()
        lats.append(t.now - start)
    return _result(lats)


def figure2(kinds=("dram", "optane")):
    """All eight bars of Figure 2, keyed (kind, operation)."""
    out = {}
    for kind in kinds:
        out[kind, "read-seq"] = read_latency(kind, "seq")
        out[kind, "read-rand"] = read_latency(kind, "rand")
        out[kind, "write-ntstore"] = write_latency(kind, "ntstore")
        out[kind, "write-clwb"] = write_latency(kind, "clwb")
    return out
