"""Tail-latency study (Figure 3).

A single thread writes sequentially (wrapping) within a hotspot of a
given size, timing each fenced store.  3D XPoint shows rare ~50 us
outliers whose population shrinks as the hotspot grows; DRAM shows
none.
"""

from dataclasses import dataclass

from repro._units import CACHELINE
from repro.lattester.stats import percentile
from repro.sim import Machine


@dataclass
class TailResult:
    """Latency percentiles (ns) for one hotspot size."""

    hotspot_bytes: int
    p50_ns: float
    p999_ns: float
    p9999_ns: float
    p99999_ns: float
    max_ns: float
    outliers: int            # stalls >= 10x the median
    samples: int


def hotspot_tail(kind="optane-ni", hotspot=4096, ops=100_000, machine=None):
    """Write ``ops`` fenced ntstores sequentially inside the hotspot."""
    m = machine if machine is not None else Machine()
    ns = m.namespace(kind)
    t = m.thread()
    lines = max(1, hotspot // CACHELINE)
    lats = []
    for i in range(ops):
        addr = (i % lines) * CACHELINE
        start = t.now
        ns.ntstore(t, addr)
        t.sfence()
        lats.append(t.now - start)
    lats.sort()
    median = percentile(lats, 0.5)
    return TailResult(
        hotspot_bytes=hotspot,
        p50_ns=median,
        p999_ns=percentile(lats, 0.999),
        p9999_ns=percentile(lats, 0.9999),
        p99999_ns=percentile(lats, 0.99999),
        max_ns=lats[-1],
        outliers=sum(1 for x in lats if x >= 10 * median),
        samples=len(lats),
    )


def figure3(hotspots=(256, 2048, 16384, 131072, 1048576, 8388608),
            kind="optane-ni", ops=100_000):
    """The tail-latency-vs-hotspot sweep of Figure 3."""
    return [hotspot_tail(kind, h, ops=ops) for h in hotspots]
