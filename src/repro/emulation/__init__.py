"""NVM emulation methodologies the paper evaluates (Section 4).

Researchers emulated persistent memory before real DIMMs existed; the
paper shows every methodology misses key Optane behaviour.  Each
emulator here exposes the same namespace interface as the real
simulated device, so any experiment (or application substrate) can run
unchanged on top of it:

* :class:`~repro.emulation.pmep.PMEPNamespace` — Intel's Persistent
  Memory Emulator Platform: DRAM plus a fixed load-latency adder and a
  write-bandwidth throttle (the "300 ns / BW/8" standard config);
* DRAM-Remote — plain DRAM on the far socket (NUMA emulation);
* plain DRAM "pretending to be persistent".
"""

from repro.emulation.base import EmulatedNamespace, make_emulated_namespace
from repro.emulation.pmep import PMEPNamespace
from repro.emulation.study import figure7

__all__ = [
    "EmulatedNamespace", "PMEPNamespace", "figure7",
    "make_emulated_namespace",
]
