"""The emulation-fidelity study (Figure 7).

Left panel: sequential-write latency/bandwidth curves for each
methodology against real (simulated) Optane.  Right panel: bandwidth
under three thread mixes (all readers, 1:1 readers:writers, all
writers).  The point of the figure is the *disagreement*: no emulator
tracks Optane.
"""

import random
import statistics

from repro._units import CACHELINE, KIB, gb_per_s
from repro.lattester.access import staggered_base
from repro.sim import Machine, run_workloads

from repro.emulation.base import make_emulated_namespace

METHODOLOGIES = ("optane", "dram", "dram-remote", "pmep")


def _namespace_for(machine, methodology):
    if methodology == "optane":
        return machine.namespace("optane")
    return make_emulated_namespace(machine, methodology)


def write_latency_bandwidth(methodology, threads=4, per_thread=96 * KIB,
                            delay_ns=0.0):
    """One point of the Figure 7 (left) curve for a methodology."""
    m = Machine()
    ns = _namespace_for(m, methodology)
    ts = [t.collect_latencies() for t in m.threads(threads)]

    def worker(t):
        base = staggered_base(t.tid, per_thread)
        for i in range(per_thread // CACHELINE):
            ns.ntstore(t, base + i * CACHELINE)
            if delay_ns:
                t.sleep(delay_ns)
            yield
        t.sfence()

    elapsed = run_workloads([(t, worker(t)) for t in ts])
    lats = [x for t in ts for x in t.latencies]
    return (gb_per_s(per_thread * threads, elapsed),
            statistics.fmean(lats))


def seq_write_curve(methodology, delays=(0, 25, 50, 100, 200, 800),
                    threads=4, per_thread=64 * KIB):
    """Latency/bandwidth curve (sweeping offered load via delays)."""
    return [
        write_latency_bandwidth(methodology, threads=threads,
                                per_thread=per_thread, delay_ns=d)
        for d in delays
    ]


def mix_bandwidth(methodology, read_frac, threads=8, per_thread=64 * KIB):
    """Figure 7 (right): bandwidth for a reader/writer thread mix.

    ``read_frac`` of the threads only read; the rest only write.
    """
    m = Machine()
    ns = _namespace_for(m, methodology)
    ts = m.threads(threads)
    nreaders = round(threads * read_frac)

    def worker(t, is_reader):
        base = staggered_base(t.tid, per_thread)
        rng = random.Random(3 + t.tid)
        slots = per_thread // CACHELINE
        for _ in range(slots):
            addr = base + rng.randrange(slots) * CACHELINE
            if is_reader:
                ns.load(t, addr)
            else:
                ns.ntstore(t, addr)
            yield
        if not is_reader:
            t.sfence()

    pairs = [(t, worker(t, i < nreaders)) for i, t in enumerate(ts)]
    elapsed = run_workloads(pairs)
    return gb_per_s(per_thread * threads, elapsed)


def figure7(methodologies=METHODOLOGIES):
    """Both panels of Figure 7.

    Returns ``{"curves": {methodology: [(GB/s, ns), ...]},
               "mixes": {methodology: {label: GB/s}}}``.
    """
    curves = {m: seq_write_curve(m) for m in methodologies}
    mixes = {}
    for m in methodologies:
        mixes[m] = {
            "All Rd.": mix_bandwidth(m, 1.0),
            "1:1 Wr.:Rd.": mix_bandwidth(m, 0.5),
            "All Wr.": mix_bandwidth(m, 0.0),
        }
    return {"curves": curves, "mixes": mixes}
