"""Intel PMEP emulation: DRAM with latency and bandwidth knobs.

The standard configuration used by NOVA, Mojim and others: +300 ns on
load instructions, write bandwidth throttled to 1/8 of DRAM's.  The
paper shows this captures neither the XPLine granularity nor the
pattern sensitivity of real 3D XPoint.
"""

from repro.sim.dram import DRAMDimm
from repro.sim.engine import Resource
from repro.sim.imc import MemoryChannel
from repro.sim.interleave import InterleavedMapping

from repro.emulation.base import EmulatedNamespace

#: The standard PMEP configuration from the papers that used it.
PMEP_READ_EXTRA_NS = 300.0
PMEP_WRITE_THROTTLE_FACTOR = 8


class PMEPDimm:
    """A DRAM DIMM behind PMEP's latency adder and write throttle."""

    def __init__(self, dram_config, throttle, name):
        self._dram = DRAMDimm(dram_config, name)
        self._throttle = throttle
        self.name = name

    @property
    def counters(self):
        return self._dram.counters

    def read(self, now, dev_addr):
        return self._dram.read(now, dev_addr) + PMEP_READ_EXTRA_NS

    def ingest_write(self, now, dev_addr):
        # The throttle is global across the emulated device, as PMEP's
        # bandwidth limiter was.
        _, gate = self._throttle.acquire(now, self._throttle_occ_ns)
        return self._dram.ingest_write(gate, dev_addr)

    @property
    def _throttle_occ_ns(self):
        # DRAM writes drain one 64 B line per write_occupancy/banks; the
        # throttle stretches that by the configured factor.
        cfg = self._dram._cfg
        per_line = cfg.write_occupancy_ns / cfg.banks
        return per_line * PMEP_WRITE_THROTTLE_FACTOR

    def drain(self, now):
        return now

    def reset(self):
        self._dram.reset()
        self._throttle.reset()


class PMEPNamespace(EmulatedNamespace):
    """Namespace living on PMEP-emulated persistent memory."""


def make_pmep_namespace(machine):
    """Build a PMEP namespace (interleaved, local socket) on a machine."""
    cfg = machine.config
    throttle = Resource("pmep.throttle", 1)
    devices = []
    for d in range(cfg.dimms_per_socket):
        channel = MemoryChannel(cfg.channel, "ch.pmep.%d" % d)
        devices.append((channel, PMEPDimm(cfg.dram, throttle,
                                          "pmep.%d" % d)))
    mapping = InterleavedMapping(cfg.interleave.block_bytes, len(devices))
    return PMEPNamespace(machine, "pmep", devices, mapping, socket=0)


__all__ = [
    "PMEPDimm", "PMEPNamespace", "PMEP_READ_EXTRA_NS",
    "PMEP_WRITE_THROTTLE_FACTOR", "make_pmep_namespace",
]
