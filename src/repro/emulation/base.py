"""Common plumbing for emulated-NVM namespaces.

An emulated namespace *is* a namespace (it subclasses
:class:`repro.sim.namespace.Namespace`), so LATTester kernels and the
application substrates run on it unchanged.  Factories below configure
the three methodologies the paper compares.
"""

from repro.sim.namespace import Namespace


class EmulatedNamespace(Namespace):
    """A namespace whose persistence is only pretend.

    Emulation treats DRAM contents as durable; ``pretend_persistent``
    makes ``power_fail`` keep everything, mimicking experiments that
    simply declared DRAM persistent.
    """

    def __init__(self, machine, name, devices, mapping, socket,
                 pretend_persistent=True):
        super().__init__(machine, name, devices, mapping, socket,
                         is_optane=False)
        self.pretend_persistent = pretend_persistent

    def _send_store(self, thread, line, instr, ordered, not_before=0.0):
        insert = super()._send_store(thread, line, instr, ordered,
                                     not_before=not_before)
        return insert


def make_emulated_namespace(machine, methodology="dram"):
    """Build an emulated-NVM namespace on a machine.

    ``methodology``: "dram" (plain local DRAM), "dram-remote" (DRAM on
    the far socket) or "pmep" (latency/bandwidth-throttled DRAM).
    """
    if methodology == "dram":
        return machine.namespace("dram")
    if methodology == "dram-remote":
        return machine.namespace("dram-remote")
    if methodology == "pmep":
        from repro.emulation.pmep import make_pmep_namespace
        return make_pmep_namespace(machine)
    raise ValueError("unknown emulation methodology: %r" % (methodology,))
