"""Common size and time units used throughout the simulator.

All simulated time is expressed in nanoseconds (floats), all sizes in
bytes (ints).  Keeping the unit helpers in one module avoids magic
numbers scattering through the code base.
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

CACHELINE = 64          # CPU cache line / DDR-T transfer granularity
XPLINE = 256            # 3D XPoint media access granularity
LINES_PER_XPLINE = XPLINE // CACHELINE

NS_PER_S = 1e9
US = 1000.0             # one microsecond, in ns
MS = 1000.0 * US


def gib_per_s(nbytes, ns):
    """Convert a (bytes, nanoseconds) pair into GiB/s."""
    if ns <= 0:
        return 0.0
    return (nbytes / GIB) / (ns / NS_PER_S)


def gb_per_s(nbytes, ns):
    """Convert a (bytes, nanoseconds) pair into GB/s (decimal, as the paper plots)."""
    if ns <= 0:
        return 0.0
    return (nbytes / 1e9) / (ns / NS_PER_S)


def align_down(addr, granularity):
    """Round ``addr`` down to a multiple of ``granularity``."""
    return addr - (addr % granularity)


def align_up(addr, granularity):
    """Round ``addr`` up to a multiple of ``granularity``."""
    return addr + (-addr % granularity)
