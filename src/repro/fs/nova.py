"""NOVA: a log-structured file system for persistent memory.

Per-inode logs hold metadata entries; file data lives in 4 KB pages
updated copy-on-write (the original NOVA), or — with ``datalog=True``
(the paper's NOVA-datalog, Section 5.1.2) — sub-page writes are
embedded directly into the log and merged into pages lazily, turning
random small writes into sequential appends without giving up atomic
file updates.

The volatile state (per-file page tables, embed overlays) is an index
rebuilt from the logs on recovery, exactly as NOVA rebuilds its DRAM
structures on mount.
"""

import struct
import zlib

from repro.faults.model import MediaError
from repro.faults.report import RecoveryReport
from repro.fs.layout import (
    INODE_TABLE_PAGE, PAGE, AllocationPolicy, PageAllocator, make_gaddr,
    split_gaddr,
)
from repro.fs.log import (
    EMBED_ENTRY, SIZE_ENTRY, WRITE_ENTRY, InodeLog, encode_embed_entry,
    encode_size_entry, encode_write_entry,
)

#: inode-table slot: log_head u64 | tail_page u64 | tail_off u32 | crc u32
_INODE_SLOT = struct.Struct("<QQII")
INODE_SLOT_SIZE = 64
MAX_INODES = ((16 - 1) * PAGE) // INODE_SLOT_SIZE

#: syscall + VFS overhead for a kernel file system call.
SYSCALL_NS = 500.0

#: Compact a file's log once it accumulates this many entries.
CLEANER_THRESHOLD = 512


class NovaFile:
    """Volatile state of one open file."""

    __slots__ = ("inode", "log", "size", "pages", "overlays", "fs")

    def __init__(self, fs, inode, log):
        self.fs = fs
        self.inode = inode
        self.log = log
        self.size = 0
        self.pages = {}           # pgoff -> page gaddr
        self.overlays = {}        # pgoff -> [(in_off, data_len, data)]


class NovaFS:
    """The file system: create/write/read/recover over pmem devices."""

    def __init__(self, machine, kinds=("optane",), pinned=False,
                 datalog=False, pages_per_device=12288, _mount=False):
        self.machine = machine
        self.datalog = datalog
        self.devices = [machine.namespace(k) if isinstance(k, str) else k
                        for k in kinds]
        if len(self.devices) > 1 and not pinned:
            raise ValueError("multiple devices require the pinned policy")
        self.policy = AllocationPolicy(
            [PageAllocator(i, pages_per_device)
             for i in range(len(self.devices))],
            pinned=pinned)
        self._files = {}
        self._next_inode = 1
        self.recovery_report = None     # set by _recover()
        if _mount:
            self._recover()

    # -- inode table -----------------------------------------------------------

    def _slot_addr(self, inode):
        return INODE_TABLE_PAGE * PAGE + inode * INODE_SLOT_SIZE

    def _commit_inode(self, thread, f, fence=True):
        """Persist the inode slot (log head + tail position), atomically
        enough: the 24-byte payload is CRC'd, so recovery rejects torn
        slots and falls back to scanning from the head."""
        body = struct.pack("<QQI", f.log.head, f.log.tail_page,
                           f.log.tail_off)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        blob = body + struct.pack("<I", crc)
        ns = self.devices[0]
        ns.ntstore(thread, self._slot_addr(f.inode), len(blob), data=blob)
        if fence:
            thread.sfence()

    # -- file operations ---------------------------------------------------------

    def create(self, thread, name=None):
        """Create an empty file; returns its inode number."""
        inode = self._next_inode
        if inode >= MAX_INODES:
            raise RuntimeError("inode table full")
        self._next_inode += 1
        thread.sleep(SYSCALL_NS)
        head = self.policy.alloc_for(thread)
        log = InodeLog(self, head, thread=thread)
        f = NovaFile(self, inode, log)
        self._files[inode] = f
        self._commit_inode(thread, f)
        return inode

    def write(self, thread, inode, offset, data, sync=True):
        """Atomic file write: COW pages, or embed entries for sub-page
        writes when datalog mode is on."""
        thread.sleep(SYSCALL_NS)
        f = self._files[inode]
        pos = 0
        while pos < len(data):
            pgoff = (offset + pos) // PAGE
            in_off = (offset + pos) % PAGE
            chunk = min(PAGE - in_off, len(data) - pos)
            piece = data[pos:pos + chunk]
            if self.datalog and chunk < PAGE:
                self._write_embed(thread, f, pgoff, in_off, piece)
            else:
                self._write_cow(thread, f, pgoff, in_off, piece)
            pos += chunk
        new_size = max(f.size, offset + len(data))
        f.size = new_size
        self._commit_inode(thread, f, fence=sync)
        if f.log.length >= CLEANER_THRESHOLD:
            self.clean(thread, inode)

    def _write_cow(self, thread, f, pgoff, in_off, piece):
        """Copy-on-write page update + a WriteEntry append."""
        new_page = self.policy.alloc_for(thread)
        dev, off = split_gaddr(new_page)
        ns = self.devices[dev]
        if in_off == 0 and len(piece) == PAGE:
            page_data = bytearray(piece)       # full overwrite: no read
        else:
            page_data = bytearray(self._page_contents(thread, f, pgoff))
            page_data[in_off:in_off + len(piece)] = piece
        ns.ntstore(thread, off, PAGE, data=bytes(page_data))
        thread.sfence()
        entry = encode_write_entry(pgoff, new_page,
                                   max(f.size, pgoff * PAGE + in_off
                                       + len(piece)))
        f.log.append(thread, entry)
        old = f.pages.get(pgoff)
        f.pages[pgoff] = new_page
        f.overlays.pop(pgoff, None)
        if old is not None:
            self.policy.free(old)

    def _write_embed(self, thread, f, pgoff, in_off, piece):
        """NOVA-datalog: append the data itself to the log."""
        entry = encode_embed_entry(
            pgoff, in_off, bytes(piece),
            max(f.size, pgoff * PAGE + in_off + len(piece)))
        f.log.append(thread, entry)
        f.overlays.setdefault(pgoff, []).append(
            (in_off, len(piece), bytes(piece)))

    def truncate(self, thread, inode, new_size):
        """Atomically set the file size (shrinking drops pages)."""
        thread.sleep(SYSCALL_NS)
        f = self._files[inode]
        if new_size >= f.size:
            f.size = new_size
            f.log.append(thread, encode_size_entry(new_size))
            self._commit_inode(thread, f)
            return
        keep_pages = -(-new_size // PAGE) if new_size else 0
        tail = new_size % PAGE
        if tail and (keep_pages - 1) in f.pages:
            # COW the final partial page with its tail zeroed.
            pgoff = keep_pages - 1
            page = bytearray(self._page_contents(thread, f, pgoff))
            for in_off, dlen, data in f.overlays.get(pgoff, ()):
                page[in_off:in_off + dlen] = data
            page[tail:] = b"\x00" * (PAGE - tail)
            self._write_cow(thread, f, pgoff, 0, bytes(page))
        for pgoff in [p for p in f.pages if p >= keep_pages]:
            self.policy.free(f.pages.pop(pgoff))
            f.overlays.pop(pgoff, None)
        for pgoff in [p for p in f.overlays if p >= keep_pages]:
            f.overlays.pop(pgoff)
        f.size = new_size
        f.log.append(thread, encode_size_entry(new_size))
        self._commit_inode(thread, f)

    def unlink(self, thread, inode):
        """Delete a file: zero its inode slot, reclaim its pages."""
        thread.sleep(SYSCALL_NS)
        f = self._files.pop(inode)
        ns = self.devices[0]
        ns.ntstore(thread, self._slot_addr(inode), INODE_SLOT_SIZE,
                   data=b"\x00" * INODE_SLOT_SIZE)
        thread.sfence()
        for gaddr in f.pages.values():
            self.policy.free(gaddr)
        from repro.fs.cleaner import _reclaim_chain
        _reclaim_chain(self, f.log.head)

    def read(self, thread, inode, offset, size):
        """Read, merging embedded writes over page contents."""
        thread.sleep(SYSCALL_NS)
        f = self._files[inode]
        out = bytearray()
        pos = 0
        while pos < size:
            pgoff = (offset + pos) // PAGE
            in_off = (offset + pos) % PAGE
            chunk = min(PAGE - in_off, size - pos)
            page = self._merged_page(thread, f, pgoff)
            out += page[in_off:in_off + chunk]
            pos += chunk
        return bytes(out[:max(0, min(size, f.size - offset))])

    def _page_contents(self, thread, f, pgoff):
        """Raw page bytes (no overlays), loading from the device."""
        gaddr = f.pages.get(pgoff)
        if gaddr is None:
            return b"\x00" * PAGE
        dev, off = split_gaddr(gaddr)
        return self.devices[dev].pread(thread, off, PAGE)

    def _merged_page(self, thread, f, pgoff):
        page = bytearray(self._page_contents(thread, f, pgoff))
        for in_off, dlen, data in f.overlays.get(pgoff, ()):
            # The read path pays for loading each embedded extent too.
            page[in_off:in_off + dlen] = data
        overlays = f.overlays.get(pgoff, ())
        if overlays:
            thread.sleep(40.0 * len(overlays))      # merge bookkeeping
        return page

    def mmap(self, thread, inode, pgoff=0):
        """DAX-map one page of a file; returns its global address.

        The paper: NOVA-datalog "must merge sub-page updates into the
        target page before memory-mapping" — a mapped page must be the
        authoritative copy, so pending embedded writes are folded into
        a fresh COW page first.
        """
        thread.sleep(SYSCALL_NS)
        f = self._files[inode]
        overlays = f.overlays.get(pgoff)
        if overlays:
            page = bytearray(self._page_contents(thread, f, pgoff))
            for in_off, dlen, data in overlays:
                page[in_off:in_off + dlen] = data
            self._write_cow(thread, f, pgoff, 0, bytes(page))
        if pgoff not in f.pages:
            self._write_cow(thread, f, pgoff, 0, b"\x00" * PAGE)
        return f.pages[pgoff]

    def stat_size(self, inode):
        return self._files[inode].size

    # -- log cleaning (see repro.fs.cleaner) -------------------------------------

    def clean(self, thread, inode):
        from repro.fs.cleaner import clean_file
        clean_file(self, thread, inode)

    # -- recovery ---------------------------------------------------------------------

    @classmethod
    def mount(cls, machine, kinds=("optane",), pinned=False, datalog=False,
              pages_per_device=12288):
        """Rebuild volatile state from the persistent logs."""
        return cls(machine, kinds=kinds, pinned=pinned, datalog=datalog,
                   pages_per_device=pages_per_device, _mount=True)

    def _recover(self):
        ns = self.devices[0]
        report = RecoveryReport(component="nova")
        for inode in range(1, MAX_INODES):
            try:
                raw = ns.read_persistent(self._slot_addr(inode),
                                         INODE_SLOT_SIZE)
            except MediaError:
                report.lost += 1
                report.note("inode %d: slot unreadable, file lost" % inode)
                continue
            head, tail_page, tail_off, crc = _INODE_SLOT.unpack_from(raw)
            body = raw[:_INODE_SLOT.size - 4]
            if head == 0 or zlib.crc32(body) & 0xFFFFFFFF != crc:
                if any(raw):
                    # Non-empty slot failing its CRC = torn inode
                    # commit: expected crash semantics (the file keeps
                    # its pre-crash state if an older intact slot
                    # version exists; here slots are overwritten in
                    # place, so a torn slot drops the file).
                    report.truncated += 1
                    report.note("inode %d: torn slot dropped" % inode)
                continue
            log = InodeLog(self, head)
            f = NovaFile(self, inode, log)
            applied = 0
            for entry in log.scan_persistent(report=report):
                applied += 1
                if entry["type"] == WRITE_ENTRY:
                    f.pages[entry["pgoff"]] = entry["page_gaddr"]
                    f.overlays.pop(entry["pgoff"], None)
                elif entry["type"] == EMBED_ENTRY:
                    f.overlays.setdefault(entry["pgoff"], []).append(
                        (entry["in_off"], len(entry["data"]),
                         entry["data"]))
                elif entry["type"] == SIZE_ENTRY:
                    keep = -(-entry["file_size"] // PAGE)
                    for pgoff in [p for p in f.pages if p >= keep]:
                        f.pages.pop(pgoff)
                    for pgoff in [p for p in f.overlays if p >= keep]:
                        f.overlays.pop(pgoff)
                # Entries are applied in append order, so the last
                # entry's size is authoritative (truncate support).
                f.size = entry["file_size"]
            log.length = applied
            self._files[inode] = f
            self._next_inode = max(self._next_inode, inode + 1)
            # Re-reserve every page the file owns so fresh allocations
            # cannot overwrite live data or log pages.
            for gaddr in list(f.pages.values()) + log.pages_seen:
                dev, _ = split_gaddr(gaddr)
                self.policy.allocators[dev].reserve(gaddr)
        self.recovery_report = report

    def read_persistent_file(self, inode, offset, size):
        """Post-crash file contents without simulated cost (test aid)."""
        f = self._files[inode]
        out = bytearray()
        pos = 0
        while pos < size:
            pgoff = (offset + pos) // PAGE
            in_off = (offset + pos) % PAGE
            chunk = min(PAGE - in_off, size - pos)
            gaddr = f.pages.get(pgoff)
            if gaddr is None:
                page = bytearray(PAGE)
            else:
                dev, off = split_gaddr(gaddr)
                page = bytearray(
                    self.devices[dev].read_persistent(off, PAGE))
            for o, dlen, data in f.overlays.get(pgoff, ()):
                page[o:o + dlen] = data
            out += page[in_off:in_off + chunk]
            pos += chunk
        return bytes(out[:max(0, min(size, f.size - offset))])
