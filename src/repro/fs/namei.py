"""Directories and path lookup for the NOVA file system.

NOVA "maintains a separate log for each file and directory"; here a
directory is itself a NOVA file whose contents are a record stream of
dentries (name -> inode), appended durably through the normal write
path (so directory updates inherit NOVA's atomicity) and replayed from
the persistent view on mount.

A dentry record reuses the CRC'd record format of
:mod:`repro.kvstore.records`: key = file name, value = 8-byte inode
number; a tombstone record unlinks the name.
"""

import struct

from repro.kvstore import records

_INODE = struct.Struct("<Q")


class Directory:
    """One directory: a name -> inode map backed by a NOVA file."""

    def __init__(self, fs, inode, entries=None, tail=0):
        self.fs = fs
        self.inode = inode
        self._entries = entries if entries is not None else {}
        self._tail = tail

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, fs, thread):
        """Make a fresh, empty directory."""
        return cls(fs, fs.create(thread))

    @classmethod
    def load(cls, fs, inode):
        """Replay a directory's dentry stream from the persistent view."""
        size = fs.stat_size(inode)
        raw = fs.read_persistent_file(inode, 0, size)
        entries = {}
        offset = 0
        while True:
            rec = records.decode(raw, offset)
            if rec is None:
                break
            name, value, offset = rec
            if value is None:
                entries.pop(bytes(name), None)
            else:
                entries[bytes(name)] = _INODE.unpack(value)[0]
        return cls(fs, inode, entries, tail=offset)

    # -- operations -------------------------------------------------------------

    def _append(self, thread, blob):
        self.fs.write(thread, self.inode, self._tail, blob)
        self._tail += len(blob)

    def add(self, thread, name, inode):
        """Durably link ``name`` to ``inode``."""
        if not name or b"/" in name:
            raise ValueError("invalid file name: %r" % (name,))
        self._append(thread, records.encode(name, _INODE.pack(inode)))
        self._entries[name] = inode

    def remove(self, thread, name):
        """Durably unlink ``name``; returns the inode it pointed at."""
        inode = self._entries.pop(name)
        self._append(thread, records.encode(name, None))
        return inode

    def lookup(self, name):
        return self._entries.get(name)

    def names(self):
        return sorted(self._entries)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, name):
        return name in self._entries


class NameSpaceFS:
    """Path-based facade over NovaFS: a root directory of named files.

    Provides the POSIX-shaped calls the FIO-style examples want
    (``create/open/write/read/unlink by name``) while NovaFS stays the
    inode-level engine.  The root directory lives at a fixed inode
    (the first one created on a fresh file system), so ``mount`` can
    find it without extra metadata.
    """

    ROOT_INODE = 1

    def __init__(self, fs, root):
        self.fs = fs
        self.root = root

    @classmethod
    def format(cls, fs, thread):
        """Initialise a fresh namespace (allocates the root directory)."""
        root = Directory.create(fs, thread)
        if root.inode != cls.ROOT_INODE:
            raise RuntimeError("namespace must be formatted first")
        return cls(fs, root)

    @classmethod
    def mount(cls, fs):
        """Reload the namespace from a recovered NovaFS."""
        return cls(fs, Directory.load(fs, cls.ROOT_INODE))

    # -- path operations ----------------------------------------------------------

    def create(self, thread, name):
        """Create and link an empty file; returns its inode."""
        if name in self.root:
            raise FileExistsError(name.decode("latin1"))
        inode = self.fs.create(thread)
        self.root.add(thread, name, inode)
        return inode

    def open(self, thread, name):
        inode = self.root.lookup(name)
        if inode is None:
            raise FileNotFoundError(name.decode("latin1"))
        return inode

    def write(self, thread, name, offset, data):
        self.fs.write(thread, self.open(thread, name), offset, data)

    def read(self, thread, name, offset, size):
        return self.fs.read(thread, self.open(thread, name), offset, size)

    def unlink(self, thread, name):
        """Remove the name, then reclaim the file."""
        inode = self.root.remove(thread, name)
        self.fs.unlink(thread, inode)

    def rename(self, thread, old, new):
        """Link-new-then-unlink-old (crash leaves at least one name)."""
        inode = self.open(thread, old)
        self.root.add(thread, new, inode)
        self.root.remove(thread, old)

    def listdir(self):
        return self.root.names()
