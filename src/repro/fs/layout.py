"""On-media layout and page allocation for the NOVA-like file system.

A file system instance spans one or more pmem *devices* (namespaces):
one interleaved namespace in the default configuration, or six
non-interleaved per-DIMM namespaces in the multi-DIMM configuration of
Section 5.3.1.  Addresses are global: ``gaddr = device_index << 44 |
offset`` (64-bit, device-tagged).

Each device is carved into:

* a superblock page (page 0),
* an inode-table region,
* everything else: 4 KB pages handed out by the per-device bump/free
  allocator (used for both file data and log pages).
"""

from repro._units import KIB

PAGE = 4 * KIB
_DEV_SHIFT = 44
_OFF_MASK = (1 << _DEV_SHIFT) - 1

#: Pages reserved at the front of each device (superblock + inode table).
RESERVED_PAGES = 16
INODE_TABLE_PAGE = 1
INODE_TABLE_PAGES = RESERVED_PAGES - 1


def make_gaddr(device_index, offset):
    if offset < 0 or offset > _OFF_MASK:
        raise ValueError("offset out of range")
    return (device_index << _DEV_SHIFT) | offset


def split_gaddr(gaddr):
    return gaddr >> _DEV_SHIFT, gaddr & _OFF_MASK


class PageAllocator:
    """Free-list page allocator for one device."""

    def __init__(self, device_index, capacity_pages):
        if capacity_pages <= RESERVED_PAGES:
            raise ValueError("device too small")
        self.device_index = device_index
        self._next = RESERVED_PAGES
        self._limit = capacity_pages
        self._free = []
        self._reserved = set()
        self.allocated = 0

    def alloc(self):
        """Allocate one page; returns its gaddr."""
        if self._free:
            page = self._free.pop()
        else:
            while self._next in self._reserved:
                self._next += 1
            if self._next >= self._limit:
                raise RuntimeError(
                    "device %d out of pages" % self.device_index)
            page = self._next
            self._next += 1
        self.allocated += 1
        return make_gaddr(self.device_index, page * PAGE)

    def reserve(self, gaddr):
        """Mark a page as in use (recovery: pages owned by live files)."""
        dev, off = split_gaddr(gaddr)
        if dev != self.device_index or off % PAGE:
            raise ValueError("bad page address for this device")
        self._reserved.add(off // PAGE)
        self.allocated += 1

    def free(self, gaddr):
        dev, off = split_gaddr(gaddr)
        if dev != self.device_index or off % PAGE:
            raise ValueError("bad page address for this device")
        self._free.append(off // PAGE)
        self.allocated -= 1

    @property
    def free_pages(self):
        return (self._limit - self._next) + len(self._free)


class AllocationPolicy:
    """Chooses which device a thread's pages come from.

    * ``interleaved`` — a single namespace already interleaves at 4 KB,
      so there is one allocator and no choice to make.
    * ``pinned`` — one allocator per DIMM-backed namespace; each thread
      allocates only from the device it is pinned to (``tid % dimms``),
      levelling the per-DIMM writer count (guideline #3).
    """

    def __init__(self, allocators, pinned=False):
        if not allocators:
            raise ValueError("need at least one allocator")
        self.allocators = allocators
        self.pinned = pinned
        self._rr = 0

    def alloc_for(self, thread):
        if self.pinned:
            alloc = self.allocators[thread.tid % len(self.allocators)]
        elif len(self.allocators) == 1:
            alloc = self.allocators[0]
        else:
            alloc = self.allocators[self._rr % len(self.allocators)]
            self._rr += 1
        return alloc.alloc()

    def free(self, gaddr):
        dev, _ = split_gaddr(gaddr)
        self.allocators[dev].free(gaddr)
