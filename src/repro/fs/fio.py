"""A FIO-like workload generator for the file-system studies.

Supports the axes Figure 17 sweeps: sequential/random x read/write,
block size, thread count, and two IO engines:

* ``sync``  — each thread issues one blocking IO at a time;
* ``async`` (libaio-style) — writes skip the per-IO fsync (completions
  are batched; one sync per ``batch`` IOs).
"""

import random
from dataclasses import dataclass

from repro._units import KIB, gb_per_s
from repro.sim import run_workloads


@dataclass
class FIOResult:
    """Aggregate result of one FIO job."""

    op: str
    pattern: str
    engine: str
    threads: int
    block_size: int
    bandwidth_gbps: float
    elapsed_ns: float


def run_fio(fs, machine, op="write", pattern="seq", engine="sync",
            threads=4, block_size=4 * KIB, file_blocks=64, ios=None,
            batch=16):
    """Run one FIO job: each thread owns one file on ``fs``."""
    ts = machine.threads(threads)
    inodes = []
    for t in ts:
        # Preallocation runs on the owning thread: the pinned policy
        # keys page placement off the allocating thread's id.
        inode = fs.create(t)
        for b in range(file_blocks):
            fs.write(t, inode, b * block_size,
                     bytes([(t.tid + b) & 0xFF]) * block_size)
        inodes.append(inode)

    total_ios = ios if ios is not None else file_blocks * 4

    def worker(t, inode):
        rng = random.Random(1234 + t.tid)
        payload = bytes([t.tid & 0xFF]) * block_size
        since_sync = 0
        for i in range(total_ios):
            if pattern == "seq":
                block = i % file_blocks
            else:
                block = rng.randrange(file_blocks)
            offset = block * block_size
            if op == "read":
                fs.read(t, inode, offset, block_size)
            else:
                sync = engine == "sync"
                fs.write(t, inode, offset, payload, sync=sync)
                since_sync += 1
                if engine == "async" and since_sync >= batch:
                    t.sfence()
                    since_sync = 0
            yield
        if op == "write":
            t.sfence()

    start_floor = max(t.now for t in ts)
    for t in ts:
        if t.now < start_floor:
            t.now = start_floor
    elapsed = run_workloads(
        [(t, worker(t, inode)) for t, inode in zip(ts, inodes)])
    moved = total_ios * block_size * threads
    return FIOResult(
        op=op, pattern=pattern, engine=engine, threads=threads,
        block_size=block_size,
        bandwidth_gbps=gb_per_s(moved, elapsed - start_floor),
        elapsed_ns=elapsed - start_floor,
    )
