"""Per-inode logs: entry formats, appends, scanning (NOVA's core).

A log is a chain of 4 KB log pages; each page begins with a 64-byte
header whose first quadword is the gaddr of the next page (0 = end).
Entries are multiples of 64 bytes:

* **WriteEntry** (64 B) — a copy-on-write file write: "page ``pgoff``
  of the file now lives at ``page_gaddr``; file size is now N".
* **EmbedWriteEntry** (64 B header + inline data, 64 B-aligned) — the
  NOVA-datalog optimisation (Figure 11): a sub-page write whose data
  is embedded in the log itself, turning a random small write into a
  sequential append.

Every entry carries a CRC over its header (and, for embed entries, the
data), so recovery can detect torn appends.
"""

import struct
import zlib

from repro._units import CACHELINE, align_up
from repro.faults.model import tolerant_read
from repro.fs.layout import PAGE, split_gaddr

LOG_PAGE_HEADER = 64

WRITE_ENTRY = 1
EMBED_ENTRY = 2
SIZE_ENTRY = 3          # truncate / explicit size change

# type u8 | pad u8 | dlen u16 | pgoff u32 | page_gaddr u64 |
# file_size u64 | in_page_off u16 | pad | crc u32
_ENTRY = struct.Struct("<BBHIQQHHI")
ENTRY_SIZE = 64
assert _ENTRY.size <= ENTRY_SIZE


def encode_write_entry(pgoff, page_gaddr, file_size):
    body = _ENTRY.pack(WRITE_ENTRY, 0, 0, pgoff, page_gaddr, file_size,
                       0, 0, 0)[:-4]
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return (body + struct.pack("<I", crc)).ljust(ENTRY_SIZE, b"\x00")


def encode_size_entry(file_size):
    """A truncate record: sets the file size authoritatively."""
    body = _ENTRY.pack(SIZE_ENTRY, 0, 0, 0, 0, file_size, 0, 0, 0)[:-4]
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return (body + struct.pack("<I", crc)).ljust(ENTRY_SIZE, b"\x00")


def encode_embed_entry(pgoff, in_page_off, data, file_size):
    if len(data) >= PAGE:
        raise ValueError("embed entries are for sub-page writes")
    body = _ENTRY.pack(EMBED_ENTRY, 0, len(data), pgoff, 0, file_size,
                       in_page_off, 0, 0)[:-4]
    crc = zlib.crc32(body + data) & 0xFFFFFFFF
    header = (body + struct.pack("<I", crc)).ljust(ENTRY_SIZE, b"\x00")
    padded = align_up(len(data), CACHELINE)
    return header + data + b"\x00" * (padded - len(data))


def decode_entry(buf, offset):
    """Decode the entry at ``offset``; returns (dict, next_offset) or None."""
    if offset + ENTRY_SIZE > len(buf):
        return None
    fields = _ENTRY.unpack_from(buf, offset)
    etype, _, dlen, pgoff, page_gaddr, file_size, in_off, _, crc = fields
    raw_body = bytes(buf[offset:offset + _ENTRY.size - 4])
    if etype == WRITE_ENTRY:
        if zlib.crc32(raw_body) & 0xFFFFFFFF != crc:
            return None
        entry = {"type": WRITE_ENTRY, "pgoff": pgoff,
                 "page_gaddr": page_gaddr, "file_size": file_size}
        return entry, offset + ENTRY_SIZE
    if etype == SIZE_ENTRY:
        if zlib.crc32(raw_body) & 0xFFFFFFFF != crc:
            return None
        return ({"type": SIZE_ENTRY, "file_size": file_size},
                offset + ENTRY_SIZE)
    if etype == EMBED_ENTRY:
        data_start = offset + ENTRY_SIZE
        data_end = data_start + dlen
        if data_end > len(buf):
            return None
        data = bytes(buf[data_start:data_end])
        if zlib.crc32(raw_body + data) & 0xFFFFFFFF != crc:
            return None
        entry = {"type": EMBED_ENTRY, "pgoff": pgoff, "in_off": in_off,
                 "data": data, "file_size": file_size}
        return entry, offset + ENTRY_SIZE + align_up(dlen, CACHELINE)
    return None


def entry_span(entry_blob):
    """Bytes the encoded entry occupies in the log."""
    return len(entry_blob)


class InodeLog:
    """The volatile handle onto one inode's persistent log chain."""

    def __init__(self, fs, head_gaddr, thread=None):
        self.fs = fs
        self.head = head_gaddr
        self.tail_page = head_gaddr
        self.tail_off = LOG_PAGE_HEADER       # within the tail page
        self.length = 0                       # live entries appended
        self.pages_seen = [head_gaddr]        # chain pages (for recovery)
        if thread is not None:
            self._adopt_page(thread, head_gaddr)

    def _adopt_page(self, thread, gaddr):
        """Initialise a (possibly recycled) page as a log page: its
        next-pointer must be durably zero before anything links to it."""
        dev, off = split_gaddr(gaddr)
        self.fs.devices[dev].ntstore(thread, off, 8, data=b"\x00" * 8)
        thread.sfence()

    def append(self, thread, entry_blob):
        """Durably append one encoded entry; returns its gaddr.

        The entry is written with non-temporal stores and fenced, then
        the in-page sequence continues; chaining a fresh log page links
        it before use (next-pointer persisted first, NOVA-style).
        """
        span = len(entry_blob)
        if span > PAGE - LOG_PAGE_HEADER:
            raise ValueError("entry larger than a log page")
        if self.tail_off + span > PAGE:
            self._grow(thread)
        dev, off = split_gaddr(self.tail_page)
        ns = self.fs.devices[dev]
        addr = off + self.tail_off
        ns.ntstore(thread, addr, len(entry_blob), data=entry_blob)
        thread.sfence()
        gaddr = self.tail_page + self.tail_off
        self.tail_off += span
        self.length += 1
        return gaddr

    def _grow(self, thread):
        """Chain a fresh log page onto the tail."""
        new_page = self.fs.policy.alloc_for(thread)
        self._adopt_page(thread, new_page)
        dev, off = split_gaddr(self.tail_page)
        ns = self.fs.devices[dev]
        pmcheck = thread.machine.pmcheck
        if pmcheck is not None:
            new_dev, new_off = split_gaddr(new_page)
            pmcheck.require_order(
                [(self.fs.devices[new_dev], new_off, 8)],
                [(ns, off, 8)],
                note="nova log grow: the fresh page's zeroed "
                     "next-pointer must be durable before the old "
                     "tail links to it")
        # Persist the next-pointer in the old tail's header (only after
        # the new page's own header is durably clean).
        ns.ntstore(thread, off, 8, data=struct.pack("<Q", new_page))
        thread.sfence()
        self.tail_page = new_page
        self.tail_off = LOG_PAGE_HEADER

    def scan_persistent(self, report=None):
        """Recovery: yield decoded entries from the persistent view.

        As a side effect (recovery runs this on a fresh handle) the
        log's tail position and ``pages_seen`` are restored, so appends
        can resume and the allocator can re-reserve the chain's pages.

        Tolerates media faults: a torn tail entry truncates the log, a
        poisoned XPLine inside a page loses the entries it covers (the
        scan resyncs at the next 64 B-aligned intact entry), and a
        poisoned next-pointer loses the rest of the chain.  ``report``
        (a :class:`~repro.faults.report.RecoveryReport`) collects the
        accounting when provided.
        """
        page = self.head
        seen = set()
        self.pages_seen = []
        while page and page not in seen:
            seen.add(page)
            dev, off = split_gaddr(page)
            if dev >= len(self.fs.devices) or off % PAGE:
                break                      # corrupt chain pointer: stop
            self.pages_seen.append(page)
            ns = self.fs.devices[dev]
            raw, lost = tolerant_read(ns, off, PAGE)
            pos = LOG_PAGE_HEADER
            while pos <= PAGE - ENTRY_SIZE:
                decoded = decode_entry(raw, pos)
                if decoded is not None:
                    entry, pos = decoded
                    if report is not None:
                        report.recovered += 1
                    yield entry
                    continue
                hole = next(((lo, ll) for lo, ll in lost
                             if lo + ll > pos), None)
                if hole is not None:
                    if report is not None:
                        report.lost += 1
                        report.note("log page %#x: hole at +%d (%d bytes)"
                                    % (page, hole[0], hole[1]))
                    pos = align_up(max(hole[0] + hole[1], pos + 1),
                                   CACHELINE)
                    while pos <= PAGE - ENTRY_SIZE and \
                            decode_entry(raw, pos) is None:
                        pos += CACHELINE
                    continue
                if report is not None and any(raw[pos:]):
                    report.truncated += 1
                    report.note("log page %#x: torn entry truncated at +%d"
                                % (page, pos))
                break
            self.tail_page = page
            self.tail_off = pos
            if any(lo + ll > 0 and lo < 8 for lo, ll in lost):
                if report is not None:
                    report.lost += 1
                    report.note("log page %#x: next-pointer unreadable, "
                                "chain abandoned" % page)
                break
            page = struct.unpack_from("<Q", raw, 0)[0]
