"""Ext4-DAX and XFS-DAX comparators (the Figure 12 baselines).

Journaling DAX file systems update file data *in place* (no data
consistency guarantee for overwrites — the paper is explicit that NOVA
provides atomicity and these do not).  The ``-sync`` variants fsync
after every write: syscall overhead, flushing the written lines, and a
metadata journal transaction (descriptor + metadata + commit blocks,
each ordered).  Ext4's jbd2 commits are heavier than XFS's logging,
matching the orderings in Figure 12.
"""

from repro._units import KIB, US
from repro.fs.layout import PAGE

_JOURNAL_REGION = 0                      # page 0 area is the journal


class DAXFileSystem:
    """In-place DAX file system with optional per-write fsync."""

    #: (write syscall ns, fsync base ns, journal blocks, journal block B)
    PROFILES = {
        "ext4": (500.0, 1200.0, 3, 4 * KIB),
        "xfs": (500.0, 1000.0, 2, 4 * KIB),
    }

    def __init__(self, machine, flavor="ext4", kind="optane",
                 capacity_pages=8192):
        if flavor not in self.PROFILES:
            raise ValueError("flavor must be 'ext4' or 'xfs'")
        self.machine = machine
        self.flavor = flavor
        self.ns = machine.namespace(kind)
        self._files = {}
        self._next_inode = 1
        self._next_page = 16
        self._capacity = capacity_pages
        self._journal_tail = 0

    def create(self, thread, npages=64):
        """Create a file with ``npages`` preallocated in-place pages."""
        wsys, _, _, _ = self.PROFILES[self.flavor]
        thread.sleep(wsys)
        if self._next_page + npages > self._capacity:
            raise RuntimeError("file system full")
        inode = self._next_inode
        self._next_inode += 1
        self._files[inode] = (self._next_page * PAGE, npages * PAGE, 0)
        self._next_page += npages
        return inode

    def write(self, thread, inode, offset, data, sync=False):
        """In-place overwrite (torn on crash: no COW, no log)."""
        wsys, fsync_ns, jblocks, jsize = self.PROFILES[self.flavor]
        base, span, size = self._files[inode]
        if offset + len(data) > span:
            raise ValueError("write beyond preallocation")
        thread.sleep(wsys)
        self.ns.store(thread, base + offset, len(data), data=data)
        if sync:
            thread.sleep(fsync_ns)
            self.ns.clwb(thread, base + offset, len(data))
            thread.sfence()
            self._journal_commit(thread, jblocks, jsize)
        self._files[inode] = (base, span,
                              max(size, offset + len(data)))

    def _journal_commit(self, thread, jblocks, jsize):
        """Ordered journal transaction: descriptor/metadata, then commit."""
        for i in range(jblocks):
            addr = _JOURNAL_REGION + (self._journal_tail % 8) * jsize
            self._journal_tail += 1
            self.ns.ntstore(thread, addr, jsize)
            thread.sfence()                  # each block is ordered

    def read(self, thread, inode, offset, size):
        wsys, _, _, _ = self.PROFILES[self.flavor]
        thread.sleep(wsys)
        base, span, fsize = self._files[inode]
        size = max(0, min(size, fsize - offset))
        return self.ns.pread(thread, base + offset, size)


#: Unused but documented: fsync latencies observed in the paper reach
#: 40-57 us for the sync variants on small writes (bars clipped in
#: Figure 12); our journal model lands in the tens-of-microseconds
#: regime without modelling jbd2 lock convoys.
PAPER_CLIPPED_SYNC_US = {"xfs": 40 * US, "ext4": 57 * US}
