"""The NOVA log cleaner, extended for datalog liveness (Section 5.1.2).

NOVA-datalog "requires small changes to the log cleaner to track the
liveness of embedded file data": an embed entry is dead once a later
COW write replaced its page or a later embed overwrote its byte range.
Cleaning a file merges all live embedded extents into fresh COW pages,
then rewrites the log as a compact chain of WriteEntries and atomically
switches the inode's log head to it.
"""

from repro.fs.layout import PAGE, split_gaddr
from repro.fs.log import InodeLog, encode_write_entry


def live_overlays(file):
    """Prune overlay lists to only the live (visible) extents."""
    pruned = {}
    for pgoff, extents in file.overlays.items():
        shadow = {}                         # byte -> extent index
        for idx, (in_off, dlen, _) in enumerate(extents):
            for b in range(in_off, in_off + dlen):
                shadow[b] = idx
        live_idx = sorted(set(shadow.values()))
        if live_idx:
            pruned[pgoff] = [extents[i] for i in live_idx]
    return pruned


def clean_file(fs, thread, inode):
    """Compact one file's log; returns the number of entries reclaimed."""
    f = fs._files[inode]
    old_length = f.log.length
    # 1. Merge live embedded data into fresh pages (COW semantics).
    for pgoff, extents in sorted(live_overlays(f).items()):
        page = bytearray(fs._page_contents(thread, f, pgoff))
        for in_off, dlen, data in extents:
            page[in_off:in_off + dlen] = data
        new_page = fs.policy.alloc_for(thread)
        dev, off = split_gaddr(new_page)
        fs.devices[dev].ntstore(thread, off, PAGE, data=bytes(page))
        thread.sfence()
        old = f.pages.get(pgoff)
        f.pages[pgoff] = new_page
        if old is not None:
            fs.policy.free(old)
    f.overlays.clear()
    # 2. Rewrite the log: one WriteEntry per live page.
    new_head = fs.policy.alloc_for(thread)
    new_log = InodeLog(fs, new_head, thread=thread)
    for pgoff in sorted(f.pages):
        new_log.append(thread, encode_write_entry(
            pgoff, f.pages[pgoff], f.size))
    # 3. Atomic switch: persist the inode slot pointing at the new log,
    # then reclaim the old chain's pages.
    old_head = f.log.head
    f.log = new_log
    fs._commit_inode(thread, f)
    _reclaim_chain(fs, old_head)
    return old_length - new_log.length


def _reclaim_chain(fs, head):
    import struct
    page = head
    while page:
        dev, off = split_gaddr(page)
        raw = fs.devices[dev].read_volatile(off, 8)
        nxt = struct.unpack("<Q", raw)[0]
        fs.policy.free(page)
        page = nxt
