"""File-system case studies: Figures 12 and 17.

Figure 12: random-overwrite and read latency across XFS-DAX(+sync),
Ext4-DAX(+sync), NOVA and NOVA-datalog.  Figure 17: FIO bandwidth on
NOVA with interleaved allocation versus multi-DIMM-aware (pinned)
allocation.
"""

import random
import statistics
from dataclasses import dataclass

from repro._units import KIB
from repro.fs.dax import DAXFileSystem
from repro.fs.fio import run_fio
from repro.fs.nova import NovaFS
from repro.sim import Machine


@dataclass
class IOLatency:
    """Mean latency of one file-IO microbenchmark, in ns."""

    system: str
    op: str
    size: int
    mean_ns: float


FIG12_SYSTEMS = (
    "xfs-dax-sync", "xfs-dax", "ext4-dax-sync", "ext4-dax",
    "nova", "nova-datalog",
)


def _make_fs(machine, system):
    if system.startswith("xfs"):
        return DAXFileSystem(machine, flavor="xfs")
    if system.startswith("ext4"):
        return DAXFileSystem(machine, flavor="ext4")
    return NovaFS(machine, datalog=system.endswith("datalog"))


def file_io_latency(system, op="overwrite", size=64, ops=300,
                    file_kb=256, machine=None, seed=5):
    """One bar of Figure 12."""
    m = machine if machine is not None else Machine()
    fs = _make_fs(m, system)
    t = m.thread()
    inode = _prepared_file(fs, t, system, file_kb)
    rng = random.Random(seed)
    sync = system.endswith("sync")
    span = file_kb * KIB
    lats = []
    for _ in range(ops):
        offset = rng.randrange(span // size) * size
        start = t.now
        if op == "overwrite":
            payload = bytes(rng.getrandbits(8) for _ in range(min(8, size)))
            payload = (payload * (size // len(payload) + 1))[:size]
            if isinstance(fs, DAXFileSystem):
                fs.write(t, inode, offset, payload, sync=sync)
            else:
                fs.write(t, inode, offset, payload)
        else:
            fs.read(t, inode, offset, size)
        lats.append(t.now - start)
    return IOLatency(system=system, op=op, size=size,
                     mean_ns=statistics.fmean(lats))


def _prepared_file(fs, thread, system, file_kb):
    blocks = file_kb // 4
    if isinstance(fs, DAXFileSystem):
        inode = fs.create(thread, npages=blocks)
    else:
        inode = fs.create(thread)
    chunk = b"\xAB" * (4 * KIB)
    for b in range(blocks):
        fs.write(thread, inode, b * 4 * KIB, chunk)
    return inode


def figure12(systems=FIG12_SYSTEMS, ops=300):
    """All bars: 64 B / 256 B overwrites and 4 KB reads."""
    out = {}
    for system in systems:
        out[system, "overwrite", 64] = file_io_latency(
            system, "overwrite", 64, ops=ops)
        out[system, "overwrite", 256] = file_io_latency(
            system, "overwrite", 256, ops=ops)
        out[system, "read", 4096] = file_io_latency(
            system, "read", 4096, ops=ops)
    return out


def figure17(threads=24, block=4 * KIB, ios=96, file_blocks=48):
    """Multi-DIMM NOVA: interleaved vs pinned, sync vs async.

    Returns ``{(workload, config): FIOResult}`` where workload is
    (op, pattern) and config is "I,sync" / "NI,sync" / "I,async" /
    "NI,async".
    """
    out = {}
    for op in ("read", "write"):
        for pattern in ("seq", "rand"):
            for pinned in (False, True):
                for engine in ("sync", "async"):
                    m = Machine()
                    if pinned:
                        kinds = [m.namespace("optane-ni", dimm=d)
                                 for d in range(6)]
                        fs = NovaFS(m, kinds=kinds, pinned=True,
                                    datalog=False)
                    else:
                        fs = NovaFS(m, kinds=("optane",))
                    label = "%s,%s" % ("NI" if pinned else "I", engine)
                    out[(op, pattern), label] = run_fio(
                        fs, m, op=op, pattern=pattern, engine=engine,
                        threads=threads, block_size=block,
                        file_blocks=file_blocks, ios=ios)
    return out
