"""NOVA-like log-structured file system + DAX comparators + FIO.

Public surface::

    from repro.fs import NovaFS
    from repro.sim import Machine

    m = Machine()
    fs = NovaFS(m, datalog=True)
    t = m.thread()
    inode = fs.create(t)
    fs.write(t, inode, 0, b"hello")
    assert fs.read(t, inode, 0, 5) == b"hello"
    m.power_fail()
    fs2 = NovaFS.mount(m, datalog=True)
    assert fs2.read_persistent_file(inode, 0, 5) == b"hello"
"""

from repro.fs.cleaner import clean_file, live_overlays
from repro.fs.dax import DAXFileSystem
from repro.fs.fio import FIOResult, run_fio
from repro.fs.layout import PAGE, AllocationPolicy, PageAllocator
from repro.fs.log import InodeLog, encode_embed_entry, encode_write_entry
from repro.fs.namei import Directory, NameSpaceFS
from repro.fs.nova import NovaFS
from repro.fs.study import (
    FIG12_SYSTEMS, IOLatency, figure12, figure17, file_io_latency,
)

__all__ = [
    "AllocationPolicy", "DAXFileSystem", "Directory", "FIG12_SYSTEMS",
    "FIOResult", "IOLatency", "InodeLog", "NameSpaceFS", "NovaFS",
    "PAGE", "PageAllocator",
    "clean_file", "encode_embed_entry", "encode_write_entry",
    "figure12", "figure17", "file_io_latency", "live_overlays", "run_fio",
]
