"""Timed microbenchmarks of the simulator itself (``repro bench``).

Every other number this package produces lives in *virtual* time; this
module is the one place that measures *wall-clock* performance of the
simulation engine, so speedups (and regressions) in the hot paths are
visible and enforceable.  Four benchmarks cover the regimes that
stress different code:

* ``idle_latency``   — pointer-chase-style single reads (per-line path,
  no contention, dominated by the namespace/cache fast path);
* ``bandwidth_1t``   — one saturating non-temporal stream (the batched
  ``yield_every`` fast path and the single-workload scheduler bypass);
* ``contention_8t``  — eight store+clwb streams (the per-beat scheduler
  heap, shared-link booking and XPBuffer eviction back-pressure);
* ``sweep_quick``    — the quick sweep grid end to end (everything,
  including the harness and the same-simulation point memo);
* ``serve_closed``   — closed-loop YCSB-A against the LSM store (the
  full serving stack: generators, Service adapter, multi-client
  scheduler interleaving, WAL + memtable + flush);
* ``serve_open``     — open-loop YCSB-C against PMemKV (Poisson
  arrivals, earliest-free-worker dispatch, the cmap read path);
* ``serve_chaos``    — one chaos-serving cell (mid-serve power
  failures, recovery, and the durability oracle's read-back);
* ``pmcheck_overhead`` — the ``serve_closed`` workload with the
  persistency-order checker installed (the composed per-line paths
  plus the checker's state machine; compare against ``serve_closed``
  for the checking tax);
* ``obs_overhead``    — the ``serve_closed`` workload with the
  always-on observability recorder attached (two list appends per
  request in the loop, histogram/window folding after it).  Each run
  times recording-off and recording-on arms back to back and ``main``
  holds the *paired* loss at ``--obs-tolerance`` (default 5%):
  observability that is not cheap enough to leave on is a regression,
  not a feature.

Results land in ``BENCH_sim.json`` as ``{name: {wall_s, sim_ops,
ops_per_s}}`` where ``sim_ops`` counts simulated cache-line operations
(samples for the latency benchmark), so ``ops_per_s`` is comparable
across machines of the same class.

Three measurement rules keep the numbers honest:

* every benchmark gets one **warm-up run** (quick shapes) before the
  timed run, so first-use module imports and code-object warmup are
  not billed to whichever benchmark happens to run first;
* the serving benchmarks time **exactly the section their** ``sim_ops``
  **counts** — the serve loop — not the machine construction and
  record preload around it (``sim_ops`` never counted preload puts, so
  billing their wall time made ``ops_per_s`` a mixed unit);
* each benchmark runs several times (``--repeats``; default 3, or 5
  under ``--quick`` where a run is nearly free) and the **minimum**
  wall time is kept — the quick shapes run in milliseconds, where a
  single scheduler preemption doubles the reading.

``--compare old.json`` prints a per-benchmark delta table (including
``NEW``/``REMOVED`` names, in the harness comparator's convention) and
exits non-zero when any benchmark loses more than the fail tolerance;
losses past the warn tolerance are reported but do not fail — the
regression gate `scripts/` and CI can hold on to.
"""

import json
import time

from repro._units import CACHELINE, KIB

#: Relative ops/s loss versus the baseline that fails ``--compare``.
REGRESSION_TOLERANCE = 0.20
#: Relative ops/s loss that is reported (without failing) by default.
WARN_TOLERANCE = 0.10
#: Max throughput ``obs_overhead`` may lose versus ``serve_closed``.
OBS_OVERHEAD_TOLERANCE = 0.05


def _timed(fn):
    """Run ``fn`` once; returns (wall_s, sim_ops).

    A benchmark either returns ``sim_ops`` (the whole call is timed)
    or ``(sim_ops, wall_s)`` with the wall time of just the section
    those ops cover, measured inside.
    """
    started = time.perf_counter()
    ret = fn()
    wall = time.perf_counter() - started
    if isinstance(ret, tuple):
        return ret[1], ret[0]
    return wall, ret


def bench_idle_latency(quick=False):
    """Unloaded random read latency: the per-line load path."""
    from repro.lattester.latency import read_latency
    samples = 2000 if quick else 10000
    read_latency(kind="optane", pattern="rand", samples=samples)
    return samples


def bench_bandwidth_1t(quick=False):
    """One saturating ntstore stream: the batched single-thread path."""
    from repro.lattester.bandwidth import measure_bandwidth
    per_thread = (256 if quick else 2048) * KIB
    result = measure_bandwidth(kind="optane", op="ntstore", threads=1,
                               access=256, pattern="seq",
                               per_thread=per_thread)
    return result.total_bytes // CACHELINE


def bench_contention_8t(quick=False):
    """Eight store+clwb streams: per-beat scheduling and contention."""
    from repro.lattester.bandwidth import measure_bandwidth
    per_thread = (16 if quick else 64) * KIB
    result = measure_bandwidth(kind="optane", op="clwb", threads=8,
                               access=256, pattern="rand",
                               per_thread=per_thread)
    return result.total_bytes // CACHELINE


def bench_sweep_quick(quick=False):
    """The quick sweep grid, serially, without the on-disk cache."""
    from repro.lattester.sweep import QUICK_GRID, sweep_grid
    per_thread = (8 if quick else 48) * KIB
    records = sweep_grid(dict(QUICK_GRID), per_thread=per_thread)
    lines = per_thread // CACHELINE
    return sum(lines * rec["threads"] for rec in records)


def bench_serve_closed(quick=False):
    """Closed-loop YCSB-A on the LSM store: the serving stack.

    Times the serve loop only (``sim_ops`` counts served requests, so
    machine construction and preload are excluded from the wall time).
    """
    from repro.sim.platform import Machine
    from repro.workloads import closed_loop, get_workload, make_service
    from repro.workloads.loadloop import preload
    records = 192 if quick else 512
    ops = 2048 if quick else 4096
    spec = get_workload("ycsb-a")
    machine = Machine()
    service = make_service("lsm", machine, spec, records=records,
                           ops=ops, seed=0)
    load_end = preload(service, machine, spec, records, seed=0)
    started = time.perf_counter()
    report = closed_loop(machine, service, spec, records=records,
                         ops=ops, clients=4, seed=0, load_end=load_end)
    return report["ops"], time.perf_counter() - started


def bench_serve_open(quick=False):
    """Open-loop YCSB-C on PMemKV: arrival dispatch near the knee.

    Times the serve loop only, like ``bench_serve_closed``.
    """
    from repro.sim.platform import Machine
    from repro.workloads import get_workload, make_service, open_loop
    from repro.workloads.loadloop import preload
    records = 192 if quick else 512
    ops = 2048 if quick else 4096
    spec = get_workload("ycsb-c")
    machine = Machine()
    service = make_service("pmemkv", machine, spec, records=records,
                           ops=ops, seed=0)
    load_end = preload(service, machine, spec, records, seed=0)
    started = time.perf_counter()
    report = open_loop(machine, service, spec, records=records,
                       ops=ops, rate_kops=8000.0, workers=4, seed=0,
                       load_end=load_end)
    return report["ops"], time.perf_counter() - started


def bench_serve_chaos(quick=False):
    """One chaos cell: mid-serve power failures, recovery, the oracle.

    Exercises the fault-injection hooks on the persist path, two
    crash/recover/audit cycles and the durability read-back — the
    overhead chaos serving adds on top of plain closed-loop serving.
    """
    from repro.chaos_serve import chaos_serve_cell
    records = 160 if quick else 512
    ops = 400 if quick else 2400
    record = chaos_serve_cell({
        "workload": "ycsb-a", "substrate": "lsm",
        "scenario": "power-fail", "mode": "closed", "naive": False,
        "seed": 0, "records": records, "ops": ops, "clients": 2,
    })
    return record["served"]["ops"]


def bench_pmcheck_overhead(quick=False):
    """``serve_closed`` with the persistency-order checker riding along.

    The delta against ``serve_closed`` is the whole checking tax: the
    fused fast path disabled (composed per-line stores/flushes) plus
    the checker's per-line state machine and ack-window bookkeeping.
    Like ``serve_closed``, only the serve loop is timed (the preload
    still runs with the checker installed, so checker state at serve
    start is unchanged).
    """
    from repro.pmcheck import PmCheck
    from repro.sim.platform import Machine
    from repro.workloads import closed_loop, get_workload, make_service
    from repro.workloads.loadloop import preload
    records = 192 if quick else 512
    ops = 2048 if quick else 4096
    spec = get_workload("ycsb-a")
    machine = Machine()
    checker = PmCheck(machine).install()
    service = make_service("lsm", machine, spec, records=records,
                           ops=ops, seed=0)
    load_end = preload(service, machine, spec, records, seed=0)
    started = time.perf_counter()
    report = closed_loop(machine, service, spec, records=records,
                         ops=ops, clients=4, seed=0, load_end=load_end)
    wall = time.perf_counter() - started
    checker.uninstall()
    return report["ops"], wall


#: ``(sim_ops, recording_off_wall, recording_on_wall)`` triples from
#: ``bench_obs_overhead`` runs.  The obs gate reads these so it holds
#: the tax from arms measured *back to back* in one call — comparing
#: against the ``serve_closed`` row timed minutes earlier folds CPU
#: frequency/thermal drift into a ratio that must resolve 5%.
_OBS_PAIRS = []


def bench_obs_overhead(quick=False):
    """``serve_closed`` with the obs recorder attached.

    The recording tax is the per-request latency/timestamp appends
    inside the (still fused) serve loop plus the post-loop histogram
    and burn-window folding.  Each call times the identical serve
    loop twice on fresh machines — recording off, then on — so the
    gate in :func:`main` compares a *paired* measurement; the timed
    row reports the recording-on arm.
    """
    from repro.obs import ObsRecorder
    from repro.sim.platform import Machine
    from repro.workloads import closed_loop, get_workload, make_service
    from repro.workloads.loadloop import preload
    records = 192 if quick else 512
    ops = 2048 if quick else 4096
    spec = get_workload("ycsb-a")

    def arm(obs):
        machine = Machine()
        service = make_service("lsm", machine, spec, records=records,
                               ops=ops, seed=0)
        load_end = preload(service, machine, spec, records, seed=0)
        started = time.perf_counter()
        report = closed_loop(machine, service, spec, records=records,
                             ops=ops, clients=4, seed=0,
                             load_end=load_end, obs=obs)
        return report, time.perf_counter() - started

    _, off_wall = arm(None)
    report, on_wall = arm(ObsRecorder("lsm", workload="ycsb-a"))
    _OBS_PAIRS.append((report["ops"], off_wall, on_wall))
    return report["ops"], on_wall


BENCHMARKS = (
    ("idle_latency", bench_idle_latency),
    ("bandwidth_1t", bench_bandwidth_1t),
    ("contention_8t", bench_contention_8t),
    ("sweep_quick", bench_sweep_quick),
    ("serve_closed", bench_serve_closed),
    ("serve_open", bench_serve_open),
    ("serve_chaos", bench_serve_chaos),
    ("pmcheck_overhead", bench_pmcheck_overhead),
    ("obs_overhead", bench_obs_overhead),
)


def run_benchmarks(quick=False, progress=None, repeats=3):
    """Run every benchmark; returns ``{name: {wall_s, sim_ops, ops_per_s}}``.

    Each benchmark gets an untimed quick warm-up first, then runs
    ``repeats`` times and keeps the **minimum** wall time — the
    standard noise-floor estimate; everything above the minimum is
    scheduler/other-tenant interference, not the benchmark.  The
    same-simulation point memo is cleared before every timed run, so
    neither the warm-up nor an earlier repeat can seed it.
    """
    from repro.lattester.bandwidth import clear_point_memo
    results = {}
    for name, fn in BENCHMARKS:
        fn(quick=True)          # warm imports and code paths, untimed
        wall = sim_ops = None
        for _ in range(max(1, repeats)):
            clear_point_memo()  # warm-ups/repeats must not seed the memo
            run_wall, run_ops = _timed(lambda: fn(quick=quick))
            if wall is None or run_wall < wall:
                wall, sim_ops = run_wall, run_ops
        results[name] = {
            "wall_s": round(wall, 4),
            "sim_ops": sim_ops,
            "ops_per_s": round(sim_ops / wall, 1) if wall > 0 else 0.0,
        }
        if progress is not None:
            progress(name, results[name])
    return results


def compare(baseline, current, tolerance=REGRESSION_TOLERANCE):
    """Benchmarks in ``current`` that regressed versus ``baseline``.

    Returns a list of ``(name, old_ops_per_s, new_ops_per_s)`` for
    every benchmark present in both whose throughput dropped by more
    than ``tolerance``.  Benchmarks only one side knows are skipped
    (adding or retiring a benchmark is not a regression).
    """
    regressions = []
    for name, old in baseline.items():
        new = current.get(name)
        if new is None:
            continue
        old_rate = old.get("ops_per_s", 0.0)
        new_rate = new.get("ops_per_s", 0.0)
        if old_rate > 0 and new_rate < old_rate * (1.0 - tolerance):
            regressions.append((name, old_rate, new_rate))
    return regressions


def delta_report(baseline, current):
    """Per-benchmark ops/s deltas; returns ``(lines, worst_loss)``.

    Every name either side knows gets a line — additions and removals
    use the harness comparator's convention — and ``worst_loss`` is
    the largest relative throughput loss (0.0 when nothing regressed),
    so the caller can hold it against whatever tolerance it enforces.
    """
    lines = []
    worst_loss = 0.0
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name)
        new = current.get(name)
        if new is None:
            lines.append("  REMOVED %s (metric absent in candidate)" % name)
            continue
        if old is None:
            lines.append("  NEW     %s (metric absent in baseline)" % name)
            continue
        old_rate = old.get("ops_per_s", 0.0)
        new_rate = new.get("ops_per_s", 0.0)
        if old_rate > 0:
            delta = (new_rate - old_rate) / old_rate
            lines.append("  %-16s %12.0f -> %12.0f ops/s  (%+.1f%%)"
                         % (name, old_rate, new_rate, 100.0 * delta))
            if -delta > worst_loss:
                worst_loss = -delta
        else:
            lines.append("  %-16s %12.0f -> %12.0f ops/s"
                         % (name, old_rate, new_rate))
    return lines, worst_loss


def profile_benchmark(name, quick=False, out=None):
    """cProfile one benchmark; returns the pstats dump path.

    The benchmark is warmed exactly like a timed run (quick warm-up,
    then the point memo is cleared), so the profile shows steady-state
    hot paths rather than import machinery.  The raw stats land in
    ``out`` (default ``bench_profile_<name>.pstats``) for ``snakeviz``
    or ``pstats`` digging, and the top 25 functions by cumulative time
    are printed.
    """
    import cProfile
    import pstats

    from repro.lattester.bandwidth import clear_point_memo
    table = dict(BENCHMARKS)
    if name not in table:
        raise SystemExit("unknown benchmark %r (choose from: %s)"
                         % (name, ", ".join(n for n, _ in BENCHMARKS)))
    fn = table[name]
    fn(quick=True)
    clear_point_memo()
    if out is None:
        out = "bench_profile_%s.pstats" % name
    profiler = cProfile.Profile()
    profiler.enable()
    fn(quick=quick)
    profiler.disable()
    profiler.dump_stats(out)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(25)
    print("wrote %s" % out)
    return out


def main(args):
    """Entry point for ``python -m repro bench``."""
    if getattr(args, "profile", None):
        profile_benchmark(args.profile, quick=args.quick,
                          out=getattr(args, "profile_out", None))
        return 0

    def progress(name, row):
        print("  %-14s %8.3f s   %10d ops   %12.0f ops/s"
              % (name, row["wall_s"], row["sim_ops"], row["ops_per_s"]))

    print("benchmarking simulator hot paths%s ..."
          % (" (quick)" if args.quick else ""))
    repeats = getattr(args, "repeats", None) or (5 if args.quick else 3)
    del _OBS_PAIRS[:]
    results = run_benchmarks(quick=args.quick, progress=progress,
                             repeats=repeats)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % args.out)
    status = 0
    obs_tol = getattr(args, "obs_tolerance", None)
    if obs_tol is None:
        obs_tol = OBS_OVERHEAD_TOLERANCE
    # Paired gate: min recording-off vs min recording-on wall from the
    # back-to-back arms, restricted to timed-shape runs (the warm-up
    # uses the quick shape even in full mode).
    timed_ops = results.get("obs_overhead", {}).get("sim_ops")
    pairs = [(off, on) for ops, off, on in _OBS_PAIRS
             if ops == timed_ops]
    if pairs:
        off_wall = min(off for off, _ in pairs)
        on_wall = min(on for _, on in pairs)
        loss = 1.0 - off_wall / on_wall if on_wall > 0 else 0.0
        print("obs recording tax: %+.1f%% of serve_closed throughput "
              "(gate: %.0f%%, paired)"
              % (100.0 * loss, 100.0 * obs_tol))
        if loss > obs_tol:
            print("FAIL: always-on observability costs %.1f%% "
                  "throughput; it must stay under %.0f%% to stay "
                  "always-on" % (100.0 * loss, 100.0 * obs_tol))
            status = 1
    if args.compare is None:
        return status
    warn_tol = getattr(args, "warn_tolerance", None)
    fail_tol = getattr(args, "fail_tolerance", None)
    if warn_tol is None:
        warn_tol = WARN_TOLERANCE
    if fail_tol is None:
        fail_tol = REGRESSION_TOLERANCE
    with open(args.compare) as fh:
        baseline = json.load(fh)
    print("delta vs %s:" % args.compare)
    lines, worst_loss = delta_report(baseline, results)
    for line in lines:
        print(line)
    if worst_loss > fail_tol:
        print("FAIL: worst loss %.1f%% exceeds fail tolerance %d%%"
              % (100.0 * worst_loss, int(fail_tol * 100)))
        return 1
    if worst_loss > warn_tol:
        print("WARN: worst loss %.1f%% exceeds warn tolerance %d%%"
              % (100.0 * worst_loss, int(warn_tol * 100)))
        return status
    print("no benchmark regressed more than %d%% vs %s"
          % (int(warn_tol * 100), args.compare))
    return status
