"""Timed microbenchmarks of the simulator itself (``repro bench``).

Every other number this package produces lives in *virtual* time; this
module is the one place that measures *wall-clock* performance of the
simulation engine, so speedups (and regressions) in the hot paths are
visible and enforceable.  Four benchmarks cover the regimes that
stress different code:

* ``idle_latency``   — pointer-chase-style single reads (per-line path,
  no contention, dominated by the namespace/cache fast path);
* ``bandwidth_1t``   — one saturating non-temporal stream (the batched
  ``yield_every`` fast path and the single-workload scheduler bypass);
* ``contention_8t``  — eight store+clwb streams (the per-beat scheduler
  heap, shared-link booking and XPBuffer eviction back-pressure);
* ``sweep_quick``    — the quick sweep grid end to end (everything,
  including the harness and the same-simulation point memo);
* ``serve_closed``   — closed-loop YCSB-A against the LSM store (the
  full serving stack: generators, Service adapter, multi-client
  scheduler interleaving, WAL + memtable + flush);
* ``serve_open``     — open-loop YCSB-C against PMemKV (Poisson
  arrivals, earliest-free-worker dispatch, the cmap read path);
* ``serve_chaos``    — one chaos-serving cell (mid-serve power
  failures, recovery, and the durability oracle's read-back);
* ``pmcheck_overhead`` — the ``serve_closed`` workload with the
  persistency-order checker installed (the composed per-line paths
  plus the checker's state machine; compare against ``serve_closed``
  for the checking tax).

Results land in ``BENCH_sim.json`` as ``{name: {wall_s, sim_ops,
ops_per_s}}`` where ``sim_ops`` counts simulated cache-line operations
(samples for the latency benchmark), so ``ops_per_s`` is comparable
across machines of the same class.  ``--compare old.json`` exits
non-zero when any benchmark loses more than 20% throughput against the
baseline file — the regression gate `scripts/` and CI can hold on to.
"""

import json
import time

from repro._units import CACHELINE, KIB

#: Relative ops/s loss versus the baseline that fails ``--compare``.
REGRESSION_TOLERANCE = 0.20


def _timed(fn):
    """Run ``fn`` once; returns (wall_s, sim_ops) from its return."""
    started = time.perf_counter()
    sim_ops = fn()
    wall = time.perf_counter() - started
    return wall, sim_ops


def bench_idle_latency(quick=False):
    """Unloaded random read latency: the per-line load path."""
    from repro.lattester.latency import read_latency
    samples = 2000 if quick else 10000
    read_latency(kind="optane", pattern="rand", samples=samples)
    return samples


def bench_bandwidth_1t(quick=False):
    """One saturating ntstore stream: the batched single-thread path."""
    from repro.lattester.bandwidth import measure_bandwidth
    per_thread = (256 if quick else 2048) * KIB
    result = measure_bandwidth(kind="optane", op="ntstore", threads=1,
                               access=256, pattern="seq",
                               per_thread=per_thread)
    return result.total_bytes // CACHELINE


def bench_contention_8t(quick=False):
    """Eight store+clwb streams: per-beat scheduling and contention."""
    from repro.lattester.bandwidth import measure_bandwidth
    per_thread = (16 if quick else 64) * KIB
    result = measure_bandwidth(kind="optane", op="clwb", threads=8,
                               access=256, pattern="rand",
                               per_thread=per_thread)
    return result.total_bytes // CACHELINE


def bench_sweep_quick(quick=False):
    """The quick sweep grid, serially, without the on-disk cache."""
    from repro.lattester.sweep import QUICK_GRID, sweep_grid
    per_thread = (8 if quick else 48) * KIB
    records = sweep_grid(dict(QUICK_GRID), per_thread=per_thread)
    lines = per_thread // CACHELINE
    return sum(lines * rec["threads"] for rec in records)


def bench_serve_closed(quick=False):
    """Closed-loop YCSB-A on the LSM store: the serving stack."""
    from repro.sim.platform import Machine
    from repro.workloads import closed_loop, get_workload, make_service
    records = 192 if quick else 512
    ops = 480 if quick else 4096
    spec = get_workload("ycsb-a")
    machine = Machine()
    service = make_service("lsm", machine, spec, records=records,
                           ops=ops, seed=0)
    report = closed_loop(machine, service, spec, records=records,
                         ops=ops, clients=4, seed=0)
    return report["ops"]


def bench_serve_open(quick=False):
    """Open-loop YCSB-C on PMemKV: arrival dispatch near the knee."""
    from repro.sim.platform import Machine
    from repro.workloads import get_workload, make_service, open_loop
    records = 192 if quick else 512
    ops = 480 if quick else 4096
    spec = get_workload("ycsb-c")
    machine = Machine()
    service = make_service("pmemkv", machine, spec, records=records,
                           ops=ops, seed=0)
    report = open_loop(machine, service, spec, records=records,
                       ops=ops, rate_kops=8000.0, workers=4, seed=0)
    return report["ops"]


def bench_serve_chaos(quick=False):
    """One chaos cell: mid-serve power failures, recovery, the oracle.

    Exercises the fault-injection hooks on the persist path, two
    crash/recover/audit cycles and the durability read-back — the
    overhead chaos serving adds on top of plain closed-loop serving.
    """
    from repro.chaos_serve import chaos_serve_cell
    records = 160 if quick else 512
    ops = 400 if quick else 2400
    record = chaos_serve_cell({
        "workload": "ycsb-a", "substrate": "lsm",
        "scenario": "power-fail", "mode": "closed", "naive": False,
        "seed": 0, "records": records, "ops": ops, "clients": 2,
    })
    return record["served"]["ops"]


def bench_pmcheck_overhead(quick=False):
    """``serve_closed`` with the persistency-order checker riding along.

    The delta against ``serve_closed`` is the whole checking tax: the
    fused fast path disabled (composed per-line stores/flushes) plus
    the checker's per-line state machine and ack-window bookkeeping.
    """
    from repro.pmcheck import PmCheck
    from repro.sim.platform import Machine
    from repro.workloads import closed_loop, get_workload, make_service
    records = 192 if quick else 512
    ops = 480 if quick else 4096
    spec = get_workload("ycsb-a")
    machine = Machine()
    checker = PmCheck(machine).install()
    service = make_service("lsm", machine, spec, records=records,
                           ops=ops, seed=0)
    report = closed_loop(machine, service, spec, records=records,
                         ops=ops, clients=4, seed=0)
    checker.uninstall()
    return report["ops"]


BENCHMARKS = (
    ("idle_latency", bench_idle_latency),
    ("bandwidth_1t", bench_bandwidth_1t),
    ("contention_8t", bench_contention_8t),
    ("sweep_quick", bench_sweep_quick),
    ("serve_closed", bench_serve_closed),
    ("serve_open", bench_serve_open),
    ("serve_chaos", bench_serve_chaos),
    ("pmcheck_overhead", bench_pmcheck_overhead),
)


def run_benchmarks(quick=False, progress=None):
    """Run every benchmark; returns ``{name: {wall_s, sim_ops, ops_per_s}}``.

    Each benchmark starts from a clean slate — the same-simulation
    point memo is cleared so one benchmark cannot pre-warm another.
    """
    from repro.lattester.bandwidth import clear_point_memo
    results = {}
    for name, fn in BENCHMARKS:
        clear_point_memo()
        wall, sim_ops = _timed(lambda: fn(quick=quick))
        results[name] = {
            "wall_s": round(wall, 4),
            "sim_ops": sim_ops,
            "ops_per_s": round(sim_ops / wall, 1) if wall > 0 else 0.0,
        }
        if progress is not None:
            progress(name, results[name])
    return results


def compare(baseline, current, tolerance=REGRESSION_TOLERANCE):
    """Benchmarks in ``current`` that regressed versus ``baseline``.

    Returns a list of ``(name, old_ops_per_s, new_ops_per_s)`` for
    every benchmark present in both whose throughput dropped by more
    than ``tolerance``.  Benchmarks only one side knows are skipped
    (adding or retiring a benchmark is not a regression).
    """
    regressions = []
    for name, old in baseline.items():
        new = current.get(name)
        if new is None:
            continue
        old_rate = old.get("ops_per_s", 0.0)
        new_rate = new.get("ops_per_s", 0.0)
        if old_rate > 0 and new_rate < old_rate * (1.0 - tolerance):
            regressions.append((name, old_rate, new_rate))
    return regressions


def main(args):
    """Entry point for ``python -m repro bench``."""
    def progress(name, row):
        print("  %-14s %8.3f s   %10d ops   %12.0f ops/s"
              % (name, row["wall_s"], row["sim_ops"], row["ops_per_s"]))

    print("benchmarking simulator hot paths%s ..."
          % (" (quick)" if args.quick else ""))
    results = run_benchmarks(quick=args.quick, progress=progress)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % args.out)
    if args.compare is None:
        return 0
    with open(args.compare) as fh:
        baseline = json.load(fh)
    regressions = compare(baseline, results)
    if not regressions:
        print("no benchmark regressed more than %d%% vs %s"
              % (int(REGRESSION_TOLERANCE * 100), args.compare))
        return 0
    for name, old_rate, new_rate in regressions:
        print("REGRESSION: %s  %.0f -> %.0f ops/s (%.0f%%)"
              % (name, old_rate, new_rate,
                 100.0 * (new_rate - old_rate) / old_rate))
    return 1
