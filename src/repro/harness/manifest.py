"""Run manifests: the artifact store's record of what actually ran.

Every harness run writes one manifest describing the grid it covered,
the wall time it took, and per-point provenance — the content-address
key, whether the point came from cache, how long it took, and the
result record itself.  Manifests are plain JSON so the regression
comparator (:mod:`repro.harness.compare`) can diff any two runs, even
across machines or package versions.
"""

import json
import os
import time

from repro.harness.keys import to_jsonable

MANIFEST_FORMAT = 1


class RunManifest:
    """Provenance for one harness run."""

    def __init__(self, name, grid=None, jobs=1, version=None,
                 started=None):
        if version is None:
            from repro import __version__ as version
        self.name = name
        self.grid = grid
        self.jobs = jobs
        self.version = version
        self.started = time.time() if started is None else started
        self.wall_s = None
        self.cache_stats = None
        self.points = []

    # -- recording ----------------------------------------------------

    def add_point(self, params, key=None, record=None, cached=False,
                  elapsed_s=0.0, error=None, trace=None):
        """Record one point's provenance and (jsonable) result.

        ``trace`` is the path of the point's Chrome-trace artifact when
        the run was traced; the key is omitted entirely for untraced
        points so untraced manifests are byte-identical to manifests
        written before tracing existed.
        """
        point = {
            "params": to_jsonable(params),
            "key": key,
            "record": to_jsonable(record),
            "cached": bool(cached),
            "elapsed_s": elapsed_s,
            "error": error,
        }
        if trace is not None:
            point["trace"] = trace
        self.points.append(point)

    def finish(self, cache=None):
        """Stamp total wall time and (optionally) cache statistics."""
        self.wall_s = time.time() - self.started
        if cache is not None:
            self.cache_stats = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate(),
            }
        return self

    # -- queries ------------------------------------------------------

    @property
    def failures(self):
        return [p for p in self.points if p.get("error")]

    @property
    def cached_points(self):
        return [p for p in self.points if p.get("cached")]

    def hit_rate(self):
        if not self.points:
            return 0.0
        return len(self.cached_points) / len(self.points)

    # -- serialization ------------------------------------------------

    def to_dict(self):
        return {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "version": self.version,
            "grid": to_jsonable(self.grid),
            "jobs": self.jobs,
            "started": self.started,
            "wall_s": self.wall_s,
            "cache": self.cache_stats,
            "points": self.points,
        }

    def save(self, path):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
        return path

    @classmethod
    def from_dict(cls, data):
        manifest = cls(
            name=data.get("name", "?"),
            grid=data.get("grid"),
            jobs=data.get("jobs", 1),
            version=data.get("version", "?"),
            started=data.get("started", 0.0),
        )
        manifest.wall_s = data.get("wall_s")
        manifest.cache_stats = data.get("cache")
        manifest.points = list(data.get("points", ()))
        return manifest

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
