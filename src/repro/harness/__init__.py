"""repro.harness — the experiment-harness subsystem.

The paper's LATTester methodology is a sweep machine (its first phase
alone collects >10,000 points, §3.1); this package is the substrate
that makes regenerating such matrices cheap:

* :mod:`repro.harness.executor` — fans independent points out across
  worker processes with deterministic result ordering and graceful
  degradation to serial;
* :mod:`repro.harness.cache` — a content-addressed on-disk result
  cache keyed by experiment, grid point, simulator config and package
  version;
* :mod:`repro.harness.manifest` — the run-manifest artifact store
  (grid, wall time, per-point provenance);
* :mod:`repro.harness.compare` — the regression comparator that diffs
  two manifests and flags metric drift;
* :mod:`repro.harness.runner` — ``run_sweep`` /
  ``run_experiment_cached`` tying the layers together.
"""

from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache, cache_dir
from repro.harness.compare import (
    Comparison, Drift, MetricChange, compare_manifests, numeric_leaves,
)
from repro.harness.executor import (
    PointOutcome, effective_jobs, run_points,
)
from repro.harness.keys import (
    canonical_json, config_fingerprint, point_key, to_jsonable,
)
from repro.harness.manifest import RunManifest
from repro.harness.runner import (
    SweepRun, expand_grid, run_experiment_cached, run_sweep,
)

__all__ = [
    "DEFAULT_CACHE_DIR", "ResultCache", "cache_dir",
    "Comparison", "Drift", "MetricChange", "compare_manifests",
    "numeric_leaves",
    "PointOutcome", "effective_jobs", "run_points",
    "canonical_json", "config_fingerprint", "point_key", "to_jsonable",
    "RunManifest",
    "SweepRun", "expand_grid", "run_experiment_cached", "run_sweep",
]
