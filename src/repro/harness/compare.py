"""Regression comparator: diff two run manifests for metric drift.

Points are matched by their parameters (canonical JSON); every numeric
leaf of the result record — flattened to a dotted path, nested dicts
and lists included — is compared by relative drift.  Anything beyond
the tolerance is flagged, as are points present in only one run and
points whose error state changed.
"""

from dataclasses import dataclass

from repro.harness.keys import canonical_json


@dataclass
class Drift:
    """One metric that moved beyond tolerance between two runs."""

    params: dict
    metric: str
    a: float
    b: float
    rel: float

    def __str__(self):
        return ("%s %s: %.6g -> %.6g (%+.1f%%)"
                % (canonical_json(self.params), self.metric,
                   self.a, self.b, 100.0 * self.rel))


@dataclass
class MetricChange:
    """A metric present in only one run of a matched point."""

    params: dict
    metric: str
    value: float

    def __str__(self):
        return ("%s %s = %.6g"
                % (canonical_json(self.params), self.metric,
                   self.value))


@dataclass
class Comparison:
    """The full outcome of diffing manifest ``a`` against ``b``."""

    drifts: list
    only_a: list            # params present only in the first run
    only_b: list            # params present only in the second run
    errors_changed: list    # params whose error state differs
    matched: int            # points compared metric-by-metric
    removed_metrics: list   # MetricChange: metric only in baseline
    new_metrics: list       # MetricChange: metric only in candidate

    @property
    def clean(self):
        return not (self.drifts or self.only_a or self.only_b
                    or self.errors_changed or self.removed_metrics
                    or self.new_metrics)

    def summary(self):
        lines = ["compared %d matching points" % self.matched]
        for drift in self.drifts:
            lines.append("  DRIFT   %s" % drift)
        for change in self.removed_metrics:
            lines.append("  REMOVED %s (metric absent in candidate)"
                         % change)
        for change in self.new_metrics:
            lines.append("  NEW     %s (metric absent in baseline)"
                         % change)
        for params in self.only_a:
            lines.append("  ONLY-A %s" % canonical_json(params))
        for params in self.only_b:
            lines.append("  ONLY-B %s" % canonical_json(params))
        for params in self.errors_changed:
            lines.append("  ERRORS %s" % canonical_json(params))
        if self.clean:
            lines.append("  no drift beyond tolerance")
        return "\n".join(lines)


def numeric_leaves(value, prefix=""):
    """Flatten nested dicts/lists to ``{dotted.path: number}``.

    Booleans are excluded (they are ints to Python but not metrics).
    """
    out = {}
    if isinstance(value, bool):
        return out
    if isinstance(value, (int, float)):
        out[prefix or "value"] = float(value)
    elif isinstance(value, dict):
        for key in value:
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            out.update(numeric_leaves(value[key], path))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            path = "%s[%d]" % (prefix, i) if prefix else "[%d]" % i
            out.update(numeric_leaves(item, path))
    return out


def _index(manifest):
    points = manifest.points if hasattr(manifest, "points") \
        else manifest.get("points", ())
    return {canonical_json(p.get("params")): p for p in points}


def compare_manifests(a, b, tolerance=0.05,
                      ignore=("elapsed_s", "wall_s")):
    """Diff manifests (objects or dicts); returns a :class:`Comparison`.

    ``tolerance`` is the maximum allowed relative drift per metric.
    ``ignore`` lists metric path *suffixes* to skip — wall-clock noise
    like per-point elapsed seconds should not trip a regression gate.

    Metric paths are compared over the *union* of both records: a
    metric present on only one side is reported as removed (baseline
    only) or new (candidate only) rather than silently skipped — a
    disappearing metric is exactly the kind of regression a gate must
    catch, and looking it up on the side that lacks it must not crash
    the comparison.
    """
    index_a, index_b = _index(a), _index(b)
    drifts, errors_changed = [], []
    removed_metrics, new_metrics = [], []
    matched = 0
    for key in index_a:
        if key not in index_b:
            continue
        pa, pb = index_a[key], index_b[key]
        if bool(pa.get("error")) != bool(pb.get("error")):
            errors_changed.append(pa.get("params"))
            continue
        matched += 1
        metrics_a = numeric_leaves(pa.get("record"))
        metrics_b = numeric_leaves(pb.get("record"))
        for path in sorted(set(metrics_a) | set(metrics_b)):
            if any(path.endswith(suffix) for suffix in ignore):
                continue
            if path not in metrics_b:
                removed_metrics.append(MetricChange(
                    params=pa.get("params"), metric=path,
                    value=metrics_a[path]))
                continue
            if path not in metrics_a:
                new_metrics.append(MetricChange(
                    params=pa.get("params"), metric=path,
                    value=metrics_b[path]))
                continue
            va, vb = metrics_a[path], metrics_b[path]
            scale = max(abs(va), abs(vb), 1e-12)
            rel = (vb - va) / scale
            if abs(rel) > tolerance:
                drifts.append(Drift(params=pa.get("params"),
                                    metric=path, a=va, b=vb, rel=rel))
    only_a = [index_a[k].get("params") for k in sorted(index_a)
              if k not in index_b]
    only_b = [index_b[k].get("params") for k in sorted(index_b)
              if k not in index_a]
    return Comparison(drifts=drifts, only_a=only_a, only_b=only_b,
                      errors_changed=errors_changed, matched=matched,
                      removed_metrics=removed_metrics,
                      new_metrics=new_metrics)
