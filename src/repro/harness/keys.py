"""Content addressing for experiment results.

A cached result is only reusable when *everything* that influenced it
is unchanged: the experiment's name, the grid point's parameters, the
full simulator configuration and the package version.  ``point_key``
folds all four into one stable SHA-256 so the cache never has to guess
— any change to any input produces a different key and therefore a
miss, never a stale hit.
"""

import dataclasses
import hashlib
import json


def to_jsonable(value):
    """Convert a result value to plain JSON-serializable structures.

    Dataclasses become dicts, tuples become lists; anything already
    JSON-native passes through.  Unknown objects fall back to ``repr``
    so a cache write never crashes an experiment.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(value):
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(to_jsonable(value), sort_keys=True,
                      separators=(",", ":"))


def config_fingerprint(config=None):
    """Stable hash of a simulator :class:`MachineConfig` (or default)."""
    if config is None:
        from repro.sim import default_config
        config = default_config()
    return hashlib.sha256(
        canonical_json(config).encode("utf-8")).hexdigest()


def point_key(experiment, params, config=None, version=None):
    """The content address of one experiment point.

    ``experiment`` names the workload (e.g. ``"lattester.sweep"`` or
    ``"experiment:fig4"``), ``params`` is the grid point, ``config``
    the simulator configuration it ran under (default config when
    omitted) and ``version`` the package version (current when
    omitted).
    """
    if version is None:
        from repro import __version__ as version
    payload = canonical_json({
        "experiment": experiment,
        "params": params,
        "config": config_fingerprint(config),
        "version": version,
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
