"""Content-addressed on-disk result cache.

Artifacts are JSON files under ``.repro-cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable), sharded by the first two hex
digits of the key the way git shards objects.  Every artifact carries
its own provenance (experiment, params, version) so ``cache stats`` can
summarize the store and a human can audit any entry.

A corrupt or truncated artifact is treated as a miss and deleted — the
cache must never be able to crash an experiment.  Every artifact
carries a SHA-256 over its canonicalized result, verified on load, so
silent corruption *inside* a syntactically valid JSON file (flipped
digit, truncated-then-patched file) is also caught, not just parse
errors.
"""

import hashlib
import json
import os
import tempfile

DEFAULT_CACHE_DIR = ".repro-cache"

_MISS = object()


def result_digest(result):
    """SHA-256 of the canonical JSON encoding of a result payload."""
    blob = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_dir(root=None):
    """Resolve the cache root: explicit arg, env var, or default."""
    if root is not None:
        return root
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


class ResultCache:
    """A content-addressed store of experiment results.

    Keys come from :func:`repro.harness.keys.point_key`; values are any
    JSON-serializable payload.  Hit/miss counters cover this instance's
    lifetime and feed the run manifest.
    """

    def __init__(self, root=None, enabled=True):
        self.root = cache_dir(root)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    # -- addressing ---------------------------------------------------

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".json")

    def contains(self, key):
        return self.enabled and os.path.exists(self._path(key))

    # -- read/write ---------------------------------------------------

    def get(self, key):
        """Return ``(hit, result)``; corrupt artifacts count as misses."""
        if not self.enabled:
            return False, None
        value = self._read(key)
        if value is _MISS:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def _read(self, key):
        path = self._path(key)
        try:
            with open(path) as fh:
                envelope = json.load(fh)
            result = envelope["result"]
            # Envelopes without a digest (pre-checksum artifacts) are
            # treated as corrupt too: dropped and recomputed once.
            if envelope["sha256"] != result_digest(result):
                raise ValueError("artifact checksum mismatch")
            return result
        except FileNotFoundError:
            return _MISS
        except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                OSError):
            # Corrupt artifact: drop it so the rerun can repopulate.
            try:
                os.unlink(path)
            except OSError:
                pass
            return _MISS

    def put(self, key, result, experiment=None, params=None,
            version=None):
        """Store one result with provenance; atomic via rename."""
        if not self.enabled:
            return
        if version is None:
            from repro import __version__ as version
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        envelope = {
            "key": key,
            "experiment": experiment,
            "params": params,
            "version": version,
            "result": result,
            "sha256": result_digest(result),
        }
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(envelope, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- maintenance --------------------------------------------------

    def _artifacts(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def clear(self):
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for path in list(self._artifacts()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        # Prune now-empty shard directories (best effort).
        if os.path.isdir(self.root):
            for shard in os.listdir(self.root):
                shard_dir = os.path.join(self.root, shard)
                if os.path.isdir(shard_dir) and not os.listdir(shard_dir):
                    os.rmdir(shard_dir)
        return removed

    def stats(self):
        """On-disk totals plus this instance's session hit/miss counts."""
        artifacts = 0
        total_bytes = 0
        by_experiment = {}
        for path in self._artifacts():
            artifacts += 1
            try:
                total_bytes += os.path.getsize(path)
                with open(path) as fh:
                    experiment = json.load(fh).get("experiment") or "?"
            except (OSError, json.JSONDecodeError):
                experiment = "?"
            by_experiment[experiment] = by_experiment.get(experiment, 0) + 1
        return {
            "root": self.root,
            "artifacts": artifacts,
            "total_bytes": total_bytes,
            "by_experiment": by_experiment,
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def hit_rate(self):
        """Session hit rate in [0, 1]; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0
