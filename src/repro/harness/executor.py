"""Parallel point executor with deterministic ordering.

Experiment points are independent — each builds its own simulated
machine — so they fan out across worker processes.  Results are
reassembled in submission order no matter which worker finished first,
keeping parallel output bit-identical to serial output.

Failure handling is three-level:

* a point that *raises* is captured as a failed :class:`PointOutcome`
  (the sweep keeps going and the caller decides the exit code);
* with ``timeout_s`` set, a point whose worker hangs or dies is torn
  down at its deadline and retried up to ``retries`` times on a fresh
  pool; a point that exhausts its retries becomes a failed outcome —
  it is *not* replayed serially in-process, because a genuinely hung
  workload would wedge the whole sweep;
* a *pool* that cannot be used at all (unpicklable worker, fork
  failure, resource limits) degrades the whole run to in-process
  serial execution rather than aborting.
"""

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field


@dataclass
class PointOutcome:
    """The result (or failure) of one experiment point."""

    index: int
    payload: dict = field(repr=False, default=None)
    value: object = None
    error: str = None
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def ok(self):
        return self.error is None


def effective_jobs(jobs=None, points=None):
    """Resolve the worker count: explicit, else one per CPU, capped at
    the number of points (never spawn idle workers)."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, int(jobs))
    if points is not None:
        jobs = min(jobs, max(1, points))
    return jobs


def _execute(job):
    """Run one (index, func, payload) task; never raises."""
    index, func, payload = job
    started = time.perf_counter()
    try:
        value = func(payload)
        return index, value, None, time.perf_counter() - started
    except Exception as exc:
        error = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        return index, None, error, time.perf_counter() - started


def run_points(func, payloads, jobs=None, progress=None, timeout_s=None,
               retries=1):
    """Execute ``func(payload)`` for every payload, possibly in parallel.

    Returns a list of :class:`PointOutcome` in payload order.  ``func``
    must be a module-level callable (picklable) for the parallel path;
    anything else silently degrades to serial.  ``progress`` is called
    with each outcome as it completes (completion order, not payload
    order).

    ``timeout_s`` sets a per-job wall-clock deadline: a job that is not
    done by then (hung loop, killed worker) is abandoned, its pool torn
    down, and the job resubmitted on a fresh pool up to ``retries``
    extra times before it becomes a failed outcome.
    """
    payloads = list(payloads)
    jobs = effective_jobs(jobs, len(payloads))
    outcomes = [None] * len(payloads)
    if jobs > 1 or timeout_s is not None:
        try:
            if timeout_s is None:
                _run_pool(func, payloads, jobs, outcomes, progress)
            else:
                _run_pool_deadline(func, payloads, jobs, outcomes,
                                   progress, timeout_s, retries)
        except Exception:
            # Pool-level failure: fall back to serial for whatever the
            # pool did not finish.
            pass
    for index, payload in enumerate(payloads):
        if outcomes[index] is None:
            idx, value, error, elapsed = _execute((index, func, payload))
            outcomes[index] = PointOutcome(
                index=idx, payload=payload, value=value, error=error,
                elapsed_s=elapsed)
            if progress is not None:
                progress(outcomes[index])
    return outcomes


def _run_pool(func, payloads, jobs, outcomes, progress):
    jobs_list = [(i, func, p) for i, p in enumerate(payloads)]
    with multiprocessing.Pool(processes=jobs) as pool:
        for index, value, error, elapsed in pool.imap_unordered(
                _execute, jobs_list):
            outcomes[index] = PointOutcome(
                index=index, payload=payloads[index], value=value,
                error=error, elapsed_s=elapsed)
            if progress is not None:
                progress(outcomes[index])


#: Deadline-polling granularity (seconds).
_POLL_S = 0.02


def _run_pool_deadline(func, payloads, jobs, outcomes, progress,
                       timeout_s, retries):
    """apply_async + polling: every job gets its own deadline.

    ``multiprocessing.Pool`` cannot cancel one task, so an expired job
    terminates the whole pool; innocent in-flight jobs are requeued
    without being charged an attempt, the expired one with attempt+1.
    A worker killed by a signal looks identical to a hang (its
    AsyncResult never becomes ready) and takes the same path.
    """
    pending = [(i, 0) for i in range(len(payloads))]   # (index, attempt)
    running = {}                  # index -> (AsyncResult, deadline, attempt)

    def finish(index, value, error, elapsed):
        outcomes[index] = PointOutcome(
            index=index, payload=payloads[index], value=value,
            error=error, elapsed_s=elapsed)
        if progress is not None:
            progress(outcomes[index])

    pool = multiprocessing.Pool(processes=jobs)
    try:
        while pending or running:
            while pending and len(running) < jobs:
                index, attempt = pending.pop(0)
                result = pool.apply_async(
                    _execute, ((index, func, payloads[index]),))
                running[index] = (result, time.monotonic() + timeout_s,
                                  attempt)
            expired = None
            for index, (result, deadline, attempt) in list(running.items()):
                if result.ready():
                    del running[index]
                    try:
                        _, value, error, elapsed = result.get()
                    except Exception as exc:
                        value, elapsed = None, 0.0
                        error = "".join(traceback.format_exception_only(
                            type(exc), exc)).strip()
                    finish(index, value, error, elapsed)
                elif time.monotonic() > deadline:
                    expired = index
                    break
            if expired is not None:
                _, _, attempt = running.pop(expired)
                if attempt >= retries:
                    finish(expired, None,
                           "timed out after %.1fs (attempt %d of %d)"
                           % (timeout_s, attempt + 1, retries + 1),
                           timeout_s)
                else:
                    pending.insert(0, (expired, attempt + 1))
                for index, (_, _, attempt) in running.items():
                    pending.append((index, attempt))
                running.clear()
                pool.terminate()
                pool.join()
                pool = multiprocessing.Pool(processes=jobs)
                continue
            if running:
                time.sleep(_POLL_S)
    finally:
        pool.terminate()
        pool.join()
