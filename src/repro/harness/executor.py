"""Parallel point executor with deterministic ordering.

Experiment points are independent — each builds its own simulated
machine — so they fan out across worker processes.  Results are
reassembled in submission order no matter which worker finished first,
keeping parallel output bit-identical to serial output.

Failure handling is two-level:

* a point that *raises* is captured as a failed :class:`PointOutcome`
  (the sweep keeps going and the caller decides the exit code);
* a *pool* that cannot be used at all (unpicklable worker, fork
  failure, resource limits) degrades the whole run to in-process
  serial execution rather than aborting.
"""

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field


@dataclass
class PointOutcome:
    """The result (or failure) of one experiment point."""

    index: int
    payload: dict = field(repr=False, default=None)
    value: object = None
    error: str = None
    elapsed_s: float = 0.0
    cached: bool = False

    @property
    def ok(self):
        return self.error is None


def effective_jobs(jobs=None, points=None):
    """Resolve the worker count: explicit, else one per CPU, capped at
    the number of points (never spawn idle workers)."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, int(jobs))
    if points is not None:
        jobs = min(jobs, max(1, points))
    return jobs


def _execute(job):
    """Run one (index, func, payload) task; never raises."""
    index, func, payload = job
    started = time.perf_counter()
    try:
        value = func(payload)
        return index, value, None, time.perf_counter() - started
    except Exception as exc:
        error = "".join(traceback.format_exception_only(
            type(exc), exc)).strip()
        return index, None, error, time.perf_counter() - started


def run_points(func, payloads, jobs=None, progress=None):
    """Execute ``func(payload)`` for every payload, possibly in parallel.

    Returns a list of :class:`PointOutcome` in payload order.  ``func``
    must be a module-level callable (picklable) for the parallel path;
    anything else silently degrades to serial.  ``progress`` is called
    with each outcome as it completes (completion order, not payload
    order).
    """
    payloads = list(payloads)
    jobs = effective_jobs(jobs, len(payloads))
    outcomes = [None] * len(payloads)
    if jobs > 1:
        try:
            _run_pool(func, payloads, jobs, outcomes, progress)
        except Exception:
            # Pool-level failure: fall back to serial for whatever the
            # pool did not finish.
            pass
    for index, payload in enumerate(payloads):
        if outcomes[index] is None:
            idx, value, error, elapsed = _execute((index, func, payload))
            outcomes[index] = PointOutcome(
                index=idx, payload=payload, value=value, error=error,
                elapsed_s=elapsed)
            if progress is not None:
                progress(outcomes[index])
    return outcomes


def _run_pool(func, payloads, jobs, outcomes, progress):
    jobs_list = [(i, func, p) for i, p in enumerate(payloads)]
    with multiprocessing.Pool(processes=jobs) as pool:
        for index, value, error, elapsed in pool.imap_unordered(
                _execute, jobs_list):
            outcomes[index] = PointOutcome(
                index=index, payload=payloads[index], value=value,
                error=error, elapsed_s=elapsed)
            if progress is not None:
                progress(outcomes[index])
