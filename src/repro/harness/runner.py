"""High-level harness runs: cache lookup → parallel fan-out → manifest.

``run_sweep`` is the engine behind ``repro.lattester.sweep``,
``scripts/full_sweep.py`` and ``python -m repro sweep``: it expands a
parameter grid, satisfies every point it can from the content-addressed
cache, fans the misses out across worker processes, and records the
whole run — provenance included — in a :class:`RunManifest`.
``run_experiment_cached`` is the same discipline for whole registry
figures (used by ``scripts/regenerate_all.py``).
"""

from dataclasses import dataclass
from itertools import product

from repro._units import KIB
from repro.harness.cache import ResultCache
from repro.harness.executor import PointOutcome, run_points
from repro.harness.keys import point_key, to_jsonable
from repro.harness.manifest import RunManifest

SWEEP_EXPERIMENT = "lattester.sweep"


def expand_grid(grid):
    """The grid's cartesian product as a list of param dicts."""
    keys = list(grid)
    return [dict(zip(keys, values))
            for values in product(*(grid[k] for k in keys))]


def _sweep_point(payload):
    """Measure one sweep point (module-level: must pickle to workers)."""
    from repro.lattester.bandwidth import measure_bandwidth
    params = dict(payload)
    per_thread = params.pop("per_thread")
    result = measure_bandwidth(per_thread=per_thread, **params)
    record = dict(params)
    record["gbps"] = result.gbps
    record["ewr"] = result.ewr
    record["elapsed_ns"] = result.elapsed_ns
    return record


@dataclass
class SweepRun:
    """Everything a sweep produced: ordered records plus provenance."""

    records: list
    manifest: RunManifest
    cache: ResultCache

    @property
    def failures(self):
        return self.manifest.failures

    @property
    def ok(self):
        return not self.failures


def run_sweep(grid, per_thread=64 * KIB, jobs=None, cache=None,
              progress=None, name="sweep", version=None):
    """Run a full sweep grid through the harness.

    Returns a :class:`SweepRun` whose ``records`` are in grid order
    regardless of worker completion order and identical between the
    serial and parallel paths.  ``cache=None`` builds the default
    on-disk cache; pass ``ResultCache(enabled=False)`` to force
    recomputation.  ``progress`` receives each :class:`PointOutcome`
    as it completes (cache hits included).
    """
    if cache is None:
        cache = ResultCache()
    points = expand_grid(grid)
    payloads = [dict(p, per_thread=per_thread) for p in points]
    keys = [point_key(SWEEP_EXPERIMENT, payload, version=version)
            for payload in payloads]

    manifest = RunManifest(name=name, grid=grid, jobs=jobs,
                           version=version)
    outcomes = [None] * len(payloads)
    pending = []
    for index, (payload, key) in enumerate(zip(payloads, keys)):
        hit, record = cache.get(key)
        if hit:
            outcomes[index] = PointOutcome(
                index=index, payload=payload, value=record, cached=True)
            if progress is not None:
                progress(outcomes[index])
        else:
            pending.append(index)

    fresh = run_points(_sweep_point,
                       [payloads[i] for i in pending],
                       jobs=jobs, progress=progress)
    for slot, outcome in zip(pending, fresh):
        outcome.index = slot
        outcomes[slot] = outcome
        if outcome.ok:
            cache.put(keys[slot], to_jsonable(outcome.value),
                      experiment=SWEEP_EXPERIMENT,
                      params=to_jsonable(payloads[slot]),
                      version=version)

    records = []
    for outcome, key in zip(outcomes, keys):
        manifest.add_point(params=outcome.payload, key=key,
                           record=outcome.value, cached=outcome.cached,
                           elapsed_s=outcome.elapsed_s,
                           error=outcome.error)
        if outcome.ok:
            records.append(outcome.value)
    manifest.finish(cache=cache)
    return SweepRun(records=records, manifest=manifest, cache=cache)


def run_experiment_cached(experiment, cache=None, version=None,
                          **kwargs):
    """Run one registry figure through the cache.

    Returns ``(result, cached)`` where ``result`` is the figure's
    output in JSON-able form — identical whether it was computed live
    or replayed from cache.
    """
    if cache is None:
        cache = ResultCache()
    key = point_key("experiment:" + experiment.figure, kwargs,
                    version=version)
    hit, result = cache.get(key)
    if hit:
        return result, True
    result = to_jsonable(experiment.run(**kwargs))
    cache.put(key, result, experiment="experiment:" + experiment.figure,
              params=to_jsonable(kwargs), version=version)
    return result, False
