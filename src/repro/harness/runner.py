"""High-level harness runs: cache lookup → parallel fan-out → manifest.

``run_sweep`` is the engine behind ``repro.lattester.sweep``,
``scripts/full_sweep.py`` and ``python -m repro sweep``: it expands a
parameter grid, satisfies every point it can from the content-addressed
cache, fans the misses out across worker processes, and records the
whole run — provenance included — in a :class:`RunManifest`.
``run_experiment_cached`` is the same discipline for whole registry
figures (used by ``scripts/regenerate_all.py``).
"""

import os
from dataclasses import dataclass
from itertools import product

from repro._units import KIB
from repro.harness.cache import ResultCache
from repro.harness.executor import PointOutcome, run_points
from repro.harness.keys import point_key, to_jsonable
from repro.harness.manifest import RunManifest

SWEEP_EXPERIMENT = "lattester.sweep"


def expand_grid(grid):
    """The grid's cartesian product as a list of param dicts."""
    keys = list(grid)
    return [dict(zip(keys, values))
            for values in product(*(grid[k] for k in keys))]


def _sweep_point(payload):
    """Measure one sweep point (module-level: must pickle to workers).

    ``trace_path`` in the payload — added by :func:`run_sweep` for
    traced runs, never part of the cache key — makes the point record
    a Chrome trace of itself to that path while it measures.
    """
    from repro.lattester.bandwidth import measure_bandwidth
    params = dict(payload)
    per_thread = params.pop("per_thread")
    trace_path = params.pop("trace_path", None)
    if trace_path is None:
        result = measure_bandwidth(per_thread=per_thread, **params)
    else:
        from repro.telemetry import recording, write_chrome_trace
        with recording() as tracer:
            result = measure_bandwidth(per_thread=per_thread, **params)
        write_chrome_trace(tracer, trace_path)
    record = dict(params)
    record["gbps"] = result.gbps
    record["ewr"] = result.ewr
    record["elapsed_ns"] = result.elapsed_ns
    return record


@dataclass
class SweepRun:
    """Everything a sweep produced: ordered records plus provenance."""

    records: list
    manifest: RunManifest
    cache: ResultCache

    @property
    def failures(self):
        return self.manifest.failures

    @property
    def ok(self):
        return not self.failures


def trace_artifact_path(trace_dir, key):
    """Deterministic per-point trace filename inside ``trace_dir``."""
    return os.path.join(trace_dir, "point-%s.trace.json" % key[:16])


def run_sweep(grid, per_thread=64 * KIB, jobs=None, cache=None,
              progress=None, name="sweep", version=None, trace_dir=None,
              point_fn=None, experiment=None):
    """Run a full sweep grid through the harness.

    Returns a :class:`SweepRun` whose ``records`` are in grid order
    regardless of worker completion order and identical between the
    serial and parallel paths.  ``cache=None`` builds the default
    on-disk cache; pass ``ResultCache(enabled=False)`` to force
    recomputation.  ``progress`` receives each :class:`PointOutcome`
    as it completes (cache hits included).

    ``trace_dir`` turns on per-point tracing: every freshly computed
    point writes a Chrome trace (named after its content-address key)
    into that directory, and the manifest's point entry records the
    artifact path.  Cache keys are computed from the *clean* payloads —
    tracing never influences content addresses or measured results —
    so a traced run still hits the same cache as an untraced one
    (replayed points have no trace: nothing re-ran).

    ``point_fn`` generalizes the harness beyond bandwidth sweeps: a
    module-level callable (it must pickle to workers) receiving one
    payload dict — grid params plus an optional ``trace_path`` — and
    returning a JSON-able record.  Custom point functions name their
    own cache ``experiment`` so their content addresses never collide
    with the bandwidth sweep's; ``per_thread`` is not injected for
    them.  Everything else — cache discipline, deterministic ordering,
    manifests, tracing — behaves identically.
    """
    if cache is None:
        cache = ResultCache()
    points = expand_grid(grid)
    if point_fn is None:
        point_fn = _sweep_point
        experiment = SWEEP_EXPERIMENT if experiment is None else experiment
        payloads = [dict(p, per_thread=per_thread) for p in points]
    else:
        if experiment is None:
            raise ValueError("a custom point_fn needs an experiment "
                             "name for its cache keys")
        payloads = [dict(p) for p in points]
    keys = [point_key(experiment, payload, version=version)
            for payload in payloads]
    traces = [None] * len(payloads)
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    manifest = RunManifest(name=name, grid=grid, jobs=jobs,
                           version=version)
    outcomes = [None] * len(payloads)
    pending = []
    for index, (payload, key) in enumerate(zip(payloads, keys)):
        hit, record = cache.get(key)
        if hit:
            outcomes[index] = PointOutcome(
                index=index, payload=payload, value=record, cached=True)
            if progress is not None:
                progress(outcomes[index])
        else:
            pending.append(index)

    exec_payloads = []
    for i in pending:
        if trace_dir is None:
            exec_payloads.append(payloads[i])
        else:
            traces[i] = trace_artifact_path(trace_dir, keys[i])
            exec_payloads.append(dict(payloads[i], trace_path=traces[i]))
    fresh = run_points(point_fn, exec_payloads,
                       jobs=jobs, progress=progress)
    for slot, outcome in zip(pending, fresh):
        outcome.index = slot
        outcome.payload = payloads[slot]   # clean params, no trace_path
        outcomes[slot] = outcome
        if not outcome.ok:
            traces[slot] = None            # the point never wrote one
        if outcome.ok:
            cache.put(keys[slot], to_jsonable(outcome.value),
                      experiment=experiment,
                      params=to_jsonable(payloads[slot]),
                      version=version)

    records = []
    for outcome, key, trace in zip(outcomes, keys, traces):
        manifest.add_point(params=outcome.payload, key=key,
                           record=outcome.value, cached=outcome.cached,
                           elapsed_s=outcome.elapsed_s,
                           error=outcome.error, trace=trace)
        if outcome.ok:
            records.append(outcome.value)
    manifest.finish(cache=cache)
    return SweepRun(records=records, manifest=manifest, cache=cache)


def run_cached_points(point_fn, payloads, experiment, version=None,
                      cache=None, jobs=None, progress=None,
                      timeout_s=None, retries=0, trace_dir=None):
    """The cache→fan-out middle of :func:`run_sweep`, manifest-free.

    For callers (``repro.chaos_serve.matrix``, and anything else that
    needs normalized, byte-reproducible manifests) that want the cache
    discipline and deterministic ordering without ``run_sweep``'s
    wall-clock-bearing manifest: every payload is looked up in the
    content-addressed cache, the misses fan out across workers, fresh
    successes are cached, and the outcomes come back in payload order.

    Returns ``(outcomes, keys, traces)`` — one entry per payload.
    Cache keys are computed from the *clean* payloads; ``trace_dir``
    adds a ``trace_path`` only to the executed copies, exactly like
    :func:`run_sweep`, so traced and untraced runs share content
    addresses (replayed points have no trace: nothing re-ran).
    """
    if cache is None:
        cache = ResultCache()
    payloads = [dict(p) for p in payloads]
    keys = [point_key(experiment, payload, version=version)
            for payload in payloads]
    traces = [None] * len(payloads)
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    outcomes = [None] * len(payloads)
    pending = []
    for index, (payload, key) in enumerate(zip(payloads, keys)):
        hit, record = cache.get(key)
        if hit:
            outcomes[index] = PointOutcome(
                index=index, payload=payload, value=record, cached=True)
            if progress is not None:
                progress(outcomes[index])
        else:
            pending.append(index)

    exec_payloads = []
    for i in pending:
        if trace_dir is None:
            exec_payloads.append(payloads[i])
        else:
            traces[i] = trace_artifact_path(trace_dir, keys[i])
            exec_payloads.append(dict(payloads[i], trace_path=traces[i]))
    fresh = run_points(point_fn, exec_payloads, jobs=jobs,
                       progress=progress, timeout_s=timeout_s,
                       retries=retries)
    for slot, outcome in zip(pending, fresh):
        outcome.index = slot
        outcome.payload = payloads[slot]   # clean params, no trace_path
        outcomes[slot] = outcome
        if not outcome.ok:
            traces[slot] = None            # the point never wrote one
        if outcome.ok:
            cache.put(keys[slot], to_jsonable(outcome.value),
                      experiment=experiment,
                      params=to_jsonable(payloads[slot]),
                      version=version)
    return outcomes, keys, traces


def run_experiment_cached(experiment, cache=None, version=None,
                          **kwargs):
    """Run one registry figure through the cache.

    Returns ``(result, cached)`` where ``result`` is the figure's
    output in JSON-able form — identical whether it was computed live
    or replayed from cache.
    """
    if cache is None:
        cache = ResultCache()
    key = point_key("experiment:" + experiment.figure, kwargs,
                    version=version)
    hit, result = cache.get(key)
    if hit:
        return result, True
    result = to_jsonable(experiment.run(**kwargs))
    cache.put(key, result, experiment="experiment:" + experiment.figure,
              params=to_jsonable(kwargs), version=version)
    return result, False
