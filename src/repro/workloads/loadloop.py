"""Closed- and open-loop serving drivers.

Two ways of applying a workload to a service, with very different tail
behavior — the distinction the paper's latency-vs-load curves hinge on:

* **closed loop** — ``clients`` simulated threads each issue their
  request stream back-to-back: a slow request delays that client's
  *next* request, so the offered load self-throttles and latency stays
  near service time even at the throughput ceiling.  Clients are
  interleaved by the virtual-time scheduler, so contention on shared
  hardware (WPQ, XPBuffer, media banks) is captured deterministically.
* **open loop** — requests arrive by a deterministic Poisson process at
  a configured rate, whether or not earlier requests finished.  Past
  the saturation knee the queue grows without bound and p99 latency
  diverges — the behavior closed-loop measurement structurally cannot
  show (Schroeder et al.'s classic open-vs-closed distinction).

Both record per-request latency and produce the same report shape, so
reports are directly comparable.  Everything runs on virtual clocks
from seeded generators: the same arguments produce a byte-identical
report on any host, serial or parallel.
"""

from random import Random

from repro.lattester.stats import percentile
from repro.sim import engine as _engine
from repro.telemetry.events import CAT_SERVE
from repro.workloads.generators import (
    RequestStream, make_key, make_value,
)

_NS_PER_S = 1e9
_NS_PER_US = 1e3

#: Latency fractions reported by every serve run.
LATENCY_FRACTIONS = (0.50, 0.90, 0.99, 0.999)


def execute_request(service, thread, spec, req):
    """Apply one generated request to a service on a thread.

    Returns the op actually performed (rmw stays "rmw").

    This is where the service acks: when a mutation returns, the client
    may act on it, so an installed persistency checker
    (:mod:`repro.pmcheck`) treats the return as the ack boundary —
    every PM line the mutation wrote must be fence-ordered durable by
    then.  Reads and scans promise nothing and are not windowed.
    """
    pmcheck = thread.machine.pmcheck
    key = make_key(req.key_index)
    op = req.op
    if op == "read":
        service.get(thread, key)
    elif op == "update" or op == "insert":
        if pmcheck is not None:
            pmcheck.op_begin(thread, op)
        service.put(thread, key,
                    make_value(spec, req.key_index, req.version))
        if pmcheck is not None:
            pmcheck.op_ack(thread)
    elif op == "scan":
        service.scan(thread, key, req.scan_len)
    elif op == "rmw":
        service.get(thread, key)
        if pmcheck is not None:
            pmcheck.op_begin(thread, op)
        service.put(thread, key,
                    make_value(spec, req.key_index, req.version))
        if pmcheck is not None:
            pmcheck.op_ack(thread)
    elif op == "delete":
        if pmcheck is not None:
            pmcheck.op_begin(thread, op)
        service.delete(thread, key)
        if pmcheck is not None:
            pmcheck.op_ack(thread)
    else:
        raise ValueError("unknown op %r" % op)
    return op


def preload(service, machine, spec, records, seed=0):
    """Load the initial keyspace; returns the load-end virtual time.

    Every serve run starts from the same populated state: keys
    ``0..records-1`` at version 0, written by one loader thread.
    """
    thread = machine.thread()
    put = service.put
    for index in range(records):
        put(thread, make_key(index), make_value(spec, index, 0))
    return thread.now


def _trace(machine, thread, op, start, end):
    tracer = machine.tracer
    if tracer is not None:
        tracer.complete(start, CAT_SERVE, op, end - start,
                        track="client%d" % thread.tid)


def _summarize(latencies_ns, ops_by_type, start_ns, end_ns, ops):
    """The common report body from recorded latencies."""
    elapsed_s = max(end_ns - start_ns, 1.0) / _NS_PER_S
    lat = sorted(latencies_ns)
    latency_us = {}
    for frac in LATENCY_FRACTIONS:
        name = "p" + ("%g" % (frac * 100)).replace(".", "")
        latency_us[name] = round(
            percentile(lat, frac) / _NS_PER_US, 3)
    latency_us["mean"] = round(
        (sum(lat) / len(lat)) / _NS_PER_US, 3) if lat else 0.0
    latency_us["max"] = round(lat[-1] / _NS_PER_US, 3) if lat else 0.0
    return {
        "ops": ops,
        "ops_by_type": dict(sorted(ops_by_type.items())),
        "sim_seconds": round(elapsed_s, 9),
        "achieved_kops": round(ops / elapsed_s / 1e3, 3),
        "latency_us": latency_us,
    }


#: Requests prefetched per client between executions on the fast path.
#: Generation never reads machine state, so any chunking is safe; this
#: bounds the prefetch memory while amortizing the batch setup.
_CHUNK = 256


def _client_step(service, machine, spec, thread, stream, budget,
                 ops_by_type, obs_lists=None):
    """One-request step closure for the closed-loop fast path.

    Each call performs exactly what one iteration of the reference
    ``client_loop`` generator body does: take the client's next
    request, apply it (the :func:`execute_request` dispatch inlined
    with the per-op attribute lookups hoisted), record the latency,
    trace, and count.  Requests are prefetched in chunks via the
    stream's batch API.

    ``obs_lists`` is the observability hook: a ``(latencies, ts)``
    pair of lists that receive each *request's* latency and completion
    time (``thread.latencies`` also carries per-cache-line entries
    from the namespace paths, so the recorder needs its own
    request-granularity series).  Two bound-method calls per request —
    the entire hot-loop cost of recording; histogram and window folds
    happen in bulk after the loop.
    """
    pmcheck = machine.pmcheck
    tracer = machine.tracer
    service_get = service.get
    service_put = service.put
    service_scan = service.scan
    service_delete = service.delete
    latencies = thread.latencies
    if obs_lists is None:
        obs_lat_append = obs_ts_append = None
    else:
        obs_lat_append = obs_lists[0].append
        obs_ts_append = obs_lists[1].append
    next_requests = stream.next_requests
    batch = []
    pos = 0
    left = budget

    def step():
        nonlocal batch, pos, left
        if pos == len(batch):
            n = _CHUNK if left > _CHUNK else left
            batch = next_requests(n)
            left -= n
            pos = 0
        req = batch[pos]
        pos += 1
        begin = thread.now
        op = req.op
        key = b"user%012d" % req.key_index
        if op == "read":
            service_get(thread, key)
        elif op == "update" or op == "insert":
            if pmcheck is not None:
                pmcheck.op_begin(thread, op)
            service_put(thread, key,
                        make_value(spec, req.key_index, req.version))
            if pmcheck is not None:
                pmcheck.op_ack(thread)
        elif op == "scan":
            service_scan(thread, key, req.scan_len)
        elif op == "rmw":
            service_get(thread, key)
            if pmcheck is not None:
                pmcheck.op_begin(thread, op)
            service_put(thread, key,
                        make_value(spec, req.key_index, req.version))
            if pmcheck is not None:
                pmcheck.op_ack(thread)
        elif op == "delete":
            if pmcheck is not None:
                pmcheck.op_begin(thread, op)
            service_delete(thread, key)
            if pmcheck is not None:
                pmcheck.op_ack(thread)
        else:
            raise ValueError("unknown op %r" % op)
        end = thread.now
        latencies.append(end - begin)
        if obs_ts_append is not None:
            obs_lat_append(end - begin)
            obs_ts_append(end)
        if tracer is not None:
            tracer.complete(begin, CAT_SERVE, op, end - begin,
                            track="client%d" % thread.tid)
        ops_by_type[op] = ops_by_type.get(op, 0) + 1

    return step


def closed_loop(machine, service, spec, records, ops, clients=2,
                seed=0, load_end=None, obs=None):
    """Serve ``ops`` requests from ``clients`` closed-loop clients.

    The op budget is split evenly (the remainder goes to the lowest
    client ids, keeping the split deterministic).  Returns the report
    dict.  ``load_end`` skips the internal preload when the caller
    already ran :func:`preload` (pass its return value) — the
    wall-clock benchmarks use this to time serving separately.

    ``obs`` is an optional :class:`repro.obs.ObsRecorder`: during the
    loop only per-request latencies and completion timestamps are
    collected (two list appends per request, fast paths stay fused);
    latency histogram, SLO windows and per-op counts are folded in
    bulk once the loop finishes.  The recorder keeps its own
    request-granularity series because ``thread.latencies`` — which
    :func:`_summarize` reports on — also carries per-cache-line
    entries from the namespace paths.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    start_ns = preload(service, machine, spec, records, seed=seed) \
        if load_end is None else load_end
    threads = machine.threads(clients)
    ops_by_type = {}
    per_client = [ops // clients + (1 if c < ops % clients else 0)
                  for c in range(clients)]
    obs_lists = None if obs is None else [([], []) for _ in threads]

    if _engine.FASTPATH_ENABLED:
        # Fast path: batched request prefetch and direct min-clock
        # interleaving — the same execution order and simulated events
        # as the generator/scheduler reference below, byte-identically.
        entries = []
        for client, thread in enumerate(threads):
            thread.now = start_ns
            thread.collect_latencies()
            stream = RequestStream(spec, records, seed=seed,
                                   client=client)
            entries.append((thread, per_client[client],
                            _client_step(service, machine, spec,
                                         thread, stream,
                                         per_client[client],
                                         ops_by_type,
                                         None if obs_lists is None
                                         else obs_lists[client])))
        end_ns = _engine.run_interleaved(entries)
    else:
        def client_loop(thread, client, budget):
            stream = RequestStream(spec, records, seed=seed,
                                   client=client)
            pair = None if obs_lists is None else obs_lists[client]
            for req in stream.requests(budget):
                begin = thread.now
                op = execute_request(service, thread, spec, req)
                latency = thread.now - begin
                thread.record_latency(latency)
                if pair is not None:
                    pair[0].append(latency)
                    pair[1].append(thread.now)
                _trace(machine, thread, op, begin, thread.now)
                ops_by_type[op] = ops_by_type.get(op, 0) + 1
                yield

        pairs = []
        for client, thread in enumerate(threads):
            thread.now = start_ns
            thread.collect_latencies()
            pairs.append((thread, client_loop(thread, client,
                                              per_client[client])))
        end_ns = _engine.run_workloads(pairs)
    latencies = []
    for thread in threads:
        latencies.extend(thread.latencies)
    if obs is not None:
        obs_lat = []
        obs_ts = []
        for pair in obs_lists:
            obs_lat.extend(pair[0])
            obs_ts.extend(pair[1])
        obs.ingest(obs_lat, obs_ts)
        obs.ingest_ops(ops_by_type)
    report = _summarize(latencies, ops_by_type, start_ns, end_ns, ops)
    report["mode"] = "closed"
    report["clients"] = clients
    return report


def open_loop(machine, service, spec, records, ops, rate_kops,
              workers=2, seed=0, load_end=None, obs=None):
    """Serve ``ops`` Poisson arrivals at ``rate_kops`` thousand ops/s.

    Arrival times come from a seeded exponential interarrival stream —
    deterministic, like everything else.  Requests are dispatched in
    arrival order to the earliest-free worker (ties to the lowest id);
    a request's latency is *completion minus arrival*, so queueing
    delay while every worker is busy counts against the SLO.  That is
    the open-loop property: past saturation the backlog — and p99 —
    grows without bound.  ``load_end`` skips the internal preload like
    :func:`closed_loop`'s, and ``obs`` records like
    :func:`closed_loop`'s (one timestamp append per request in the
    loop, bulk ingest after).
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if rate_kops <= 0:
        raise ValueError("offered rate must be positive")
    start_ns = preload(service, machine, spec, records, seed=seed) \
        if load_end is None else load_end
    threads = machine.threads(workers)
    streams = []
    for worker, thread in enumerate(threads):
        thread.now = start_ns
        streams.append(RequestStream(spec, records, seed=seed,
                                     client=worker))
    arrival_rng = Random((seed << 8) ^ 0xA221)
    mean_gap_ns = _NS_PER_S / (rate_kops * 1e3)
    ops_by_type = {}
    latencies = []
    end_ts = None if obs is None else []
    clock = start_ns
    queue_peak = 0
    if _engine.FASTPATH_ENABLED:
        # Fast path: the dispatch loop with the worker scan fused (one
        # pass finds the earliest-free worker and counts busy ones),
        # per-arrival attribute lookups hoisted, and the per-request
        # generator replaced by the stream's direct step.  Arrival
        # draws, worker choice and executed requests are identical.
        expovariate = arrival_rng.expovariate
        inv_gap = 1.0 / mean_gap_ns
        execute = execute_request
        tracer = machine.tracer
        ops_get = ops_by_type.get
        append_latency = latencies.append
        ts_append = None if end_ts is None else end_ts.append
        for _ in range(ops):
            clock += expovariate(inv_gap)
            # Earliest-free worker (ties to the lowest id: threads are
            # in tid order and the scan keeps the first minimum) and
            # the count of workers still busy past the arrival.
            worker = 0
            thread = threads[0]
            best_now = thread.now
            waiting = 1 if best_now > clock else 0
            for wi in range(1, workers):
                t = threads[wi]
                now = t.now
                if now > clock:
                    waiting += 1
                if now < best_now:
                    worker = wi
                    thread = t
                    best_now = now
            if waiting > queue_peak:
                queue_peak = waiting
            if best_now < clock:
                thread.now = clock
            req = streams[worker].next_request()
            begin = thread.now
            op = execute(service, thread, spec, req)
            if tracer is not None:
                tracer.complete(begin, CAT_SERVE, op,
                                thread.now - begin,
                                track="client%d" % thread.tid)
            ops_by_type[op] = ops_get(op, 0) + 1
            append_latency(thread.now - clock)
            if ts_append is not None:
                ts_append(thread.now)
    else:
        for _ in range(ops):
            clock += arrival_rng.expovariate(1.0 / mean_gap_ns)
            # Earliest-free worker; ties resolved by worker id.
            thread = min(threads, key=lambda t: (t.now, t.tid))
            waiting = sum(1 for t in threads if t.now > clock)
            queue_peak = max(queue_peak, waiting)
            if thread.now < clock:
                thread.now = clock
            req = next(streams[thread.tid - threads[0].tid].requests(1))
            begin = thread.now
            op = execute_request(service, thread, spec, req)
            _trace(machine, thread, op, begin, thread.now)
            ops_by_type[op] = ops_by_type.get(op, 0) + 1
            latencies.append(thread.now - clock)
            if end_ts is not None:
                end_ts.append(thread.now)
    end_ns = max(t.now for t in threads)
    if obs is not None:
        obs.ingest(latencies, end_ts)
        obs.ingest_ops(ops_by_type)
    report = _summarize(latencies, ops_by_type, start_ns, end_ns, ops)
    report["mode"] = "open"
    report["workers"] = workers
    report["offered_kops"] = round(rate_kops, 3)
    report["busy_workers_peak"] = queue_peak
    return report
