"""Deterministic traffic generators (the YCSB core workloads).

Key-choice distributions follow the YCSB reference generators:

* **zipfian** — Gray et al.'s constant-time zipfian sampler over
  ``[0, n)``; rank 0 is the hottest key.  Raw ranks cluster at the low
  end of the keyspace, so key indices are *scrambled* through an FNV
  hash (YCSB's ScrambledZipfianGenerator) — the hot set is spread over
  the whole keyspace, which matters on hardware whose buffers merge
  adjacent lines (the XPBuffer) and whose wear-levelling migrates hot
  lines.
* **latest** — zipfian over recency: the most recently inserted key is
  the hottest (YCSB-D's "read latest" news-feed pattern).
* **uniform** — every live key equally likely.
* **chain** — a deterministic pointer chase: each key index is a hash
  of the previous one, so consecutive reads are dependent (no two
  in flight at once).  This is the paper's worst case: small dependent
  random reads pay full media latency every time (guideline #2).
* **append** — monotonically increasing inserts, the paper's best
  case: a pure sequential log (guideline #3 traffic shape).

Everything is seeded and pure: the same ``(spec, seed, client)``
produces the identical request stream on every host, which is what
makes serve reports byte-identical and cacheable.
"""

from dataclasses import dataclass, field
from random import Random
from typing import NamedTuple

#: Operation names a :class:`Request` may carry.
OPS = ("read", "update", "insert", "scan", "rmw", "delete")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv64(value):
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's
    FNVhash64): the stable scramble used to spread zipfian ranks.

    The eight rounds are unrolled: this runs once per zipfian key and
    once per written value, so it is one of the hottest pure-Python
    spots in the serving stack.
    """
    v = value & _MASK64
    h = ((_FNV_OFFSET ^ (v & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((v >> 8) & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((v >> 16) & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((v >> 24) & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((v >> 32) & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((v >> 40) & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ ((v >> 48) & 0xFF)) * _FNV_PRIME) & _MASK64
    h = ((h ^ (v >> 56)) * _FNV_PRIME) & _MASK64
    return h


# -- number generators -------------------------------------------------------

_zeta_cache = {}
_zeta_high = {}                 # theta -> (largest n summed, its zeta)


def zeta(n, theta):
    """The zipfian normalization constant ``sum(1/i**theta, i=1..n)``.

    Memoized per ``(n, theta)`` — the sum is O(n) and the serve loops
    ask for the same constant for every client.
    """
    key = (n, theta)
    cached = _zeta_cache.get(key)
    if cached is not None:
        return cached
    # Extend incrementally from the largest cached prefix for this
    # theta: the latest distribution re-normalizes after every insert,
    # which would be O(n^2) without this.
    start, total = _zeta_high.get(theta, (0, 0.0))
    if start > n:
        start, total = 0, 0.0
    for i in range(start + 1, n + 1):
        total += 1.0 / (i ** theta)
    _zeta_cache[key] = total
    _zeta_high[theta] = (n, total)
    return total


class ZipfianGenerator:
    """Gray et al. zipfian ranks over ``[0, items)``; rank 0 hottest."""

    def __init__(self, items, theta=0.99, seed=0, rng=None):
        if items < 1:
            raise ValueError("zipfian needs a non-empty keyspace")
        self.items = items
        self.theta = theta
        self.rng = rng if rng is not None else Random(seed)
        self._zetan = zeta(items, theta)
        self._alpha = 1.0 / (1.0 - theta)
        # For items == 2 the denominator is exactly zero (zeta(2) is
        # zetan) — but so is the numerator, and every draw resolves to
        # rank 0 or 1 before eta is consulted, so any finite value do.
        denom = 1.0 - zeta(2, theta) / self._zetan
        self._eta = (0.0 if denom == 0.0 else
                     (1.0 - (2.0 / items) ** (1.0 - theta)) / denom)

    def next(self):
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self.items * (self._eta * u - self._eta + 1.0)
                   ** self._alpha)
        return min(rank, self.items - 1)

    def next_n(self, count):
        """``count`` ranks, draw-for-draw identical to sequential
        :meth:`next` calls, with the normalization constants hoisted."""
        random = self.rng.random
        zetan = self._zetan
        eta = self._eta
        alpha = self._alpha
        items = self.items
        top = items - 1
        second = 1.0 + 0.5 ** self.theta
        out = []
        append = out.append
        for _ in range(count):
            u = random()
            uz = u * zetan
            if uz < 1.0:
                append(0)
            elif uz < second:
                append(1)
            else:
                rank = int(items * (eta * u - eta + 1.0) ** alpha)
                append(rank if rank < top else top)
        return out


class ScrambledZipfianGenerator:
    """Zipfian ranks scrambled over the keyspace through FNV-1a.

    The rank -> index scramble is pure, and zipfian traffic re-draws a
    small hot set of ranks constantly, so the hash is memoized per
    generator (bounded by the keyspace size).
    """

    def __init__(self, items, theta=0.99, seed=0, rng=None):
        self.items = items
        self._zipf = ZipfianGenerator(items, theta=theta, seed=seed,
                                      rng=rng)
        self._scramble = {}

    def next(self):
        rank = self._zipf.next()
        index = self._scramble.get(rank)
        if index is None:
            index = self._scramble[rank] = fnv64(rank) % self.items
        return index

    def next_n(self, count):
        """Batch :meth:`next`: the scramble memo is probed in-loop."""
        scramble = self._scramble
        items = self.items
        out = self._zipf.next_n(count)
        for pos, rank in enumerate(out):
            index = scramble.get(rank)
            if index is None:
                index = scramble[rank] = fnv64(rank) % items
            out[pos] = index
        return out


class UniformGenerator:
    """Every index in ``[0, items)`` equally likely."""

    def __init__(self, items, seed=0, rng=None):
        self.items = items
        self.rng = rng if rng is not None else Random(seed)

    def next(self):
        return self.rng.randrange(self.items)

    def next_n(self, count):
        """Batch :meth:`next`: identical ``randrange`` consumption."""
        randrange = self.rng.randrange
        items = self.items
        return [randrange(items) for _ in range(count)]


class LatestGenerator:
    """Zipfian over recency: index ``last`` is the hottest.

    ``last`` starts at ``items - 1`` and is advanced by
    :meth:`note_insert` as the workload grows the keyspace, exactly
    like YCSB's SkewedLatestGenerator tracking the insert counter.
    """

    def __init__(self, items, theta=0.99, seed=0, rng=None):
        self.last = items - 1
        self._theta = theta
        self._zipf = ZipfianGenerator(items, theta=theta, seed=seed,
                                      rng=rng)

    def note_insert(self, index):
        if index > self.last:
            self.last = index
            # Re-normalize over the grown keyspace (cheap: zeta is
            # memoized and grows by one term per insert at most here).
            self._zipf = ZipfianGenerator(self.last + 1,
                                          theta=self._theta,
                                          rng=self._zipf.rng)

    def next(self):
        return self.last - self._zipf.next()

    def next_n(self, count):
        """Batch :meth:`next`.

        Only valid between inserts — callers that may interleave
        :meth:`note_insert` (the request streams) batch at the stream
        layer instead, where inserts break the batch naturally.
        """
        last = self.last
        return [last - rank for rank in self._zipf.next_n(count)]


# -- workload specs ----------------------------------------------------------

class Request(NamedTuple):
    """One generated operation.

    ``key_index`` is the integer key (format with :func:`make_key`);
    ``scan_len`` is only meaningful for scans; ``version`` makes every
    write carry distinct (but deterministic) bytes.
    """

    op: str
    key_index: int
    scan_len: int
    version: int


@dataclass(frozen=True)
class WorkloadSpec:
    """A named traffic mix over a keyspace."""

    name: str
    #: Cumulative op mix: ``[(op, weight)]``, weights sum to 1.
    mix: tuple
    #: Key-choice distribution: zipfian | uniform | latest | chain | append.
    distribution: str = "zipfian"
    theta: float = 0.99
    value_size: int = 100
    scan_max: int = 20
    description: str = ""

    def ops_in_mix(self):
        return [op for op, _ in self.mix]


#: The six classic YCSB core workloads plus the two paper-faithful
#: mixes.  Proportions are the YCSB workload property files' defaults.
WORKLOADS = {
    "ycsb-a": WorkloadSpec(
        name="ycsb-a", mix=(("read", 0.5), ("update", 0.5)),
        distribution="zipfian",
        description="update heavy: 50/50 read/update, zipfian"),
    "ycsb-b": WorkloadSpec(
        name="ycsb-b", mix=(("read", 0.95), ("update", 0.05)),
        distribution="zipfian",
        description="read mostly: 95/5 read/update, zipfian"),
    "ycsb-c": WorkloadSpec(
        name="ycsb-c", mix=(("read", 1.0),),
        distribution="zipfian",
        description="read only, zipfian"),
    "ycsb-d": WorkloadSpec(
        name="ycsb-d", mix=(("read", 0.95), ("insert", 0.05)),
        distribution="latest",
        description="read latest: 95/5 read/insert, skewed to recent"),
    "ycsb-e": WorkloadSpec(
        name="ycsb-e", mix=(("scan", 0.95), ("insert", 0.05)),
        distribution="zipfian",
        description="short ranges: 95/5 scan/insert, zipfian"),
    "ycsb-f": WorkloadSpec(
        name="ycsb-f", mix=(("read", 0.5), ("rmw", 0.5)),
        distribution="zipfian",
        description="read-modify-write: 50/50 read/rmw, zipfian"),
    "pointer-chase": WorkloadSpec(
        name="pointer-chase", mix=(("read", 1.0),),
        distribution="chain",
        description="dependent small random reads (guideline #2 "
                    "worst case)"),
    "log-append": WorkloadSpec(
        name="log-append", mix=(("insert", 1.0),),
        distribution="append", value_size=1024,
        description="sequential inserts, a pure log (guideline #3 "
                    "best case)"),
}


def make_key(index):
    """The canonical key bytes of an integer key index."""
    return b"user%012d" % index


def key_index(key):
    """Invert :func:`make_key` (services that address by index use it)."""
    return int(key[4:])


#: The 0x5E possible single-byte value patterns, prebuilt so
#: :func:`make_value` never allocates a one-byte ``bytes`` per write.
_VALUE_BYTES = tuple(bytes((0x21 + i,)) for i in range(0x5E))


def make_value(spec, index, version):
    """Deterministic, never-all-zero value bytes for one write.

    One printable byte derived from ``(key, version)`` repeated to the
    spec's value size: cheap to build, distinct across versions, and
    non-zero so zero-filled (lost) media reads back as *missing*, never
    as a valid value.
    """
    h = fnv64(index * 2654435761 + version)
    return _VALUE_BYTES[h % 0x5E] * spec.value_size


@dataclass
class RequestStream:
    """The deterministic request sequence of one client.

    ``client`` partitions the insert keyspace: client ``c`` inserts
    indices ``records + c * capacity + i`` so concurrent clients never
    race to create the same key and a stream's contents do not depend
    on scheduler interleaving.
    """

    spec: WorkloadSpec
    records: int
    seed: int = 0
    client: int = 0
    capacity: int = 1 << 14
    _rng: Random = field(init=False, repr=False)

    def __post_init__(self):
        name_hash = _FNV_OFFSET
        for byte in self.spec.name.encode("utf-8"):
            name_hash = ((name_hash ^ byte) * _FNV_PRIME) & _MASK64
        self._rng = Random((self.seed << 16) ^ (self.client * 7919)
                           ^ name_hash)
        dist = self.spec.distribution
        n = self.records
        if dist == "zipfian":
            self._keys = ScrambledZipfianGenerator(
                n, theta=self.spec.theta, rng=self._rng)
        elif dist == "uniform":
            self._keys = UniformGenerator(n, rng=self._rng)
        elif dist == "latest":
            self._keys = LatestGenerator(n, theta=self.spec.theta,
                                         rng=self._rng)
        elif dist == "chain":
            # Walk the hash chain in full 64-bit space and only reduce
            # to a key index per step: reducing first would trap the
            # walk in a tiny cycle of the small keyspace, turning the
            # paper's worst case into a cache-resident best case.
            self._chain = fnv64(self.seed * 31 + self.client)
            self._keys = None
        elif dist == "append":
            self._keys = None
        else:
            raise ValueError("unknown distribution %r" % dist)
        self._inserted = 0
        self._version = 0

    def _next_op(self):
        u = self._rng.random()
        acc = 0.0
        for op, weight in self.spec.mix:
            acc += weight
            if u < acc:
                return op
        return self.spec.mix[-1][0]

    def _next_insert_index(self):
        index = self.records + self.client * self.capacity \
            + self._inserted
        self._inserted += 1
        return index

    def requests(self, count):
        """Yield ``count`` deterministic :class:`Request` objects."""
        spec = self.spec
        for _ in range(count):
            op = self._next_op()
            self._version += 1
            if spec.distribution == "append" or op == "insert":
                index = self._next_insert_index()
                if spec.distribution == "latest":
                    self._keys.note_insert(index)
                yield Request("insert", index, 0, self._version)
                continue
            if spec.distribution == "chain":
                self._chain = fnv64(self._chain)
                index = self._chain % self.records
            elif spec.distribution == "latest":
                index = max(0, self._keys.next())
            else:
                index = self._keys.next()
            scan_len = 0
            if op == "scan":
                scan_len = 1 + self._rng.randrange(spec.scan_max)
            yield Request(op, index, scan_len, self._version)

    def next_request(self):
        """One :class:`Request`, without generator machinery.

        Draw-for-draw identical to one step of :meth:`requests` — the
        serving fast paths use it where batching is impossible (the
        next stream to consume depends on simulated completion times).
        """
        spec = self.spec
        op = self._next_op()
        self._version += 1
        if spec.distribution == "append" or op == "insert":
            index = self._next_insert_index()
            if spec.distribution == "latest":
                self._keys.note_insert(index)
            return Request("insert", index, 0, self._version)
        if spec.distribution == "chain":
            self._chain = fnv64(self._chain)
            index = self._chain % self.records
        elif spec.distribution == "latest":
            index = max(0, self._keys.next())
        else:
            index = self._keys.next()
        scan_len = 0
        if op == "scan":
            scan_len = 1 + self._rng.randrange(spec.scan_max)
        return Request(op, index, scan_len, self._version)

    def next_requests(self, count):
        """A batch of ``count`` requests as a list.

        Draw-for-draw identical to ``count`` sequential
        :meth:`next_request` calls, with the per-request attribute
        lookups, mix thresholds and distribution dispatch hoisted out
        of the loop.  Request generation never consults machine state,
        so a stream's batch can be prefetched ahead of execution
        without changing anything downstream.
        """
        spec = self.spec
        dist = spec.distribution
        rng_random = self._rng.random
        randrange = self._rng.randrange
        # Cumulative mix thresholds, accumulated exactly like
        # _next_op's scan so float partial sums match bit-for-bit.
        bounds = []
        acc = 0.0
        for name, weight in spec.mix:
            acc += weight
            bounds.append((acc, name))
        bound0, op0 = bounds[0]
        rest = bounds[1:]
        last_op = bounds[-1][1]
        keys = self._keys
        keys_next = keys.next if keys is not None else None
        records = self.records
        scan_max = spec.scan_max
        is_append = dist == "append"
        is_chain = dist == "chain"
        is_latest = dist == "latest"
        chain = self._chain if is_chain else 0
        base = records + self.client * self.capacity
        inserted = self._inserted
        version = self._version
        out = []
        append_out = out.append
        for _ in range(count):
            u = rng_random()
            if u < bound0:
                op = op0
            else:
                op = last_op
                for bound, name in rest:
                    if u < bound:
                        op = name
                        break
            version += 1
            if is_append or op == "insert":
                index = base + inserted
                inserted += 1
                if is_latest:
                    keys.note_insert(index)
                append_out(Request("insert", index, 0, version))
                continue
            if is_chain:
                chain = fnv64(chain)
                index = chain % records
            else:
                index = keys_next()
                if is_latest and index < 0:
                    index = 0
            if op == "scan":
                append_out(Request(op, index,
                                   1 + randrange(scan_max), version))
            else:
                append_out(Request(op, index, 0, version))
        self._version = version
        self._inserted = inserted
        if is_chain:
            self._chain = chain
        return out


def get_workload(name):
    """Look up a workload spec; raises KeyError with the valid names."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError("unknown workload %r (choose from %s)"
                       % (name, ", ".join(sorted(WORKLOADS))))
