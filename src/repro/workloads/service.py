"""The uniform ``Service`` protocol over the application substrates.

Every storage layer this repo grew — the LSM key-value store, PMemKV's
cmap engine, the NOVA file system, the PMDK transaction library — is
wrapped behind the same five operations (``get`` / ``put`` / ``scan`` /
``delete`` / ``recover``), so one traffic generator can drive all of
them and the serve reports are comparable across substrates.

Adapters are honest about their substrate's shape:

* **lsm** — puts append to the WAL and may trigger memtable flushes
  and compactions mid-request (the latency spikes are the point);
* **pmemkv** — cmap's persist-then-publish inserts and in-place RMW
  updates under stripe locks;
* **nova** — each key owns a fixed file slot; sub-page slot writes
  become NOVA-datalog embed appends (sequentialized random writes);
* **pmdk** — a fixed slot table updated under undo-log transactions;
  recovery rolls back any transaction the crash interrupted.

``recover()`` rebuilds a fresh adapter from the machine's *persistent*
bytes only, which is what makes serving fault-injectable: run traffic,
``machine.power_fail()``, recover, keep serving.
"""

import struct

from repro._units import KIB, MIB, align_up
from repro.workloads.generators import key_index, make_key

#: Registry of substrate name -> adapter class (filled at the bottom).
SUBSTRATES = {}


class Service:
    """Protocol for a servable key-value substrate.

    ``thread`` is the simulated client thread performing the request;
    all costs land on its virtual clock.  Keys and values are bytes.
    """

    #: Registry name (set by subclasses).
    name = None

    def get(self, thread, key):
        """Point lookup; returns the value or None."""
        raise NotImplementedError

    def put(self, thread, key, value):
        """Durable insert-or-update."""
        raise NotImplementedError

    def scan(self, thread, key, count):
        """Up to ``count`` ordered (key, value) pairs from ``key`` on."""
        raise NotImplementedError

    def delete(self, thread, key):
        """Durable removal; returns True when the key existed."""
        raise NotImplementedError

    def recover(self):
        """A fresh adapter rebuilt from persistent state only.

        Called after :meth:`~repro.sim.platform.Machine.power_fail`;
        returns ``(service, recovery_report_or_None)``.
        """
        raise NotImplementedError

    def stats(self):
        """Substrate-specific counters (JSON-able)."""
        return {}


# -- LSM ---------------------------------------------------------------------

class LSMService(Service):
    """The :class:`~repro.kvstore.lsm.LSMStore` behind the protocol."""

    name = "lsm"

    def __init__(self, machine, spec=None, mode="wal-flex", seed=0,
                 naive=False, _store=None):
        from repro.kvstore.lsm import LSMStore
        self.machine = machine
        self.mode = mode
        self.seed = seed
        self.naive = naive
        self.store = _store if _store is not None else \
            LSMStore(machine, mode=mode, seed=seed, naive=naive)

    def get(self, thread, key):
        return self.store.get(thread, key)

    def put(self, thread, key, value):
        self.store.put(thread, key, value, sync=True)

    def scan(self, thread, key, count):
        return self.store.scan(thread, start=key)[:count]

    def delete(self, thread, key):
        existed = self.store.get(thread, key) is not None
        self.store.delete(thread, key, sync=True)
        return existed

    def recover(self):
        from repro.kvstore.lsm import LSMStore
        store = LSMStore.recover(self.machine, mode=self.mode,
                                 seed=self.seed, naive=self.naive)
        service = LSMService(self.machine, mode=self.mode,
                             seed=self.seed, naive=self.naive,
                             _store=store)
        return service, store.recovery_report

    def stats(self):
        s = self.store.stats()
        return {"memtable_entries": s["memtable_entries"],
                "tables": len(s["tables"]),
                "degraded_reads": self.store.degraded_reads}


# -- PMemKV ------------------------------------------------------------------

class PMemKVService(Service):
    """PMemKV's cmap engine over a PMDK pool.

    cmap has no ordered iteration, so ``scan`` walks a volatile sorted
    key list (what the real engine's users do with a secondary index)
    and charges the per-probe hash cost for each pair returned.
    """

    name = "pmemkv"

    #: Buckets per expected key (cmap degrades near full).
    _OVERPROVISION = 4

    def __init__(self, machine, spec=None, records=4096, seed=0,
                 naive=False, keys_hint=None, _pool=None, _cmap=None):
        from repro.pmdk.pool import PmemPool
        from repro.pmemkv.cmap import CMap
        self.machine = machine
        self.records = records
        self.seed = seed
        self.naive = naive
        if _pool is None:
            thread = machine.thread()
            keys = keys_hint if keys_hint is not None else records
            size = max(64 * MIB, align_up(keys * 4 * KIB, MIB))
            _pool = PmemPool.create(machine, thread, kind="optane",
                                    size=size)
            buckets = max(1024, self._OVERPROVISION * keys)
            _cmap = CMap(_pool, buckets=buckets,
                         atomic_updates=not naive, naive=naive)
        self.pool = _pool
        self.cmap = _cmap
        self._sorted_keys = sorted(
            key for key, _ in self.cmap.items())

    def get(self, thread, key):
        return self.cmap.get(thread, key)

    def put(self, thread, key, value):
        from bisect import insort
        known = key in self.cmap._vindex
        self.cmap.put(thread, key, value)
        if not known:
            insort(self._sorted_keys, key)

    def scan(self, thread, key, count):
        from bisect import bisect_left
        start = bisect_left(self._sorted_keys, key)
        out = []
        for k in self._sorted_keys[start:start + count]:
            value = self.cmap.get(thread, k)
            if value is not None:
                out.append((k, value))
        return out

    def delete(self, thread, key):
        from bisect import bisect_left
        existed = self.cmap.delete(thread, key)
        if existed:
            i = bisect_left(self._sorted_keys, key)
            if i < len(self._sorted_keys) \
                    and self._sorted_keys[i] == key:
                del self._sorted_keys[i]
        return existed

    def recover(self):
        from repro.pmdk.pool import PmemPool
        from repro.pmemkv.cmap import CMap
        pool = PmemPool.open(self.machine)
        cmap, report = CMap.open_report(
            pool, self.cmap.table_offset, buckets=self.cmap.buckets,
            stripes=self.cmap.stripes,
            atomic_updates=self.cmap.atomic_updates,
            naive=self.cmap.naive)
        service = PMemKVService(self.machine, records=self.records,
                                seed=self.seed, naive=self.naive,
                                _pool=pool, _cmap=cmap)
        return service, report

    def stats(self):
        return {"entries": len(self.cmap),
                "buckets": self.cmap.buckets,
                "heap_used": self.pool.heap.used_bytes}


# -- NOVA --------------------------------------------------------------------

class NovaFSService(Service):
    """A KV layer over NOVA: each key index owns one file slot.

    The store is one big file; key ``i`` lives at byte offset
    ``i * stride``.  Values are written with a 2-byte length header so
    a slot reads back as present/missing without a directory; sub-page
    slot writes run through NOVA-datalog embed entries, turning the
    random update traffic into sequential log appends (Figure 11's
    point, now under YCSB instead of fio).
    """

    name = "nova"

    _SLOT_HEADER = struct.Struct("<H")

    def __init__(self, machine, spec=None, records=4096, seed=0,
                 value_size=1024, _fs=None, _inode=None):
        from repro.fs.nova import NovaFS
        self.machine = machine
        self.records = records
        self.seed = seed
        self.stride = align_up(self._SLOT_HEADER.size + value_size, 64)
        if _fs is None:
            _fs = NovaFS(machine, datalog=True)
            thread = machine.thread()
            _inode = _fs.create(thread)
        self.fs = _fs
        self.inode = _inode
        self._live = set()

    def _slot(self, key):
        return key_index(key) * self.stride

    def get(self, thread, key):
        index = key_index(key)
        if index not in self._live:
            return None
        off = self._slot(key)
        raw = self.fs.read(thread, self.inode, off,
                           self._SLOT_HEADER.size)
        if len(raw) < self._SLOT_HEADER.size:
            return None
        (vlen,) = self._SLOT_HEADER.unpack(raw)
        if vlen == 0:
            return None
        return self.fs.read(thread, self.inode,
                            off + self._SLOT_HEADER.size, vlen)

    def put(self, thread, key, value):
        blob = self._SLOT_HEADER.pack(len(value)) + value
        self.fs.write(thread, self.inode, self._slot(key), blob,
                      sync=True)
        self._live.add(key_index(key))

    def scan(self, thread, key, count):
        out = []
        index = key_index(key)
        ceiling = max(self._live, default=-1)
        while len(out) < count and index <= ceiling:
            if index in self._live:
                value = self.get(thread, make_key(index))
                if value is not None:
                    out.append((make_key(index), value))
            index += 1
        return out

    def delete(self, thread, key):
        existed = key_index(key) in self._live
        if existed:
            self.fs.write(thread, self.inode, self._slot(key),
                          self._SLOT_HEADER.pack(0), sync=True)
            self._live.discard(key_index(key))
        return existed

    def recover(self):
        from repro.faults.model import MediaError
        from repro.fs.nova import NovaFS
        fs = NovaFS.mount(self.machine, datalog=True)
        service = NovaFSService(
            self.machine, records=self.records, seed=self.seed,
            value_size=self.stride - self._SLOT_HEADER.size,
            _fs=fs, _inode=self.inode)
        report = fs.recovery_report
        if self.inode in fs._files:
            size = fs.stat_size(self.inode)
            for index in range((size + self.stride - 1) // self.stride):
                # Read the whole slot, not just the header: a poisoned
                # data page under the value must surface *now* as an
                # attributed loss, not later as an unreadable get.
                length = min(self.stride, size - index * self.stride)
                try:
                    raw = fs.read_persistent_file(
                        self.inode, index * self.stride, length)
                except MediaError:
                    report.lost += 1
                    report.lost_keys.append(make_key(index))
                    report.note("slot %d unreadable (poisoned data "
                                "page)" % index)
                    continue
                if len(raw) >= self._SLOT_HEADER.size \
                        and self._SLOT_HEADER.unpack(
                            raw[:self._SLOT_HEADER.size])[0]:
                    service._live.add(index)
        return service, report

    def stats(self):
        f = self.fs._files.get(self.inode)
        return {"live_keys": len(self._live),
                "file_bytes": 0 if f is None else f.size,
                "log_entries": 0 if f is None else f.log.length}


# -- PMDK --------------------------------------------------------------------

class PMDKService(Service):
    """A fixed slot table updated under PMDK undo-log transactions.

    Slot layout: ``u16 klen | u16 vlen | key | value`` at a fixed
    stride.  Updates snapshot the slot into the lane's undo log before
    overwriting in place, so a crash mid-update rolls back to the old
    value on recovery — the textbook libpmemobj object update.
    """

    name = "pmdk"

    _SLOT_HEADER = struct.Struct("<HH")
    _KEY_MAX = 24

    def __init__(self, machine, spec=None, records=4096, seed=0,
                 value_size=1024, naive=False, keys_hint=None,
                 _pool=None, _table_off=None, capacity=None):
        from repro.pmdk.pool import PmemPool
        self.machine = machine
        self.records = records
        self.seed = seed
        self.naive = naive
        self.value_max = value_size
        self.stride = align_up(
            self._SLOT_HEADER.size + self._KEY_MAX + value_size, 64)
        if capacity is None:
            capacity = (keys_hint if keys_hint is not None
                        else 2 * records) + 64
        self.capacity = capacity
        if _pool is None:
            thread = machine.thread()
            size = max(64 * MIB, align_up(
                2 * self.capacity * self.stride, MIB))
            _pool = PmemPool.create(machine, thread, kind="optane",
                                    size=size)
            _table_off = _pool.heap.alloc(
                self.capacity * self.stride) - _pool.base
            _pool.set_root(thread, _table_off)
        self.pool = _pool
        self.table_off = _table_off
        self._slots = {}            # key -> slot index
        self._next_slot = 0
        self._free = []

    def _slot_off(self, slot):
        return self.table_off + slot * self.stride

    def _claim_slot(self, key):
        if self._free:
            slot = self._free.pop()
        else:
            slot = self._next_slot
            self._next_slot += 1
            if slot >= self.capacity:
                raise RuntimeError("pmdk slot table full")
        self._slots[key] = slot
        return slot

    def _encode(self, key, value):
        if len(key) > self._KEY_MAX or len(value) > self.value_max:
            raise ValueError("key/value exceeds slot layout")
        return self._SLOT_HEADER.pack(len(key), len(value)) + key + value

    def _declare_publish_order(self, thread, off, blob_len):
        """Tell an installed pmcheck the slot body must be durable
        before the header that publishes it (the header shares its
        cache line with the body's first bytes; pmcheck checks shared
        lines on the later side only)."""
        pmcheck = thread.machine.pmcheck
        if pmcheck is not None:
            ns = self.pool.ns
            pmcheck.require_order(
                [(ns, self.pool.addr(off), blob_len)],
                [(ns, self.pool.addr(off), self._SLOT_HEADER.size)],
                note="pmdk fresh slot: the body must be durable before "
                     "the header that makes the slot visible")

    def get(self, thread, key):
        slot = self._slots.get(key)
        if slot is None:
            return None
        off = self._slot_off(slot)
        raw = self.pool.read(thread, off, self._SLOT_HEADER.size)
        klen, vlen = self._SLOT_HEADER.unpack(raw)
        if not klen:
            return None
        return bytes(self.pool.read(
            thread, off + self._SLOT_HEADER.size + klen, vlen))

    def put(self, thread, key, value):
        from repro.pmdk.tx import Transaction
        blob = self._encode(key, value)
        slot = self._slots.get(key)
        fresh = slot is None
        if fresh:
            slot = self._claim_slot(key)
        off = self._slot_off(slot)
        if fresh and not self.naive:
            # Publish-last for fresh slots: persist the body (key and
            # value, header bytes untouched and still zero), fence,
            # then persist the 4-byte header.  The header store is
            # chunk-atomic, so a power failure at any point leaves the
            # slot either invisible (header zero) or whole — never a
            # half-written blob behind a valid header.  This cannot be
            # done inside a Transaction: commit flushes whole cache
            # lines, and the header shares its line with the body's
            # first bytes, so their persist order could not be forced.
            self.pool.write(thread, off + self._SLOT_HEADER.size,
                            blob[self._SLOT_HEADER.size:])
            self._declare_publish_order(thread, off, len(blob))
            self.pool.write(thread, off,
                            blob[:self._SLOT_HEADER.size])
            return
        if fresh:
            # Naive fresh path: same ordering requirement, declared so
            # pmcheck can prove the single-fence commit below violates
            # it (body and header become durable in one fence).
            self._declare_publish_order(thread, off, len(blob))
        with Transaction(self.pool, thread) as tx:
            # A fresh slot holds no live data: skip the snapshot (the
            # publish is the header becoming non-zero), exactly
            # pmemobj_tx_xadd_range(POBJ_XADD_NO_SNAPSHOT).  Naive
            # mode keeps this path for fresh slots too — a torn blob
            # behind a valid header is exactly the hazard the chaos
            # matrix must catch.
            tx.store(off, blob, snapshot=not fresh)

    def scan(self, thread, key, count):
        out = []
        for k in sorted(self._slots):
            if k < key:
                continue
            if len(out) >= count:
                break
            value = self.get(thread, k)
            if value is not None:
                out.append((k, value))
        return out

    def delete(self, thread, key):
        from repro.pmdk.tx import Transaction
        slot = self._slots.pop(key, None)
        if slot is None:
            return False
        off = self._slot_off(slot)
        with Transaction(self.pool, thread) as tx:
            tx.store(off, self._SLOT_HEADER.pack(0, 0))
        self._free.append(slot)
        return True

    def recover(self):
        from repro.faults.model import MediaError
        from repro.pmdk.pool import PmemPool
        from repro.pmdk.tx import recover_report
        pool = PmemPool.open(self.machine)
        thread = self.machine.thread()
        _, report = recover_report(pool, thread)
        service = PMDKService(
            self.machine, records=self.records, seed=self.seed,
            value_size=self.value_max, naive=self.naive, _pool=pool,
            _table_off=pool.root(), capacity=self.capacity)
        # Allocation state is volatile: put the bump pointer past the
        # slot table so post-recovery allocations cannot land inside it.
        pool.heap.reserve_to(
            pool.base + service.table_off
            + self.capacity * self.stride)
        for slot in range(self.capacity):
            off = service._slot_off(slot)
            try:
                raw = pool.read_persistent(off, self._SLOT_HEADER.size)
                klen, vlen = service._SLOT_HEADER.unpack(raw)
                if not klen:
                    continue
                if klen > self._KEY_MAX or vlen > self.value_max:
                    report.lost += 1
                    report.note("slot %d header corrupt "
                                "(klen=%d vlen=%d)" % (slot, klen, vlen))
                    continue
                key = bytes(pool.read_persistent(
                    off + service._SLOT_HEADER.size, klen))
            except MediaError:
                report.lost += 1
                report.note("slot %d unreadable (poisoned line under "
                            "header/key)" % slot)
                continue
            service._next_slot = max(service._next_slot, slot + 1)
            try:
                pool.read_persistent(
                    off + service._SLOT_HEADER.size + klen, vlen)
            except MediaError:
                # The key survived but its value region did not: a
                # loss the report can attribute.
                report.lost += 1
                report.lost_keys.append(key)
                report.note("slot %d value poisoned" % slot)
                continue
            service._slots[key] = slot
            report.recovered += 1
        return service, report

    def stats(self):
        return {"entries": len(self._slots),
                "slots_used": self._next_slot,
                "capacity": self.capacity}


def make_service(substrate, machine, spec, records, ops=0, seed=0,
                 naive=False):
    """Build the adapter for one substrate, sized for the workload.

    ``ops`` is the request count about to be served; fixed-capacity
    substrates (cmap's bucket table, pmdk's slot table) are sized for
    the worst case of every op being an insert, so insert-only mixes
    like log-append cannot overflow them.

    ``naive`` strips the crash-consistency hardening the chaos matrix
    exists to validate: cmap updates go back in place, pmdk fresh slots
    go back to one unordered blob, and the LSM replays its WAL without
    checksum verification.  NOVA has no naive variant — its log entries
    are CRC-framed by construction.
    """
    try:
        cls = SUBSTRATES[substrate]
    except KeyError:
        raise KeyError("unknown substrate %r (choose from %s)"
                       % (substrate, ", ".join(sorted(SUBSTRATES))))
    keys_hint = records + ops
    if cls is LSMService:
        return cls(machine, spec, seed=seed, naive=naive)
    if cls is PMemKVService:
        return cls(machine, spec, records=records, seed=seed,
                   naive=naive, keys_hint=keys_hint)
    if cls is PMDKService:
        return cls(machine, spec, records=records, seed=seed,
                   value_size=spec.value_size, naive=naive,
                   keys_hint=keys_hint)
    return cls(machine, spec, records=records, seed=seed,
               value_size=spec.value_size)


SUBSTRATES.update({
    "lsm": LSMService,
    "pmemkv": PMemKVService,
    "nova": NovaFSService,
    "pmdk": PMDKService,
})
