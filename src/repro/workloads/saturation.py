"""The saturation controller: latency-vs-load curves and SLO search.

The paper's central serving lesson is that Optane substrates have a
sharp saturation knee — throughput scales with offered load until the
device's internal queues fill, then tail latency diverges while
throughput goes flat.  This module reproduces that curve per substrate
and finds the largest offered load whose open-loop p99 still meets an
SLO, which is the number a capacity planner actually wants.

Every measured point goes through :func:`repro.harness.run_sweep` with
a custom ``point_fn``, so serve points share the harness' discipline:
content-addressed caching (a binary-search probe that lands on a curve
rate replays for free), deterministic serial/parallel ordering,
manifests, and optional per-point Chrome traces.  Reports contain only
virtual-time quantities and rounded floats — byte-identical across
reruns and hosts.
"""

from repro.harness.cache import ResultCache
from repro.harness.runner import run_sweep
from repro.workloads.generators import get_workload
from repro.workloads.loadloop import closed_loop, open_loop
from repro.workloads.service import SUBSTRATES, make_service

#: Cache namespace for serve points (bump to invalidate old results).
SERVE_EXPERIMENT = "workloads.serve"
SERVE_VERSION = "1"

#: Offered-load fractions of closed-loop throughput for the curve.
CURVE_FRACTIONS = (0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25)
QUICK_CURVE_FRACTIONS = (0.5, 0.9, 1.25)

#: Workload sizing per mode.
FULL_SHAPE = {"records": 512, "ops": 2048, "clients": 4}
QUICK_SHAPE = {"records": 192, "ops": 480, "clients": 2}

#: Binary-search iterations (each one serve point, usually cached on
#: rerun).
SEARCH_ITERS = 7
QUICK_SEARCH_ITERS = 4

#: Default SLO when none is given: this multiple of the closed-loop
#: p99 (an absolute default cannot fit substrates whose service times
#: span two orders of magnitude).
DEFAULT_SLO_MULTIPLIER = 10.0

#: Fallback absolute SLO for callers that want one number.
DEFAULT_SLO_P99_US = 100.0


def _serve_point(payload):
    """Measure one serve point (module-level: must pickle to workers).

    The payload is the cache identity of the point: workload,
    substrate, mode, shape and seed — plus ``trace_path`` for traced
    runs, which never enters the cache key.
    """
    from repro.sim.platform import Machine
    params = dict(payload)
    trace_path = params.pop("trace_path", None)
    if trace_path is None:
        return _measure(Machine, params)
    from repro.telemetry import recording, write_chrome_trace
    with recording() as tracer:
        report = _measure(Machine, params)
    write_chrome_trace(tracer, trace_path)
    return report


def _measure(machine_cls, params):
    from repro.obs import ObsRecorder
    spec = get_workload(params["workload"])
    machine = machine_cls()
    checker = None
    if params.get("pmcheck"):
        # Install before preload so the checker sees the whole persist
        # history.  "pmcheck" only appears in the payload when enabled,
        # so plain points keep their existing cache addresses.
        from repro.pmcheck import PmCheck
        checker = PmCheck(machine)
        checker.install()
    service = make_service(params["substrate"], machine, spec,
                           records=params["records"],
                           ops=params["ops"], seed=params["seed"])
    # Always-on observability: the recorder rides inside the point and
    # its blob travels in the record (through the cache and into the
    # manifest), where the CLI externalizes it as a content-addressed
    # artifact.  REPRO_OBS=0 yields None and the loops skip recording.
    obs = ObsRecorder.from_env(params["substrate"],
                               workload=params["workload"])
    common = dict(records=params["records"], ops=params["ops"],
                  seed=params["seed"], obs=obs)
    if params["mode"] == "closed":
        report = closed_loop(machine, service, spec,
                             clients=params["clients"], **common)
    else:
        report = open_loop(machine, service, spec,
                           rate_kops=params["rate_kops"],
                           workers=params["clients"], **common)
    report["workload"] = params["workload"]
    report["substrate"] = params["substrate"]
    report["service"] = service.stats()
    if checker is not None:
        report["pmcheck"] = checker.summary()
        checker.uninstall()
    if obs is not None:
        report["obs"] = obs.to_dict()
    return report


def _base_params(workload, substrate, shape, seed):
    return {
        "workload": workload,
        "substrate": substrate,
        "records": shape["records"],
        "ops": shape["ops"],
        "clients": shape["clients"],
        "seed": seed,
    }


def _one_point(params, collect=None, **harness):
    """One serve point through the harness (cache-checked).

    ``collect`` optionally receives the point's manifest entry, so
    :func:`serve` can fold the closed-loop run and every saturation
    probe into the curve manifest (obs artifacts included) with their
    real provenance (key, cached flag) preserved.
    """
    grid = {key: (value,) for key, value in params.items()}
    run = run_sweep(grid, point_fn=_serve_point,
                    experiment=SERVE_EXPERIMENT, version=SERVE_VERSION,
                    **harness)
    if not run.ok:
        index, error = run.failures[0]
        raise RuntimeError("serve point failed: %s" % error)
    if collect is not None:
        collect.append(run.manifest.points[0])
    return run.records[0]


def serve(workload, substrate, quick=False, slo_p99_us=None, seed=0,
          jobs=None, cache=None, trace_dir=None, progress=None,
          pmcheck=False):
    """Full serving study of one workload x substrate pair.

    Returns ``(report, curve_manifest)``:

    1. a **closed-loop** run establishes the substrate's max
       self-throttled throughput;
    2. an **open-loop curve** offers fractions of that rate through
       one ``run_sweep`` (the paper-style latency-vs-load curve);
    3. a **binary search** brackets the largest offered rate whose
       open-loop p99 meets the SLO.

    The report is pure virtual-time data: byte-identical for the same
    arguments on any host, serial or parallel.  With ``pmcheck`` the
    persistency-order checker rides along in every point and the
    report gains a ``pmcheck`` section aggregating its findings.
    """
    get_workload(workload)
    if substrate not in SUBSTRATES:
        raise KeyError("unknown substrate %r (choose from %s)"
                       % (substrate, ", ".join(sorted(SUBSTRATES))))
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    fractions = QUICK_CURVE_FRACTIONS if quick else CURVE_FRACTIONS
    iters = QUICK_SEARCH_ITERS if quick else SEARCH_ITERS
    if cache is None:
        cache = ResultCache()
    harness = dict(jobs=jobs, cache=cache, trace_dir=trace_dir,
                   progress=progress)
    base = _base_params(workload, substrate, shape, seed)
    if pmcheck:
        base["pmcheck"] = True

    closed_points = []
    closed = _one_point(dict(base, mode="closed"),
                        collect=closed_points, **harness)
    closed_kops = closed["achieved_kops"]
    explicit_slo = slo_p99_us is not None
    if not explicit_slo:
        slo_p99_us = DEFAULT_SLO_MULTIPLIER * closed["latency_us"]["p99"]
    slo_p99_us = round(float(slo_p99_us), 3)

    rates = tuple(round(frac * closed_kops, 3) for frac in fractions)
    grid = dict({key: (value,) for key, value in base.items()},
                mode=("open",), rate_kops=rates)
    curve_run = run_sweep(grid, point_fn=_serve_point,
                          experiment=SERVE_EXPERIMENT,
                          version=SERVE_VERSION,
                          name="serve:%s:%s" % (workload, substrate),
                          **harness)
    if not curve_run.ok:
        index, error = curve_run.failures[0]
        raise RuntimeError("curve point failed: %s" % error)
    curve = [{"offered_kops": rec["offered_kops"],
              "achieved_kops": rec["achieved_kops"],
              "p50_us": rec["latency_us"]["p50"],
              "p99_us": rec["latency_us"]["p99"],
              "p999_us": rec["latency_us"]["p999"]}
             for rec in curve_run.records]

    probe_points = []
    saturation = _search(base, closed_kops, slo_p99_us, explicit_slo,
                         iters, harness, collect=probe_points)
    # The returned manifest covers the *whole* study: closed-loop
    # point, curve sweep, then every saturation probe, in that
    # deterministic order — so obs artifacts cover every measurement
    # and ``repro report`` sees the full picture.  Probe rates that
    # landed on curve rates appear twice with identical keys; the
    # comparator indexes by params, so duplicates collapse harmlessly.
    curve_run.manifest.points = (closed_points
                                 + curve_run.manifest.points
                                 + probe_points)
    report = {
        "workload": workload,
        "substrate": substrate,
        "quick": bool(quick),
        "seed": seed,
        "shape": dict(shape),
        "closed": {k: v for k, v in closed.items() if k != "obs"},
        "curve": curve,
        "saturation": saturation,
    }
    if pmcheck:
        violations = []
        total = 0
        points = [("closed", closed)] + [("open", rec)
                                         for rec in curve_run.records]
        for mode, rec in points:
            summary = rec.get("pmcheck")
            if not summary:
                continue
            total += summary.get("total", 0)
            for violation in summary.get("violations", ()):
                violations.append(dict(violation, cell={
                    "workload": workload, "substrate": substrate,
                    "mode": mode}))
        report["pmcheck"] = {"total": total, "violations": violations}
    return report, curve_run.manifest


def _probe(base, rate_kops, harness, collect=None):
    rec = _one_point(dict(base, mode="open", rate_kops=rate_kops),
                     collect=collect, **harness)
    return rec["latency_us"]["p99"]


def _search(base, closed_kops, slo_p99_us, explicit_slo, iters,
            harness, collect=None):
    """Binary search for the max offered rate meeting the p99 SLO.

    Brackets between 5% and 125% of the closed-loop throughput: below
    the knee the open-loop p99 tracks service time; past it the queue
    diverges, so p99 crosses any sane SLO exactly once in the bracket.
    """
    lo = round(0.05 * closed_kops, 3)
    hi = round(1.25 * closed_kops, 3)
    probes = []

    def meets(rate):
        p99 = _probe(base, rate, harness, collect=collect)
        ok = p99 <= slo_p99_us
        probes.append({"rate_kops": rate, "p99_us": p99,
                       "meets_slo": ok})
        return ok

    result = {"slo_p99_us": slo_p99_us, "slo_explicit": explicit_slo,
              "closed_kops": closed_kops, "probes": probes}
    if meets(hi):
        # No divergence inside the bracket: the SLO holds even past
        # the closed-loop ceiling (tiny quick shapes can do this).
        result.update(max_kops=hi, slo_met=True, saturated=False)
        return result
    if not meets(lo):
        result.update(max_kops=0.0, slo_met=False, saturated=True)
        return result
    for _ in range(iters):
        mid = round((lo + hi) / 2.0, 3)
        if mid in (lo, hi):
            break
        if meets(mid):
            lo = mid
        else:
            hi = mid
    result.update(max_kops=lo, slo_met=True, saturated=True)
    return result
