"""YCSB-style traffic generation and serving over the substrates.

The serving stack, bottom to top:

* :mod:`repro.workloads.generators` — seeded key/op streams (the YCSB
  A-F mixes plus the paper-faithful pointer-chase and log-append);
* :mod:`repro.workloads.service` — one ``Service`` protocol wrapped
  around the LSM store, PMemKV cmap, NOVA-fs and PMDK tx substrates;
* :mod:`repro.workloads.loadloop` — closed-loop multi-client and
  open-loop Poisson drivers with per-request latency reports;
* :mod:`repro.workloads.saturation` — latency-vs-load curves and the
  SLO-driven search for each substrate's saturation point.

``python -m repro serve <workload> <substrate>`` is the front door.
"""

from repro.workloads.generators import (
    OPS, Request, RequestStream, WORKLOADS, WorkloadSpec, get_workload,
    make_key, make_value,
)
from repro.workloads.loadloop import closed_loop, execute_request, open_loop
from repro.workloads.saturation import (
    DEFAULT_SLO_P99_US, SERVE_EXPERIMENT, serve,
)
from repro.workloads.service import SUBSTRATES, Service, make_service

__all__ = [
    "OPS", "Request", "RequestStream", "WORKLOADS", "WorkloadSpec",
    "get_workload", "make_key", "make_value",
    "closed_loop", "execute_request", "open_loop",
    "DEFAULT_SLO_P99_US", "SERVE_EXPERIMENT", "serve",
    "SUBSTRATES", "Service", "make_service",
]
