"""The chaos matrix: crash point x tear pattern x poison site.

Every workload in :data:`WORKLOADS` is a small end-to-end run of one
stack layer (LSM in each durability mode, NOVA-datalog, PMDK
transactions).  The matrix re-runs each workload once per fault
combination — power failure at a chosen persist boundary, a torn-write
pattern for the final XPLine, and an optionally poisoned persist site —
then recovers and checks the layer's *degradation invariants*:

1. recovery never raises;
2. every value read back is correct or missing, never wrong;
3. missing values form a suffix of the operation order (crash
   semantics) unless the recovery report admits media loss;
4. data loss is always *reported* — a gap without ``report.lost > 0``
   is a violation.

Cases fan out through :func:`repro.harness.executor.run_points` with a
per-job timeout, and the run emits a :class:`RunManifest` whose bytes
depend only on (matrix, seed) — timings are zeroed — so two runs with
the same arguments produce identical files (``repro compare`` friendly).

``naive=True`` replays the kvstore WALs without CRC verification: the
matrix is expected to *find* wrong-value violations then, demonstrating
that it catches exactly the torn-tail corruption the CRCs prevent.
"""

import os
from dataclasses import dataclass, field

from repro.faults.model import FaultController, MediaError
from repro.faults.report import RecoveryReport
from repro.harness.executor import run_points
from repro.harness.manifest import RunManifest
from repro.sim.crashpoints import CrashInjector, SimulatedPowerFailure
from repro.sim.platform import Machine

#: Tear patterns: ``none`` disables tearing, ``prefix-N`` keeps exactly
#: N 64 B chunks of the final XPLine, ``seeded`` derives the kept
#: prefix from the injector seed per torn line.
TEAR_PATTERNS = ("none", "prefix-0", "prefix-1", "prefix-2", "seeded")
QUICK_TEARS = ("none", "prefix-1", "seeded")

POISON_SITES = (None, 0, 1, 2)
QUICK_POISONS = (None, 0)

#: Per-case wall-clock budget and retries for the sweep.
CASE_TIMEOUT_S = 120.0
CASE_RETRIES = 1


def _parse_tear(pattern):
    """Map a tear-pattern name to FaultController(tear=, tear_keep=)."""
    if pattern == "none":
        return False, None
    if pattern == "seeded":
        return True, None
    if pattern.startswith("prefix-"):
        return True, int(pattern[len("prefix-"):])
    raise ValueError("unknown tear pattern %r" % pattern)


# -- workloads ---------------------------------------------------------------
#
# Each workload is (run, check).  ``run(machine, payload)`` performs the
# operations; ``check(machine, payload)`` recovers and returns
# ``(violations, RecoveryReport)``.  Values deliberately exceed 64 B so
# records span multiple tear chunks — a torn record is then *partially*
# old bytes, which only a CRC can reject.

_LSM_FLUSH_AT = 4
_LSM_KEYS = 6


def _lsm_pairs():
    return [(b"key%02d" % i, bytes([0x41 + i]) * 96)
            for i in range(_LSM_KEYS)]


def _lsm_run(machine, payload):
    from repro.kvstore.lsm import LSMStore

    store = LSMStore(machine, mode=payload["mode"], seed=1)
    thread = machine.thread()
    for i, (key, value) in enumerate(_lsm_pairs()):
        if i == _LSM_FLUSH_AT:
            store.flush(thread)       # exercise SSTable + manifest sites
        store.put(thread, key, value, sync=True)


def _lsm_check(machine, payload):
    from repro.kvstore.lsm import LSMStore

    store = LSMStore.recover(machine, mode=payload["mode"], seed=1,
                             naive=payload.get("naive", False))
    report = store.recovery_report
    thread = machine.thread()
    violations = []
    present = []
    missing = []
    for key, value in _lsm_pairs():
        got = store.get(thread, key)
        if got is None:
            missing.append(key)
        elif got != value:
            violations.append("wrong value for %r: %r..."
                              % (key, bytes(got[:8])))
        else:
            present.append(key)
    keys = [k for k, _ in _lsm_pairs()]
    if not report.data_loss and present != keys[:len(present)]:
        violations.append("non-suffix hole without reported loss: "
                          "missing %r" % (missing,))
    if missing and payload["crash_at"] is None \
            and payload["tear"] == "none" and not report.data_loss:
        violations.append("clean shutdown lost %r" % (missing,))
    return violations, report


def _make_lsm(mode):
    def run(machine, payload):
        payload = dict(payload, mode=mode)
        _lsm_run(machine, payload)

    def check(machine, payload):
        return _lsm_check(machine, dict(payload, mode=mode))

    return run, check


_NOVA_WRITES = 6
_NOVA_SPAN = 256


def _nova_run(machine, payload):
    from repro.fs.nova import NovaFS

    fs = NovaFS(machine, datalog=True)
    thread = machine.thread()
    inode = fs.create(thread)
    for i in range(_NOVA_WRITES):
        fs.write(thread, inode, i * _NOVA_SPAN,
                 bytes([0x61 + i]) * _NOVA_SPAN, sync=True)


def _nova_check(machine, payload):
    from repro.fs.nova import NovaFS

    fs = NovaFS.mount(machine, datalog=True)
    report = fs.recovery_report
    violations = []
    if 1 not in fs._files:
        # The whole file vanished: legal after a crash (the inode slot
        # may never have committed) or when the report owns the damage.
        if payload["crash_at"] is None and payload["tear"] == "none" \
                and not (report.truncated or report.lost):
            violations.append("file missing after clean shutdown "
                              "without reported damage")
        return violations, report
    total = _NOVA_WRITES * _NOVA_SPAN
    data = fs.read_persistent_file(1, 0, total).ljust(total, b"\x00")
    present = []
    missing = []
    for i in range(_NOVA_WRITES):
        chunk = data[i * _NOVA_SPAN:(i + 1) * _NOVA_SPAN]
        expected = bytes([0x61 + i]) * _NOVA_SPAN
        if chunk == expected:
            present.append(i)
        elif not any(chunk):
            missing.append(i)
        else:
            violations.append("write %d recovered corrupt" % i)
    if not report.data_loss and present != list(range(len(present))):
        violations.append("non-suffix hole without reported loss: "
                          "missing %r" % (missing,))
    return violations, report


def _pmdk_run(machine, payload):
    from repro.pmdk.pool import PmemPool
    from repro.pmdk.tx import Transaction

    thread = machine.thread()
    pool = PmemPool.create(machine, thread)
    a = pool.heap.alloc(64) - pool.base
    b = pool.heap.alloc(64) - pool.base
    pool.write(thread, a, b"A" * 64, instr="ntstore")
    pool.write(thread, b, b"B" * 64, instr="ntstore")
    with Transaction(pool, thread) as tx:
        tx.store(a, b"X" * 64)
        tx.store(b, b"Y" * 64)


def _pmdk_check(machine, payload):
    from repro.pmdk.pool import PmemPool
    from repro.pmdk.tx import recover_report

    report = RecoveryReport(component="pmdk-tx")
    try:
        pool = PmemPool.open(machine)
    except ValueError:
        return [], report             # crashed before the pool header
    except MediaError:
        report.lost += 1
        report.note("pool header poisoned: pool unopenable")
        return [], report
    thread = machine.thread()
    restored, report = recover_report(pool, thread)
    a = pool.heap.alloc(64) - pool.base - 128
    b = a + 64
    try:
        va = pool.read_persistent(a, 64)
        vb = pool.read_persistent(b, 64)
    except MediaError:
        report.lost += 1
        report.note("object poisoned: state unverifiable")
        return [], report
    violations = []
    states_a = (b"\x00" * 64, b"A" * 64, b"X" * 64)
    states_b = (b"\x00" * 64, b"B" * 64, b"Y" * 64)
    if va not in states_a or vb not in states_b:
        violations.append("object bytes corrupt: %r/%r"
                          % (va[:2], vb[:2]))
    elif va == b"X" * 64 or vb == b"Y" * 64:
        committed = va == b"X" * 64 and vb == b"Y" * 64
        rolled = va == b"A" * 64 and vb == b"B" * 64
        if not (committed or rolled) and not report.data_loss:
            violations.append("mixed tx state without reported loss: "
                              "%r/%r" % (va[:1], vb[:1]))
    return violations, report


WORKLOADS = {
    "lsm-flex": _make_lsm("wal-flex"),
    "lsm-posix": _make_lsm("wal-posix"),
    "lsm-pmem": _make_lsm("persistent-memtable"),
    "nova": (_nova_run, _nova_check),
    "pmdk-tx": (_pmdk_run, _pmdk_check),
}


# -- one case ----------------------------------------------------------------

def _run_case(payload):
    """Run one (workload, crash, tear, poison) cell; module-level so the
    parallel executor can pickle it.

    ``trace_path`` in the payload — added by :func:`run_chaos` for
    traced runs, never part of the matrix itself — records the whole
    case (workload, power failure, fault instants, recovery) as one
    Chrome trace.  The result record gains a ``"trace"`` key only when
    traced, so untraced manifests stay byte-identical.
    """
    trace_path = payload.get("trace_path")
    if trace_path is not None:
        from repro.telemetry import recording, write_chrome_trace
        with recording() as tracer:
            record = _run_case_inner(payload)
        write_chrome_trace(tracer, trace_path)
        record["trace"] = trace_path
        return record
    return _run_case_inner(payload)


def _run_case_inner(payload):
    run, check = WORKLOADS[payload["workload"]]
    machine = Machine()
    tear, keep = _parse_tear(payload["tear"])
    controller = FaultController(machine, seed=payload["seed"],
                                 tear=tear, tear_keep=keep)
    injector = CrashInjector(machine, crash_at=payload["crash_at"])
    crashed = False
    try:
        run(machine, payload)
    except SimulatedPowerFailure:
        crashed = True
    injector.uninstall()
    machine.power_fail()
    if payload.get("poison_site") is not None:
        controller.poison_site(payload["poison_site"])
    try:
        violations, report = check(machine, payload)
    except Exception as exc:
        violations = ["recovery raised %s: %s" % (type(exc).__name__, exc)]
        report = None
    return {
        "workload": payload["workload"],
        "crash_at": payload["crash_at"],
        "tear": payload["tear"],
        "poison_site": payload.get("poison_site"),
        "naive": bool(payload.get("naive", False)),
        "crashed": crashed,
        "torn_chunks": controller.torn_chunks,
        "violations": violations,
        "report": report.to_dict() if report is not None else None,
    }


# -- the matrix --------------------------------------------------------------

def count_workload_persists(name):
    """Dry-run one workload and count its persist boundaries."""
    run, _ = WORKLOADS[name]
    machine = Machine()
    injector = CrashInjector(machine)
    run(machine, {"crash_at": None, "tear": "none"})
    return injector.persists


def build_matrix(quick=False, seed=0, naive=False, workloads=None):
    """Enumerate the payloads of one chaos sweep, deterministically."""
    names = sorted(workloads) if workloads else sorted(WORKLOADS)
    tears = QUICK_TEARS if quick else TEAR_PATTERNS
    poisons = QUICK_POISONS if quick else POISON_SITES
    payloads = []
    for name in names:
        total = count_workload_persists(name)
        if quick:
            points = [None] + sorted({1, max(1, total // 2), total})
        else:
            points = [None] + list(range(1, total + 1))
        for crash_at in points:
            for tear in tears:
                for poison in poisons:
                    payloads.append({
                        "workload": name,
                        "crash_at": crash_at,
                        "tear": tear,
                        "poison_site": poison,
                        "seed": seed,
                        "naive": naive,
                    })
    return payloads


@dataclass
class ChaosRun:
    """Everything one chaos sweep produced."""

    manifest: RunManifest
    outcomes: list = field(default_factory=list)
    violations: list = field(default_factory=list)

    @property
    def failures(self):
        """Cases that errored (timeouts, crashes of the runner itself)."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def cases(self):
        return len(self.outcomes)


def case_trace_path(trace_dir, index, payload):
    """Deterministic per-case trace filename inside ``trace_dir``."""
    return os.path.join(trace_dir, "case-%04d-%s.trace.json"
                        % (index, payload["workload"]))


def run_chaos(quick=False, seed=0, jobs=None, naive=False, workloads=None,
              progress=None, timeout_s=CASE_TIMEOUT_S,
              retries=CASE_RETRIES, trace_dir=None):
    """Run the chaos matrix; returns a :class:`ChaosRun`.

    The manifest is deterministic: same (matrix, seed, naive) ->
    byte-identical JSON, because every timing field is zeroed and the
    worker count (which cannot affect the results) is not recorded.

    ``trace_dir`` records every case as a Chrome trace — fault
    injection points appear as instant events on the ``faults`` track —
    and annotates each manifest point with its artifact path.  Tracing
    never changes the case results, only the manifest's annotation.
    """
    payloads = build_matrix(quick=quick, seed=seed, naive=naive,
                            workloads=workloads)
    if trace_dir is None:
        exec_payloads = payloads
        traces = [None] * len(payloads)
    else:
        os.makedirs(trace_dir, exist_ok=True)
        traces = [case_trace_path(trace_dir, i, p)
                  for i, p in enumerate(payloads)]
        exec_payloads = [dict(p, trace_path=t)
                         for p, t in zip(payloads, traces)]
    outcomes = run_points(_run_case, exec_payloads, jobs=jobs,
                          progress=progress, timeout_s=timeout_s,
                          retries=retries)
    for outcome, payload in zip(outcomes, payloads):
        outcome.payload = payload         # clean params, no trace_path
    manifest = RunManifest(
        name="faults-quick" if quick else "faults",
        grid={
            "workloads": sorted(workloads) if workloads
            else sorted(WORKLOADS),
            "tears": list(QUICK_TEARS if quick else TEAR_PATTERNS),
            "poison_sites": [p for p in
                             (QUICK_POISONS if quick else POISON_SITES)],
            "seed": seed,
            "naive": naive,
        },
        jobs=1,
        started=0.0)
    violations = []
    for outcome, trace in zip(outcomes, traces):
        record = outcome.value
        manifest.add_point(params=outcome.payload, record=record,
                           cached=False, elapsed_s=0.0,
                           error=outcome.error,
                           trace=trace if outcome.ok else None)
        if record:
            for text in record["violations"]:
                violations.append({
                    "workload": record["workload"],
                    "crash_at": record["crash_at"],
                    "tear": record["tear"],
                    "poison_site": record["poison_site"],
                    "violation": text,
                })
    manifest.wall_s = 0.0
    return ChaosRun(manifest=manifest, outcomes=outcomes,
                    violations=violations)
