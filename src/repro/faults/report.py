"""Recovery reports: the honest accounting of what a crash cost.

Every recovery path in the stack (WAL replay, SSTable open, NOVA log
scan, PMDK undo-log rollback) fills one of these instead of silently
succeeding or raising: how many records came back intact, how many
were truncated at a torn tail (expected crash semantics — the data
never fully reached the media), and how many were *lost* to media
faults (poisoned XPLines, unreadable log pages).  Truncation is the
contract working as designed; loss is real damage the caller must know
about.
"""

from dataclasses import dataclass, field


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass over one persistent structure."""

    component: str = ""
    recovered: int = 0        # records/entries intact and applied
    truncated: int = 0        # torn-tail records dropped (crash semantics)
    lost: int = 0             # records destroyed by media faults
    lost_keys: list = field(default_factory=list)
    details: list = field(default_factory=list)

    @property
    def clean(self):
        """True when recovery saw neither truncation nor loss."""
        return self.truncated == 0 and self.lost == 0

    @property
    def data_loss(self):
        """True when media faults destroyed data (beyond crash semantics)."""
        return self.lost > 0

    def note(self, message):
        self.details.append(message)

    def merge(self, other, prefix=None):
        """Fold a sub-report (e.g. one SSTable) into this aggregate."""
        if other is None:
            return self
        self.recovered += other.recovered
        self.truncated += other.truncated
        self.lost += other.lost
        self.lost_keys.extend(other.lost_keys)
        tag = prefix if prefix is not None else other.component
        for detail in other.details:
            self.details.append("%s: %s" % (tag, detail) if tag else detail)
        return self

    def to_dict(self):
        return {
            "component": self.component,
            "recovered": self.recovered,
            "truncated": self.truncated,
            "lost": self.lost,
            "lost_keys": [repr(k) for k in self.lost_keys],
            "details": list(self.details),
        }

    def summary(self):
        return ("%s: %d recovered, %d truncated, %d lost"
                % (self.component or "recovery", self.recovered,
                   self.truncated, self.lost))
