"""Deterministic, seedable media-fault injection.

Real Optane DIMMs misbehave in ways a clean power-cut model misses:

* **Torn XPLine writes** — ADR drains the WPQ on power loss, but the
  256 B XPLine behind the final burst of 64 B stores is updated
  chunk-at-a-time; only a *prefix* of the chunks written to that line
  is guaranteed to land.  The prefix length is chosen deterministically
  from the injector seed, so every torn state is reproducible.
* **Poisoned XPLines** — uncorrectable media errors surface as poison:
  any read overlapping a poisoned line raises :class:`MediaError`.
* **Transient read errors** — a line fails its first N timed reads,
  then succeeds (retry-able device hiccups).
* **Thermal-throttle windows** — media occupancies stretch by a factor
  during a configured window, degrading bandwidth the way a hot DIMM
  does.

All faults are injected through one :class:`FaultController` installed
on the :class:`~repro.sim.platform.Machine`; it hooks the namespace
persist path (composing with :class:`~repro.sim.crashpoints.CrashInjector`)
and the :class:`~repro.sim.media.XPMedia` occupancy model.
"""

import zlib

from repro._units import CACHELINE, XPLINE


class MediaError(Exception):
    """An uncorrectable (or transient) media error surfaced to software."""

    def __init__(self, message, addr=None, size=None, transient=False):
        super().__init__(message)
        self.addr = addr
        self.size = size
        self.transient = transient


def _mix(seed, *parts):
    """Small deterministic hash: seed + context -> 32-bit value."""
    blob = ("%d|" % seed + "|".join(str(p) for p in parts)).encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def _xplines(addr, size):
    """The XPLine indices overlapped by ``[addr, addr+size)``."""
    first = addr // XPLINE
    last = (addr + max(size, 1) - 1) // XPLINE
    return range(first, last + 1)


class FaultController:
    """Machine-wide fault injector; install once per simulated machine.

    Creating the controller wires it into the machine's persist path
    and every Optane DIMM's media model.  All randomness derives from
    ``seed`` plus the fault site, never from global state, so the same
    (workload, seed) pair replays the same faults bit-for-bit.
    """

    def __init__(self, machine, seed=0, tear=False, tear_keep=None):
        self.machine = machine
        self.seed = seed
        self.tear = tear
        #: Explicit prefix length for torn writes; None derives it from
        #: the seed per torn line.
        self.tear_keep = tear_keep
        self._tail = []              # [(ns, line_addr, old_bytes)]
        self._tail_key = None        # (ns_id, xpline) of the open tail
        self.persist_order = []      # distinct (ns_id, xpline), first-persist order
        self._persist_seen = set()
        self.poisoned = set()        # {(ns_id, xpline)}
        self.transient = {}          # (ns_id, xpline) -> remaining failures
        self.windows = []            # [(start_ns, end_ns, factor)]
        self.torn_lines = []         # (ns_id, line_addr) rolled back last crash
        self.torn_chunks = 0
        self.poison_reads = 0
        self.transient_reads = 0
        machine.faults = self
        for row in machine.optane:
            for _, dimm in row:
                dimm.media.fault_controller = self

    def _trace(self, name, args):
        """Emit a fault instant on the machine's tracer (if tracing).

        Fault sites mostly fire outside simulated time (power failure,
        recovery scans), so events are stamped with the tracer's
        high-water mark — "at the end of what the simulation has done
        so far" — keeping the trace monotone and deterministic.
        """
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(tracer.last_ts, "fault", name,
                           track="faults", args=args)

    # -- torn-write model (persist-path hook) --------------------------

    def before_persist(self, ns, line):
        """Called by the namespace for every line entering ADR."""
        key = (ns.ns_id, line // XPLINE)
        if key not in self._persist_seen:
            self._persist_seen.add(key)
            self.persist_order.append(key)
        if not self.tear:
            return
        if key != self._tail_key:
            # A new XPLine started: everything before it is fully on
            # media (the controller wrote the old line out whole).
            self._tail_key = key
            self._tail = []
        self._tail.append((ns, line, ns.data.read_persistent(line, CACHELINE)))

    def on_power_fail(self):
        """Tear the final XPLine: keep only a prefix of its 64 B chunks.

        Returns the list of (ns_id, line_addr) chunks rolled back.
        """
        torn = []
        if self.tear and self._tail:
            n = len(self._tail)
            keep = self.tear_keep
            if keep is None:
                ns_id, xpline = self._tail_key
                keep = _mix(self.seed, "tear", ns_id, xpline, n) % (n + 1)
            keep = max(0, min(int(keep), n))
            for ns, line, old in reversed(self._tail[keep:]):
                ns.data.write_persistent(line, old)
                torn.append((ns.ns_id, line))
                self._trace("fault.torn_line",
                            {"ns_id": ns.ns_id, "line": line})
            self.torn_chunks += len(torn)
        self._trace("fault.power_fail", {"torn_chunks": len(torn)})
        self._tail = []
        self._tail_key = None
        self.torn_lines = torn
        return torn

    # -- poison / transient errors (read-path hooks) -------------------

    def poison(self, ns, addr, size=1):
        """Mark every XPLine overlapping the range as poisoned."""
        for xp in _xplines(addr, size):
            self.poisoned.add((ns.ns_id, xp))
            self._trace("fault.poison", {"ns_id": ns.ns_id, "xpline": xp})

    def poison_site(self, index):
        """Poison the ``index``-th distinct XPLine ever persisted.

        Deterministic poison-site selection for the chaos matrix: the
        order in which XPLines first reached ADR is a stable property
        of the workload.  Returns the poisoned ``(ns_id, xpline)`` or
        None when nothing persisted.
        """
        if not self.persist_order:
            return None
        site = self.persist_order[index % len(self.persist_order)]
        self.poisoned.add(site)
        self._trace("fault.poison",
                    {"ns_id": site[0], "xpline": site[1], "site": index})
        return site

    def clear_poison(self, ns, addr, size=1):
        """Scrub poison from the range (after a repair rewrote it)."""
        for xp in _xplines(addr, size):
            self.poisoned.discard((ns.ns_id, xp))

    def add_transient(self, ns, addr, size=1, errors=1):
        """The range's lines fail their next ``errors`` timed reads."""
        for xp in _xplines(addr, size):
            self.transient[(ns.ns_id, xp)] = errors

    def transient_site(self, index, errors=1):
        """The ``index``-th distinct persisted XPLine turns flaky.

        The transient analogue of :meth:`poison_site`: deterministic
        site selection over the first-persist order, for mid-serve
        injection where the caller has no namespace handle.  Returns
        the ``(ns_id, xpline)`` site or None when nothing persisted.
        """
        if not self.persist_order:
            return None
        site = self.persist_order[index % len(self.persist_order)]
        self.transient[site] = errors
        self._trace("fault.transient",
                    {"ns_id": site[0], "xpline": site[1],
                     "site": index, "errors": errors})
        return site

    def check_read(self, ns, addr, size, timed=False):
        """Raise :class:`MediaError` if the range hits a fault.

        Poison fires on every read path; transient errors only on timed
        reads (``timed=True``), modelling a device retry the untimed
        recovery scans are allowed to hide.
        """
        if not self.poisoned and not (timed and self.transient):
            return
        for xp in _xplines(addr, size):
            key = (ns.ns_id, xp)
            if timed:
                remaining = self.transient.get(key, 0)
                if remaining > 0:
                    self.transient[key] = remaining - 1
                    self.transient_reads += 1
                    self._trace("fault.transient_read",
                                {"ns_id": ns.ns_id, "xpline": xp})
                    raise MediaError(
                        "transient media error at %s xpline %#x"
                        % (ns.name, xp), addr=xp * XPLINE, size=XPLINE,
                        transient=True)
            if key in self.poisoned:
                self.poison_reads += 1
                self._trace("fault.poison_read",
                            {"ns_id": ns.ns_id, "xpline": xp})
                raise MediaError(
                    "poisoned XPLine at %s xpline %#x" % (ns.name, xp),
                    addr=xp * XPLINE, size=XPLINE)

    def poisoned_ranges(self, ns, addr, size):
        """Sub-ranges of ``[addr, addr+size)`` destroyed by poison.

        Returned as (offset, length) pairs *relative to addr*.
        """
        out = []
        for xp in _xplines(addr, size):
            if (ns.ns_id, xp) not in self.poisoned:
                continue
            start = max(addr, xp * XPLINE)
            end = min(addr + size, (xp + 1) * XPLINE)
            if out and out[-1][0] + out[-1][1] == start - addr:
                out[-1] = (out[-1][0], out[-1][1] + (end - start))
            else:
                out.append((start - addr, end - start))
        return out

    # -- thermal throttling (media hook) -------------------------------

    def add_thermal_window(self, start_ns, end_ns, factor=4.0):
        """Stretch media occupancies by ``factor`` during the window."""
        if factor <= 0:
            raise ValueError("throttle factor must be positive")
        self.windows.append((float(start_ns), float(end_ns), float(factor)))
        self._trace("fault.thermal_window",
                    {"start_ns": float(start_ns), "end_ns": float(end_ns),
                     "factor": float(factor)})

    def throttle_factor(self, now):
        factor = 1.0
        for start, end, f in self.windows:
            if start <= now < end:
                factor *= f
        return factor


def tolerant_read(ns, addr, size, view="persistent"):
    """Read a range, zero-filling poisoned XPLines instead of raising.

    The workhorse of every graceful recovery scan: returns
    ``(data, lost)`` where ``lost`` is a list of (offset, length)
    ranges relative to ``addr`` that were unreadable (their bytes come
    back zeroed).  Without a fault controller this is a plain read.
    """
    fc = getattr(ns.machine, "faults", None)
    raw_read = (ns.data.read_persistent if view == "persistent"
                else ns.data.read)
    data = raw_read(addr, size)
    if fc is None or not fc.poisoned:
        return data, []
    lost = fc.poisoned_ranges(ns, addr, size)
    if not lost:
        return data, []
    fc.poison_reads += len(lost)
    buf = bytearray(data)
    for offset, length in lost:
        buf[offset:offset + length] = b"\x00" * length
    return bytes(buf), lost


def overlaps_lost(lost, offset, length):
    """True when ``[offset, offset+length)`` touches an unreadable range."""
    end = offset + length
    return any(offset < lo + ll and lo < end for lo, ll in lost)


def pread_retry(ns, thread, addr, size, attempts=4, backoff_ns=1000.0):
    """Timed read with bounded retry over *transient* media errors.

    Each retry pays simulated backoff time; poison (a permanent error)
    is re-raised immediately.
    """
    for attempt in range(attempts):
        try:
            return ns.pread(thread, addr, size)
        except MediaError as exc:
            if not exc.transient or attempt == attempts - 1:
                raise
            thread.sleep(backoff_ns * (attempt + 1))
    raise AssertionError("unreachable")
