"""Deterministic fault injection and graceful-degradation testing.

* :mod:`repro.faults.model` — the injector: torn XPLine writes at power
  loss, poisoned lines, transient read errors, thermal throttling.
* :mod:`repro.faults.report` — :class:`RecoveryReport`, the honest
  accounting every recovery path fills in.
* :mod:`repro.faults.chaos` — the (crash x tear x poison) matrix over
  whole-stack workloads.
"""

from repro.faults.chaos import (
    WORKLOADS, ChaosRun, build_matrix, run_chaos,
)
from repro.faults.model import (
    FaultController, MediaError, overlaps_lost, pread_retry,
    tolerant_read,
)
from repro.faults.report import RecoveryReport

__all__ = [
    "ChaosRun",
    "FaultController",
    "MediaError",
    "RecoveryReport",
    "WORKLOADS",
    "build_matrix",
    "overlaps_lost",
    "pread_retry",
    "run_chaos",
    "tolerant_read",
]
