"""The chaos matrix: every (workload, substrate, scenario) a harness point.

Each cell is content-addressed under the ``chaos.serve`` experiment, so
re-running the matrix replays finished cells from the cache and a
``--jobs 4`` run hits the same addresses as ``--jobs 1``.  The manifest
is *normalized* — no wall-clock, no job count, no cache-hit flags, keys
included — so two same-seed runs produce byte-identical manifests
regardless of parallelism or cache temperature (the regression CI leans
on exactly this).

The quick grid keeps CI honest without taking minutes: two update-heavy
workloads x all four substrates x all four scenarios closed-loop, plus
a handful of open-loop cells (admission control and queue-wait
deadlines only exist there).  The full grid widens the workloads and
deepens the shape.  Only value-size-100 workloads are eligible (see
:mod:`repro.chaos_serve.driver` for the NOVA stride constraint).
"""

from dataclasses import dataclass, field

from repro.chaos_serve.driver import SCENARIOS, chaos_serve_cell
from repro.harness.cache import ResultCache
from repro.harness.manifest import RunManifest
from repro.harness.runner import run_cached_points
from repro.workloads.generators import get_workload
from repro.workloads.service import SUBSTRATES

#: Cache-key experiment name for chaos cells.
CHAOS_EXPERIMENT = "chaos.serve"

#: Chaos cells require single-slot NOVA writes (stride | page).
CHAOS_VALUE_SIZE = 100

QUICK_SHAPE = {"records": 160, "ops": 400, "clients": 2}
FULL_SHAPE = {"records": 768, "ops": 2400, "clients": 3}
QUICK_WORKLOADS = ("ycsb-a", "ycsb-f")
FULL_WORKLOADS = ("ycsb-a", "ycsb-b", "ycsb-d", "ycsb-f")
#: Open-loop cells: offered load and the substrates covered in quick.
OPEN_RATE_KOPS = 400.0
QUICK_OPEN_SUBSTRATES = ("lsm", "pmemkv")
QUICK_OPEN_SCENARIOS = ("power-fail", "thermal")

#: Per-cell worker budget: a stuck cell fails loudly, then retries once.
CASE_TIMEOUT_S = 180.0
CASE_RETRIES = 1


def build_chaos_grid(workload=None, substrate=None, quick=False,
                     seed=0, naive=False, pmcheck=False):
    """The cell payloads one chaos run covers, in deterministic order.

    ``workload``/``substrate`` restrict the matrix to one value (the
    CLI's positional arguments); ``None`` means "all eligible".
    """
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    all_workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    workloads = [workload] if workload else list(all_workloads)
    for name in workloads:
        spec = get_workload(name)
        if spec.value_size != CHAOS_VALUE_SIZE:
            raise ValueError(
                "workload %r has value_size=%d; chaos serving only "
                "supports value_size=%d workloads (NOVA's slot stride "
                "must divide the page)" % (name, spec.value_size,
                                           CHAOS_VALUE_SIZE))
    substrates = [substrate] if substrate else sorted(SUBSTRATES)
    base = dict(shape)
    base["seed"] = seed
    base["naive"] = bool(naive)
    if pmcheck:
        # Only present when enabled: plain cells keep their existing
        # cache addresses and manifests byte-identical.
        base["pmcheck"] = True

    payloads = []
    for wname in workloads:
        for sname in substrates:
            for scenario in SCENARIOS:
                payloads.append(dict(base, workload=wname,
                                     substrate=sname, scenario=scenario,
                                     mode="closed"))
    open_workload = workloads[0]
    open_substrates = [s for s in substrates
                       if not quick or s in QUICK_OPEN_SUBSTRATES]
    open_scenarios = QUICK_OPEN_SCENARIOS if quick else SCENARIOS
    for sname in open_substrates:
        for scenario in open_scenarios:
            payloads.append(dict(base, workload=open_workload,
                                 substrate=sname, scenario=scenario,
                                 mode="open", rate_kops=OPEN_RATE_KOPS))
    return payloads


@dataclass
class ChaosServeRun:
    """One chaos matrix run: records, violations, provenance."""

    manifest: RunManifest
    records: list
    violations: list = field(default_factory=list)
    pmcheck_violations: list = field(default_factory=list)

    @property
    def failures(self):
        return self.manifest.failures

    @property
    def ok(self):
        """Clean = every cell ran *and* the oracle stayed silent."""
        return (not self.failures and not self.violations
                and not self.pmcheck_violations)


def run_chaos_serve(workload=None, substrate=None, quick=False, seed=0,
                    naive=False, jobs=None, cache=None, progress=None,
                    trace_dir=None, pmcheck=False):
    """Run the chaos matrix through the harness.

    Returns a :class:`ChaosServeRun`; ``violations`` aggregates every
    durability violation any cell's oracle reported, each annotated
    with its cell so the CLI can print the offending history window.
    With ``pmcheck`` the persistency-order checker rides along in every
    cell and its findings land in ``pmcheck_violations``.
    """
    if cache is None:
        cache = ResultCache()
    payloads = build_chaos_grid(workload=workload, substrate=substrate,
                                quick=quick, seed=seed, naive=naive,
                                pmcheck=pmcheck)
    outcomes, keys, traces = run_cached_points(
        chaos_serve_cell, payloads, CHAOS_EXPERIMENT, cache=cache,
        jobs=jobs, progress=progress, timeout_s=CASE_TIMEOUT_S,
        retries=CASE_RETRIES, trace_dir=trace_dir)

    # Normalized manifest: identical bytes for identical payloads+seed,
    # whatever the job count or cache state was.
    manifest = RunManifest(
        name="chaos-serve-%s" % ("quick" if quick else "full"),
        grid={"workload": sorted({p["workload"] for p in payloads}),
              "substrate": sorted({p["substrate"] for p in payloads}),
              "scenario": list(SCENARIOS),
              "seed": [seed],
              "naive": [bool(naive)]},
        jobs=1, started=0.0)
    records = []
    violations = []
    pmcheck_violations = []
    for payload, outcome, key, trace in zip(payloads, outcomes, keys,
                                            traces):
        record = outcome.value
        if outcome.ok and isinstance(record, dict):
            record = dict(record)
            record.pop("trace", None)     # path varies run to run
        manifest.add_point(params=payload, key=key, record=record,
                           cached=False, elapsed_s=0.0,
                           error=outcome.error, trace=trace)
        if not outcome.ok:
            continue
        records.append(outcome.value)
        cell = {
            "workload": payload["workload"],
            "substrate": payload["substrate"],
            "scenario": payload["scenario"],
            "mode": payload["mode"],
        }
        for violation in outcome.value.get("violations", ()):
            violations.append(dict(violation, cell=dict(cell)))
        for violation in outcome.value.get(
                "pmcheck", {}).get("violations", ()):
            pmcheck_violations.append(dict(violation, cell=dict(cell)))
    manifest.wall_s = 0.0
    return ChaosServeRun(manifest=manifest, records=records,
                         violations=violations,
                         pmcheck_violations=pmcheck_violations)
