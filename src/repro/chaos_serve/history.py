"""The acknowledged-operation history the durability oracle audits.

Every client records its *mutations* (puts and deletes — the operations
whose durability the service promises on acknowledgment) as it serves:
``begin()`` before the substrate call, ``ack()`` when the call returns.
A power failure leaves the current mutation of whichever client it
interrupted permanently un-acked ("in flight"): the client never got an
acknowledgment, so after recovery the write may legally read as either
the old or the new value — but never as anything else.

Timestamps are virtual nanoseconds from the simulated client threads,
so the history is deterministic for a given seed and identical across
hosts and job counts.  The value bytes themselves are never stored:
every write's payload is a pure function of ``(spec, key_index,
version)`` (see :func:`repro.workloads.generators.make_value`), so the
oracle can reconstruct the expected bytes of any recorded version.
"""

from dataclasses import dataclass, field

#: Mutation kinds the history records.
PUT = "put"
DELETE = "delete"


@dataclass
class Mutation:
    """One durable operation as the client experienced it."""

    client: int
    op: str                  # "put" | "delete"
    key_index: int
    version: int             # payload version (puts; 0 for deletes)
    start_ns: float          # virtual time the client issued it
    end_ns: float = None     # virtual acknowledgment time (None = never)
    #: Set by the oracle when a recovery report covered this write's
    #: loss (e.g. a torn-tail rollback counted in ``truncated``).  An
    #: excused write stops being a promise: later audits treat it like
    #: an in-flight write (old or new both legal) instead of
    #: re-flagging the same reported loss at every subsequent crash.
    excused: bool = False

    @property
    def acked(self):
        return self.end_ns is not None


@dataclass
class History:
    """Every client's mutation record for one chaos serve run."""

    events: list = field(default_factory=list)
    _open: dict = field(default_factory=dict)   # client -> Mutation

    def preload(self, records):
        """Record the initial keyspace load: keys ``0..records-1`` at
        version 0, acknowledged before serving starts."""
        for index in range(records):
            self.events.append(Mutation(
                client=-1, op=PUT, key_index=index, version=0,
                start_ns=0.0, end_ns=0.0))

    def begin(self, client, op, key_index, version, start_ns):
        """Open a mutation; returns it (pass to :meth:`ack`).

        A client performs one mutation at a time, so an already-open
        mutation for the same client (a retry of an interrupted call)
        stays in the history as a separate, never-acked attempt.
        """
        mut = Mutation(client=client, op=op, key_index=key_index,
                       version=version, start_ns=start_ns)
        self.events.append(mut)
        self._open[client] = mut
        return mut

    def ack(self, mut, end_ns):
        """Acknowledge a mutation at virtual time ``end_ns``."""
        mut.end_ns = end_ns
        if self._open.get(mut.client) is mut:
            del self._open[mut.client]

    def crash(self):
        """A power failure: every open mutation stays un-acked forever.

        Returns the interrupted mutations (one per client at most).
        """
        interrupted = sorted(self._open.values(),
                             key=lambda m: m.client)
        self._open.clear()
        return interrupted

    def by_key(self):
        """Mutations grouped per key index (insertion order kept)."""
        groups = {}
        for mut in self.events:
            groups.setdefault(mut.key_index, []).append(mut)
        return groups

    def keys(self):
        """Every key index any mutation ever touched, sorted."""
        return sorted({mut.key_index for mut in self.events})

    def window(self, key_index, last=6):
        """The most recent mutations of one key — the "offending
        history window" a violation report prints."""
        muts = [m for m in self.events if m.key_index == key_index]
        return muts[-last:]
