"""The degradation layer: shed and retry instead of collapsing.

Four mechanisms, all on the virtual clock and all seeded — no global
``random``, no wall time, so a chaos serve is byte-identical per seed:

* **deadlines** — each request carries a virtual-ns budget; a request
  that cannot finish inside it counts as ``deadline`` rather than
  hanging the client;
* **retries** — transient media errors are retried with seeded
  exponential backoff, one :class:`random.Random` per client (mixed
  from the run seed with :func:`repro.faults.model._mix`);
* **circuit breaker** — consecutive hard failures trip the breaker
  per substrate; while open, requests fail fast (``breaker``); after a
  virtual-clock cooldown it half-opens and lets one probe through;
* **admission control** — the open-loop driver sheds arrivals beyond a
  bounded in-flight depth with a counted ``SHED`` result, keeping the
  p99 of *accepted* requests bounded through fault windows.

``--naive`` builds a :class:`DegradeConfig` with everything off: no
retries, no breaker, no shedding, no deadline — the configuration the
chaos matrix must catch misbehaving.
"""

from dataclasses import dataclass, field
from random import Random

from repro.faults.model import _mix

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Request dispositions beyond plain success.
OK = "ok"
SHED = "shed"
DEADLINE = "deadline"
BROKEN = "breaker"
FAILED = "failed"


@dataclass(frozen=True)
class DegradeConfig:
    """Tuning for the degradation layer (all times virtual ns)."""

    enabled: bool = True
    deadline_ns: float = 2_000_000.0       # 2 ms per request
    retry_attempts: int = 4                # total tries per substrate call
    backoff_base_ns: float = 1_000.0       # first-retry sleep
    backoff_mult: float = 4.0
    backoff_jitter: float = 0.5            # +/- fraction of the backoff
    breaker_threshold: int = 5             # consecutive hard failures
    breaker_cooldown_ns: float = 500_000.0
    max_inflight: int = 64                 # open-loop admission bound

    @classmethod
    def naive(cls):
        """Everything off: the unprotected serving path."""
        return cls(enabled=False, deadline_ns=float("inf"),
                   retry_attempts=1, breaker_threshold=0,
                   max_inflight=0)


@dataclass
class CircuitBreaker:
    """Per-substrate breaker on the virtual clock.

    Counts *consecutive* hard failures; at ``threshold`` it opens and
    every request fails fast until ``cooldown_ns`` of virtual time has
    passed, then it half-opens: the next request is the probe, and its
    outcome closes or re-opens the breaker.
    """

    threshold: int
    cooldown_ns: float
    state: str = BREAKER_CLOSED
    failures: int = 0
    opened_ns: float = 0.0
    transitions: list = field(default_factory=list)

    def _move(self, state, now_ns):
        self.state = state
        self.transitions.append((round(now_ns, 1), state))

    def allow(self, now_ns):
        """Whether a request may proceed at virtual time ``now_ns``."""
        if self.threshold <= 0:
            return True
        if self.state == BREAKER_OPEN:
            if now_ns - self.opened_ns >= self.cooldown_ns:
                self._move(BREAKER_HALF_OPEN, now_ns)
                return True
            return False
        return True

    def transition_counts(self):
        """Transition tally by target state (for obs counters)."""
        counts = {}
        for _ts, state in self.transitions:
            counts[state] = counts.get(state, 0) + 1
        return counts

    def record(self, ok, now_ns):
        """Feed one request outcome back into the breaker."""
        if self.threshold <= 0:
            return
        if ok:
            if self.state != BREAKER_CLOSED:
                self._move(BREAKER_CLOSED, now_ns)
            self.failures = 0
            return
        self.failures += 1
        if self.state == BREAKER_HALF_OPEN or \
                self.failures >= self.threshold:
            if self.state != BREAKER_OPEN:
                self._move(BREAKER_OPEN, now_ns)
            self.opened_ns = now_ns
            self.failures = 0


class RetryPolicy:
    """Seeded exponential backoff, one RNG per client.

    The jitter stream depends only on ``(seed, "retry", client)`` and
    the order of that client's own retries — never on other clients or
    the scheduler — so per-client request streams stay deterministic.
    """

    def __init__(self, config, seed):
        self.config = config
        self.seed = seed
        self._rngs = {}

    def _rng(self, client):
        rng = self._rngs.get(client)
        if rng is None:
            rng = Random(_mix(self.seed, "retry", client))
            self._rngs[client] = rng
        return rng

    def backoff_ns(self, client, attempt):
        """Virtual sleep before retry ``attempt`` (1-based)."""
        cfg = self.config
        base = cfg.backoff_base_ns * (cfg.backoff_mult ** (attempt - 1))
        jitter = (self._rng(client).random() * 2.0 - 1.0) * \
            cfg.backoff_jitter
        return base * (1.0 + jitter)

    def attempts(self):
        return max(1, self.config.retry_attempts)


@dataclass
class DegradeStats:
    """Counters the serving loop accumulates (JSON-able)."""

    retries: int = 0
    retry_successes: int = 0
    shed: int = 0
    deadline_misses: int = 0
    breaker_rejects: int = 0
    failures: int = 0

    def to_dict(self):
        return {
            "retries": self.retries,
            "retry_successes": self.retry_successes,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "breaker_rejects": self.breaker_rejects,
            "failures": self.failures,
        }
