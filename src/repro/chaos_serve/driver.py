"""The chaos serving loop: traffic, faults and recovery, interleaved.

One *cell* = one (workload, substrate, scenario, mode) combination:
serve a seeded request stream against a live substrate while the
scenario injects faults mid-serve on the virtual clock, recover from
every power failure, and audit each recovered image with the
durability oracle.  The four scenarios:

* ``power-fail`` — two mid-traffic power failures (with torn-write
  semantics) plus the final audit crash; every recovery is audited;
* ``poison``     — an XPLine a previous persist landed on goes bad
  mid-serve; reads start failing permanently, recovery must *report*
  whatever the poison destroyed;
* ``transient``  — three windows of retryable read errors; the
  degradation layer's retries should absorb them;
* ``thermal``    — a throttle window stretches media occupancies; the
  admission/deadline machinery keeps the tail of accepted requests
  bounded instead of queueing without bound.

Every scenario ends with a **final audit**: power-fail the machine,
``Service.recover()``, and run the durable-linearizability check over
the full history, so all four scenarios exercise the oracle.

Requests are dispatched sequentially in virtual-time order (the
earliest-free client goes next, ties to the lowest id — the same
discipline :func:`repro.workloads.loadloop.open_loop` uses), so a
power failure interrupts exactly one request, whose mutation stays
un-acked in the history.  Everything — arrivals, retry jitter, fault
sites, crash points — draws from seeded RNGs; a cell is a pure
function of its payload.

Chaos cells only serve value-size-100 workloads: NOVA's slot stride is
``align_up(2 + value_size, 64)`` and must divide the 4 KiB page, or a
slot write straddles pages and becomes multiple log entries that can
tear *independently* — a substrate-layout artifact, not a durability
property this matrix is probing.
"""

import heapq
from random import Random

from repro.sim import engine as _engine

from repro.chaos_serve.degrade import (
    BROKEN, DEADLINE, FAILED, OK, SHED, CircuitBreaker, DegradeConfig,
    DegradeStats, RetryPolicy,
)
from repro.chaos_serve.history import DELETE, PUT, History
from repro.chaos_serve.oracle import check_durability, service_read_fn
from repro.faults.model import FaultController, MediaError, _mix
from repro.faults.report import RecoveryReport
from repro.obs import ObsRecorder
from repro.sim.crashpoints import CrashInjector, SimulatedPowerFailure
from repro.sim.platform import Machine
from repro.telemetry.events import CAT_CHAOS, CAT_DEGRADE
from repro.workloads.generators import (
    RequestStream, get_workload, make_key, make_value,
)
from repro.workloads.loadloop import _summarize, preload
from repro.workloads.service import make_service

#: The fault scenarios every chaos matrix covers.
SCENARIOS = ("power-fail", "poison", "transient", "thermal")

#: Virtual blackout between power loss and serving resuming.
RECOVERY_GAP_NS = 50_000.0
#: Fail-fast cost of a breaker reject (the client still burns time).
REJECT_NS = 1_000.0
#: Thermal scenario: occupancy stretch factor and window length.
THERMAL_FACTOR = 8.0
THERMAL_SPAN_NS = 250_000.0
#: Transient scenario: failures per injected site.
TRANSIENT_ERRORS = 2

_NS_PER_S = 1e9


class _Env:
    """Everything one chaos cell threads through its serving loop."""

    def __init__(self, payload):
        self.payload = payload
        self.spec = get_workload(payload["workload"])
        self.seed = payload["seed"]
        self.naive = bool(payload.get("naive", False))
        self.scenario = payload["scenario"]
        self.ops = payload["ops"]
        self.records = payload["records"]
        self.clients = payload["clients"]
        self.rate_kops = payload.get("rate_kops")
        self.machine = Machine()
        # Optional persistency-order checking; the key is only present
        # in the payload when enabled, so checked and unchecked cells
        # keep distinct cache addresses and plain cells keep theirs.
        self.pmcheck = None
        if payload.get("pmcheck"):
            from repro.pmcheck import PmCheck
            self.pmcheck = PmCheck(self.machine).install()
        self.controller = FaultController(
            self.machine, seed=self.seed,
            tear=(self.scenario == "power-fail"))
        self.config = DegradeConfig.naive() if self.naive \
            else DegradeConfig()
        self.service = make_service(
            payload["substrate"], self.machine, self.spec, self.records,
            ops=self.ops, seed=self.seed, naive=self.naive)
        self.history = History()
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_ns=self.config.breaker_cooldown_ns)
        self.policy = RetryPolicy(self.config, self.seed)
        self.stats = DegradeStats()
        # Fault scheduling draws from its own stream, independent of
        # the per-client retry RNGs.
        self.chaos_rng = Random(_mix(
            self.seed, "chaos", payload["workload"],
            payload["substrate"], self.scenario))
        self.threads = []
        self.recoveries = []
        self.violations = []
        self._breaker_seen = 0
        self.load_end = 0.0
        self.injector = None
        # Always-on observability: request-granularity recording that
        # keeps the fused fast paths enabled (REPRO_OBS=0 disables).
        self.obs = ObsRecorder.from_env(payload["substrate"],
                                        workload=payload["workload"])

    # -- tracing --------------------------------------------------------

    def chaos_instant(self, name, args=None):
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(tracer.last_ts, CAT_CHAOS, name,
                           track="chaos", args=args)
        if self.obs is not None:
            # Virtual timestamp of the latest serving progress — the
            # same instant a tracer would stamp, derived without one.
            ts = max((t.now for t in self.threads),
                     default=self.load_end)
            self.obs.event(ts, name, args)

    def degrade_instant(self, thread, name, client, args=None):
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(thread.now, CAT_DEGRADE, name,
                           track="client%d" % client, args=args)

    def drain_breaker_events(self):
        new = self.breaker.transitions[self._breaker_seen:]
        self._breaker_seen = len(self.breaker.transitions)
        tracer = self.machine.tracer
        if tracer is not None:
            for ts, state in new:
                tracer.instant(ts, CAT_DEGRADE,
                               "degrade.breaker_" + state,
                               track="degrade")
        if self.obs is not None:
            for ts, state in new:
                self.obs.event(ts, "breaker." + state)


# -- fault scheduling --------------------------------------------------------

def _triggers(scenario, ops):
    """Dispatch-index -> fault kind for one scenario (deterministic)."""
    if scenario == "power-fail":
        return {max(1, ops // 3): "crash",
                max(2, (2 * ops) // 3): "crash"}
    if scenario == "poison":
        return {max(1, ops // 2): "poison"}
    if scenario == "transient":
        return {max(1, ops // 4): "transient",
                max(2, ops // 2): "transient",
                max(3, (3 * ops) // 4): "transient"}
    if scenario == "thermal":
        return {max(1, ops // 3): "thermal"}
    raise ValueError("unknown scenario %r (choose from %s)"
                     % (scenario, ", ".join(SCENARIOS)))


def _fire(env, kind, at_op):
    """Inject one scheduled fault just before dispatching ``at_op``."""
    rng = env.chaos_rng
    if kind == "crash":
        # Arm the injector a seeded handful of persists ahead, so the
        # failure lands *inside* whichever request persists next.
        env.injector.crash_at = \
            env.injector.persists + 1 + rng.randrange(4)
        env.chaos_instant("chaos.crash_armed", {"at_op": at_op})
    elif kind == "poison":
        site = env.controller.poison_site(rng.randrange(1 << 16))
        env.chaos_instant("chaos.poison", {
            "at_op": at_op,
            "site": None if site is None else list(site)})
    elif kind == "transient":
        site = env.controller.transient_site(
            rng.randrange(1 << 16), errors=TRANSIENT_ERRORS)
        env.chaos_instant("chaos.transient", {
            "at_op": at_op,
            "site": None if site is None else list(site)})
    elif kind == "thermal":
        now = max(t.now for t in env.threads)
        env.controller.add_thermal_window(
            now, now + THERMAL_SPAN_NS, factor=THERMAL_FACTOR)
        env.chaos_instant("chaos.thermal", {
            "at_op": at_op, "span_ns": THERMAL_SPAN_NS,
            "factor": THERMAL_FACTOR})
    else:
        raise ValueError("unknown fault kind %r" % kind)


# -- one request through the degradation layer -------------------------------

def _apply(env, thread, client, req):
    """Perform one request, recording mutations in the history.

    The mutation is *begun* before the substrate call and *acked* only
    when the call returns — a power failure or media error in between
    leaves it un-acked (in flight), which is exactly the client's view.
    """
    service = env.service
    pmcheck = env.pmcheck
    history = env.history
    key = make_key(req.key_index)
    op = req.op
    if op == "read":
        service.get(thread, key)
        return
    if op == "scan":
        service.scan(thread, key, req.scan_len)
        return
    if op == "update" or op == "insert":
        mut = history.begin(client, PUT, req.key_index,
                            req.version, thread.now)
        if pmcheck is not None:
            pmcheck.op_begin(thread, op)
        service.put(thread, key,
                    make_value(env.spec, req.key_index, req.version))
        if pmcheck is not None:
            pmcheck.op_ack(thread)
        history.ack(mut, thread.now)
    elif op == "rmw":
        service.get(thread, key)
        mut = history.begin(client, PUT, req.key_index,
                            req.version, thread.now)
        if pmcheck is not None:
            pmcheck.op_begin(thread, op)
        service.put(thread, key,
                    make_value(env.spec, req.key_index, req.version))
        if pmcheck is not None:
            pmcheck.op_ack(thread)
        history.ack(mut, thread.now)
    elif op == "delete":
        mut = history.begin(client, DELETE, req.key_index, 0,
                            thread.now)
        if pmcheck is not None:
            pmcheck.op_begin(thread, op)
        service.delete(thread, key)
        if pmcheck is not None:
            pmcheck.op_ack(thread)
        history.ack(mut, thread.now)
    else:
        raise ValueError("unknown op %r" % op)


def _serve_one(env, thread, client, req, arrival_ns=None):
    """One request through breaker, retries and deadline accounting.

    Returns ``(disposition, latency_ns_or_None)``; latency is measured
    from ``arrival_ns`` when given (open loop), else from dispatch.
    A :class:`SimulatedPowerFailure` propagates to the caller.
    """
    cfg = env.config
    start = thread.now if arrival_ns is None else arrival_ns
    if not env.breaker.allow(thread.now):
        env.stats.breaker_rejects += 1
        thread.sleep(REJECT_NS)
        env.degrade_instant(thread, "degrade.reject", client)
        env.drain_breaker_events()
        return BROKEN, None
    attempts = env.policy.attempts()
    ok = False
    for attempt in range(1, attempts + 1):
        try:
            _apply(env, thread, client, req)
            ok = True
            if attempt > 1:
                env.stats.retry_successes += 1
            break
        except MediaError as exc:
            if not exc.transient or attempt == attempts:
                break
            env.stats.retries += 1
            env.degrade_instant(thread, "degrade.retry", client,
                                {"attempt": attempt, "op": req.op})
            thread.sleep(env.policy.backoff_ns(client, attempt))
    env.breaker.record(ok, thread.now)
    env.drain_breaker_events()
    if not ok:
        env.stats.failures += 1
        return FAILED, None
    latency = thread.now - start
    if cfg.enabled and latency > cfg.deadline_ns:
        env.stats.deadline_misses += 1
    return OK, latency


# -- crash, recovery and the oracle ------------------------------------------

def _recover_and_audit(env, at_op, final=False):
    """Power-fail the machine, recover the service, audit durability.

    The platform contributes its own :class:`RecoveryReport`: a torn
    final XPLine is hardware-reported damage (real media would fail the
    line's ECC), so its chunk count lands in ``truncated`` and the
    oracle can excuse the acknowledged writes the tear rolled back.
    """
    env.injector.crash_at = None
    interrupted = env.history.crash()
    start = max((t.now for t in env.threads), default=env.load_end)
    env.machine.power_fail()
    platform = RecoveryReport(component="platform")
    torn = env.controller.torn_lines
    if torn:
        platform.truncated += len(torn)
        platform.note("power loss tore %d chunk(s) off the final "
                      "XPLine" % len(torn))
    service, sub_report = env.service.recover()
    env.service = service
    report = platform.merge(sub_report)
    resume = start + RECOVERY_GAP_NS
    for t in env.threads:
        t.now = max(t.now, resume)
    audit = env.machine.thread()
    audit.now = resume
    note = "protections disabled (--naive)" if env.naive else None
    check = check_durability(
        env.history, service_read_fn(service, audit), env.spec, report,
        naive_note=note)
    env.violations.extend(check["violations"])
    env.recoveries.append({
        "at_op": at_op,
        "final": bool(final),
        "interrupted": len(interrupted),
        "report": report.to_dict(),
        "check": {k: v for k, v in check.items() if k != "violations"},
    })
    tracer = env.machine.tracer
    if tracer is not None:
        tracer.complete(start, CAT_CHAOS, "chaos.recovery",
                        RECOVERY_GAP_NS, track="chaos", args={
                            "recovered": report.recovered,
                            "truncated": report.truncated,
                            "lost": report.lost,
                            "violations": len(check["violations"]),
                        })
    if env.obs is not None:
        env.obs.event(start, "chaos.recovery", {
            "at_op": at_op,
            "final": bool(final),
            "recovered": report.recovered,
            "truncated": report.truncated,
            "lost": report.lost,
            "violations": len(check["violations"]),
        })


# -- serving loops -----------------------------------------------------------

def _closed_serve(env):
    """Closed loop: each client issues back-to-back, chaos included."""
    clients = env.clients
    threads = env.machine.threads(clients)
    env.threads = threads
    start_ns = env.load_end
    for t in threads:
        t.now = start_ns
    streams = [RequestStream(env.spec, env.records, seed=env.seed,
                             client=c) for c in range(clients)]
    budgets = [env.ops // clients + (1 if c < env.ops % clients else 0)
               for c in range(clients)]
    pending = [None] * clients
    triggers = _triggers(env.scenario, env.ops)
    dispatched = 0
    latencies = []
    ops_by_type = {}
    results = {}
    obs = env.obs
    obs_ts = None if obs is None else []
    ts_append = None if obs_ts is None else obs_ts.append
    if _engine.FASTPATH_ENABLED:
        # Batched dispatch: each client's request sequence depends only
        # on its own seeded RNG (never on machine state or the other
        # clients), so the whole budget can be materialized up front —
        # the interleaving below consumes it in the reference order.
        # The min() over the active set becomes a strict-< scan of a
        # live list kept in client order: lowest ``now`` wins, first
        # occurrence (= lowest client id) on ties, exactly the
        # reference's (now, id) key.
        queues = [streams[c].next_requests(budgets[c])
                  for c in range(clients)]
        qpos = [0] * clients
        triggers_pop = triggers.pop
        live = list(range(clients))
        while live:
            c = live[0]
            best_now = threads[c].now
            for i in live[1:]:
                now = threads[i].now
                if now < best_now:
                    c = i
                    best_now = now
            thread = threads[c]
            if pending[c] is not None:
                req, pending[c] = pending[c], None
            else:
                pos = qpos[c]
                queue = queues[c]
                if pos == len(queue):
                    live.remove(c)
                    continue
                qpos[c] = pos + 1
                req = queue[pos]
                dispatched += 1
                kind = triggers_pop(dispatched, None)
                if kind is not None:
                    _fire(env, kind, dispatched)
            try:
                disp, latency = _serve_one(env, thread, c, req)
            except SimulatedPowerFailure:
                _recover_and_audit(env, dispatched)
                pending[c] = req      # the client retries the request
                continue
            results[disp] = results.get(disp, 0) + 1
            if disp == OK:
                ops_by_type[req.op] = ops_by_type.get(req.op, 0) + 1
                latencies.append(latency)
                if ts_append is not None:
                    ts_append(thread.now)
            elif obs is not None and (disp == FAILED or disp == BROKEN):
                obs.error(req.op, thread.now)
    else:
        iters = [iter(streams[c].requests(budgets[c]))
                 for c in range(clients)]
        active = set(range(clients))
        while active:
            c = min(active, key=lambda i: (threads[i].now, i))
            thread = threads[c]
            if pending[c] is not None:
                req, pending[c] = pending[c], None
            else:
                req = next(iters[c], None)
                if req is None:
                    active.discard(c)
                    continue
                dispatched += 1
                kind = triggers.pop(dispatched, None)
                if kind is not None:
                    _fire(env, kind, dispatched)
            try:
                disp, latency = _serve_one(env, thread, c, req)
            except SimulatedPowerFailure:
                _recover_and_audit(env, dispatched)
                pending[c] = req      # the client retries the request
                continue
            results[disp] = results.get(disp, 0) + 1
            if disp == OK:
                ops_by_type[req.op] = ops_by_type.get(req.op, 0) + 1
                latencies.append(latency)
                if ts_append is not None:
                    ts_append(thread.now)
            elif obs is not None and (disp == FAILED or disp == BROKEN):
                obs.error(req.op, thread.now)
    end_ns = max(t.now for t in threads)
    if obs is not None:
        obs.ingest(latencies, obs_ts)
        obs.ingest_ops(ops_by_type)
    report = _summarize(latencies, ops_by_type, start_ns, end_ns,
                        len(latencies))
    report["mode"] = "closed"
    report["clients"] = clients
    return report, results


def _open_serve(env):
    """Open loop: Poisson arrivals, admission control, chaos included.

    Latency counts from *arrival*, so queueing behind a fault window
    hits the deadline accounting; the in-flight bound sheds arrivals
    (counted ``shed``) instead of letting the backlog diverge.
    """
    workers = env.clients
    threads = env.machine.threads(workers)
    env.threads = threads
    start_ns = env.load_end
    for t in threads:
        t.now = start_ns
    streams = [RequestStream(env.spec, env.records, seed=env.seed,
                             client=w) for w in range(workers)]
    arrival_rng = Random(_mix(env.seed, "arrivals", env.spec.name))
    mean_gap_ns = _NS_PER_S / (env.rate_kops * 1e3)
    cfg = env.config
    triggers = _triggers(env.scenario, env.ops)
    clock = start_ns
    inflight = []                  # completion-time heap
    latencies = []
    ops_by_type = {}
    results = {}
    obs = env.obs
    obs_ts = None if obs is None else []
    ts_append = None if obs_ts is None else obs_ts.append
    if _engine.FASTPATH_ENABLED:
        # Hoisted dispatch loop: per-arrival work drops the lambda-key
        # min() (threads are scanned strict-< in tid order, which is
        # the same (now, tid) order) and the throwaway one-request
        # generator (``next_request`` is the single-step equivalent).
        # The degrade config and the arrival-rate inverse are
        # loop-invariant; ``1.0 / mean_gap_ns`` is computed once, the
        # identical float the reference recomputes per arrival.
        expovariate = arrival_rng.expovariate
        inv_gap = 1.0 / mean_gap_ns
        triggers_pop = triggers.pop
        heappop, heappush = heapq.heappop, heapq.heappush
        cfg_enabled = cfg.enabled
        max_inflight = cfg.max_inflight
        deadline_ns = cfg.deadline_ns
        stats = env.stats
        for i in range(1, env.ops + 1):
            clock += expovariate(inv_gap)
            kind = triggers_pop(i, None)
            if kind is not None:
                _fire(env, kind, i)
            while inflight and inflight[0] <= clock:
                heappop(inflight)
            if cfg_enabled and max_inflight \
                    and len(inflight) >= max_inflight:
                stats.shed += 1
                results[SHED] = results.get(SHED, 0) + 1
                env.chaos_instant("degrade.shed", {"at_op": i})
                continue
            wi = 0
            worker = threads[0]
            best_now = worker.now
            for j, t in enumerate(threads):
                now = t.now
                if now < best_now:
                    wi = j
                    worker = t
                    best_now = now
            if cfg_enabled and best_now - clock > deadline_ns:
                # The client gave up in the queue before dispatch.
                stats.deadline_misses += 1
                results[DEADLINE] = results.get(DEADLINE, 0) + 1
                continue
            req = streams[wi].next_request()
            if worker.now < clock:
                worker.now = clock
            while True:
                try:
                    disp, latency = _serve_one(env, worker, wi, req,
                                               arrival_ns=clock)
                    break
                except SimulatedPowerFailure:
                    _recover_and_audit(env, i)
            results[disp] = results.get(disp, 0) + 1
            if disp == OK:
                ops_by_type[req.op] = ops_by_type.get(req.op, 0) + 1
                latencies.append(latency)
                if ts_append is not None:
                    ts_append(worker.now)
            elif obs is not None and (disp == FAILED or disp == BROKEN):
                obs.error(req.op, worker.now)
            heappush(inflight, worker.now)
    else:
        for i in range(1, env.ops + 1):
            clock += arrival_rng.expovariate(1.0 / mean_gap_ns)
            kind = triggers.pop(i, None)
            if kind is not None:
                _fire(env, kind, i)
            while inflight and inflight[0] <= clock:
                heapq.heappop(inflight)
            if cfg.enabled and cfg.max_inflight \
                    and len(inflight) >= cfg.max_inflight:
                env.stats.shed += 1
                results[SHED] = results.get(SHED, 0) + 1
                env.chaos_instant("degrade.shed", {"at_op": i})
                continue
            wi, worker = min(enumerate(threads),
                             key=lambda p: (p[1].now, p[1].tid))
            wait = max(0.0, worker.now - clock)
            if cfg.enabled and wait > cfg.deadline_ns:
                # The client gave up in the queue before dispatch.
                env.stats.deadline_misses += 1
                results[DEADLINE] = results.get(DEADLINE, 0) + 1
                continue
            req = next(streams[wi].requests(1))
            if worker.now < clock:
                worker.now = clock
            while True:
                try:
                    disp, latency = _serve_one(env, worker, wi, req,
                                               arrival_ns=clock)
                    break
                except SimulatedPowerFailure:
                    _recover_and_audit(env, i)
            results[disp] = results.get(disp, 0) + 1
            if disp == OK:
                ops_by_type[req.op] = ops_by_type.get(req.op, 0) + 1
                latencies.append(latency)
                if ts_append is not None:
                    ts_append(worker.now)
            elif obs is not None and (disp == FAILED or disp == BROKEN):
                obs.error(req.op, worker.now)
            heapq.heappush(inflight, worker.now)
    end_ns = max(t.now for t in threads)
    if obs is not None:
        obs.ingest(latencies, obs_ts)
        obs.ingest_ops(ops_by_type)
    report = _summarize(latencies, ops_by_type, start_ns, end_ns,
                        len(latencies))
    report["mode"] = "open"
    report["workers"] = workers
    report["offered_kops"] = round(env.rate_kops, 3)
    return report, results


# -- the cell ----------------------------------------------------------------

def chaos_serve_cell(payload):
    """Run one chaos cell; module-level so workers can pickle it.

    ``trace_path`` in the payload — added by the matrix for traced
    runs, never part of the cache key — records the whole cell as one
    Chrome trace (serve spans, fault instants, degrade events and
    recovery spans together).
    """
    trace_path = payload.get("trace_path")
    if trace_path is not None:
        from repro.telemetry import recording, write_chrome_trace
        with recording() as tracer:
            record = _cell_inner(payload)
        write_chrome_trace(tracer, trace_path)
        record["trace"] = trace_path
        return record
    return _cell_inner(payload)


def _cell_inner(payload):
    env = _Env(payload)
    env.load_end = preload(env.service, env.machine, env.spec,
                           env.records, seed=env.seed)
    env.history.preload(env.records)
    env.injector = CrashInjector(env.machine)    # armed by _fire later
    try:
        if payload.get("mode") == "open":
            served, results = _open_serve(env)
        else:
            served, results = _closed_serve(env)
        _recover_and_audit(env, env.ops, final=True)
    finally:
        env.injector.uninstall()
    crashes = sum(1 for r in env.recoveries if not r["final"])
    obs = env.obs
    if obs is not None:
        # Fold the cell's terminal tallies into the obs counters so the
        # blob stands alone: degrade stats, breaker churn, dispositions
        # and audit outcomes, all next to the latency histogram.
        for k, v in sorted(env.stats.to_dict().items()):
            obs.count("degrade_" + k, v)
        for state, n in sorted(env.breaker.transition_counts().items()):
            obs.count("breaker_" + state, n)
        obs.count("recoveries", len(env.recoveries))
        obs.count("violations", len(env.violations))
        for disp in sorted(results):
            obs.count("result_" + disp, results[disp])
    record = {
        "workload": payload["workload"],
        "substrate": payload["substrate"],
        "scenario": env.scenario,
        "mode": payload.get("mode", "closed"),
        "naive": env.naive,
        "seed": env.seed,
        "records": env.records,
        "ops": env.ops,
        "served": served,
        "results": {k: results[k] for k in sorted(results)},
        "degrade": env.stats.to_dict(),
        "breaker": {"state": env.breaker.state,
                    "transitions": len(env.breaker.transitions)},
        "faults": {
            "crashes": crashes,
            "torn_chunks": env.controller.torn_chunks,
            "poison_reads": env.controller.poison_reads,
            "transient_reads": env.controller.transient_reads,
        },
        "recoveries": env.recoveries,
        "violations": env.violations,
        "service": env.service.stats(),
    }
    if env.pmcheck is not None:
        record["pmcheck"] = env.pmcheck.summary()
        env.pmcheck.uninstall()
    if obs is not None:
        record["obs"] = obs.to_dict()
    return record
