"""Chaos serving: faults injected *while* traffic is being served.

``repro.faults`` proves each recovery path in isolation and
``repro.workloads`` proves the substrates under realistic traffic; this
package runs both at once, which is the only configuration that can
answer the question operators actually ask: *does an acknowledged write
survive a crash that lands mid-request, and does the service degrade
instead of collapsing while the hardware misbehaves?*

The moving parts, bottom to top:

* :mod:`repro.chaos_serve.history` — the acknowledged-operation record
  every client keeps (seeded, deterministic), the ground truth the
  durability oracle audits against;
* :mod:`repro.chaos_serve.oracle` — the durable-linearizability check
  run after every recovery: acknowledged writes must be readable (or
  superseded by later acknowledged writes), in-flight writes must read
  as old or new, never garbage, and data loss must be *reported* by the
  substrate's :class:`~repro.faults.report.RecoveryReport`;
* :mod:`repro.chaos_serve.degrade` — the degradation layer wrapped
  around the serving path: per-request deadlines, seeded
  exponential-backoff retries, a per-substrate circuit breaker on the
  virtual clock, and admission control that sheds load instead of
  queueing without bound;
* :mod:`repro.chaos_serve.driver` — the chaos serving loop itself:
  closed- and open-loop traffic with power failures, poisoned lines,
  transient read errors and thermal windows injected mid-serve, and a
  ``Service.recover()`` + oracle audit after every crash;
* :mod:`repro.chaos_serve.matrix` — the scenario matrix fanned out
  through the harness (every probe a cached point, manifests
  byte-identical per seed across job counts).

``python -m repro serve <workload> <substrate> --chaos`` is the front
door; ``--naive`` turns the protections off (no retries, no breaker,
no shedding, CRC-less WAL replay, non-atomic in-place updates) and the
matrix is expected to *catch* the resulting durability violations.
"""

from repro.chaos_serve.degrade import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, CircuitBreaker,
    DegradeConfig, RetryPolicy,
)
from repro.chaos_serve.driver import SCENARIOS, chaos_serve_cell
from repro.chaos_serve.history import History, Mutation
from repro.chaos_serve.matrix import (
    CHAOS_EXPERIMENT, build_chaos_grid, run_chaos_serve,
)
from repro.chaos_serve.oracle import check_durability, format_violation

__all__ = [
    "BREAKER_CLOSED", "BREAKER_HALF_OPEN", "BREAKER_OPEN",
    "CircuitBreaker", "DegradeConfig", "RetryPolicy",
    "SCENARIOS", "chaos_serve_cell",
    "History", "Mutation",
    "CHAOS_EXPERIMENT", "build_chaos_grid", "run_chaos_serve",
    "check_durability", "format_violation",
]
