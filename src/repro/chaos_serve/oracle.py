"""The durability oracle: durable linearizability, checked per key.

After every recovery the oracle reads back each key the history ever
touched and asks whether the observed state is *explainable* by the
acknowledged-operation record:

* an **acknowledged** write must be readable — unless a later
  acknowledged write definitely superseded it (began after it was
  acknowledged), or the substrate's recovery report *admits* the loss;
* an **in-flight** write (issued, never acknowledged, cut by a crash)
  may read as either the old or the new value — the client cannot
  tell the difference and neither outcome breaks a promise;
* **garbage** — bytes matching no version ever written to the key —
  is never legal: it means a torn or corrupt record was served as if
  it were data (exactly what CRCs and atomic publishes prevent).

Loss accounting follows the contract :mod:`repro.faults` established:
data loss is legal only when it is *reported*.  A missing or stale
acknowledged write is excused when the recovery report names the key in
``lost_keys``, or — for substrates that cannot attribute a destroyed
region to keys (a poisoned WAL hole) — when the report counts
unattributed losses (``lost > 0``).  A gap without a report is a
violation.

The superseded rule is deliberately conservative about concurrency: an
acknowledged write is only *definitely* superseded when some other
acknowledged write to the key **started after it was acknowledged**.
Overlapping acknowledged writes may linearize either way, so both
values stay legal — no false violations from scheduler interleaving.
"""

from repro.chaos_serve.history import DELETE, PUT
from repro.faults.model import MediaError
from repro.workloads.generators import make_key, make_value

#: Violation kinds the oracle reports.
LOST_ACKED = "lost-acknowledged-write"
STALE_ACKED = "stale-acknowledged-write"
GARBAGE = "garbage-value"
UNREADABLE = "unreadable-without-report"


def service_read_fn(service, thread):
    """The default read-back: a point ``get`` through the recovered
    service, with media errors surfaced as ``("unreadable", msg)``.

    Returns a callable mapping ``key_index`` to one of
    ``("value", bytes)``, ``("missing", None)`` or
    ``("unreadable", str)``.
    """
    def read(key_index):
        key = make_key(key_index)
        last = None
        for _attempt in range(5):
            try:
                value = service.get(thread, key)
            except MediaError as exc:
                last = exc
                if not exc.transient:
                    break
                thread.sleep(2_000.0)    # transient: back off and retry
                continue
            if value is None:
                return ("missing", None)
            return ("value", bytes(value))
        return ("unreadable", str(last))
    return read


def _expected_value(spec, mut):
    """The exact bytes mutation ``mut`` promised (None for deletes)."""
    if mut.op == DELETE:
        return None
    return make_value(spec, mut.key_index, mut.version)


def _candidates(muts):
    """The mutations whose effect may legally be the key's final state.

    Acked mutations are candidates unless definitely superseded by a
    later acked mutation; un-acked (in-flight) mutations are always
    candidates — old *or* new is legal for them.  Excused mutations
    (losses a recovery report already covered) behave like in-flight
    ones: always candidates, never superseding — a reported rollback
    re-legalizes the value it rolled back *to*.
    """
    acked = [m for m in muts if m.acked and not m.excused]
    out = []
    for mut in muts:
        if mut.acked and not mut.excused \
                and any(o is not mut and o.start_ns > mut.end_ns
                        for o in acked):
            continue
        out.append(mut)
    return out


#: Sentinel "observed" that matches no mutation's expected value —
#: used to excuse every acked write of a key at once.
_NOTHING = object()


def _excuse(muts, spec, observed):
    """Void the promises a covered loss contradicted.

    Every acked mutation whose expected value differs from what was
    actually observed is marked excused: its loss has been reported
    once, and durability does not require re-reporting it after every
    subsequent crash.  Mutations matching the observed state (and any
    future writes) remain full promises.
    """
    for mut in muts:
        if mut.acked and not mut.excused \
                and _expected_value(spec, mut) != observed:
            mut.excused = True


def _report_covers(report, key, attributed, truncated_ok=False):
    """Whether the recovery report admits losing ``key``.

    ``attributed`` keys are named in ``lost_keys``; otherwise any
    unattributed loss count (``lost`` beyond the named keys) covers the
    gap — a substrate that lost a region it cannot map to keys still
    *reported* the damage.

    ``truncated_ok`` extends coverage to reported *truncation*: a torn
    final XPLine rolls back whole 64-byte chunks, which can silently
    un-publish the most recently acknowledged write (a bucket pointer,
    a log tail) — legal crash semantics so long as the damage was
    reported.  Truncation only ever excuses a *clean* rollback (missing
    or stale data), never garbage: CRCs and atomic publishes exist
    precisely so a tear cannot surface as corrupt bytes.
    """
    if report is None:
        return False
    if key in attributed:
        return True
    if report.lost > len(attributed):
        return True
    return truncated_ok and report.truncated > 0


def check_durability(history, read_fn, spec, report, naive_note=None):
    """Audit one recovered service against the history.

    ``read_fn`` maps a key index to the observed post-recovery state
    (see :func:`service_read_fn`).  Returns a JSON-able dict::

        {"keys_checked": int,
         "legal": int,              # keys whose state is explainable
         "reported_lost": int,      # gaps excused by the report
         "inflight_keys": int,      # keys with in-flight writes seen
         "violations": [ ... ]}     # the durability failures

    Every violation carries the offending history window so the report
    is actionable without re-running anything.
    """
    groups = history.by_key()
    attributed = set()
    if report is not None:
        attributed = {k for k in report.lost_keys}
    result = {"keys_checked": 0, "legal": 0, "reported_lost": 0,
              "inflight_keys": 0, "violations": []}

    def violate(kind, key_index, observed, legal):
        result["violations"].append({
            "kind": kind,
            "key_index": key_index,
            "key": make_key(key_index).decode(),
            "observed": observed,
            "legal": legal,
            "window": [_mut_dict(m) for m in history.window(key_index)],
        })

    for key_index in sorted(groups):
        muts = groups[key_index]
        key = make_key(key_index)
        result["keys_checked"] += 1
        if any(not m.acked for m in muts):
            result["inflight_keys"] += 1
        candidates = _candidates(muts)
        legal_values = {}
        for mut in candidates:
            value = _expected_value(spec, mut)
            if value is not None:
                legal_values[value] = mut
        # "Missing" is legal when nothing was ever promised (no
        # un-excused acked mutation) or a candidate delete may have
        # landed.
        none_legal = (not any(m.acked and not m.excused for m in muts)
                      or any(m.op == DELETE for m in candidates))
        state, payload = read_fn(key_index)

        if state == "unreadable":
            if none_legal or _report_covers(report, key, attributed):
                result["reported_lost"] += 1
                _excuse(muts, spec, _NOTHING)
            else:
                violate(UNREADABLE, key_index, payload,
                        _legal_summary(legal_values, none_legal))
            continue
        if state == "missing":
            if none_legal:
                result["legal"] += 1
            elif _report_covers(report, key, attributed,
                                truncated_ok=True):
                result["reported_lost"] += 1
                _excuse(muts, spec, None)
            else:
                violate(LOST_ACKED, key_index, None,
                        _legal_summary(legal_values, none_legal))
            continue
        observed = payload
        if observed in legal_values:
            result["legal"] += 1
            continue
        # Not a legal final value: was it *ever* a value of this key?
        known = {_expected_value(spec, m): m for m in muts
                 if m.op == PUT}
        if observed in known:
            if _report_covers(report, key, attributed,
                              truncated_ok=True):
                result["reported_lost"] += 1
                _excuse(muts, spec, observed)
            else:
                violate(STALE_ACKED, key_index,
                        _value_summary(observed),
                        _legal_summary(legal_values, none_legal))
            continue
        # Garbage: bytes no client ever wrote.  Only a loss admission
        # (attributed or counted) excuses serving corrupt data —
        # reported truncation never does.
        if _report_covers(report, key, attributed):
            result["reported_lost"] += 1
            _excuse(muts, spec, _NOTHING)
        else:
            violate(GARBAGE, key_index, _value_summary(observed),
                    _legal_summary(legal_values, none_legal))
    if naive_note and result["violations"]:
        result["note"] = naive_note
    return result


def _mut_dict(mut):
    return {
        "client": mut.client, "op": mut.op, "version": mut.version,
        "start_ns": round(mut.start_ns, 1),
        "end_ns": None if mut.end_ns is None else round(mut.end_ns, 1),
        "acked": mut.acked,
        "excused": mut.excused,
    }


def _value_summary(value):
    """A short printable form of observed bytes."""
    head = value[:8]
    return "%d bytes %r%s" % (len(value), bytes(head),
                              "..." if len(value) > 8 else "")


def _legal_summary(legal_values, none_legal):
    out = sorted(_value_summary(v) for v in legal_values)
    if none_legal:
        out.append("missing")
    return out


def format_violation(v):
    """One violation as the lines the CLI prints."""
    lines = ["%s key=%s observed=%s" % (v["kind"], v["key"],
                                        v["observed"])]
    lines.append("  legal: %s" % ", ".join(v["legal"]))
    for mut in v["window"]:
        lines.append("  history: client=%d %s v%d [%s..%s] %s"
                     % (mut["client"], mut["op"], mut["version"],
                        mut["start_ns"], mut["end_ns"],
                        "acked" if mut["acked"] else "IN-FLIGHT"))
    return "\n".join(lines)
