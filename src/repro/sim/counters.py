"""Hardware-counter emulation.

The paper's key efficiency metric, the Effective Write Ratio (EWR), is
computed from DIMM hardware counters: bytes issued by the iMC divided
by bytes actually written to the 3D XPoint media.  Every simulated DIMM
owns a :class:`DimmCounters`; snapshots allow measuring EWR over just
the interesting phase of an experiment.
"""

from dataclasses import dataclass


@dataclass
class CounterSnapshot:
    """Immutable copy of the counters at one instant."""

    imc_read_bytes: int = 0
    imc_write_bytes: int = 0
    media_read_bytes: int = 0
    media_write_bytes: int = 0
    migrations: int = 0


class DimmCounters:
    """Mutable per-DIMM counters, mirroring the DIMM's SMART counters."""

    __slots__ = (
        "imc_read_bytes", "imc_write_bytes",
        "media_read_bytes", "media_write_bytes", "migrations",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.imc_read_bytes = 0
        self.imc_write_bytes = 0
        self.media_read_bytes = 0
        self.media_write_bytes = 0
        self.migrations = 0

    def snapshot(self):
        return CounterSnapshot(
            imc_read_bytes=self.imc_read_bytes,
            imc_write_bytes=self.imc_write_bytes,
            media_read_bytes=self.media_read_bytes,
            media_write_bytes=self.media_write_bytes,
            migrations=self.migrations,
        )

    def delta(self, since):
        """Counter increments since an earlier :meth:`snapshot`."""
        return CounterSnapshot(
            imc_read_bytes=self.imc_read_bytes - since.imc_read_bytes,
            imc_write_bytes=self.imc_write_bytes - since.imc_write_bytes,
            media_read_bytes=self.media_read_bytes - since.media_read_bytes,
            media_write_bytes=self.media_write_bytes - since.media_write_bytes,
            migrations=self.migrations - since.migrations,
        )


def effective_write_ratio(delta):
    """EWR = iMC write bytes / media write bytes (inverse write amplification).

    Values below 1.0 mean the DIMM wrote more internally than the
    application requested; values near 1.0 mean the XPBuffer combined
    writes perfectly.  Returns ``float('inf')`` when nothing reached the
    media (everything still buffered).
    """
    if delta.media_write_bytes == 0:
        return float("inf") if delta.imc_write_bytes else 1.0
    return delta.imc_write_bytes / delta.media_write_bytes


def write_amplification(delta):
    """Media bytes written per byte issued by the iMC (1 / EWR)."""
    if delta.imc_write_bytes == 0:
        return 0.0
    return delta.media_write_bytes / delta.imc_write_bytes


def aggregate(deltas):
    """Sum counter deltas across several DIMMs."""
    total = CounterSnapshot()
    for d in deltas:
        total.imc_read_bytes += d.imc_read_bytes
        total.imc_write_bytes += d.imc_write_bytes
        total.media_read_bytes += d.media_read_bytes
        total.media_write_bytes += d.media_write_bytes
        total.migrations += d.migrations
    return total
