"""Hardware-counter emulation.

The paper's key efficiency metric, the Effective Write Ratio (EWR), is
computed from DIMM hardware counters: bytes issued by the iMC divided
by bytes actually written to the 3D XPoint media.  Every simulated DIMM
owns a :class:`DimmCounters`; snapshots allow measuring EWR over just
the interesting phase of an experiment.

**EWR sentinel convention.**  When ``media_write_bytes == 0`` the ratio
is undefined; :func:`effective_write_ratio` returns the documented
sentinel :data:`EWR_UNDEFINED` (``float("inf")``) if the iMC issued
writes that are all still buffered, and ``1.0`` (a perfect ratio) when
there was no write traffic at all.  ``inf`` survives the sweep CSV
round-trip (``float("inf") -> "inf" -> float("inf")``); use
:func:`is_ewr_defined` before arithmetic on EWR values.
"""

from dataclasses import dataclass, fields

#: Sentinel EWR for "iMC wrote, but nothing reached the media yet"
#: (everything still sits in the XPBuffer).  Chosen because Python's
#: CSV round-trip preserves it exactly; filter with is_ewr_defined().
EWR_UNDEFINED = float("inf")


def is_ewr_defined(ewr):
    """True when ``ewr`` is a real measurement, not the sentinel."""
    return ewr != EWR_UNDEFINED


@dataclass(frozen=True)
class CounterSnapshot:
    """Immutable copy of the counters at one instant.

    Frozen: a snapshot is a value.  Derived snapshots (deltas,
    aggregates) are built functionally, never by mutating one in
    place — an aggregate that mutated its first input used to corrupt
    the caller's snapshot list.
    """

    imc_read_bytes: int = 0
    imc_write_bytes: int = 0
    media_read_bytes: int = 0
    media_write_bytes: int = 0
    migrations: int = 0


_SNAPSHOT_FIELDS = tuple(f.name for f in fields(CounterSnapshot))


class DimmCounters:
    """Mutable per-DIMM counters, mirroring the DIMM's SMART counters."""

    __slots__ = (
        "imc_read_bytes", "imc_write_bytes",
        "media_read_bytes", "media_write_bytes", "migrations",
    )

    def __init__(self):
        self.reset()

    def reset(self):
        self.imc_read_bytes = 0
        self.imc_write_bytes = 0
        self.media_read_bytes = 0
        self.media_write_bytes = 0
        self.migrations = 0

    def snapshot(self):
        return CounterSnapshot(
            imc_read_bytes=self.imc_read_bytes,
            imc_write_bytes=self.imc_write_bytes,
            media_read_bytes=self.media_read_bytes,
            media_write_bytes=self.media_write_bytes,
            migrations=self.migrations,
        )

    def delta(self, since):
        """Counter increments since an earlier :meth:`snapshot`."""
        return CounterSnapshot(
            imc_read_bytes=self.imc_read_bytes - since.imc_read_bytes,
            imc_write_bytes=self.imc_write_bytes - since.imc_write_bytes,
            media_read_bytes=self.media_read_bytes - since.media_read_bytes,
            media_write_bytes=self.media_write_bytes - since.media_write_bytes,
            migrations=self.migrations - since.migrations,
        )


def effective_write_ratio(delta):
    """EWR = iMC write bytes / media write bytes (inverse write amplification).

    Values below 1.0 mean the DIMM wrote more internally than the
    application requested; values near 1.0 mean the XPBuffer combined
    writes perfectly.  Returns :data:`EWR_UNDEFINED` when iMC writes
    were issued but nothing reached the media (everything still
    buffered), and ``1.0`` when there were no writes at all.
    """
    if delta.media_write_bytes == 0:
        return EWR_UNDEFINED if delta.imc_write_bytes else 1.0
    return delta.imc_write_bytes / delta.media_write_bytes


def write_amplification(delta):
    """Media bytes written per byte issued by the iMC (1 / EWR)."""
    if delta.imc_write_bytes == 0:
        return 0.0
    return delta.media_write_bytes / delta.imc_write_bytes


def aggregate(deltas):
    """Sum counter deltas across several DIMMs (a fresh snapshot).

    Purely functional: the inputs are never modified (the snapshot
    dataclass is frozen, so mutation would raise anyway).
    """
    totals = {name: 0 for name in _SNAPSHOT_FIELDS}
    for d in deltas:
        for name in _SNAPSHOT_FIELDS:
            totals[name] += getattr(d, name)
    return CounterSnapshot(**totals)
