"""The simulated evaluation platform.

A :class:`Machine` models the dual-socket Cascade Lake testbed of the
paper: per socket, one LLC, six memory channels, each carrying one
256 GB Optane DIMM and one DDR4 DIMM; the sockets joined by a UPI link.

Namespaces are created the way ``ndctl`` would:

* ``optane``        — all six local Optane DIMMs, 4 KB interleaved;
* ``optane-ni``     — one local Optane DIMM, not interleaved;
* ``optane-remote`` — the remote socket's interleaved Optane;
* ``dram`` / ``dram-ni`` / ``dram-remote`` — DRAM equivalents
  (emulated persistent memory backed by DRAM).

``power_fail()`` simulates pulling the plug: every namespace keeps only
what reached the ADR domain; all caches are dropped.
"""

from repro.sim.cache import CacheModel
from repro.sim.config import default_config
from repro.sim.dram import DRAMDimm
from repro.sim.engine import ThreadCtx
from repro.sim.imc import MemoryChannel
from repro.sim.interleave import InterleavedMapping, LinearMapping
from repro.sim.namespace import Namespace
from repro.sim.numa import Interconnect
from repro.sim.xpdimm import XPDimm
from repro.telemetry.tracer import current_tracer


class Machine:
    """The whole simulated platform; the root object of the library."""

    def __init__(self, config=None):
        self.config = config if config is not None else default_config()
        cfg = self.config
        # Observability: every component shares the machine's tracer
        # reference (None = tracing off, the zero-overhead default).
        # Built first so the constructors below can capture it.
        self.tracer = current_tracer()
        self.upi = Interconnect(cfg.numa, tracer=self.tracer)
        self.caches = [
            CacheModel(cfg.cache, name="llc%d" % s)
            for s in range(cfg.sockets)
        ]
        self.optane = []            # [socket][dimm] -> (channel, XPDimm)
        self.dram = []
        for s in range(cfg.sockets):
            opt_row, dram_row = [], []
            for d in range(cfg.dimms_per_socket):
                tag = "s%d.d%d" % (s, d)
                opt_row.append((
                    MemoryChannel(cfg.channel, "ch.opt." + tag),
                    XPDimm(cfg, "xp." + tag, tracer=self.tracer),
                ))
                dram_row.append((
                    MemoryChannel(cfg.channel, "ch.dram." + tag),
                    DRAMDimm(cfg.dram, "dram." + tag,
                             tracer=self.tracer),
                ))
            self.optane.append(opt_row)
            self.dram.append(dram_row)
        if self.tracer is not None:
            self.tracer.attach_sampler(self._sample_counters)
        self._namespaces = {}
        self._ns_by_id = []
        self._threads = []
        # Optional crash-injection hook (see repro.sim.crashpoints):
        # called once per line that reaches the ADR domain.
        self._persist_hook = None
        # Optional fault controller (see repro.faults.model): torn
        # writes, poison, transient errors, thermal throttling.
        self.faults = None
        # Optional persistency-order checker (see repro.pmcheck): set
        # via PmCheck.install(); namespaces read it on every persist
        # event, so None must mean "no work at all".
        self.pmcheck = None

    # -- namespace management ------------------------------------------------

    def _register_namespace(self, namespace):
        self._ns_by_id.append(namespace)
        return len(self._ns_by_id) - 1

    def namespace(self, kind="optane", socket=None, dimm=0):
        """Create (or fetch) a pmem namespace of the given kind."""
        base, _, suffix = kind.partition("-")
        if base not in ("optane", "dram"):
            raise ValueError("unknown namespace kind: %r" % (kind,))
        if suffix not in ("", "ni", "remote"):
            raise ValueError("unknown namespace kind: %r" % (kind,))
        if socket is None:
            socket = 1 if suffix == "remote" else 0
        key = (base, suffix == "ni", socket, dimm if suffix == "ni" else -1)
        existing = self._namespaces.get(key)
        if existing is not None:
            return existing
        devices = self.optane[socket] if base == "optane" else self.dram[socket]
        if suffix == "ni":
            devices = [devices[dimm]]
            mapping = LinearMapping(0)
        else:
            mapping = InterleavedMapping(
                self.config.interleave.block_bytes, len(devices))
        ns = Namespace(
            self, kind, devices, mapping, socket, is_optane=(base == "optane"))
        self._namespaces[key] = ns
        return ns

    def namespaces(self):
        return list(self._ns_by_id)

    # -- threads ---------------------------------------------------------------

    def thread(self, socket=0):
        """A new hardware thread pinned to ``socket``."""
        t = ThreadCtx(
            self, tid=len(self._threads), socket=socket,
            load_window=self.config.cache.load_window,
            store_window=self.config.wpq.per_thread_lines,
            fence_ns=self.config.cache.fence_ns)
        self._threads.append(t)
        return t

    def threads(self, count, socket=0):
        return [self.thread(socket) for _ in range(count)]

    # -- crash simulation --------------------------------------------------------

    def power_fail(self):
        """Simulate power loss: drop caches, keep only ADR-protected data.

        The XPBuffer is inside the ADR domain, so buffered-but-unwritten
        lines survive (our model persists data at WPQ insertion, which
        subsumes this).  CPU caches are not, so every dirty line that
        was never flushed is gone — unless the machine is configured
        with extended ADR (``config.cache.eadr``), in which case the
        stored energy drains every dirty cache line to media first, as
        the whole-system-persistence proposals of Section 6 would.
        """
        if self.pmcheck is not None:
            # Audit dirty lines before any state is dropped, then reset
            # the checker to the post-failure all-clean world.
            self.pmcheck.on_power_fail()
        if self.faults is not None and not self.config.cache.eadr:
            # Torn-write semantics: the final XPLine may keep only a
            # prefix of its 64 B chunks (see repro.faults.model).
            self.faults.on_power_fail()
        if self.config.cache.eadr:
            for cache in self.caches:
                for ns_id, line in cache.dirty_keys():
                    ns = self._ns_by_id[ns_id]
                    if ns.is_optane and not getattr(ns, "volatile", False):
                        ns.data.persist_line(line)
        for cache in self.caches:
            cache.drop_all()
        for ns in self._ns_by_id:
            ns.data.power_fail()
        for t in self._threads:
            t.pending_persists.clear()

    def _evict_writeback(self, key, now):
        """Route a dirty natural cache eviction to its owning namespace."""
        ns_id, line = key
        self._ns_by_id[ns_id]._evict_writeback(line, now)

    # -- introspection --------------------------------------------------------------

    def _sample_counters(self):
        """Counter-timeline sample: one row per Optane DIMM.

        Registered with the tracer at construction; invoked whenever
        virtual time crosses the sampling interval.  Values are the
        DIMM's SMART counters plus XPBuffer occupancy, which is how a
        trace shows EWR and buffer pressure *over time* rather than as
        one end-of-run scalar.
        """
        samples = []
        for row in self.optane:
            for _, dimm in row:
                c = dimm.counters
                samples.append((dimm.name, "dimm", {
                    "imc_read_bytes": c.imc_read_bytes,
                    "imc_write_bytes": c.imc_write_bytes,
                    "media_read_bytes": c.media_read_bytes,
                    "media_write_bytes": c.media_write_bytes,
                    "xpbuffer_occupancy": dimm.buffer.occupancy(),
                }))
        return samples

    def total_migrations(self):
        return sum(
            dimm.media.ait.migrations
            for row in self.optane for _, dimm in row
        )

    def total_thermal_stalls(self):
        return sum(dimm.thermal_stalls for row in self.optane for _, dimm in row)
