"""The XPBuffer: on-DIMM write-combining buffer.

A 16 KB (64-XPLine) set-associative structure.  Its job is to merge
64 B DDR-T transfers into full 256 B media writes.  Two properties of
this model produce headline results of the paper:

* the limited total capacity gives the 16 KB locality window of
  Figure 10 (writes within 64 XPLines combine; beyond that they don't);
* the limited associativity makes concurrent write streams conflict,
  evicting partially filled lines and collapsing EWR as thread counts
  rise (Figures 4 and 9, guideline #3).

Reads allocate entries too, so read streams compete with writes for
buffer space, as the paper observes.
"""

from collections import OrderedDict

from repro._units import LINES_PER_XPLINE

FULL_MASK = (1 << LINES_PER_XPLINE) - 1


class BufferEntry:
    """State of one buffered XPLine."""

    __slots__ = ("xpline", "dirty_mask", "valid", "writes")

    def __init__(self, xpline, dirty_mask=0, valid=False):
        self.xpline = xpline
        self.dirty_mask = dirty_mask
        self.valid = valid          # True when the full 256 B is present
        self.writes = 0             # 64 B writes absorbed (thermal model)

    @property
    def dirty(self):
        return self.dirty_mask != 0

    @property
    def fully_dirty(self):
        return self.dirty_mask == FULL_MASK

    def needs_rmw(self):
        """An eviction must read the media first iff the line is partial."""
        return self.dirty and not self.valid and not self.fully_dirty


class XPBuffer:
    """Set-associative write-combining buffer with FIFO replacement.

    Replacement is FIFO by *allocation order* within each set (writes
    to a resident line do not refresh its position).  This is what the
    paper's Figure 10 probe implies: the buffer drains a line after
    roughly 64 newer allocations regardless of activity, so re-writing
    a region each round costs one media write per line per round (EWR
    ~1), rather than merging rounds for ever.
    """

    def __init__(self, config):
        self._sets = config.sets
        self._ways = config.ways
        self._table = [OrderedDict() for _ in range(self._sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, xpline):
        return self._table[xpline % self._sets]

    def lookup(self, xpline):
        """Return the entry for ``xpline`` or None (no state change)."""
        return self._set_for(xpline).get(xpline)

    def write(self, xpline, subline):
        """Merge a 64 B write into the buffer.

        Returns ``(entry, hit, evicted)``: the (possibly fresh) entry
        for ``xpline``, whether the write combined into an existing
        entry, and a :class:`BufferEntry` the controller must now write
        to media (either a capacity victim or — for an *overwrite* of
        an already-dirty subline — the previous version of this very
        line: combining is write-once per subline, so overwriting
        flushes the old contents first).
        """
        table = self._table[xpline % self._sets]
        entry = table.get(xpline)
        if entry is not None:
            if not entry.dirty_mask & (1 << subline):
                entry.dirty_mask |= 1 << subline
                entry.writes += 1
                self.hits += 1
                return entry, True, None
            # Overwrite: flush the old version, restart the entry.
            del table[xpline]
            fresh = BufferEntry(xpline, dirty_mask=1 << subline)
            fresh.writes = entry.writes + 1
            table[xpline] = fresh
            self.misses += 1
            return fresh, False, (entry if entry.dirty else None)
        self.misses += 1
        evicted = self._make_room(table)
        entry = BufferEntry(xpline, dirty_mask=1 << subline)
        entry.writes = 1
        table[xpline] = entry
        return entry, False, evicted

    def read(self, xpline):
        """Look up ``xpline`` for a read; allocate on miss.

        Returns ``(hit, evicted)``.  A miss allocates a fully valid
        entry (the controller fetches the whole XPLine from media).
        """
        table = self._table[xpline % self._sets]
        entry = table.get(xpline)
        if entry is not None:
            self.hits += 1
            return True, None
        self.misses += 1
        evicted = self._make_room(table)
        table[xpline] = BufferEntry(xpline, valid=True)
        return False, evicted

    def _make_room(self, table):
        if len(table) < self._ways:
            return None
        _, victim = table.popitem(last=False)
        return victim

    def flush_all(self):
        """Evict every entry (power-fail drain); returns the dirty ones."""
        dirty = []
        for table in self._table:
            for entry in table.values():
                if entry.dirty:
                    dirty.append(entry)
            table.clear()
        return dirty

    def occupancy(self):
        """Number of currently buffered XPLines."""
        return sum(len(table) for table in self._table)

    def dirty_lines(self):
        return sum(
            1 for table in self._table for e in table.values() if e.dirty
        )
