"""Calibration constants for the simulated Cascade Lake + Optane platform.

Every timing parameter of the simulator lives here, grouped by the
hardware structure it describes.  The defaults are calibrated so that
the microbenchmarks in :mod:`repro.lattester` reproduce the published
numbers of the FAST'20 paper (see DESIGN.md for the target table).

The configuration objects are plain dataclasses so experiments can
tweak individual parameters (the ablation benchmarks rely on this).
"""

from dataclasses import dataclass, field, replace

from repro._units import KIB, MIB, US


@dataclass
class MediaConfig:
    """Timing of the 3D XPoint storage media inside one DIMM.

    The media is modelled as a pool of ``banks`` concurrently busy
    units; every access occupies one bank for the listed occupancy and
    returns data after occupancy plus ``read_extra_ns`` of pipeline
    latency that does not occupy the bank.
    """

    banks: int = 6
    # 6 banks * 256 B / 235 ns  =  6.54 GB/s peak read per DIMM.
    read_occupancy_ns: float = 235.0
    read_extra_ns: float = 70.0
    # 6 banks * 256 B / 670 ns  =  2.29 GB/s peak write per DIMM.
    write_occupancy_ns: float = 670.0
    # Scaling applied when the DIMM is configured with a reduced power
    # budget (the paper sweeps this knob in its systematic sweep).
    power_budget: float = 1.0


@dataclass
class AITConfig:
    """Address indirection table / wear-levelling behaviour.

    Wear-levelling migrations are the source of the rare ~50 us write
    outliers of Figure 3: after roughly ``migrate_every`` media writes
    to the same XPLine the controller remaps the line, stalling the
    access that triggered it.
    """

    enabled: bool = True
    # One wear-levelling rotation per this many media writes per DIMM:
    # 1/4096 of 256 B media writes ~= 0.006 % of 64 B application
    # stores, the paper's measured outlier rate.
    migrate_every: int = 4096
    migrate_stall_ns: float = 50.0 * US
    # Deterministic per-DIMM phase so DIMMs do not migrate in lock-step;
    # expressed in media writes.
    migrate_jitter: int = 512
    # Thermal stall: a *buffered* XPLine that absorbs this many 64 B
    # writes (without leaving the XPBuffer) stalls the controller.
    # Covers hotspots smaller than the buffer, where the media never
    # sees the traffic but the cell region still heats up.
    thermal_every: int = 2048
    thermal_stall_ns: float = 50.0 * US


@dataclass
class XPBufferConfig:
    """The on-DIMM write-combining buffer (XPBuffer).

    16 KB = 64 XPLines, modelled as a set-associative structure; the
    limited associativity is what makes concurrent write streams evict
    partially written lines and collapse the effective write ratio.
    """

    sets: int = 16
    ways: int = 4
    # Time for the controller to merge a 64 B write into a buffered line
    # or to allocate a fresh (non-evicting) line.
    ingest_ns: float = 25.0
    # Additional controller latency for a read that hits the buffer.
    read_hit_ns: float = 53.0

    @property
    def lines(self):
        return self.sets * self.ways

    @property
    def capacity_bytes(self):
        return self.lines * 256


@dataclass
class WPQConfig:
    """iMC pending-queue behaviour (the ADR boundary).

    ``per_thread_lines`` models the documented fact that the WPQ will
    not buffer more than 256 B (4 cache lines) from a single thread;
    this limit produces the head-of-line blocking of Figure 16.
    """

    per_thread_lines: int = 4
    # Latency for a store to travel core -> iMC and commit into the
    # ADR-protected WPQ; this is what sfence waits for.  Calibrated so
    # that the full fenced sequences of Figure 2 (store+clwb+fence /
    # ntstore+fence, including core-side issue and fence costs) land on
    # 57/62/86/90 ns.
    insert_clwb_ns: float = 33.0
    insert_clwb_optane_ns: float = 38.0
    insert_nt_ns: float = 74.0
    insert_nt_optane_ns: float = 78.0


@dataclass
class ChannelConfig:
    """Per-channel (per-DIMM link) transfer occupancies at the iMC."""

    # Occupancy of the channel per 64 B beat.  Writes through the cache
    # hierarchy drain slightly faster than the weakly-ordered ntstore
    # path, matching the DRAM bandwidth split of Figure 4 (left).
    read_occ_ns: float = 3.6
    writeback_occ_ns: float = 4.4
    ntstore_occ_ns: float = 6.6


@dataclass
class DRAMConfig:
    """A DDR4 DIMM: symmetric, fast, row-buffer sensitive."""

    banks: int = 8
    row_bytes: int = 8 * KIB
    # Latency targets from Figure 2: 81 ns sequential, 101 ns random.
    row_hit_occupancy_ns: float = 14.0
    row_miss_occupancy_ns: float = 34.0
    read_extra_ns: float = 67.0
    write_occupancy_ns: float = 25.0


@dataclass
class CacheConfig:
    """CPU cache model (the LLC is what matters for persistence)."""

    capacity_bytes: int = 16 * MIB
    ways: int = 16
    hit_ns: float = 20.0
    # Extended ADR (the research proposals of Section 6, [43]/[67]):
    # the ADR domain grows to cover the caches, so every store is
    # persistent the moment it lands in a cache line — flushes become
    # unnecessary for durability (though they still cost time if
    # issued).
    eadr: bool = False
    # Per-instruction core-side issue costs.
    issue_ns: float = 2.0
    flush_issue_ns: float = 12.0
    fence_ns: float = 10.0
    # Memory-level parallelism: maximum outstanding cache-line fills a
    # single thread sustains (line fill buffers).
    load_window: int = 10


@dataclass
class NUMAConfig:
    """Cross-socket (UPI) link behaviour.

    The mixed read/write collapse of Figures 18/19 comes from the
    direction-turnaround penalty: every time consecutive transfers on
    the link change direction the link stalls for ``turnaround_ns``.
    """

    read_extra_ns: float = 61.0
    write_extra_ns: float = 100.0
    # Link occupancy per 64 B transfer, per direction.  Writes homed on
    # DDR-T ("heavy") occupy longer: the home iMC issues them to a slow
    # WPQ with stretched credit loops; DRAM-homed writes stream at
    # full UPI rate.
    read_occ_ns: float = 2.8
    write_occ_ns: float = 7.4
    write_occ_light_ns: float = 3.2
    turnaround_ns: float = 160.0


@dataclass
class InterleaveConfig:
    """Address interleaving across the DIMMs of one socket."""

    block_bytes: int = 4 * KIB
    dimms: int = 6


@dataclass
class MachineConfig:
    """Top-level configuration: two sockets of six channels each."""

    sockets: int = 2
    dimms_per_socket: int = 6
    dimm_capacity: int = 64 * MIB     # simulated span per DIMM (not 256 GB)
    dram_capacity: int = 64 * MIB     # simulated span per DRAM DIMM
    seed: int = 42

    media: MediaConfig = field(default_factory=MediaConfig)
    ait: AITConfig = field(default_factory=AITConfig)
    xpbuffer: XPBufferConfig = field(default_factory=XPBufferConfig)
    wpq: WPQConfig = field(default_factory=WPQConfig)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    numa: NUMAConfig = field(default_factory=NUMAConfig)
    interleave: InterleaveConfig = field(default_factory=InterleaveConfig)

    def with_overrides(self, **kwargs):
        """Return a copy of this config with top-level fields replaced."""
        return replace(self, **kwargs)


def default_config():
    """The calibrated baseline configuration used by all experiments."""
    return MachineConfig()
