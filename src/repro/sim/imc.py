"""Integrated memory controller: channels and the WPQ/ADR boundary.

Each DIMM hangs off its own :class:`MemoryChannel`.  The channel is a
single-server resource whose per-64 B occupancy differs by traffic type
(reads, cache write-backs, non-temporal stores); for DRAM the channel
is the bandwidth cap, for Optane the media is.

The write pending queue (WPQ) sits inside the ADR domain: a store is
*persistent* the moment it is inserted, long before the DIMM accepts
it.  Insert latencies differ per instruction path and device, and are
calibrated so the end-to-end fenced store sequences of Figure 2 land on
the published numbers.  WPQ capacity per thread (256 B = 4 lines) is
enforced by the per-thread store window in :class:`~repro.sim.engine.ThreadCtx`.
"""

from repro.sim.engine import BackfillResource, Resource


class MemoryChannel:
    """The DDR4/DDR-T link between one iMC port and one DIMM.

    Reads (RPQ) and writes (WPQ) are separate queues on real hardware:
    the read path backfills idle slots (a demand load issued "now" is
    not blocked by write-backs the WPQ already booked a few hundred ns
    into the future), while the write path drains strictly in FIFO
    arrival order — which is what makes the DIMM-side write-combining
    behaviour depend on cross-thread arrival interleaving.
    """

    def __init__(self, config, name):
        self._cfg = config
        self._read_link = BackfillResource(name + ".rd", max_gaps=32)
        self._write_link = Resource(name + ".wr", 1)

    def transfer_read(self, now):
        _, end = self._read_link.acquire(now, self._cfg.read_occ_ns)
        return end

    def transfer_writeback(self, now):
        _, end = self._write_link.acquire(now, self._cfg.writeback_occ_ns)
        return end

    def transfer_ntstore(self, now):
        _, end = self._write_link.acquire(now, self._cfg.ntstore_occ_ns)
        return end

    def reset(self):
        self._read_link.reset()
        self._write_link.reset()


def wpq_insert_latency(wpq_config, instr, is_optane):
    """WPQ insertion latency for a store travelling ``instr`` path.

    ``instr`` is ``"clwb"`` for the cached write-back path (clwb,
    clflush, clflushopt and natural evictions share it) or ``"nt"`` for
    non-temporal stores.
    """
    if instr == "nt":
        if is_optane:
            return wpq_config.insert_nt_optane_ns
        return wpq_config.insert_nt_ns
    if is_optane:
        return wpq_config.insert_clwb_optane_ns
    return wpq_config.insert_clwb_ns
