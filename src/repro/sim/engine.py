"""Virtual-time execution engine.

The simulator does not use wall-clock time at all.  Every simulated
thread owns a clock (in nanoseconds); shared hardware structures are
modelled as :class:`Resource` server pools whose acquisition advances
those clocks.  Multi-threaded workloads are generators driven by a
:class:`Scheduler` that always steps the thread with the smallest
clock, which makes contention results deterministic and independent of
host machine speed.
"""

import heapq
import os
from bisect import bisect_left
from collections import deque

#: Master switch for the batched fast paths (kernel ``yield_every``
#: batching and the single-workload scheduler bypass).  Both are
#: byte-identical to the reference per-beat execution; the switch
#: exists so CI determinism gates can prove it (``REPRO_FASTPATH=0``)
#: and so the equivalence tests can drive both paths in one process.
FASTPATH_ENABLED = os.environ.get("REPRO_FASTPATH", "1") != "0"


def set_fastpath(enabled):
    """Toggle the batched fast paths at runtime (returns prior value)."""
    global FASTPATH_ENABLED
    prior = FASTPATH_ENABLED
    FASTPATH_ENABLED = bool(enabled)
    return prior


class Resource:
    """A pool of ``servers`` identical units with deterministic service.

    ``acquire(t, occupancy)`` books the earliest available server no
    sooner than time ``t`` and returns ``(start, end)`` where
    ``end = start + occupancy`` is when the server frees up.
    """

    __slots__ = ("name", "_free", "_single", "busy_ns", "_last_end")

    def __init__(self, name, servers):
        if servers < 1:
            raise ValueError("a resource needs at least one server")
        self.name = name
        self._free = [0.0] * servers
        heapq.heapify(self._free)
        self._single = servers == 1
        self.busy_ns = 0.0
        self._last_end = 0.0

    def acquire(self, now, occupancy):
        """Occupy one server for ``occupancy`` ns, starting at or after ``now``."""
        free = self._free
        if self._single:
            # One server: the heap is a single slot, skip heapq entirely.
            earliest = free[0]
            start = earliest if earliest > now else now
            end = start + occupancy
            free[0] = end
        else:
            # The booked server is always the root (the earliest-free
            # one), so pop+push collapses into one sift-down.
            earliest = free[0]
            start = earliest if earliest > now else now
            end = start + occupancy
            heapq.heapreplace(free, end)
        self.busy_ns += occupancy
        if end > self._last_end:
            self._last_end = end
        return start, end

    def next_free_at(self):
        """Earliest time at which some server is available."""
        return self._free[0]

    def reset(self, now=0.0):
        """Clear all bookings (used when reusing a machine between runs)."""
        self._free = [now] * len(self._free)
        heapq.heapify(self._free)
        self.busy_ns = 0.0
        self._last_end = now


class BackfillResource:
    """A single-server resource that can reuse idle gaps.

    A plain :class:`Resource` books strictly at the tail, so a thread
    whose sparse transfers are spread across its operation leaves holes
    that nobody else can use — which would falsely serialize a shared
    link.  This variant keeps a bounded list of idle gaps and places
    new work into the earliest gap it fits, like a real pipelined link
    interleaving flits from many agents.
    """

    __slots__ = ("name", "_gap_start", "_gap_end", "_tail", "busy_ns",
                 "max_gaps")

    def __init__(self, name, max_gaps=128):
        self.name = name
        # Disjoint idle gaps, sorted: parallel (start, end) lists so the
        # first fitting gap can be located with one bisect instead of a
        # linear scan over dead fragments (the old list-of-tuples scan
        # was the hottest function in a multi-thread sweep).
        self._gap_start = []
        self._gap_end = []
        self._tail = 0.0
        self.busy_ns = 0.0
        self.max_gaps = max_gaps

    def acquire(self, now, occupancy):
        """Book ``occupancy`` ns at or after ``now``; returns (start, end)."""
        self.busy_ns += occupancy
        starts = self._gap_start
        ends = self._gap_end
        if starts:
            # A gap [gs, ge) fits iff max(gs, now) + occupancy <= ge,
            # i.e. min(ge - gs, ge - now) >= occupancy — impossible when
            # ge < now + occupancy.  Gaps are disjoint and sorted, so
            # their ends are increasing and every gap before this bisect
            # point is infeasible: skipping them preserves first-fit
            # placement exactly.
            i = bisect_left(ends, now + occupancy)
            n = len(starts)
            while i < n:
                gs = starts[i]
                ge = ends[i]
                start = gs if gs > now else now
                end = start + occupancy
                if end <= ge:
                    keep_s = []
                    keep_e = []
                    if start - gs > 1e-9:
                        keep_s.append(gs)
                        keep_e.append(start)
                    if ge - end > 1e-9:
                        keep_s.append(end)
                        keep_e.append(ge)
                    starts[i:i + 1] = keep_s
                    ends[i:i + 1] = keep_e
                    return start, end
                i += 1
        tail = self._tail
        start = tail if tail > now else now
        if start - tail > 1e-9:
            starts.append(tail)
            ends.append(start)
            if len(starts) > self.max_gaps:
                del starts[0]
                del ends[0]
        end = start + occupancy
        self._tail = end
        return start, end

    def next_free_at(self):
        if self._gap_start:
            return self._gap_start[0]
        return self._tail

    @property
    def _gaps(self):
        """The idle gaps as ``[(start, end)]`` (introspection helper)."""
        return list(zip(self._gap_start, self._gap_end))

    def clear_gaps(self):
        """Drop all backfillable gaps (pipeline stall semantics)."""
        del self._gap_start[:]
        del self._gap_end[:]

    @property
    def _last_end(self):
        return self._tail

    def reset(self, now=0.0):
        self.clear_gaps()
        self._tail = now
        self.busy_ns = 0.0


class DirectionalLink(BackfillResource):
    """A link that pays a turnaround cost on cross-agent direction change.

    Models the UPI cross-socket interconnect: consecutive transfers in
    the same direction stream back-to-back, but a read-after-write (or
    write-after-read) inserts ``turnaround_ns`` of dead time — *when the
    link is busy*.  A lone thread's sparse, latency-spaced transfers
    arrive with idle gaps that let the link's buffering re-batch them
    (no penalty), which is why the paper finds single-threaded remote
    bandwidth close to local while multi-threaded mixed traffic
    collapses by an order of magnitude (Section 5.4, Figure 18).
    """

    __slots__ = ("turnaround_ns", "idle_reset_ns", "_direction", "_source",
                 "turnarounds")

    def __init__(self, name, turnaround_ns, idle_reset_ns=30.0):
        super().__init__(name)
        self.turnaround_ns = turnaround_ns
        self.idle_reset_ns = idle_reset_ns
        self._direction = None
        self._source = None
        self.turnarounds = 0

    def transfer(self, now, occupancy, direction, source=None, heavy=True):
        """Book the link for one transfer in ``direction`` ('rd' or 'wr').

        ``source`` identifies the requesting agent (thread): a single
        agent's alternating reads and writes coalesce in its request
        queue and pay no turnaround; interleaved switches between
        *different* agents thrash the link scheduler and do.

        ``heavy`` marks transfers against a slow home device (DDR-T):
        only those pay the turnaround, because the penalty models the
        home iMC's read/write scheduling degenerating when its slow
        write queue must drain between remote reads.  DRAM-homed
        traffic switches direction for free, which is why the paper
        sees the mixed-traffic collapse only for remote Optane.
        """
        if now > self._last_end + self.idle_reset_ns:
            # The link went idle: buffered re-batching hides the switch.
            self._direction = None
        cost = occupancy
        if (heavy and self._direction is not None
                and direction != self._direction
                and source != self._source):
            cost += self.turnaround_ns
            self.turnarounds += 1
            # A turnaround stalls the whole pipeline: nothing may be
            # backfilled into earlier idle slots across it.
            self.clear_gaps()
        self._direction = direction
        self._source = source
        return self.acquire(now, cost)

    def reset(self, now=0.0):
        super().reset(now)
        self._direction = None
        self._source = None
        self.turnarounds = 0


class ThreadCtx:
    """Execution context of one simulated hardware thread.

    Tracks the thread clock and the two per-thread pipelining windows:

    * ``load_window`` outstanding cache-line fills (line fill buffers),
    * ``store_window`` outstanding stores not yet accepted past the WPQ
      (the documented 256 B per-thread WPQ occupancy limit).

    ``pending_persists`` records the completion times of all flushes,
    write-backs and non-temporal stores that an ``sfence`` must drain.
    """

    __slots__ = (
        "machine", "tid", "socket", "now", "load_window", "store_window",
        "_loads", "_stores", "pending_persists", "bytes_read",
        "bytes_written", "latencies", "fence_ns",
    )

    def __init__(self, machine, tid, socket, load_window, store_window,
                 fence_ns=10.0):
        self.machine = machine
        self.tid = tid
        self.socket = socket
        self.now = 0.0
        self.load_window = load_window
        self.store_window = store_window
        self.fence_ns = fence_ns
        self._loads = deque()
        self._stores = deque()
        self.pending_persists = []
        self.bytes_read = 0
        self.bytes_written = 0
        self.latencies = None       # enable with collect_latencies()

    # -- window management -------------------------------------------------

    def admit_load(self):
        """Block (advance the clock) until a load slot is free."""
        if len(self._loads) >= self.load_window:
            done = self._loads.popleft()
            if done > self.now:
                self.now = done
        return self.now

    def track_load(self, completion):
        self._loads.append(completion)

    def admit_store(self, lead_ns=0.0):
        """Block until a WPQ slot for this thread will be free.

        ``lead_ns`` is the pipeline latency between issuing the store
        and its arrival at the WPQ: the thread only needs the slot by
        *then*, so issue is delayed to ``oldest_accept - lead_ns`` (the
        store instruction itself retires quickly; the WPQ-occupancy
        window is what back-pressures).
        """
        if len(self._stores) >= self.store_window:
            done = self._stores.popleft()
            if done - lead_ns > self.now:
                self.now = done - lead_ns
        return self.now

    def track_store(self, completion):
        self._stores.append(completion)

    def drain(self):
        """Wait for every outstanding load and store (used by fences)."""
        for done in self._loads:
            if done > self.now:
                self.now = done
        self._loads.clear()
        for done in self._stores:
            if done > self.now:
                self.now = done
        self._stores.clear()

    def drain_persists(self):
        """Advance the clock past all pending persist completions."""
        if self.pending_persists:
            latest = max(self.pending_persists)
            if latest > self.now:
                self.now = latest
            self.pending_persists.clear()

    def sleep(self, ns):
        """Idle the thread for ``ns`` simulated nanoseconds."""
        self.now += ns

    def collect_latencies(self):
        """Start recording per-operation latencies (for latency benches)."""
        self.latencies = []
        return self

    def record_latency(self, ns):
        if self.latencies is not None:
            self.latencies.append(ns)

    # -- fences -------------------------------------------------------------

    def sfence(self):
        """Order prior flushes/write-backs/ntstores: wait for the ADR."""
        machine = self.machine
        if machine is not None and machine.pmcheck is not None:
            machine.pmcheck.on_sfence(self)
        if not self.pending_persists:
            # Nothing to order: a real sfence with an empty store queue
            # retires without stalling, so charging fence_ns here would
            # overstate latency (and the checker's redundant-fence
            # detector depends on an empty sfence being exactly free).
            return self.now
        self.drain_persists()
        self.now += self.fence_ns
        return self.now

    def mfence(self):
        """Full fence: drain loads, stores and pending persists.

        Unlike :meth:`sfence`, an mfence serializes the whole pipeline
        even when nothing is pending, so its cost is unconditional.
        """
        machine = self.machine
        if machine is not None and machine.pmcheck is not None:
            machine.pmcheck.on_mfence(self)
        self.drain()
        self.drain_persists()
        self.now += self.fence_ns
        return self.now


class Scheduler:
    """Interleaves generator-based workloads in virtual-time order.

    Each workload is a generator that performs simulated memory
    operations on its thread context and ``yield``s at interleaving
    points (typically once per operation or small batch).  The
    scheduler repeatedly resumes the generator whose thread clock is
    smallest, which is how cross-thread contention on shared resources
    is captured.
    """

    def __init__(self):
        self._entries = []

    def spawn(self, thread, generator):
        self._entries.append([thread, generator, False])

    def reset(self):
        """Forget all workloads, finished or not.

        ``run`` marks entries finished but used to leave them in
        ``self._entries`` forever, so a scheduler reused across
        ``spawn``/``run`` cycles grew without bound (and ``threads``
        kept reporting long-dead workloads).  Call this between cycles;
        :func:`run_workloads` does so automatically.
        """
        del self._entries[:]

    def run(self):
        """Drive all workloads to completion; returns the final max clock."""
        entries = self._entries
        live = [e for e in entries if not e[2]]
        if len(live) == 1 and FASTPATH_ENABLED:
            # One live workload: no interleaving decisions to make, so
            # drain its generator in a tight loop with no heap traffic.
            # Virtual time is advanced by the simulated operations
            # themselves, so the result is identical to the heap path.
            entry = live[0]
            for _ in entry[1]:
                pass
            entry[2] = True
            return max((e[0].now for e in entries), default=0.0)
        # Heap items carry the thread and the generator's bound __next__
        # to avoid re-indexing entries every step; idx is unique per
        # entry so ordering — (now, idx) — matches the reference
        # scheduler exactly and the trailing fields never compare.
        heap = [(e[0].now, i, e[0], e[1].__next__)
                for i, e in enumerate(entries) if not e[2]]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        while heap:
            item = heap[0]
            idx = item[1]
            thread = item[2]
            step = item[3]
            # Keys are (now, idx) and idx is unique, so pop order is a
            # total order on current keys.  The root entry's stored key
            # may go stale while we run ahead, but we only do so while
            # its *current* key stays strictly below the smaller root
            # child (the minimum of everything else in the heap), so
            # the workload we step is always the one the pop-push loop
            # would have picked.  While we run ahead the rest of the
            # heap is untouched, so that minimum is computed once per
            # root tenure, not per step.
            n = len(heap)
            if n > 2:
                a = heap[1]
                b = heap[2]
                other = a if a < b else b
            elif n == 2:
                other = heap[1]
            else:
                # Last live workload: drain it, no ordering left to do.
                try:
                    while True:
                        step()
                except StopIteration:
                    entries[idx][2] = True
                    heappop(heap)
                continue
            onow = other[0]
            oidx = other[1]
            try:
                while True:
                    step()
                    now = thread.now
                    if now > onow or (now == onow and idx > oidx):
                        heapreplace(heap, (now, idx, thread, step))
                        break
            except StopIteration:
                entries[idx][2] = True
                heappop(heap)
        return max((e[0].now for e in entries), default=0.0)

    @property
    def threads(self):
        return [e[0] for e in self._entries]


def run_workloads(pairs):
    """Convenience wrapper: run ``[(thread, generator), ...]`` to completion.

    Returns the largest finishing thread clock.  The scheduler is reset
    afterwards so no references to finished generators linger.
    """
    sched = Scheduler()
    for thread, gen in pairs:
        sched.spawn(thread, gen)
    try:
        return sched.run()
    finally:
        sched.reset()


def run_interleaved(entries):
    """Serving fast path: step bounded per-thread loops in clock order.

    ``entries`` is ``[(thread, budget, step), ...]`` in spawn order;
    each ``step()`` call performs exactly one unit of work (one served
    request) on its thread.  Steps are executed in strictly increasing
    ``(thread.now, spawn index)`` order — the same total order the
    generator-based :class:`Scheduler` produces, because its heap (and
    run-ahead) always resumes the minimum-key workload and a serve
    client yields once per request.  This trades the heap and generator
    machinery for a direct scan over the (few) live clients, and
    extends the single-live-workload bypass to the serving common case:
    once one client remains, its loop drains with no ordering work at
    all.

    Returns the largest finishing thread clock, like
    :func:`run_workloads`.  Exhausted budgets drop out; a zero budget
    never steps (the scheduler equivalent is a generator that raises
    StopIteration on first resume, which performs no simulated work).
    """
    threads = [e[0] for e in entries]
    live = [[thread, budget, step] for thread, budget, step in entries
            if budget > 0]
    while len(live) > 1:
        best = live[0]
        best_now = best[0].now
        for entry in live[1:]:
            now = entry[0].now
            if now < best_now:
                best = entry
                best_now = now
        best[2]()
        best[1] -= 1
        if best[1] == 0:
            live.remove(best)
    if live:
        _thread, budget, step = live[0]
        for _ in range(budget):
            step()
    return max((t.now for t in threads), default=0.0)
