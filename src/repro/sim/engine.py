"""Virtual-time execution engine.

The simulator does not use wall-clock time at all.  Every simulated
thread owns a clock (in nanoseconds); shared hardware structures are
modelled as :class:`Resource` server pools whose acquisition advances
those clocks.  Multi-threaded workloads are generators driven by a
:class:`Scheduler` that always steps the thread with the smallest
clock, which makes contention results deterministic and independent of
host machine speed.
"""

import heapq
from collections import deque


class Resource:
    """A pool of ``servers`` identical units with deterministic service.

    ``acquire(t, occupancy)`` books the earliest available server no
    sooner than time ``t`` and returns ``(start, end)`` where
    ``end = start + occupancy`` is when the server frees up.
    """

    __slots__ = ("name", "_free", "busy_ns", "_last_end")

    def __init__(self, name, servers):
        if servers < 1:
            raise ValueError("a resource needs at least one server")
        self.name = name
        self._free = [0.0] * servers
        heapq.heapify(self._free)
        self.busy_ns = 0.0
        self._last_end = 0.0

    def acquire(self, now, occupancy):
        """Occupy one server for ``occupancy`` ns, starting at or after ``now``."""
        earliest = heapq.heappop(self._free)
        start = earliest if earliest > now else now
        end = start + occupancy
        heapq.heappush(self._free, end)
        self.busy_ns += occupancy
        if end > self._last_end:
            self._last_end = end
        return start, end

    def next_free_at(self):
        """Earliest time at which some server is available."""
        return self._free[0]

    def reset(self, now=0.0):
        """Clear all bookings (used when reusing a machine between runs)."""
        self._free = [now] * len(self._free)
        heapq.heapify(self._free)
        self.busy_ns = 0.0
        self._last_end = now


class BackfillResource:
    """A single-server resource that can reuse idle gaps.

    A plain :class:`Resource` books strictly at the tail, so a thread
    whose sparse transfers are spread across its operation leaves holes
    that nobody else can use — which would falsely serialize a shared
    link.  This variant keeps a bounded list of idle gaps and places
    new work into the earliest gap it fits, like a real pipelined link
    interleaving flits from many agents.
    """

    __slots__ = ("name", "_gaps", "_tail", "busy_ns", "max_gaps")

    def __init__(self, name, max_gaps=128):
        self.name = name
        self._gaps = []              # sorted [(start, end)]
        self._tail = 0.0
        self.busy_ns = 0.0
        self.max_gaps = max_gaps

    def acquire(self, now, occupancy):
        """Book ``occupancy`` ns at or after ``now``; returns (start, end)."""
        self.busy_ns += occupancy
        for i, (gs, ge) in enumerate(self._gaps):
            start = gs if gs > now else now
            if start + occupancy <= ge:
                end = start + occupancy
                replacement = []
                if start - gs > 1e-9:
                    replacement.append((gs, start))
                if ge - end > 1e-9:
                    replacement.append((end, ge))
                self._gaps[i:i + 1] = replacement
                return start, end
        start = self._tail if self._tail > now else now
        if start - self._tail > 1e-9:
            self._gaps.append((self._tail, start))
            if len(self._gaps) > self.max_gaps:
                self._gaps.pop(0)
        end = start + occupancy
        self._tail = end
        return start, end

    def next_free_at(self):
        if self._gaps:
            return self._gaps[0][0]
        return self._tail

    @property
    def _last_end(self):
        return self._tail

    def reset(self, now=0.0):
        self._gaps = []
        self._tail = now
        self.busy_ns = 0.0


class DirectionalLink(BackfillResource):
    """A link that pays a turnaround cost on cross-agent direction change.

    Models the UPI cross-socket interconnect: consecutive transfers in
    the same direction stream back-to-back, but a read-after-write (or
    write-after-read) inserts ``turnaround_ns`` of dead time — *when the
    link is busy*.  A lone thread's sparse, latency-spaced transfers
    arrive with idle gaps that let the link's buffering re-batch them
    (no penalty), which is why the paper finds single-threaded remote
    bandwidth close to local while multi-threaded mixed traffic
    collapses by an order of magnitude (Section 5.4, Figure 18).
    """

    __slots__ = ("turnaround_ns", "idle_reset_ns", "_direction", "_source",
                 "turnarounds")

    def __init__(self, name, turnaround_ns, idle_reset_ns=30.0):
        super().__init__(name)
        self.turnaround_ns = turnaround_ns
        self.idle_reset_ns = idle_reset_ns
        self._direction = None
        self._source = None
        self.turnarounds = 0

    def transfer(self, now, occupancy, direction, source=None, heavy=True):
        """Book the link for one transfer in ``direction`` ('rd' or 'wr').

        ``source`` identifies the requesting agent (thread): a single
        agent's alternating reads and writes coalesce in its request
        queue and pay no turnaround; interleaved switches between
        *different* agents thrash the link scheduler and do.

        ``heavy`` marks transfers against a slow home device (DDR-T):
        only those pay the turnaround, because the penalty models the
        home iMC's read/write scheduling degenerating when its slow
        write queue must drain between remote reads.  DRAM-homed
        traffic switches direction for free, which is why the paper
        sees the mixed-traffic collapse only for remote Optane.
        """
        if now > self._last_end + self.idle_reset_ns:
            # The link went idle: buffered re-batching hides the switch.
            self._direction = None
        cost = occupancy
        if (heavy and self._direction is not None
                and direction != self._direction
                and source != self._source):
            cost += self.turnaround_ns
            self.turnarounds += 1
            # A turnaround stalls the whole pipeline: nothing may be
            # backfilled into earlier idle slots across it.
            self._gaps.clear()
        self._direction = direction
        self._source = source
        return self.acquire(now, cost)

    def reset(self, now=0.0):
        super().reset(now)
        self._direction = None
        self._source = None
        self.turnarounds = 0


class ThreadCtx:
    """Execution context of one simulated hardware thread.

    Tracks the thread clock and the two per-thread pipelining windows:

    * ``load_window`` outstanding cache-line fills (line fill buffers),
    * ``store_window`` outstanding stores not yet accepted past the WPQ
      (the documented 256 B per-thread WPQ occupancy limit).

    ``pending_persists`` records the completion times of all flushes,
    write-backs and non-temporal stores that an ``sfence`` must drain.
    """

    __slots__ = (
        "machine", "tid", "socket", "now", "load_window", "store_window",
        "_loads", "_stores", "pending_persists", "bytes_read",
        "bytes_written", "latencies", "fence_ns",
    )

    def __init__(self, machine, tid, socket, load_window, store_window,
                 fence_ns=10.0):
        self.machine = machine
        self.tid = tid
        self.socket = socket
        self.now = 0.0
        self.load_window = load_window
        self.store_window = store_window
        self.fence_ns = fence_ns
        self._loads = deque()
        self._stores = deque()
        self.pending_persists = []
        self.bytes_read = 0
        self.bytes_written = 0
        self.latencies = None       # enable with collect_latencies()

    # -- window management -------------------------------------------------

    def admit_load(self):
        """Block (advance the clock) until a load slot is free."""
        if len(self._loads) >= self.load_window:
            done = self._loads.popleft()
            if done > self.now:
                self.now = done
        return self.now

    def track_load(self, completion):
        self._loads.append(completion)

    def admit_store(self, lead_ns=0.0):
        """Block until a WPQ slot for this thread will be free.

        ``lead_ns`` is the pipeline latency between issuing the store
        and its arrival at the WPQ: the thread only needs the slot by
        *then*, so issue is delayed to ``oldest_accept - lead_ns`` (the
        store instruction itself retires quickly; the WPQ-occupancy
        window is what back-pressures).
        """
        if len(self._stores) >= self.store_window:
            done = self._stores.popleft()
            if done - lead_ns > self.now:
                self.now = done - lead_ns
        return self.now

    def track_store(self, completion):
        self._stores.append(completion)

    def drain(self):
        """Wait for every outstanding load and store (used by fences)."""
        for done in self._loads:
            if done > self.now:
                self.now = done
        self._loads.clear()
        for done in self._stores:
            if done > self.now:
                self.now = done
        self._stores.clear()

    def drain_persists(self):
        """Advance the clock past all pending persist completions."""
        if self.pending_persists:
            latest = max(self.pending_persists)
            if latest > self.now:
                self.now = latest
            self.pending_persists.clear()

    def sleep(self, ns):
        """Idle the thread for ``ns`` simulated nanoseconds."""
        self.now += ns

    def collect_latencies(self):
        """Start recording per-operation latencies (for latency benches)."""
        self.latencies = []
        return self

    def record_latency(self, ns):
        if self.latencies is not None:
            self.latencies.append(ns)

    # -- fences -------------------------------------------------------------

    def sfence(self):
        """Order prior flushes/write-backs/ntstores: wait for the ADR."""
        self.drain_persists()
        self.now += self.fence_ns
        return self.now

    def mfence(self):
        """Full fence: drain loads, stores and pending persists."""
        self.drain()
        self.drain_persists()
        self.now += self.fence_ns
        return self.now


class Scheduler:
    """Interleaves generator-based workloads in virtual-time order.

    Each workload is a generator that performs simulated memory
    operations on its thread context and ``yield``s at interleaving
    points (typically once per operation or small batch).  The
    scheduler repeatedly resumes the generator whose thread clock is
    smallest, which is how cross-thread contention on shared resources
    is captured.
    """

    def __init__(self):
        self._entries = []

    def spawn(self, thread, generator):
        self._entries.append([thread, generator, False])

    def run(self):
        """Drive all workloads to completion; returns the final max clock."""
        heap = [(e[0].now, i) for i, e in enumerate(self._entries) if not e[2]]
        heapq.heapify(heap)
        while heap:
            _, idx = heapq.heappop(heap)
            entry = self._entries[idx]
            thread, gen, finished = entry
            if finished:
                continue
            try:
                next(gen)
            except StopIteration:
                entry[2] = True
                continue
            heapq.heappush(heap, (thread.now, idx))
        return max((e[0].now for e in self._entries), default=0.0)

    @property
    def threads(self):
        return [e[0] for e in self._entries]


def run_workloads(pairs):
    """Convenience wrapper: run ``[(thread, generator), ...]`` to completion.

    Returns the largest finishing thread clock.
    """
    sched = Scheduler()
    for thread, gen in pairs:
        sched.spawn(thread, gen)
    return sched.run()
