"""One 3D XPoint DIMM: XPController + XPBuffer + AIT + media.

The controller receives 64 B DDR-T transfers from the iMC and turns
them into 256 B media accesses:

* a write that hits a buffered XPLine merges in ``ingest_ns``;
* a write that misses allocates a buffer entry, evicting the set's LRU
  line if needed — a fully written (or fully valid) victim costs one
  media write, a partially written one costs a read-modify-write;
* a read that hits the buffer returns quickly; a miss fetches the whole
  XPLine from media (and the allocation can evict a dirty victim).

Eviction back-pressure is what bounds sustained write bandwidth: the
controller's accept time for a miss waits for the media bank *booking*
(posted write), so once the banks backlog, accepts — and therefore the
WPQ, and therefore the application's stores — stall.
"""

from heapq import heapreplace as _heapreplace

from repro._units import CACHELINE, XPLINE
from repro.sim.counters import DimmCounters
from repro.sim.media import XPMedia
from repro.sim.xpbuffer import BufferEntry, XPBuffer


class XPDimm:
    """A single Optane DC PMM as seen from its memory channel."""

    def __init__(self, machine_config, name, tracer=None):
        self.name = name
        self._buf_cfg = machine_config.xpbuffer
        self._ait_cfg = machine_config.ait
        self._tracer = tracer
        self.counters = DimmCounters()
        self.buffer = XPBuffer(machine_config.xpbuffer)
        self.media = XPMedia(
            machine_config.media, machine_config.ait, self.counters,
            name=name + ".media", tracer=tracer)

    @property
    def thermal_stalls(self):
        return self.media.ait.thermal_stalls

    # -- controller entry points -------------------------------------------

    def ingest_write(self, now, dev_addr):
        """Accept one 64 B write from the WPQ; returns the accept time.

        The body of :meth:`XPBuffer.write` is inlined (same state
        transitions, counters and FIFO order): this runs once per 64 B
        store beat, so the extra call and tuple return were measurable.
        """
        self.counters.imc_write_bytes += CACHELINE
        xpline = dev_addr >> 8                   # divmod by XPLINE (256)
        subline = (dev_addr >> 6) & 3            # ... // CACHELINE (64)
        buf = self.buffer
        table = buf._table[xpline % buf._sets]   # buffer.write, inlined
        entry = table.get(xpline)
        hit = False
        evicted = None
        if entry is not None:
            bit = 1 << subline
            if not entry.dirty_mask & bit:
                entry.dirty_mask |= bit
                entry.writes += 1
                buf.hits += 1
                hit = True
            else:
                # Overwrite: flush the old version, restart the entry.
                del table[xpline]
                fresh = BufferEntry(xpline, dirty_mask=bit)
                fresh.writes = entry.writes + 1
                table[xpline] = fresh
                buf.misses += 1
                if entry.dirty_mask:
                    evicted = entry
        else:
            buf.misses += 1
            if len(table) >= buf._ways:          # _make_room, inlined
                _, evicted = table.popitem(last=False)
            fresh = BufferEntry(xpline, dirty_mask=1 << subline)
            fresh.writes = 1
            table[xpline] = fresh
        ingest_ns = self._buf_cfg.ingest_ns
        accept = now + ingest_ns
        if not hit and evicted is not None and evicted.dirty_mask:
            bank_start = self._evict(now, evicted)
            if bank_start + ingest_ns > accept:
                accept = bank_start + ingest_ns
        if self._tracer is not None:
            if hit:
                name = "xpbuffer.combine"
            elif evicted is not None and evicted.dirty:
                name = "xpbuffer.evict"
            else:
                name = "xpbuffer.alloc"
            self._tracer.complete(
                now, "xpbuffer", name, accept - now, track=self.name,
                args={"xpline": xpline, "subline": subline,
                      "occupancy": self.buffer.occupancy(),
                      "rmw": (evicted.needs_rmw()
                              if evicted is not None else False)})
        return accept

    def read(self, now, dev_addr):
        """Serve one 64 B read; returns the data-ready time.

        :meth:`XPBuffer.read` is inlined here, like ``ingest_write``.
        """
        self.counters.imc_read_bytes += CACHELINE
        xpline = dev_addr >> 8                   # // XPLINE (256)
        buf = self.buffer
        table = buf._table[xpline % buf._sets]   # buffer.read, inlined
        if xpline in table:
            buf.hits += 1
            ready = now + self._buf_cfg.read_hit_ns + \
                self.media._cfg.read_extra_ns
            if self._tracer is not None:
                self._tracer.complete(
                    now, "xpbuffer", "xpbuffer.read_hit", ready - now,
                    track=self.name, args={"xpline": xpline})
            return ready
        buf.misses += 1
        evicted = None
        if len(table) >= buf._ways:              # _make_room, inlined
            _, evicted = table.popitem(last=False)
        table[xpline] = BufferEntry(xpline, valid=True)
        if evicted is not None and evicted.dirty_mask:
            # Reads compete for buffer space: allocating the fill can
            # push a dirty write out to media.
            self._evict(now, evicted)
        media = self.media
        if media._tracer is not None:
            _, data_ready = media.read_line(now, xpline)
        else:
            cfg = media._cfg                     # read_line, inlined
            budget = cfg.power_budget
            if budget <= 0:
                raise ValueError("power budget must be positive")
            occ = cfg.read_occupancy_ns / budget
            if media.fault_controller is not None:
                occ *= media.fault_controller.throttle_factor(now)
            banks = media._banks                 # acquire, inlined
            free = banks._free
            earliest = free[0]
            start = earliest if earliest > now else now
            end = start + occ
            if banks._single:
                free[0] = end
            else:
                _heapreplace(free, end)
            banks.busy_ns += occ
            if end > banks._last_end:
                banks._last_end = end
            media.counters.media_read_bytes += XPLINE
            data_ready = end + cfg.read_extra_ns
        if self._tracer is not None:
            self._tracer.complete(
                now, "xpbuffer", "xpbuffer.read_miss", data_ready - now,
                track=self.name,
                args={"xpline": xpline,
                      "evicted_dirty": (evicted is not None
                                        and evicted.dirty)})
        return data_ready

    def _evict(self, now, entry):
        """Write a victim line back to media; returns the bank start time.

        With no tracer attached the bodies of :meth:`XPMedia.rmw_line`
        / :meth:`XPMedia.write_line` are inlined (same occupancy
        arithmetic term by term, same AIT bookkeeping, same bank
        booking); tracing runs the composed calls so media events keep
        appearing.
        """
        media = self.media
        cfg = media._cfg
        rmw = entry.needs_rmw()
        if media._tracer is not None:
            if rmw:
                end = media.rmw_line(now, entry.xpline)
                occ = cfg.read_occupancy_ns + cfg.write_occupancy_ns
            else:
                end = media.write_line(now, entry.xpline)
                occ = cfg.write_occupancy_ns
            return end - occ
        budget = cfg.power_budget
        if budget <= 0:
            raise ValueError("power budget must be positive")
        controller = media.fault_controller
        counters = media.counters
        if rmw:                                  # rmw_line, inlined
            raw = cfg.read_occupancy_ns + cfg.write_occupancy_ns
            if controller is not None:
                factor = controller.throttle_factor(now)
                occ = (cfg.read_occupancy_ns / budget * factor
                       + cfg.write_occupancy_ns / budget * factor)
            else:
                occ = cfg.read_occupancy_ns / budget + \
                    cfg.write_occupancy_ns / budget
            counters.media_read_bytes += XPLINE
        else:                                    # write_line, inlined
            raw = cfg.write_occupancy_ns
            occ = cfg.write_occupancy_ns / budget
            if controller is not None:
                occ *= controller.throttle_factor(now)
        stall = media.ait.record_write(entry.xpline)
        if stall:
            counters.migrations += 1
        occ += stall
        banks = media._banks                     # acquire, inlined
        free = banks._free
        earliest = free[0]
        start = earliest if earliest > now else now
        end = start + occ
        if banks._single:
            free[0] = end
        else:
            _heapreplace(free, end)
        banks.busy_ns += occ
        if end > banks._last_end:
            banks._last_end = end
        counters.media_write_bytes += XPLINE
        return end - raw

    # -- management ----------------------------------------------------------

    def drain(self, now):
        """Flush every dirty buffered line to media (namespace teardown)."""
        t = now
        for entry in self.buffer.flush_all():
            t = self._evict(t, entry)
        return t

    def reset(self):
        self.counters.reset()
        self.media.reset()
        self.buffer = XPBuffer(self._buf_cfg)
