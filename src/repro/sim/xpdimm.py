"""One 3D XPoint DIMM: XPController + XPBuffer + AIT + media.

The controller receives 64 B DDR-T transfers from the iMC and turns
them into 256 B media accesses:

* a write that hits a buffered XPLine merges in ``ingest_ns``;
* a write that misses allocates a buffer entry, evicting the set's LRU
  line if needed — a fully written (or fully valid) victim costs one
  media write, a partially written one costs a read-modify-write;
* a read that hits the buffer returns quickly; a miss fetches the whole
  XPLine from media (and the allocation can evict a dirty victim).

Eviction back-pressure is what bounds sustained write bandwidth: the
controller's accept time for a miss waits for the media bank *booking*
(posted write), so once the banks backlog, accepts — and therefore the
WPQ, and therefore the application's stores — stall.
"""

from repro._units import CACHELINE, XPLINE
from repro.sim.counters import DimmCounters
from repro.sim.media import XPMedia
from repro.sim.xpbuffer import XPBuffer


class XPDimm:
    """A single Optane DC PMM as seen from its memory channel."""

    def __init__(self, machine_config, name, tracer=None):
        self.name = name
        self._buf_cfg = machine_config.xpbuffer
        self._ait_cfg = machine_config.ait
        self._tracer = tracer
        self.counters = DimmCounters()
        self.buffer = XPBuffer(machine_config.xpbuffer)
        self.media = XPMedia(
            machine_config.media, machine_config.ait, self.counters,
            name=name + ".media", tracer=tracer)

    @property
    def thermal_stalls(self):
        return self.media.ait.thermal_stalls

    # -- controller entry points -------------------------------------------

    def ingest_write(self, now, dev_addr):
        """Accept one 64 B write from the WPQ; returns the accept time."""
        self.counters.imc_write_bytes += CACHELINE
        xpline = dev_addr // XPLINE
        subline = (dev_addr % XPLINE) // CACHELINE
        entry, hit, evicted = self.buffer.write(xpline, subline)
        accept = now + self._buf_cfg.ingest_ns
        if not hit and evicted is not None and evicted.dirty:
            bank_start = self._evict(now, evicted)
            if bank_start + self._buf_cfg.ingest_ns > accept:
                accept = bank_start + self._buf_cfg.ingest_ns
        if self._tracer is not None:
            if hit:
                name = "xpbuffer.combine"
            elif evicted is not None and evicted.dirty:
                name = "xpbuffer.evict"
            else:
                name = "xpbuffer.alloc"
            self._tracer.complete(
                now, "xpbuffer", name, accept - now, track=self.name,
                args={"xpline": xpline, "subline": subline,
                      "occupancy": self.buffer.occupancy(),
                      "rmw": (evicted.needs_rmw()
                              if evicted is not None else False)})
        return accept

    def read(self, now, dev_addr):
        """Serve one 64 B read; returns the data-ready time."""
        self.counters.imc_read_bytes += CACHELINE
        xpline = dev_addr // XPLINE
        hit, evicted = self.buffer.read(xpline)
        if hit:
            ready = now + self._buf_cfg.read_hit_ns + \
                self.media._cfg.read_extra_ns
            if self._tracer is not None:
                self._tracer.complete(
                    now, "xpbuffer", "xpbuffer.read_hit", ready - now,
                    track=self.name, args={"xpline": xpline})
            return ready
        if evicted is not None and evicted.dirty:
            # Reads compete for buffer space: allocating the fill can
            # push a dirty write out to media.
            self._evict(now, evicted)
        _, data_ready = self.media.read_line(now, xpline)
        if self._tracer is not None:
            self._tracer.complete(
                now, "xpbuffer", "xpbuffer.read_miss", data_ready - now,
                track=self.name,
                args={"xpline": xpline,
                      "evicted_dirty": (evicted is not None
                                        and evicted.dirty)})
        return data_ready

    def _evict(self, now, entry):
        """Write a victim line back to media; returns the bank start time."""
        if entry.needs_rmw():
            end = self.media.rmw_line(now, entry.xpline)
            occ = (self.media._cfg.read_occupancy_ns
                   + self.media._cfg.write_occupancy_ns)
        else:
            end = self.media.write_line(now, entry.xpline)
            occ = self.media._cfg.write_occupancy_ns
        return end - occ

    # -- management ----------------------------------------------------------

    def drain(self, now):
        """Flush every dirty buffered line to media (namespace teardown)."""
        t = now
        for entry in self.buffer.flush_all():
            t = self._evict(t, entry)
        return t

    def reset(self):
        self.counters.reset()
        self.media.reset()
        self.buffer = XPBuffer(self._buf_cfg)
