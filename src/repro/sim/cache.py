"""CPU cache model.

The model tracks, exactly, which lines are cached and which of those
are dirty — that is what persistence depends on.  It is a single cache
per socket (standing in for the LLC) with set-associative placement
under a multiplicative hash.

The hash matters: a sequential store stream maps to pseudo-randomly
scattered sets, so when capacity evictions begin, the *write-back
stream leaving the cache is scrambled in address order* even though the
program wrote sequentially.  That scrambling is the root cause the
paper gives for guideline #2 (flush or use ntstore; letting the cache
evict naturally "adds nondeterminism to the access stream", collapsing
EWR from ~0.98 to ~0.26).
"""

_HASH_MULT = 2654435761


class CacheModel:
    """Set-associative write-back cache with exact dirty-line tracking."""

    def __init__(self, config, name="llc"):
        self.name = name
        self._ways = config.ways
        nsets = max(1, config.capacity_bytes // 64 // config.ways)
        self._nsets = nsets
        self._sets = [dict() for _ in range(nsets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _index(self, key):
        ns_id, line = key
        h = ((line >> 6) * _HASH_MULT + ns_id * 40503) & 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        h ^= h >> 13
        return h % self._nsets

    def _tick(self):
        self._stamp += 1
        return self._stamp

    # -- queries --------------------------------------------------------------

    def lookup(self, key):
        """True if ``key`` is cached; refreshes its recency."""
        entry = self._sets[self._index(key)].get(key)
        if entry is None:
            self.misses += 1
            return False
        entry[0] = self._tick()
        self.hits += 1
        return True

    def is_dirty(self, key):
        entry = self._sets[self._index(key)].get(key)
        return bool(entry and entry[1])

    # -- mutations ------------------------------------------------------------

    def fill(self, key, dirty=False, ready_ns=0.0):
        """Insert ``key``; returns an evicted (key, was_dirty) or None.

        ``ready_ns`` is when the fill's data actually arrives from
        memory: a write-back of this line cannot leave the cache before
        then (the RFO-coupling that penalises store+clwb on fresh
        lines).
        """
        table = self._sets[self._index(key)]
        existing = table.get(key)
        if existing is not None:
            existing[0] = self._tick()
            if dirty:
                existing[1] = True
            return None
        victim = None
        if len(table) >= self._ways:
            vkey = min(table, key=lambda k: table[k][0])
            ventry = table.pop(vkey)
            victim = (vkey, ventry[1])
        table[key] = [self._tick(), dirty, ready_ns]
        return victim

    def ready_time(self, key):
        """When the line's fill completes (0.0 if unknown/absent)."""
        entry = self._sets[self._index(key)].get(key)
        if entry is None:
            return 0.0
        return entry[2]

    def mark_dirty(self, key):
        """Mark a (present) line dirty; returns False if not cached."""
        entry = self._sets[self._index(key)].get(key)
        if entry is None:
            return False
        entry[0] = self._tick()
        entry[1] = True
        return True

    def clean(self, key):
        """clwb semantics: write back but keep the line cached.

        Returns True if the line was dirty (i.e. a write-back happens).
        """
        entry = self._sets[self._index(key)].get(key)
        if entry is None or not entry[1]:
            return False
        entry[1] = False
        return True

    def invalidate(self, key):
        """clflush/ntstore semantics: drop the line; True if it was dirty."""
        table = self._sets[self._index(key)]
        entry = table.pop(key, None)
        return bool(entry and entry[1])

    def drop_all(self):
        """Power failure: every line (dirty or not) is lost."""
        for table in self._sets:
            table.clear()

    def dirty_keys(self):
        """All currently dirty lines (used by tests and crash checks)."""
        out = []
        for table in self._sets:
            for key, entry in table.items():
                if entry[1]:
                    out.append(key)
        return out

    def occupancy(self):
        return sum(len(table) for table in self._sets)
