"""CPU cache model.

The model tracks, exactly, which lines are cached and which of those
are dirty — that is what persistence depends on.  It is a single cache
per socket (standing in for the LLC) with set-associative placement
under a multiplicative hash.

The hash matters: a sequential store stream maps to pseudo-randomly
scattered sets, so when capacity evictions begin, the *write-back
stream leaving the cache is scrambled in address order* even though the
program wrote sequentially.  That scrambling is the root cause the
paper gives for guideline #2 (flush or use ntstore; letting the cache
evict naturally "adds nondeterminism to the access stream", collapsing
EWR from ~0.98 to ~0.26).
"""

_HASH_MULT = 2654435761


class CacheModel:
    """Set-associative write-back cache with exact dirty-line tracking."""

    def __init__(self, config, name="llc"):
        self.name = name
        self._ways = config.ways
        nsets = max(1, config.capacity_bytes // 64 // config.ways)
        self._nsets = nsets
        # Sets are allocated lazily (index -> {key: entry}): a fresh
        # machine per sweep point would otherwise pay for tens of
        # thousands of empty dicts it never touches.
        self._sets = {}
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _table(self, key):
        """The (lazily created) set table that ``key`` maps to."""
        index = self._index(key)
        table = self._sets.get(index)
        if table is None:
            table = {}
            self._sets[index] = table
        return table

    def _index(self, key):
        ns_id, line = key
        h = ((line >> 6) * _HASH_MULT + ns_id * 40503) & 0xFFFFFFFF
        h ^= h >> 16
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        h ^= h >> 13
        return h % self._nsets

    def _tick(self):
        self._stamp += 1
        return self._stamp

    # -- queries --------------------------------------------------------------

    def lookup(self, key):
        """True if ``key`` is cached; refreshes its recency."""
        table = self._sets.get(self._index(key))
        entry = table.get(key) if table is not None else None
        if entry is None:
            self.misses += 1
            return False
        entry[0] = self._tick()
        self.hits += 1
        return True

    def is_dirty(self, key):
        table = self._sets.get(self._index(key))
        entry = table.get(key) if table is not None else None
        return bool(entry and entry[1])

    # -- fused hot-path helpers ------------------------------------------------
    #
    # The per-line access paths used to hash every key twice (lookup
    # then fill, mark_dirty then fill, ready_time then clean).  These
    # helpers hash once and hand the set table back to the caller so the
    # follow-up mutation can reuse it.  Counter and recency ("stamp")
    # sequences are identical to the two-call forms.

    def probe(self, key):
        """Like :meth:`lookup` but also returns the set table.

        Returns ``(hit, table)``; on a hit the entry's recency is
        refreshed, on a miss the table is what :meth:`fill_in` needs.
        """
        h = ((key[1] >> 6) * _HASH_MULT + key[0] * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # _index, inlined
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        sets = self._sets
        index = (h ^ (h >> 13)) % self._nsets
        table = sets.get(index)
        if table is None:
            table = sets[index] = {}
        entry = table.get(key)
        if entry is None:
            self.misses += 1
            return False, table
        entry[0] = self._tick()
        self.hits += 1
        return True, table

    def store_probe(self, key):
        """Like :meth:`mark_dirty` but also returns the set table.

        Returns ``(marked, table)``.  Does not touch the hit/miss
        counters, matching ``mark_dirty`` + ``fill``.
        """
        h = ((key[1] >> 6) * _HASH_MULT + key[0] * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # _index, inlined
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        sets = self._sets
        index = (h ^ (h >> 13)) % self._nsets
        table = sets.get(index)
        if table is None:
            table = sets[index] = {}
        entry = table.get(key)
        if entry is None:
            return False, table
        entry[0] = self._tick()
        entry[1] = True
        return True, table

    def fill_in(self, table, key, dirty=False, ready_ns=0.0):
        """:meth:`fill` for a key already known absent from ``table``."""
        victim = None
        if len(table) >= self._ways:
            vkey = min(table, key=lambda k: table[k][0])
            ventry = table.pop(vkey)
            victim = (vkey, ventry[1])
        table[key] = [self._tick(), dirty, ready_ns]
        return victim

    def clean_ready(self, key):
        """Fused :meth:`ready_time` + :meth:`clean`.

        Returns ``(was_dirty, ready_ns)``; ``ready_ns`` is 0.0 when the
        line is absent or already clean (callers only use it for dirty
        lines).
        """
        h = ((key[1] >> 6) * _HASH_MULT + key[0] * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # _index, inlined
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        table = self._sets.get((h ^ (h >> 13)) % self._nsets)
        entry = table.get(key) if table is not None else None
        if entry is None or not entry[1]:
            return False, 0.0
        entry[1] = False
        return True, entry[2]

    # -- mutations ------------------------------------------------------------

    def fill(self, key, dirty=False, ready_ns=0.0):
        """Insert ``key``; returns an evicted (key, was_dirty) or None.

        ``ready_ns`` is when the fill's data actually arrives from
        memory: a write-back of this line cannot leave the cache before
        then (the RFO-coupling that penalises store+clwb on fresh
        lines).
        """
        table = self._table(key)
        existing = table.get(key)
        if existing is not None:
            existing[0] = self._tick()
            if dirty:
                existing[1] = True
            return None
        victim = None
        if len(table) >= self._ways:
            vkey = min(table, key=lambda k: table[k][0])
            ventry = table.pop(vkey)
            victim = (vkey, ventry[1])
        table[key] = [self._tick(), dirty, ready_ns]
        return victim

    def ready_time(self, key):
        """When the line's fill completes (0.0 if unknown/absent)."""
        table = self._sets.get(self._index(key))
        entry = table.get(key) if table is not None else None
        if entry is None:
            return 0.0
        return entry[2]

    def mark_dirty(self, key):
        """Mark a (present) line dirty; returns False if not cached."""
        table = self._sets.get(self._index(key))
        entry = table.get(key) if table is not None else None
        if entry is None:
            return False
        entry[0] = self._tick()
        entry[1] = True
        return True

    def clean(self, key):
        """clwb semantics: write back but keep the line cached.

        Returns True if the line was dirty (i.e. a write-back happens).
        """
        table = self._sets.get(self._index(key))
        entry = table.get(key) if table is not None else None
        if entry is None or not entry[1]:
            return False
        entry[1] = False
        return True

    def invalidate(self, key):
        """clflush/ntstore semantics: drop the line; True if it was dirty."""
        h = ((key[1] >> 6) * _HASH_MULT + key[0] * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # _index, inlined
        h = (h * 0x45D9F3B) & 0xFFFFFFFF
        table = self._sets.get((h ^ (h >> 13)) % self._nsets)
        entry = table.pop(key, None) if table is not None else None
        return bool(entry and entry[1])

    def drop_all(self):
        """Power failure: every line (dirty or not) is lost."""
        self._sets.clear()

    def dirty_keys(self):
        """All currently dirty lines (used by tests and crash checks)."""
        out = []
        for table in self._sets.values():
            for key, entry in table.items():
                if entry[1]:
                    out.append(key)
        return out

    def occupancy(self):
        return sum(len(table) for table in self._sets.values())
