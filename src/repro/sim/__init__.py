"""The simulated Cascade Lake + Optane DC PMM platform.

Public surface::

    from repro.sim import Machine, MachineConfig, default_config

    m = Machine()
    pmem = m.namespace("optane")          # 6 DIMMs, 4 KB interleaved
    t = m.thread()
    pmem.pwrite(t, 0, b"hello", instr="ntstore")
    m.power_fail()
    assert pmem.read_persistent(0, 5) == b"hello"
"""

from repro.sim.config import (
    AITConfig, CacheConfig, ChannelConfig, DRAMConfig, InterleaveConfig,
    MachineConfig, MediaConfig, NUMAConfig, WPQConfig, XPBufferConfig,
    default_config,
)
from repro.sim.counters import (
    EWR_UNDEFINED, CounterSnapshot, aggregate, effective_write_ratio,
    is_ewr_defined, write_amplification,
)
from repro.sim.crashpoints import (
    CrashInjector, SimulatedPowerFailure, count_persists,
    exhaustive_crash_test,
)
from repro.sim.engine import (
    BackfillResource, DirectionalLink, Resource, Scheduler, ThreadCtx,
    run_workloads,
)
from repro.sim.memmode import (
    MemoryModeNamespace, NearMemoryCache, make_memory_mode_namespace,
)
from repro.sim.namespace import Namespace
from repro.sim.platform import Machine

__all__ = [
    "AITConfig", "BackfillResource", "CacheConfig", "ChannelConfig",
    "CounterSnapshot", "CrashInjector", "EWR_UNDEFINED",
    "SimulatedPowerFailure", "count_persists", "exhaustive_crash_test",
    "DRAMConfig", "DirectionalLink", "InterleaveConfig", "Machine",
    "MachineConfig", "MediaConfig", "MemoryModeNamespace", "NUMAConfig",
    "Namespace", "NearMemoryCache", "Resource", "Scheduler", "ThreadCtx",
    "WPQConfig", "XPBufferConfig", "aggregate", "default_config",
    "effective_write_ratio", "is_ewr_defined",
    "make_memory_mode_namespace", "run_workloads", "write_amplification",
]
