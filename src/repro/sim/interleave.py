"""Address interleaving across the DIMMs of a socket.

The platform interleaves persistent memory in 4 KB blocks across the
six channels (so the stripe is 24 KB): any single page lives entirely
on one DIMM, and accesses larger than 24 KB touch all six.  This is the
geometry behind the 4 KB random-access bandwidth dip of Figure 5 and
the contention study of Figure 16.
"""


class InterleavedMapping:
    """RAID-0-style mapping: block ``i`` lives on DIMM ``i % dimms``."""

    def __init__(self, block_bytes, dimms):
        if block_bytes <= 0 or dimms <= 0:
            raise ValueError("block size and DIMM count must be positive")
        self.block_bytes = block_bytes
        self.dimms = dimms
        self.stripe_bytes = block_bytes * dimms

    def locate(self, addr):
        """Map a namespace address to ``(dimm_index, device_address)``."""
        block = addr // self.block_bytes
        offset = addr % self.block_bytes
        dimm = block % self.dimms
        dev_addr = (block // self.dimms) * self.block_bytes + offset
        return dimm, dev_addr

    def span_on_dimm(self, namespace_span):
        """Device-address span used on each DIMM for a namespace span."""
        blocks = -(-namespace_span // self.block_bytes)
        per_dimm = -(-blocks // self.dimms)
        return per_dimm * self.block_bytes


class LinearMapping:
    """Non-interleaved namespace: everything on one DIMM."""

    def __init__(self, dimm_index=0):
        self.dimms = 1
        self.dimm_index = dimm_index

    def locate(self, addr):
        return self.dimm_index, addr
