"""A pmem namespace: the byte-addressable window applications use.

A namespace binds an address range to a set of DIMMs (interleaved or
not), a socket, and a backing :class:`~repro.sim.address.DataStore`.
All simulated memory instructions live here:

* ``load`` / ``store`` — cached accesses (stores are write-allocate,
  i.e. a store miss costs a read of the line, which is the extra read
  that makes ``store+clwb`` lose to ``ntstore`` for large transfers);
* ``ntstore`` — bypasses the cache, straight at the WPQ;
* ``clwb`` / ``clflush`` / ``clflushopt`` — flush instructions;
* data convenience wrappers ``pread`` / ``pwrite`` used by the
  application substrates.

Persistence semantics: a line is durable once it is inserted into the
iMC's WPQ (the ADR domain).  ``ThreadCtx.sfence`` waits for exactly the
pending insertions this thread ordered.
"""

from repro._units import CACHELINE
from repro.sim import engine as _engine
from repro.sim.address import DataStore, line_addresses
from repro.sim.imc import wpq_insert_latency

# Cache-index hash constants, kept in lockstep with
# repro.sim.cache.CacheModel._index (the fused per-line paths inline
# the hash so the tag lookup and the later mutation share one table
# reference).
_HASH_MULT = 2654435761
_HASH_MIX = 0x45D9F3B


class Namespace:
    """One /dev/pmem-style device, byte-addressable by simulated threads."""

    def __init__(self, machine, name, devices, mapping, socket, is_optane):
        self.machine = machine
        self.name = name
        self.ns_id = machine._register_namespace(self)
        self.socket = socket
        self.is_optane = is_optane
        self._devices = devices              # [(channel, dimm), ...]
        self._mapping = mapping
        self.data = DataStore()
        self._cfg = machine.config
        # Hot-path bindings: the per-line paths run millions of times
        # per sweep, so chained attribute lookups are hoisted here.  The
        # config *objects* are stable after construction (individual
        # fields like media.power_budget may still be mutated later and
        # are re-read per access); WPQ insert latencies are pure
        # functions of construction-time config, so they are folded.
        self._cache_cfg = machine.config.cache
        self._caches = machine.caches
        self._insert_nt_ns = wpq_insert_latency(
            machine.config.wpq, "nt", is_optane)
        self._insert_clwb_ns = wpq_insert_latency(
            machine.config.wpq, "clwb", is_optane)
        # Per-device hot tuples unwrap the MemoryChannel so the per-line
        # paths can book its links without going through the thin
        # transfer_* wrappers.  The channel cfg object rides along (its
        # fields are read per access, like the other config objects).
        self._dev = tuple(
            (ch._read_link, ch._write_link, ch._cfg, dimm)
            for ch, dimm in devices)
        if getattr(mapping, "dimms", 0) == 1:
            # Non-interleaved: one device, device address == address.
            self._only = devices[getattr(mapping, "dimm_index", 0)]
            self._only_dev = self._dev[getattr(mapping, "dimm_index", 0)]
            self._block_bytes = 0
            self._ndimms = 1
        else:
            self._only = None
            self._only_dev = None
            self._block_bytes = mapping.block_bytes
            self._ndimms = mapping.dimms
        # The fused per-line paths (_store_clwb_line, _ntstore_line)
        # flatten the whole store pipeline into one function.  They are
        # only equivalent when no subclass specializes the primitives
        # they fold together and nothing is tracing; otherwise — and
        # under REPRO_FASTPATH=0 — the composed generic path runs.
        self._recompute_plain()

    def _recompute_plain(self):
        """(Re)derive eligibility for the fused per-line fast paths.

        Called at construction and whenever a persistency checker is
        installed/uninstalled on the machine: while a checker observes
        the persist path, the composed reference paths must run so the
        per-event hooks fire (PR 4 proved them byte-identical to the
        fused bodies, so results do not change — only speed).
        """
        cls = type(self)
        self._plain = (
            cls._send_store is Namespace._send_store
            and cls._store_line is Namespace._store_line
            and cls._load_line is Namespace._load_line
            and self.machine.tracer is None
            and self.machine.pmcheck is None)

    # -- helpers --------------------------------------------------------------

    def _route(self, line_addr):
        index, dev_addr = self._mapping.locate(line_addr)
        return self._devices[index]

    def _remote(self, thread):
        return thread.socket != self.socket

    def _cache(self, thread):
        return self.machine.caches[thread.socket]

    @property
    def dimms(self):
        return [dimm for _, dimm in self._devices]

    # -- loads ----------------------------------------------------------------

    def load(self, thread, addr, size=CACHELINE):
        """Issue loads covering ``[addr, addr+size)``; returns last completion."""
        if not addr % CACHELINE and 0 < size <= CACHELINE:
            return self._load_line(thread, addr)
        if self._plain and _engine.FASTPATH_ENABLED:
            return self._load_lines_fused(thread,
                                          line_addresses(addr, size))
        completion = thread.now
        for line in line_addresses(addr, size):
            completion = self._load_line(thread, line)
        return completion

    def _load_lines_fused(self, thread, lines):
        """Multi-line load with the loop invariants hoisted.

        The loop body is :meth:`_load_line` statement for statement —
        same state mutations in the same order, so timing, counters and
        shared-resource bookings are byte-identical — with the cache,
        config and routing lookups that cannot change between the lines
        of one call lifted out.  Only runs when ``_plain`` (no tracer,
        no checker, no subclass overrides); fault hooks do not observe
        loads, so fault injection does not force the composed path.
        """
        cfg = self._cache_cfg
        issue_ns = cfg.issue_ns
        hit_ns = cfg.hit_ns
        cache = self._caches[thread.socket]
        sets = cache._sets
        nsets = cache._nsets
        ways = cache._ways
        ns_id = self.ns_id
        ns_salt = ns_id * 40503
        loads = thread._loads
        load_window = thread.load_window
        machine = self.machine
        remote = thread.socket != self.socket
        upi = machine.upi
        is_optane = self.is_optane
        tid = thread.tid
        only = self._only_dev
        if only is not None:
            rlink, _w, ccfg, dimm = only
            occ_r = ccfg.read_occ_ns
            dimm_read = dimm.read
        else:
            block_bytes = self._block_bytes
            ndimms = self._ndimms
            dev = self._dev
        latencies = thread.latencies
        completion = thread.now
        for line in lines:
            issued = thread.now + issue_ns
            thread.now = issued
            key = (ns_id, line)
            h = ((line >> 6) * _HASH_MULT + ns_salt) & 0xFFFFFFFF
            h ^= h >> 16                         # cache.probe, inlined
            h = (h * _HASH_MIX) & 0xFFFFFFFF
            index = (h ^ (h >> 13)) % nsets
            table = sets.get(index)
            if table is None:
                table = sets[index] = {}
            entry = table.get(key)
            if entry is not None:
                stamp = cache._stamp + 1
                cache._stamp = stamp
                entry[0] = stamp
                cache.hits += 1
                completion = issued + hit_ns
                thread.now = completion
                thread.bytes_read += CACHELINE
                if latencies is not None:
                    latencies.append(completion - issued)
                continue
            cache.misses += 1
            if len(loads) >= load_window:        # admit_load, inlined
                done = loads.popleft()
                if done > thread.now:
                    thread.now = done
            start = thread.now
            if remote:
                start = upi.read_transfer(start, source=tid,
                                          heavy=is_optane)
            if only is None:
                block, offset = divmod(line, block_bytes)
                sub, di = divmod(block, ndimms)
                rlink, _w, ccfg, dimm = dev[di]
                dev_addr = sub * block_bytes + offset
                occ_r = ccfg.read_occ_ns
                dimm_read = dimm.read
            else:
                dev_addr = line
            if rlink._gap_start:
                _s, ch_end = rlink.acquire(start, occ_r)
            else:
                # Gap list empty: tail booking only (acquire, inlined).
                rlink.busy_ns += occ_r
                tail = rlink._tail
                rstart = tail if tail > start else start
                if rstart - tail > 1e-9:
                    rlink._gap_start.append(tail)
                    rlink._gap_end.append(rstart)
                ch_end = rstart + occ_r
                rlink._tail = ch_end
            data_ready = dimm_read(ch_end, dev_addr)
            if remote:
                data_ready += upi.read_extra_ns
            if len(table) >= ways:
                victim = cache.fill_in(table, key, ready_ns=data_ready)
                if victim is not None and victim[1]:
                    machine._evict_writeback(victim[0], thread.now)
            else:
                stamp = cache._stamp + 1         # fill_in sans victim,
                cache._stamp = stamp             # inlined
                table[key] = [stamp, False, data_ready]
            loads.append(data_ready)             # track_load, inlined
            thread.bytes_read += CACHELINE
            if latencies is not None:
                latencies.append(data_ready - issued)
            completion = data_ready
        return completion

    def _load_line(self, thread, line):
        cfg = self._cache_cfg
        thread.now += cfg.issue_ns
        issued = thread.now
        cache = self._caches[thread.socket]
        ns_id = self.ns_id
        key = (ns_id, line)
        h = ((line >> 6) * _HASH_MULT + ns_id * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # cache.probe, inlined
        h = (h * _HASH_MIX) & 0xFFFFFFFF
        sets = cache._sets
        index = (h ^ (h >> 13)) % cache._nsets
        table = sets.get(index)
        if table is None:
            table = sets[index] = {}
        entry = table.get(key)
        if entry is not None:
            stamp = cache._stamp + 1
            cache._stamp = stamp
            entry[0] = stamp
            cache.hits += 1
            completion = thread.now + cfg.hit_ns
            thread.now = completion
            thread.bytes_read += CACHELINE
            if thread.latencies is not None:
                thread.latencies.append(completion - issued)
            return completion
        cache.misses += 1
        loads = thread._loads
        if len(loads) >= thread.load_window:     # admit_load, inlined
            done = loads.popleft()
            if done > thread.now:
                thread.now = done
        start = thread.now
        machine = self.machine
        remote = thread.socket != self.socket
        if remote:
            start = machine.upi.read_transfer(
                start, source=thread.tid, heavy=self.is_optane)
        only = self._only_dev
        if only is None:
            block, offset = divmod(line, self._block_bytes)
            sub, index = divmod(block, self._ndimms)
            rlink, _, ccfg, dimm = self._dev[index]
            dev_addr = sub * self._block_bytes + offset
        else:
            rlink, _, ccfg, dimm = only
            dev_addr = line
        occ_r = ccfg.read_occ_ns
        if rlink._gap_start:
            _, ch_end = rlink.acquire(start, occ_r)
        else:
            # Gap list empty: tail booking only (acquire, inlined; the
            # gap this booking may open behind itself cannot overflow
            # the bound since the list was empty).
            rlink.busy_ns += occ_r
            tail = rlink._tail
            rstart = tail if tail > start else start
            if rstart - tail > 1e-9:
                rlink._gap_start.append(tail)
                rlink._gap_end.append(rstart)
            ch_end = rstart + occ_r
            rlink._tail = ch_end
        data_ready = dimm.read(ch_end, dev_addr)
        if remote:
            data_ready += machine.upi.read_extra_ns
        if len(table) >= cache._ways:
            victim = cache.fill_in(table, key, ready_ns=data_ready)
            if victim is not None and victim[1]:
                machine._evict_writeback(victim[0], thread.now)
        else:
            stamp = cache._stamp + 1             # fill_in sans victim,
            cache._stamp = stamp                 # inlined
            table[key] = [stamp, False, data_ready]
        loads.append(data_ready)                 # track_load, inlined
        thread.bytes_read += CACHELINE
        if thread.latencies is not None:
            thread.latencies.append(data_ready - issued)
        if machine.tracer is not None:
            machine.tracer.complete(
                issued, "mem", "load.fill", data_ready - issued,
                track="t%d" % thread.tid,
                args={"line": line, "ns": self.name, "remote": remote})
        return data_ready

    def _dev_addr(self, line):
        _, dev_addr = self._mapping.locate(line)
        return dev_addr

    # -- temporal stores --------------------------------------------------------

    def store(self, thread, addr, size=CACHELINE, data=None):
        """Cached stores covering the range (durable only after a flush)."""
        if data is not None:
            self.data.write(addr, data)
        if not addr % CACHELINE and 0 < size <= CACHELINE:
            self._store_line(thread, addr)
            return
        if self._plain and _engine.FASTPATH_ENABLED:
            self._store_lines_fused(thread, line_addresses(addr, size))
            return
        for line in line_addresses(addr, size):
            self._store_line(thread, line)

    def _store_lines_fused(self, thread, lines):
        """Multi-line cached store with the loop invariants hoisted.

        Statement-for-statement :meth:`_store_line` per line (the
        pmcheck hook is vacuously absent — ``_plain`` implies no
        checker), so hit/miss counters, RFO fills, evictions and the
        thread clock advance identically.
        """
        issue_ns = self._cache_cfg.issue_ns
        cache = self._caches[thread.socket]
        sets = cache._sets
        nsets = cache._nsets
        ways = cache._ways
        ns_id = self.ns_id
        ns_salt = ns_id * 40503
        loads = thread._loads
        load_window = thread.load_window
        machine = self.machine
        remote = thread.socket != self.socket
        upi = machine.upi
        is_optane = self.is_optane
        tid = thread.tid
        only = self._only_dev
        if only is not None:
            rlink, _w, ccfg, dimm = only
            occ_r = ccfg.read_occ_ns
            dimm_read = dimm.read
        else:
            block_bytes = self._block_bytes
            ndimms = self._ndimms
            dev = self._dev
        for line in lines:
            thread.now += issue_ns
            key = (ns_id, line)
            h = ((line >> 6) * _HASH_MULT + ns_salt) & 0xFFFFFFFF
            h ^= h >> 16                    # cache.store_probe, inlined
            h = (h * _HASH_MIX) & 0xFFFFFFFF
            index = (h ^ (h >> 13)) % nsets
            table = sets.get(index)
            if table is None:
                table = sets[index] = {}
            entry = table.get(key)
            if entry is not None:
                stamp = cache._stamp + 1
                cache._stamp = stamp
                entry[0] = stamp
                entry[1] = True
                continue
            # Write-allocate: fetch the line before modifying it (RFO).
            if len(loads) >= load_window:        # admit_load, inlined
                done = loads.popleft()
                if done > thread.now:
                    thread.now = done
            start = thread.now
            if remote:
                start = upi.read_transfer(start, source=tid,
                                          heavy=is_optane)
            if only is None:
                block, offset = divmod(line, block_bytes)
                sub, di = divmod(block, ndimms)
                rlink, _w, ccfg, dimm = dev[di]
                dev_addr = sub * block_bytes + offset
                occ_r = ccfg.read_occ_ns
                dimm_read = dimm.read
            else:
                dev_addr = line
            if rlink._gap_start:
                _s, ch_end = rlink.acquire(start, occ_r)
            else:
                # Gap list empty: tail booking only (acquire, inlined).
                rlink.busy_ns += occ_r
                tail = rlink._tail
                rstart = tail if tail > start else start
                if rstart - tail > 1e-9:
                    rlink._gap_start.append(tail)
                    rlink._gap_end.append(rstart)
                ch_end = rstart + occ_r
                rlink._tail = ch_end
            data_ready = dimm_read(ch_end, dev_addr)
            if remote:
                data_ready += upi.read_extra_ns
            if len(table) >= ways:
                victim = cache.fill_in(table, key, dirty=True,
                                       ready_ns=data_ready)
                if victim is not None and victim[1]:
                    machine._evict_writeback(victim[0], thread.now)
            else:
                stamp = cache._stamp + 1         # fill_in sans victim,
                cache._stamp = stamp             # inlined
                table[key] = [stamp, True, data_ready]
            loads.append(data_ready)             # track_load, inlined

    def _store_line(self, thread, line):
        pmcheck = self.machine.pmcheck
        if pmcheck is not None:
            pmcheck.on_store(thread, self.ns_id, line)
        thread.now += self._cache_cfg.issue_ns
        cache = self._caches[thread.socket]
        ns_id = self.ns_id
        key = (ns_id, line)
        h = ((line >> 6) * _HASH_MULT + ns_id * 40503) & 0xFFFFFFFF
        h ^= h >> 16                        # cache.store_probe, inlined
        h = (h * _HASH_MIX) & 0xFFFFFFFF
        sets = cache._sets
        index = (h ^ (h >> 13)) % cache._nsets
        table = sets.get(index)
        if table is None:
            table = sets[index] = {}
        entry = table.get(key)
        if entry is not None:
            stamp = cache._stamp + 1
            cache._stamp = stamp
            entry[0] = stamp
            entry[1] = True
            return
        # Write-allocate: fetch the line before modifying it (RFO).
        loads = thread._loads
        if len(loads) >= thread.load_window:     # admit_load, inlined
            done = loads.popleft()
            if done > thread.now:
                thread.now = done
        start = thread.now
        machine = self.machine
        remote = thread.socket != self.socket
        if remote:
            start = machine.upi.read_transfer(
                start, source=thread.tid, heavy=self.is_optane)
        only = self._only_dev
        if only is None:
            block, offset = divmod(line, self._block_bytes)
            sub, index = divmod(block, self._ndimms)
            rlink, _, ccfg, dimm = self._dev[index]
            dev_addr = sub * self._block_bytes + offset
        else:
            rlink, _, ccfg, dimm = only
            dev_addr = line
        occ_r = ccfg.read_occ_ns
        if rlink._gap_start:
            _, ch_end = rlink.acquire(start, occ_r)
        else:
            # Gap list empty: tail booking only (acquire, inlined; the
            # gap this booking may open behind itself cannot overflow
            # the bound since the list was empty).
            rlink.busy_ns += occ_r
            tail = rlink._tail
            rstart = tail if tail > start else start
            if rstart - tail > 1e-9:
                rlink._gap_start.append(tail)
                rlink._gap_end.append(rstart)
            ch_end = rstart + occ_r
            rlink._tail = ch_end
        data_ready = dimm.read(ch_end, dev_addr)
        if remote:
            data_ready += machine.upi.read_extra_ns
        if len(table) >= cache._ways:
            victim = cache.fill_in(table, key, dirty=True,
                                   ready_ns=data_ready)
            if victim is not None and victim[1]:
                machine._evict_writeback(victim[0], thread.now)
        else:
            stamp = cache._stamp + 1             # fill_in sans victim,
            cache._stamp = stamp                 # inlined
            table[key] = [stamp, True, data_ready]
        loads.append(data_ready)                 # track_load, inlined

    # -- flushes ----------------------------------------------------------------

    def clwb(self, thread, addr, size=CACHELINE):
        """Write back (without evicting) every line of the range."""
        if not addr % CACHELINE and 0 < size <= CACHELINE:
            self._clwb_line(thread, addr)
            return
        self._flush(thread, addr, size, invalidate=False)

    def clflushopt(self, thread, addr, size=CACHELINE):
        """Write back and evict every line of the range (non-blocking)."""
        self._flush(thread, addr, size, invalidate=True)

    # clflush has the same simulated cost; its serialization is modelled
    # by callers fencing after each line.
    clflush = clflushopt

    def _clwb_line(self, thread, line):
        """Write back one (line-aligned) cache line; ``clwb`` semantics.

        Exactly the single-line body of :meth:`_flush` without the
        range plumbing — the per-line kernel paths call this directly.
        """
        thread.now += self._cache_cfg.flush_issue_ns
        dirty, ready = self._caches[thread.socket].clean_ready(
            (self.ns_id, line))
        pmcheck = self.machine.pmcheck
        if pmcheck is not None:
            pmcheck.on_flush(thread, self.ns_id, line)
        if dirty:
            self._send_store(thread, line, instr="clwb", ordered=True,
                             not_before=ready)

    def _flush(self, thread, addr, size, invalidate):
        if not addr % CACHELINE and 0 < size <= CACHELINE:
            lines = (addr,)
        else:
            lines = line_addresses(addr, size)
        if self._plain and _engine.FASTPATH_ENABLED:
            self._flush_lines_fused(thread, lines, invalidate)
            return
        cache = self._caches[thread.socket]
        flush_issue_ns = self._cache_cfg.flush_issue_ns
        ns_id = self.ns_id
        send = self._send_store
        pmcheck = self.machine.pmcheck
        for line in lines:
            thread.now += flush_issue_ns
            key = (ns_id, line)
            if invalidate:
                ready = cache.ready_time(key)
                dirty = cache.invalidate(key)
            else:
                dirty, ready = cache.clean_ready(key)
            if pmcheck is not None:
                pmcheck.on_flush(thread, ns_id, line)
            if dirty:
                send(thread, line, instr="clwb", ordered=True,
                     not_before=ready)

    def _flush_lines_fused(self, thread, lines, invalidate):
        """Multi-line flush with the write-back pipeline inlined.

        Per line this performs exactly the composed
        ``cache.ready_time``/``invalidate`` (or ``clean_ready``) and —
        for dirty lines — the full :meth:`_send_store` clwb body, on
        the same state in the same order.  The cache hash is computed
        once per line and shared by the ready-time read and the
        invalidate/clean mutation, which is invisible to results (both
        address the same entry).
        """
        flush_issue_ns = self._cache_cfg.flush_issue_ns
        cache = self._caches[thread.socket]
        sets = cache._sets
        nsets = cache._nsets
        ns_id = self.ns_id
        ns_salt = ns_id * 40503
        insert_lat = self._insert_clwb_ns
        machine = self.machine
        remote = thread.socket != self.socket
        upi = machine.upi
        is_optane = self.is_optane
        tid = thread.tid
        lead = insert_lat
        if remote:
            lead += upi.write_extra_ns
        stores = thread._stores
        store_window = thread.store_window
        pending = thread.pending_persists
        latencies = thread.latencies
        only = self._only_dev
        if only is not None:
            _r, wlink, ccfg, dimm = only
            occ = ccfg.writeback_occ_ns
            free = wlink._free
            ingest = dimm.ingest_write
        else:
            block_bytes = self._block_bytes
            ndimms = self._ndimms
            dev = self._dev
        faults = machine.faults
        data = self.data
        hook = machine._persist_hook
        for line in lines:
            thread.now += flush_issue_ns
            key = (ns_id, line)
            h = ((line >> 6) * _HASH_MULT + ns_salt) & 0xFFFFFFFF
            h ^= h >> 16                         # CacheModel._index
            h = (h * _HASH_MIX) & 0xFFFFFFFF
            table = sets.get((h ^ (h >> 13)) % nsets)
            if invalidate:
                # ready_time + invalidate, one lookup (same entry).
                entry = table.pop(key, None) if table is not None \
                    else None
                if entry is None or not entry[1]:
                    continue
                ready = entry[2]
            else:
                # clean_ready, inlined.
                entry = table.get(key) if table is not None else None
                if entry is None or not entry[1]:
                    continue
                entry[1] = False
                ready = entry[2]
            # -- _send_store(instr="clwb", not_before=ready), inlined --
            issued = thread.now
            if len(stores) >= store_window:      # admit_store, inlined
                done = stores.popleft()
                if done - lead > thread.now:
                    thread.now = done - lead
            insert = max(thread.now + insert_lat, ready + insert_lat)
            if remote:
                insert = upi.write_transfer(
                    thread.now, source=tid, heavy=is_optane) + insert_lat
                insert += upi.write_extra_ns
            pending.append(insert)
            if latencies is not None:
                latencies.append(insert - issued)
            if only is None:
                block, offset = divmod(line, block_bytes)
                sub, di = divmod(block, ndimms)
                _r, wlink, ccfg, dimm = dev[di]
                dev_addr = sub * block_bytes + offset
                occ = ccfg.writeback_occ_ns
                free = wlink._free
                ingest = dimm.ingest_write
            else:
                dev_addr = line
            earliest = free[0]                   # single-server write
            wstart = earliest if earliest > insert else insert
            ch_end = wstart + occ                # link, inlined
            free[0] = ch_end
            wlink.busy_ns += occ
            if ch_end > wlink._last_end:
                wlink._last_end = ch_end
            accept = ingest(ch_end, dev_addr)
            stores.append(accept)                # track_store, inlined
            thread.bytes_written += CACHELINE
            if faults is not None:               # _persist_line, inlined
                faults.before_persist(self, line)
            if data._volatile:
                data.persist_line(line)
            if hook is not None:
                hook()

    # -- non-temporal stores -------------------------------------------------------

    def ntstore(self, thread, addr, size=CACHELINE, data=None):
        """Write-combined stores that bypass the cache hierarchy."""
        if data is not None:
            self.data.write(addr, data)
        if not addr % CACHELINE and 0 < size <= CACHELINE:
            self._ntstore_line(thread, addr)
            return
        if self._plain and _engine.FASTPATH_ENABLED:
            self._ntstore_lines_fused(thread,
                                      line_addresses(addr, size))
            return
        invalidate = self._caches[thread.socket].invalidate
        issue_ns = self._cache_cfg.issue_ns
        ns_id = self.ns_id
        send = self._send_store
        pmcheck = self.machine.pmcheck
        for line in line_addresses(addr, size):
            if pmcheck is not None:
                pmcheck.on_ntstore(thread, ns_id, line)
            thread.now += issue_ns
            invalidate((ns_id, line))
            send(thread, line, instr="nt", ordered=True)

    def _ntstore_lines_fused(self, thread, lines):
        """Multi-line non-temporal store, the whole pipeline inlined.

        Per line this is exactly :meth:`_ntstore_line`'s fused body
        (itself proven byte-identical to the composed
        ``invalidate`` + ``_send_store`` pair), with the per-call
        invariants — WPQ latency, window references, routing for
        non-interleaved namespaces — hoisted out of the loop.  Fault
        hooks and the crash-injection persist hook still run per line,
        in order, so chaos scenarios interrupt at exactly the same
        store as the composed path.
        """
        issue_ns = self._cache_cfg.issue_ns
        cache = self._caches[thread.socket]
        sets = cache._sets
        nsets = cache._nsets
        ns_id = self.ns_id
        ns_salt = ns_id * 40503
        insert_lat = self._insert_nt_ns
        machine = self.machine
        remote = thread.socket != self.socket
        upi = machine.upi
        is_optane = self.is_optane
        tid = thread.tid
        lead = insert_lat
        if remote:
            lead += upi.write_extra_ns
        stores = thread._stores
        store_window = thread.store_window
        pending = thread.pending_persists
        latencies = thread.latencies
        only = self._only_dev
        if only is not None:
            _r, wlink, ccfg, dimm = only
            occ = ccfg.ntstore_occ_ns
            free = wlink._free
            ingest = dimm.ingest_write
        else:
            block_bytes = self._block_bytes
            ndimms = self._ndimms
            dev = self._dev
        faults = machine.faults
        data = self.data
        hook = machine._persist_hook
        for line in lines:
            thread.now += issue_ns
            h = ((line >> 6) * _HASH_MULT + ns_salt) & 0xFFFFFFFF
            h ^= h >> 16                         # cache.invalidate,
            h = (h * _HASH_MIX) & 0xFFFFFFFF     # inlined (the dirty
            table = sets.get((h ^ (h >> 13)) % nsets)    # flag is
            if table is not None:                # unused here)
                table.pop((ns_id, line), None)
            issued = thread.now
            if len(stores) >= store_window:      # admit_store, inlined
                done = stores.popleft()
                if done - lead > issued:
                    thread.now = done - lead
            insert = thread.now + insert_lat
            if remote:
                insert = upi.write_transfer(
                    thread.now, source=tid, heavy=is_optane) + insert_lat
                insert += upi.write_extra_ns
            pending.append(insert)
            if latencies is not None:
                latencies.append(insert - issued)
            if only is None:
                block, offset = divmod(line, block_bytes)
                sub, di = divmod(block, ndimms)
                _r, wlink, ccfg, dimm = dev[di]
                dev_addr = sub * block_bytes + offset
                occ = ccfg.ntstore_occ_ns
                free = wlink._free
                ingest = dimm.ingest_write
            else:
                dev_addr = line
            earliest = free[0]                   # single-server write
            wstart = earliest if earliest > insert else insert
            ch_end = wstart + occ                # link, inlined
            free[0] = ch_end
            wlink.busy_ns += occ
            if ch_end > wlink._last_end:
                wlink._last_end = ch_end
            accept = ingest(ch_end, dev_addr)
            stores.append(accept)                # track_store, inlined
            thread.bytes_written += CACHELINE
            if faults is not None:               # _persist_line, inlined
                faults.before_persist(self, line)
            if data._volatile:
                data.persist_line(line)
            if hook is not None:
                hook()

    def _ntstore_line(self, thread, line):
        """One (line-aligned) non-temporal store; per-line kernel path.

        The fused body below is :meth:`_send_store` with the ``nt``
        branches resolved and the channel booking inlined — same
        operations on the same state in the same order, minus the call
        chain.  Falls back to the composed path whenever a subclass
        specializes a primitive, a tracer is attached, or the fast path
        is globally disabled.
        """
        pmcheck = self.machine.pmcheck
        if pmcheck is not None:
            pmcheck.on_ntstore(thread, self.ns_id, line)
        thread.now += self._cache_cfg.issue_ns
        cache = self._caches[thread.socket]
        ns_id = self.ns_id
        h = ((line >> 6) * _HASH_MULT + ns_id * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # cache.invalidate,
        h = (h * _HASH_MIX) & 0xFFFFFFFF         # inlined (the dirty
        table = cache._sets.get(                 # flag is unused here)
            (h ^ (h >> 13)) % cache._nsets)
        if table is not None:
            table.pop((ns_id, line), None)
        if not (self._plain and _engine.FASTPATH_ENABLED):
            self._send_store(thread, line, instr="nt", ordered=True)
            return
        insert_lat = self._insert_nt_ns
        machine = self.machine
        remote = thread.socket != self.socket
        lead = insert_lat
        if remote:
            lead += machine.upi.write_extra_ns
        issued = thread.now
        stores = thread._stores
        if len(stores) >= thread.store_window:   # admit_store, inlined
            done = stores.popleft()
            if done - lead > thread.now:
                thread.now = done - lead
        insert = thread.now + insert_lat
        if remote:
            insert = machine.upi.write_transfer(
                thread.now, source=thread.tid,
                heavy=self.is_optane) + insert_lat
            insert += machine.upi.write_extra_ns
        thread.pending_persists.append(insert)
        if thread.latencies is not None:
            thread.latencies.append(insert - issued)
        only = self._only_dev
        if only is None:
            block, offset = divmod(line, self._block_bytes)
            sub, index = divmod(block, self._ndimms)
            _, wlink, ccfg, dimm = self._dev[index]
            dev_addr = sub * self._block_bytes + offset
        else:
            _, wlink, ccfg, dimm = only
            dev_addr = line
        occ = ccfg.ntstore_occ_ns
        free = wlink._free                       # single-server write
        earliest = free[0]                       # link, inlined
        wstart = earliest if earliest > insert else insert
        ch_end = wstart + occ
        free[0] = ch_end
        wlink.busy_ns += occ
        if ch_end > wlink._last_end:
            wlink._last_end = ch_end
        accept = dimm.ingest_write(ch_end, dev_addr)
        stores.append(accept)
        thread.bytes_written += CACHELINE
        if machine.faults is not None:           # _persist_line, inlined
            machine.faults.before_persist(self, line)
        data = self.data
        if data._volatile:
            # An empty volatile store means persist_line would no-op;
            # skip the call (bandwidth kernels never write payloads).
            data.persist_line(line)
        if machine._persist_hook is not None:
            machine._persist_hook()

    def _store_clwb_line(self, thread, line):
        """``store`` then ``clwb`` of one line — the Figure 2/14 pairing.

        The per-line body of :meth:`_store_line` + :meth:`_clwb_line` +
        :meth:`_send_store` flattened into one frame, with the cache
        hash computed once and its set table shared between the store's
        probe/fill and the flush's clean.  State mutations happen in
        exactly the order of the composed calls; the composition runs
        instead whenever it might diverge (subclass overrides, tracer,
        ``REPRO_FASTPATH=0``).
        """
        if not (self._plain and _engine.FASTPATH_ENABLED):
            self._store_line(thread, line)
            self._clwb_line(thread, line)
            return
        cfg = self._cache_cfg
        thread.now += cfg.issue_ns
        cache = self._caches[thread.socket]
        ns_id = self.ns_id
        key = (ns_id, line)
        h = ((line >> 6) * _HASH_MULT + ns_id * 40503) & 0xFFFFFFFF
        h ^= h >> 16                             # CacheModel._index
        h = (h * _HASH_MIX) & 0xFFFFFFFF
        sets = cache._sets
        index = (h ^ (h >> 13)) % cache._nsets
        table = sets.get(index)
        if table is None:
            table = sets[index] = {}
        machine = self.machine
        remote = thread.socket != self.socket
        only = self._only_dev
        if only is None:
            block, offset = divmod(line, self._block_bytes)
            sub, di = divmod(block, self._ndimms)
            rlink, wlink, ccfg, dimm = self._dev[di]
            dev_addr = sub * self._block_bytes + offset
        else:
            rlink, wlink, ccfg, dimm = only
            dev_addr = line
        entry = table.get(key)                   # store_probe, inlined
        if entry is not None:
            stamp = cache._stamp + 1
            cache._stamp = stamp
            entry[0] = stamp
            entry[1] = True
        else:
            # Write-allocate: fetch the line before modifying it (RFO).
            loads = thread._loads
            if len(loads) >= thread.load_window:  # admit_load, inlined
                done = loads.popleft()
                if done > thread.now:
                    thread.now = done
            start = thread.now
            if remote:
                start = machine.upi.read_transfer(
                    start, source=thread.tid, heavy=self.is_optane)
            occ_r = ccfg.read_occ_ns
            if rlink._gap_start:
                _, ch_end = rlink.acquire(start, occ_r)
            else:
                # Gap list empty: tail booking only (acquire, inlined;
                # the gap this booking may open behind itself cannot
                # overflow the bound since the list was empty).
                rlink.busy_ns += occ_r
                tail = rlink._tail
                rstart = tail if tail > start else start
                if rstart - tail > 1e-9:
                    rlink._gap_start.append(tail)
                    rlink._gap_end.append(rstart)
                ch_end = rstart + occ_r
                rlink._tail = ch_end
            data_ready = dimm.read(ch_end, dev_addr)
            if remote:
                data_ready += machine.upi.read_extra_ns
            if len(table) >= cache._ways:
                victim = cache.fill_in(table, key, dirty=True,
                                       ready_ns=data_ready)
                if victim is not None and victim[1]:
                    machine._evict_writeback(victim[0], thread.now)
                entry = table[key]
            else:
                stamp = cache._stamp + 1         # fill_in sans victim,
                cache._stamp = stamp             # inlined
                entry = table[key] = [stamp, True, data_ready]
            loads.append(data_ready)
        # -- clwb of the line just stored (always present and dirty) --
        thread.now += cfg.flush_issue_ns
        entry[1] = False                         # clean_ready, inlined
        ready = entry[2]
        insert_lat = self._insert_clwb_ns        # _send_store, inlined
        lead = insert_lat
        if remote:
            lead += machine.upi.write_extra_ns
        issued = thread.now
        stores = thread._stores
        if len(stores) >= thread.store_window:   # admit_store, inlined
            done = stores.popleft()
            if done - lead > thread.now:
                thread.now = done - lead
        insert = thread.now + insert_lat
        nb = ready + insert_lat
        if nb > insert:
            insert = nb
        if remote:
            insert = machine.upi.write_transfer(
                thread.now, source=thread.tid,
                heavy=self.is_optane) + insert_lat
            insert += machine.upi.write_extra_ns
        thread.pending_persists.append(insert)
        if thread.latencies is not None:
            thread.latencies.append(insert - issued)
        occ = ccfg.writeback_occ_ns
        free = wlink._free                       # single-server write
        earliest = free[0]                       # link, inlined
        wstart = earliest if earliest > insert else insert
        ch_end = wstart + occ
        free[0] = ch_end
        wlink.busy_ns += occ
        if ch_end > wlink._last_end:
            wlink._last_end = ch_end
        accept = dimm.ingest_write(ch_end, dev_addr)
        stores.append(accept)
        thread.bytes_written += CACHELINE
        if machine.faults is not None:           # _persist_line, inlined
            machine.faults.before_persist(self, line)
        data = self.data
        if data._volatile:
            # An empty volatile store means persist_line would no-op;
            # skip the call (bandwidth kernels never write payloads).
            data.persist_line(line)
        if machine._persist_hook is not None:
            machine._persist_hook()

    # -- batched run entry points ----------------------------------------------
    #
    # One call per contiguous run of cache lines instead of one call
    # per line: the per-line work goes through the exact same
    # primitives (`_load_line`, `_store_line`, `_send_store`) in the
    # same order, so timing, counters, shared-resource bookings and
    # trace events are identical to issuing the lines one by one.  Only
    # the Python wrapper overhead (argument parsing, `line_addresses`
    # ranges, method dispatch) is amortized.  ``addr`` must be
    # cache-line aligned — unaligned run batching would straddle an
    # extra line and is not semantics-preserving (see README).

    def load_run(self, thread, addr, n_lines):
        """Load ``n_lines`` consecutive lines; returns last completion."""
        load_line = self._load_line
        completion = thread.now
        for _ in range(n_lines):
            completion = load_line(thread, addr)
            addr += CACHELINE
        return completion

    def store_run(self, thread, addr, n_lines, clwb=False):
        """Store ``n_lines`` consecutive lines, optionally clwb-ing each.

        With ``clwb=True`` every line is written back right after its
        store, matching the ``store; clwb`` instruction pairing of the
        flush microbenchmarks.
        """
        if not clwb:
            store_line = self._store_line
            for _ in range(n_lines):
                store_line(thread, addr)
                addr += CACHELINE
            return
        store_clwb = self._store_clwb_line
        for _ in range(n_lines):
            store_clwb(thread, addr)
            addr += CACHELINE

    def ntstore_run(self, thread, addr, n_lines):
        """Issue ``n_lines`` consecutive non-temporal stores."""
        nt_line = self._ntstore_line
        for _ in range(n_lines):
            nt_line(thread, addr)
            addr += CACHELINE

    # -- the store pipeline ---------------------------------------------------------

    def _send_store(self, thread, line, instr, ordered, not_before=0.0):
        """Push one 64 B line through WPQ -> channel -> DIMM.

        ``not_before`` delays the WPQ insertion until the line's cache
        fill has completed (a write-back cannot outrun its own RFO).
        """
        nt = instr == "nt"
        insert_lat = self._insert_nt_ns if nt else self._insert_clwb_ns
        machine = self.machine
        remote = thread.socket != self.socket
        lead = insert_lat
        if remote:
            lead += machine.upi.write_extra_ns
        issued = thread.now
        stores = thread._stores
        if len(stores) >= thread.store_window:   # admit_store, inlined
            done = stores.popleft()
            if done - lead > thread.now:
                thread.now = done - lead
        stalled = thread.now - issued       # per-thread WPQ back-pressure
        insert = max(thread.now + insert_lat, not_before + insert_lat)
        if remote:
            insert = machine.upi.write_transfer(
                thread.now, source=thread.tid,
                heavy=self.is_optane) + insert_lat
            insert += machine.upi.write_extra_ns
        if ordered:
            thread.pending_persists.append(insert)
        if machine.tracer is not None:
            machine.tracer.complete(
                issued, "wpq", "wpq.insert." + instr, insert - issued,
                track="t%d" % thread.tid,
                args={"line": line, "ns": self.name,
                      "stall_ns": stalled, "remote": remote})
        if thread.latencies is not None:
            # A store's latency, as seen by software, is the time until
            # it reaches the ADR domain — including any back-pressure
            # from a full per-thread WPQ allotment.
            thread.latencies.append(insert - issued)
        only = self._only_dev
        if only is None:
            block, offset = divmod(line, self._block_bytes)
            sub, index = divmod(block, self._ndimms)
            _, wlink, ccfg, dimm = self._dev[index]
            dev_addr = sub * self._block_bytes + offset
        else:
            _, wlink, ccfg, dimm = only
            dev_addr = line
        occ = ccfg.ntstore_occ_ns if nt else ccfg.writeback_occ_ns
        free = wlink._free                       # single-server channel
        earliest = free[0]                       # write link: Resource
        wstart = earliest if earliest > insert else insert   # .acquire,
        ch_end = wstart + occ                    # inlined
        free[0] = ch_end
        wlink.busy_ns += occ
        if ch_end > wlink._last_end:
            wlink._last_end = ch_end
        accept = dimm.ingest_write(ch_end, dev_addr)
        stores.append(accept)                    # track_store, inlined
        thread.bytes_written += CACHELINE
        if machine.faults is not None:           # _persist_line, inlined
            machine.faults.before_persist(self, line)
        data = self.data
        if data._volatile:
            # An empty volatile store means persist_line would no-op;
            # skip the call (bandwidth kernels never write payloads).
            data.persist_line(line)
        if machine._persist_hook is not None:
            machine._persist_hook()
        return insert

    def _persist_line(self, line):
        """Commit one line to the ADR domain, with fault/crash hooks.

        The fault controller snapshots the line *before* it persists
        (torn-write rollback needs the old contents); the crash hook
        runs after, so a crash at persist #N leaves line N durable —
        modulo any tearing applied at power failure.
        """
        if self.machine.faults is not None:
            self.machine.faults.before_persist(self, line)
        self.data.persist_line(line)
        if self.machine._persist_hook is not None:
            self.machine._persist_hook()

    def _evict_writeback(self, line, now):
        """A natural cache eviction wrote this dirty line back."""
        pmcheck = self.machine.pmcheck
        if pmcheck is not None:
            pmcheck.on_evict(self.ns_id, line)
        channel, dimm = self._route(line)
        ch_end = channel.transfer_writeback(now)
        dimm.ingest_write(ch_end, self._dev_addr(line))
        self._persist_line(line)

    # -- data-carrying convenience API (used by the app substrates) -----------------

    def pwrite(self, thread, addr, data, instr="ntstore", fence=True):
        """Write ``data`` durably using the chosen persistence path.

        ``instr``: ``"ntstore"`` (cache-bypassing), ``"clwb"`` (store +
        per-line clwb) or ``"store"`` (no flush — *not* durable until
        something else writes the lines back).
        """
        if instr == "ntstore":
            self.ntstore(thread, addr, len(data), data=data)
        elif instr == "clwb":
            self.store(thread, addr, len(data), data=data)
            self.clwb(thread, addr, len(data))
        elif instr == "store":
            self.store(thread, addr, len(data), data=data)
        else:
            raise ValueError("unknown persistence instruction: %r" % (instr,))
        if fence and instr != "store":
            thread.sfence()

    def pread(self, thread, addr, size):
        """Load ``size`` bytes (paying simulated time) and return them.

        Raises :class:`~repro.faults.model.MediaError` when the range
        hits a poisoned XPLine or a pending transient read fault.
        """
        if self.machine.faults is not None:
            self.machine.faults.check_read(self, addr, size, timed=True)
        self.load(thread, addr, size)
        return self.data.read(addr, size)

    def read_volatile(self, addr, size):
        """Peek at the CPU-visible contents without simulated cost."""
        if self.machine.faults is not None:
            self.machine.faults.check_read(self, addr, size)
        return self.data.read(addr, size)

    def read_persistent(self, addr, size):
        """Read the post-crash (durable) contents without simulated cost."""
        if self.machine.faults is not None:
            self.machine.faults.check_read(self, addr, size)
        return self.data.read_persistent(addr, size)

    # -- counters -------------------------------------------------------------------

    def counter_snapshots(self):
        return [dimm.counters.snapshot() for dimm in self.dimms]

    def counter_deltas(self, snapshots):
        return [
            dimm.counters.delta(snap)
            for dimm, snap in zip(self.dimms, snapshots)
        ]
