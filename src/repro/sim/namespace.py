"""A pmem namespace: the byte-addressable window applications use.

A namespace binds an address range to a set of DIMMs (interleaved or
not), a socket, and a backing :class:`~repro.sim.address.DataStore`.
All simulated memory instructions live here:

* ``load`` / ``store`` — cached accesses (stores are write-allocate,
  i.e. a store miss costs a read of the line, which is the extra read
  that makes ``store+clwb`` lose to ``ntstore`` for large transfers);
* ``ntstore`` — bypasses the cache, straight at the WPQ;
* ``clwb`` / ``clflush`` / ``clflushopt`` — flush instructions;
* data convenience wrappers ``pread`` / ``pwrite`` used by the
  application substrates.

Persistence semantics: a line is durable once it is inserted into the
iMC's WPQ (the ADR domain).  ``ThreadCtx.sfence`` waits for exactly the
pending insertions this thread ordered.
"""

from repro._units import CACHELINE
from repro.sim.address import DataStore, line_addresses
from repro.sim.imc import wpq_insert_latency


class Namespace:
    """One /dev/pmem-style device, byte-addressable by simulated threads."""

    def __init__(self, machine, name, devices, mapping, socket, is_optane):
        self.machine = machine
        self.name = name
        self.ns_id = machine._register_namespace(self)
        self.socket = socket
        self.is_optane = is_optane
        self._devices = devices              # [(channel, dimm), ...]
        self._mapping = mapping
        self.data = DataStore()
        self._cfg = machine.config

    # -- helpers --------------------------------------------------------------

    def _route(self, line_addr):
        index, dev_addr = self._mapping.locate(line_addr)
        return self._devices[index]

    def _remote(self, thread):
        return thread.socket != self.socket

    def _cache(self, thread):
        return self.machine.caches[thread.socket]

    @property
    def dimms(self):
        return [dimm for _, dimm in self._devices]

    # -- loads ----------------------------------------------------------------

    def load(self, thread, addr, size=CACHELINE):
        """Issue loads covering ``[addr, addr+size)``; returns last completion."""
        completion = thread.now
        for line in line_addresses(addr, size):
            completion = self._load_line(thread, line)
        return completion

    def _load_line(self, thread, line):
        cfg = self._cfg.cache
        thread.now += cfg.issue_ns
        issued = thread.now
        cache = self._cache(thread)
        key = (self.ns_id, line)
        if cache.lookup(key):
            completion = thread.now + cfg.hit_ns
            thread.now = completion
            thread.bytes_read += CACHELINE
            if thread.latencies is not None:
                thread.record_latency(completion - issued)
            return completion
        thread.admit_load()
        start = thread.now
        remote = self._remote(thread)
        if remote:
            start = self.machine.upi.read_transfer(
                start, source=thread.tid, heavy=self.is_optane)
        channel, dimm = self._route(line)
        ch_end = channel.transfer_read(start)
        data_ready = dimm.read(ch_end, self._dev_addr(line))
        if remote:
            data_ready += self.machine.upi.read_extra_ns
        victim = cache.fill(key, ready_ns=data_ready)
        if victim is not None and victim[1]:
            self.machine._evict_writeback(victim[0], thread.now)
        thread.track_load(data_ready)
        thread.bytes_read += CACHELINE
        if thread.latencies is not None:
            thread.record_latency(data_ready - issued)
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                issued, "mem", "load.fill", data_ready - issued,
                track="t%d" % thread.tid,
                args={"line": line, "ns": self.name, "remote": remote})
        return data_ready

    def _dev_addr(self, line):
        _, dev_addr = self._mapping.locate(line)
        return dev_addr

    # -- temporal stores --------------------------------------------------------

    def store(self, thread, addr, size=CACHELINE, data=None):
        """Cached stores covering the range (durable only after a flush)."""
        if data is not None:
            self.data.write(addr, data)
        for line in line_addresses(addr, size):
            self._store_line(thread, line)

    def _store_line(self, thread, line):
        cfg = self._cfg.cache
        thread.now += cfg.issue_ns
        cache = self._cache(thread)
        key = (self.ns_id, line)
        if cache.mark_dirty(key):
            return
        # Write-allocate: fetch the line before modifying it (RFO).
        thread.admit_load()
        start = thread.now
        remote = self._remote(thread)
        if remote:
            start = self.machine.upi.read_transfer(
                start, source=thread.tid, heavy=self.is_optane)
        channel, dimm = self._route(line)
        ch_end = channel.transfer_read(start)
        data_ready = dimm.read(ch_end, self._dev_addr(line))
        if remote:
            data_ready += self.machine.upi.read_extra_ns
        victim = cache.fill(key, dirty=True, ready_ns=data_ready)
        if victim is not None and victim[1]:
            self.machine._evict_writeback(victim[0], thread.now)
        thread.track_load(data_ready)

    # -- flushes ----------------------------------------------------------------

    def clwb(self, thread, addr, size=CACHELINE):
        """Write back (without evicting) every line of the range."""
        self._flush(thread, addr, size, invalidate=False)

    def clflushopt(self, thread, addr, size=CACHELINE):
        """Write back and evict every line of the range (non-blocking)."""
        self._flush(thread, addr, size, invalidate=True)

    # clflush has the same simulated cost; its serialization is modelled
    # by callers fencing after each line.
    clflush = clflushopt

    def _flush(self, thread, addr, size, invalidate):
        cache = self._cache(thread)
        for line in line_addresses(addr, size):
            thread.now += self._cfg.cache.flush_issue_ns
            key = (self.ns_id, line)
            ready = cache.ready_time(key)
            if invalidate:
                dirty = cache.invalidate(key)
            else:
                dirty = cache.clean(key)
            if dirty:
                self._send_store(thread, line, instr="clwb", ordered=True,
                                 not_before=ready)

    # -- non-temporal stores -------------------------------------------------------

    def ntstore(self, thread, addr, size=CACHELINE, data=None):
        """Write-combined stores that bypass the cache hierarchy."""
        if data is not None:
            self.data.write(addr, data)
        cache = self._cache(thread)
        for line in line_addresses(addr, size):
            thread.now += self._cfg.cache.issue_ns
            cache.invalidate((self.ns_id, line))
            self._send_store(thread, line, instr="nt", ordered=True)

    # -- the store pipeline ---------------------------------------------------------

    def _send_store(self, thread, line, instr, ordered, not_before=0.0):
        """Push one 64 B line through WPQ -> channel -> DIMM.

        ``not_before`` delays the WPQ insertion until the line's cache
        fill has completed (a write-back cannot outrun its own RFO).
        """
        insert_lat = wpq_insert_latency(self._cfg.wpq, instr, self.is_optane)
        remote = self._remote(thread)
        lead = insert_lat
        if remote:
            lead += self.machine.upi.write_extra_ns
        issued = thread.now
        thread.admit_store(lead_ns=lead)
        stalled = thread.now - issued       # per-thread WPQ back-pressure
        insert = max(thread.now + insert_lat, not_before + insert_lat)
        if remote:
            insert = self.machine.upi.write_transfer(
                thread.now, source=thread.tid,
                heavy=self.is_optane) + insert_lat
            insert += self.machine.upi.write_extra_ns
        if ordered:
            thread.pending_persists.append(insert)
        if self.machine.tracer is not None:
            self.machine.tracer.complete(
                issued, "wpq", "wpq.insert." + instr, insert - issued,
                track="t%d" % thread.tid,
                args={"line": line, "ns": self.name,
                      "stall_ns": stalled, "remote": remote})
        if thread.latencies is not None:
            # A store's latency, as seen by software, is the time until
            # it reaches the ADR domain — including any back-pressure
            # from a full per-thread WPQ allotment.
            thread.record_latency(insert - issued)
        channel, dimm = self._route(line)
        if instr == "nt":
            ch_end = channel.transfer_ntstore(insert)
        else:
            ch_end = channel.transfer_writeback(insert)
        accept = dimm.ingest_write(ch_end, self._dev_addr(line))
        thread.track_store(accept)
        thread.bytes_written += CACHELINE
        self._persist_line(line)
        return insert

    def _persist_line(self, line):
        """Commit one line to the ADR domain, with fault/crash hooks.

        The fault controller snapshots the line *before* it persists
        (torn-write rollback needs the old contents); the crash hook
        runs after, so a crash at persist #N leaves line N durable —
        modulo any tearing applied at power failure.
        """
        if self.machine.faults is not None:
            self.machine.faults.before_persist(self, line)
        self.data.persist_line(line)
        if self.machine._persist_hook is not None:
            self.machine._persist_hook()

    def _evict_writeback(self, line, now):
        """A natural cache eviction wrote this dirty line back."""
        channel, dimm = self._route(line)
        ch_end = channel.transfer_writeback(now)
        dimm.ingest_write(ch_end, self._dev_addr(line))
        self._persist_line(line)

    # -- data-carrying convenience API (used by the app substrates) -----------------

    def pwrite(self, thread, addr, data, instr="ntstore", fence=True):
        """Write ``data`` durably using the chosen persistence path.

        ``instr``: ``"ntstore"`` (cache-bypassing), ``"clwb"`` (store +
        per-line clwb) or ``"store"`` (no flush — *not* durable until
        something else writes the lines back).
        """
        if instr == "ntstore":
            self.ntstore(thread, addr, len(data), data=data)
        elif instr == "clwb":
            self.store(thread, addr, len(data), data=data)
            self.clwb(thread, addr, len(data))
        elif instr == "store":
            self.store(thread, addr, len(data), data=data)
        else:
            raise ValueError("unknown persistence instruction: %r" % (instr,))
        if fence and instr != "store":
            thread.sfence()

    def pread(self, thread, addr, size):
        """Load ``size`` bytes (paying simulated time) and return them.

        Raises :class:`~repro.faults.model.MediaError` when the range
        hits a poisoned XPLine or a pending transient read fault.
        """
        if self.machine.faults is not None:
            self.machine.faults.check_read(self, addr, size, timed=True)
        self.load(thread, addr, size)
        return self.data.read(addr, size)

    def read_volatile(self, addr, size):
        """Peek at the CPU-visible contents without simulated cost."""
        if self.machine.faults is not None:
            self.machine.faults.check_read(self, addr, size)
        return self.data.read(addr, size)

    def read_persistent(self, addr, size):
        """Read the post-crash (durable) contents without simulated cost."""
        if self.machine.faults is not None:
            self.machine.faults.check_read(self, addr, size)
        return self.data.read_persistent(addr, size)

    # -- counters -------------------------------------------------------------------

    def counter_snapshots(self):
        return [dimm.counters.snapshot() for dimm in self.dimms]

    def counter_deltas(self, snapshots):
        return [
            dimm.counters.delta(snap)
            for dimm, snap in zip(self.dimms, snapshots)
        ]
