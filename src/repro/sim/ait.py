"""Wear levelling and thermal management (the tail-latency outliers).

The paper observes rare stalls of up to ~50 us on writes (0.006 % of
accesses), most frequent when writes concentrate in a small hotspot,
and "suspects remapping for wear-leveling or thermal concerns"
(Section 3.3).  We model both suspected causes:

* **wear migration** — the controller performs one wear-levelling
  rotation every ``migrate_every`` media writes (housekeeping activity
  proportional to media write traffic), stalling the access that
  triggered it by ``migrate_stall_ns``.  This gives the flat ~0.006 %
  background outlier rate for eviction-dominated workloads, diluted
  over ever more data as the hotspot grows.
* **thermal stall** — a single XPLine written ``thermal_every`` times
  at the media (since its last stall) triggers an extra throttling
  stall: concentrated wear heats one cell region.  Because the
  XPBuffer flushes on subline overwrite, even a hotspot that fits the
  buffer generates per-line media traffic, so small hotspots are the
  worst case — exactly the gradient of Figure 3.

A deterministic per-DIMM phase keeps distinct DIMMs from migrating in
lock-step.
"""


class AddressIndirectionTable:
    """Wear tracking, wear-levelling rotation and thermal throttling."""

    __slots__ = ("_cfg", "_wear", "_hot", "_writes", "_next_migration",
                 "migrations", "thermal_stalls")

    def __init__(self, config, phase=0):
        self._cfg = config
        self._wear = {}
        self._hot = {}
        self._writes = 0
        jitter = phase % max(config.migrate_jitter, 1)
        self._next_migration = config.migrate_every + jitter
        self.migrations = 0
        self.thermal_stalls = 0

    def record_write(self, xpline):
        """Account one media write; returns the stall in ns (usually 0)."""
        if not self._cfg.enabled:
            return 0.0
        self._wear[xpline] = self._wear.get(xpline, 0) + 1
        self._writes += 1
        stall = 0.0
        if self._writes >= self._next_migration:
            self._next_migration += self._cfg.migrate_every
            self.migrations += 1
            stall += self._cfg.migrate_stall_ns
        hot = self._hot.get(xpline, 0) + 1
        if hot >= self._cfg.thermal_every:
            self._hot[xpline] = 0
            self.thermal_stalls += 1
            stall += self._cfg.thermal_stall_ns
        else:
            self._hot[xpline] = hot
        return stall

    def wear_of(self, xpline):
        """Media writes recorded against ``xpline``."""
        return self._wear.get(xpline, 0)

    @property
    def total_media_writes(self):
        return self._writes

    def reset(self):
        self._wear.clear()
        self._hot.clear()
        self._writes = 0
        self._next_migration = self._cfg.migrate_every
        self.migrations = 0
        self.thermal_stalls = 0
