"""Systematic crash-point injection.

Because the simulator is fully deterministic, we can test crash
consistency exhaustively: run a workload once to count how many times
data reaches the ADR domain, then re-run it once per persist boundary,
killing the power exactly there, recovering, and checking invariants.
This catches torn-update bugs that a single random crash test would
miss.

Usage::

    def workload(machine):
        db = LSMStore(machine, mode="wal-flex")
        t = machine.thread()
        db.put(t, b"k", b"v")

    def check(machine, crashed_at):
        db = LSMStore.recover(machine, mode="wal-flex")
        ...assert invariants...

    exhaustive_crash_test(workload, check)
"""

from repro.sim.platform import Machine


class SimulatedPowerFailure(Exception):
    """Raised inside a workload when the injected crash point hits."""


class CrashInjector:
    """Counts ADR insertions and raises at a chosen one.

    Installing the injector *chains* any pre-existing persist hook
    rather than clobbering it, so fault hooks (or nested injectors)
    keep running; ``uninstall()`` restores the previous hook.
    """

    def __init__(self, machine, crash_at=None):
        self.machine = machine
        self.crash_at = crash_at
        self.persists = 0
        self._prev_hook = machine._persist_hook
        # Keep the exact bound-method object we install: each attribute
        # access creates a fresh one, so uninstall() needs this handle
        # for its identity check.
        self._hook = self._on_persist
        machine._persist_hook = self._hook

    def _on_persist(self):
        if self._prev_hook is not None:
            self._prev_hook()
        self.persists += 1
        if self.crash_at is not None and self.persists >= self.crash_at:
            raise SimulatedPowerFailure(
                "power failed at persist #%d" % self.persists)

    def uninstall(self):
        """Restore the hook that was installed before this injector."""
        if self.machine._persist_hook is self._hook:
            self.machine._persist_hook = self._prev_hook


def count_persists(workload, machine_factory=Machine):
    """Dry-run the workload; returns how many persist points it has."""
    machine = machine_factory()
    injector = CrashInjector(machine)
    workload(machine)
    return injector.persists


def exhaustive_crash_test(workload, check, machine_factory=Machine,
                          stride=1, limit=None):
    """Crash at every ``stride``-th persist boundary and verify recovery.

    ``workload(machine)`` runs the operation sequence; ``check(machine,
    crashed_at)`` is called after the simulated power failure and must
    assert the recovery invariants.  Returns the number of crash points
    exercised.
    """
    total = count_persists(workload, machine_factory)
    points = range(1, total + 1, stride)
    if limit is not None:
        points = list(points)[:limit]
    exercised = 0
    for crash_at in points:
        machine = machine_factory()
        injector = CrashInjector(machine, crash_at=crash_at)
        try:
            workload(machine)
        except SimulatedPowerFailure:
            pass
        injector.uninstall()                 # recovery runs normally
        machine.power_fail()
        check(machine, crash_at)
        exercised += 1
    return exercised
