"""DDR4 DRAM DIMM model (the comparison baseline throughout the paper).

DRAM is modelled as a pool of banks with a row buffer each: an access
that hits the open row is cheap; a row miss pays activate+precharge.
Unlike the Optane model there is no access-granularity mismatch, no
write-combining buffer and no wear levelling — which is precisely why
DRAM "emulation" of persistent memory misses so much behaviour.
"""

from heapq import heapreplace as _heapreplace

from repro._units import CACHELINE
from repro.sim.counters import DimmCounters
from repro.sim.engine import Resource


class DRAMDimm:
    """One DDR4 DIMM with a simple per-bank open-row policy.

    Reads and writes are served by separate pools: the iMC schedules
    demand reads with priority and drains buffered writes opportunist-
    ically, so a read issued now is never stalled behind write slots
    the WPQ booked into the future.
    """

    WRITE_SLOTS = 4

    def __init__(self, config, name, tracer=None):
        self.name = name
        self._cfg = config
        self._tracer = tracer
        self._banks = Resource(name + ".banks", config.banks)
        self._write_slots = Resource(name + ".wr", self.WRITE_SLOTS)
        self._open_rows = {}
        self.counters = DimmCounters()

    def _locate(self, dev_addr):
        row = dev_addr // self._cfg.row_bytes
        bank = row % self._cfg.banks
        return bank, row

    def _row_hit(self, dev_addr):
        bank, row = self._locate(dev_addr)
        hit = self._open_rows.get(bank) == row
        self._open_rows[bank] = row
        return hit

    def read(self, now, dev_addr):
        """Serve one 64 B read; returns the data-ready time."""
        cfg = self._cfg
        self.counters.imc_read_bytes += CACHELINE
        row = dev_addr // cfg.row_bytes          # _row_hit, inlined
        bank = row % cfg.banks
        rows = self._open_rows
        row_hit = rows.get(bank) == row
        rows[bank] = row
        if row_hit:
            occ = cfg.row_hit_occupancy_ns
        else:
            occ = cfg.row_miss_occupancy_ns
        banks = self._banks                      # acquire, inlined
        free = banks._free
        earliest = free[0]
        start = earliest if earliest > now else now
        end = start + occ
        if banks._single:
            free[0] = end
        else:
            _heapreplace(free, end)
        banks.busy_ns += occ
        if end > banks._last_end:
            banks._last_end = end
        if self._tracer is not None:
            self._tracer.complete(
                start, "dram", "dram.read", end - start, track=self.name,
                args={"row_hit": row_hit, "queued_ns": start - now})
        return end + cfg.read_extra_ns

    def ingest_write(self, now, dev_addr):
        """Accept one 64 B write; returns the accept time."""
        cfg = self._cfg
        self.counters.imc_write_bytes += CACHELINE
        row = dev_addr // cfg.row_bytes          # _row_hit, inlined
        self._open_rows[row % cfg.banks] = row
        occ = cfg.write_occupancy_ns
        slots = self._write_slots                # acquire, inlined
        free = slots._free
        earliest = free[0]
        start = earliest if earliest > now else now
        end = start + occ
        if slots._single:
            free[0] = end
        else:
            _heapreplace(free, end)
        slots.busy_ns += occ
        if end > slots._last_end:
            slots._last_end = end
        if self._tracer is not None:
            self._tracer.complete(
                start, "dram", "dram.write", end - start, track=self.name,
                args={"queued_ns": start - now})
        return end

    def drain(self, now):
        return now

    def reset(self):
        self._banks.reset()
        self._write_slots.reset()
        self._open_rows.clear()
        self.counters.reset()
