"""3D XPoint media model.

The media behind one DIMM is a pool of ``banks`` concurrently busy
units accessed at XPLine (256 B) granularity.  Reads and writes have
strongly asymmetric occupancies (the paper measures a 2.9x per-DIMM
read/write bandwidth gap); wear-levelling stalls from the AIT are
charged to the access that triggered them.
"""

from heapq import heapreplace as _heapreplace

from repro._units import XPLINE
from repro.sim.ait import AddressIndirectionTable
from repro.sim.engine import Resource


class XPMedia:
    """Banked 256 B-granularity storage media with wear levelling."""

    def __init__(self, config, ait_config, counters, name="media",
                 tracer=None):
        self._cfg = config
        self.name = name
        self._banks = Resource(name, config.banks)
        phase = sum(name.encode()) * 97          # deterministic per DIMM
        self.ait = AddressIndirectionTable(ait_config, phase=phase)
        self.counters = counters
        self._tracer = tracer
        # Optional FaultController (repro.faults.model): thermal
        # throttle windows stretch occupancies while they are open.
        self.fault_controller = None

    def _scaled(self, occupancy, now=0.0):
        budget = self._cfg.power_budget
        if budget <= 0:
            raise ValueError("power budget must be positive")
        occ = occupancy / budget
        if self.fault_controller is not None:
            occ *= self.fault_controller.throttle_factor(now)
        return occ

    def read_line(self, now, xpline):
        """Fetch one XPLine; returns (bank_free_at, data_ready_at)."""
        cfg = self._cfg
        budget = cfg.power_budget                # _scaled, inlined
        if budget <= 0:
            raise ValueError("power budget must be positive")
        occ = cfg.read_occupancy_ns / budget
        if self.fault_controller is not None:
            occ *= self.fault_controller.throttle_factor(now)
        banks = self._banks                      # acquire, inlined
        free = banks._free
        earliest = free[0]
        start = earliest if earliest > now else now
        end = start + occ
        if banks._single:
            free[0] = end
        else:
            _heapreplace(free, end)
        banks.busy_ns += occ
        if end > banks._last_end:
            banks._last_end = end
        self.counters.media_read_bytes += XPLINE
        if self._tracer is not None:
            self._tracer.complete(
                start, "media", "media.read", end - start,
                track=self.name, args={"xpline": xpline,
                                       "queued_ns": start - now})
        return end, end + cfg.read_extra_ns

    def write_line(self, now, xpline):
        """Write one full XPLine; returns the time the bank frees up.

        Wear-levelling migrations extend the bank occupancy by the
        migration stall, which is how the 50 us outliers back-pressure
        the pipeline all the way to the application store.
        """
        cfg = self._cfg
        budget = cfg.power_budget                # _scaled, inlined
        if budget <= 0:
            raise ValueError("power budget must be positive")
        occ = cfg.write_occupancy_ns / budget
        if self.fault_controller is not None:
            occ *= self.fault_controller.throttle_factor(now)
        if self._tracer is None:                 # _record_write, inlined
            stall = self.ait.record_write(xpline)
            if stall:
                self.counters.migrations += 1
        else:
            stall = self._record_write(now, xpline)
        occ += stall
        banks = self._banks                      # acquire, inlined
        free = banks._free
        earliest = free[0]
        start = earliest if earliest > now else now
        end = start + occ
        if banks._single:
            free[0] = end
        else:
            _heapreplace(free, end)
        banks.busy_ns += occ
        if end > banks._last_end:
            banks._last_end = end
        self.counters.media_write_bytes += XPLINE
        if self._tracer is not None:
            self._tracer.complete(
                start, "media", "media.write", end - start,
                track=self.name,
                args={"xpline": xpline, "queued_ns": start - now,
                      "stall_ns": stall})
        return end

    def rmw_line(self, now, xpline):
        """Read-modify-write of one XPLine (partial-line eviction).

        The read and the write occupy the same bank back to back, which
        is why small stores with poor locality are so expensive.
        """
        cfg = self._cfg
        budget = cfg.power_budget                # _scaled x2, inlined
        if budget <= 0:
            raise ValueError("power budget must be positive")
        occ = cfg.read_occupancy_ns / budget + \
            cfg.write_occupancy_ns / budget
        if self.fault_controller is not None:
            factor = self.fault_controller.throttle_factor(now)
            occ = (cfg.read_occupancy_ns / budget * factor
                   + cfg.write_occupancy_ns / budget * factor)
        if self._tracer is None:                 # _record_write, inlined
            stall = self.ait.record_write(xpline)
            if stall:
                self.counters.migrations += 1
        else:
            stall = self._record_write(now, xpline)
        occ += stall
        banks = self._banks                      # acquire, inlined
        free = banks._free
        earliest = free[0]
        start = earliest if earliest > now else now
        end = start + occ
        if banks._single:
            free[0] = end
        else:
            _heapreplace(free, end)
        banks.busy_ns += occ
        if end > banks._last_end:
            banks._last_end = end
        counters = self.counters
        counters.media_read_bytes += XPLINE
        counters.media_write_bytes += XPLINE
        if self._tracer is not None:
            self._tracer.complete(
                start, "media", "media.rmw", end - start,
                track=self.name,
                args={"xpline": xpline, "queued_ns": start - now,
                      "stall_ns": stall})
        return end

    def _record_write(self, now, xpline):
        """AIT housekeeping for one media write; returns the stall ns.

        When tracing, migration and thermal stalls additionally surface
        as instant events (the AIT's counters tell the two apart).
        """
        if self._tracer is None:
            stall = self.ait.record_write(xpline)
            if stall:
                self.counters.migrations += 1
            return stall
        migrations = self.ait.migrations
        thermal = self.ait.thermal_stalls
        stall = self.ait.record_write(xpline)
        self._tracer.instant(
            now, "ait", "ait.lookup", track=self.name,
            args={"xpline": xpline, "wear": self.ait.wear_of(xpline)})
        if stall:
            self.counters.migrations += 1
            if self.ait.migrations > migrations:
                self._tracer.instant(
                    now, "ait", "ait.migrate", track=self.name,
                    args={"xpline": xpline, "stall_ns": stall})
            if self.ait.thermal_stalls > thermal:
                self._tracer.instant(
                    now, "ait", "ait.thermal", track=self.name,
                    args={"xpline": xpline, "stall_ns": stall})
        return stall

    def next_free_at(self):
        return self._banks.next_free_at()

    def reset(self):
        self._banks.reset()
        self.ait.reset()
