"""Cross-socket topology: the UPI interconnect.

Remote accesses pay a fixed latency adder plus occupancy on a shared
directional link.  The link charges a turnaround penalty whenever
consecutive transfers change direction — under multi-threaded mixed
read/write traffic the turnarounds dominate and remote bandwidth
collapses (up to ~30x in the paper), which is guideline #4: avoid
mixed or multi-threaded accesses to remote NUMA nodes.
"""

from repro.sim.engine import DirectionalLink


class Interconnect:
    """The UPI link between the two sockets."""

    def __init__(self, config, name="upi"):
        self._cfg = config
        self._link = DirectionalLink(name, config.turnaround_ns)

    @property
    def read_extra_ns(self):
        return self._cfg.read_extra_ns

    @property
    def write_extra_ns(self):
        return self._cfg.write_extra_ns

    @property
    def turnarounds(self):
        return self._link.turnarounds

    def read_transfer(self, now, source=None, heavy=True):
        """Book a 64 B read-response transfer; returns its end time."""
        _, end = self._link.transfer(now, self._cfg.read_occ_ns, "rd",
                                     source=source, heavy=heavy)
        return end

    def write_transfer(self, now, source=None, heavy=True):
        """Book a 64 B write transfer; returns its end time."""
        occ = self._cfg.write_occ_ns if heavy \
            else self._cfg.write_occ_light_ns
        _, end = self._link.transfer(now, occ, "wr",
                                     source=source, heavy=heavy)
        return end

    def reset(self):
        self._link.reset()
