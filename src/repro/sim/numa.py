"""Cross-socket topology: the UPI interconnect.

Remote accesses pay a fixed latency adder plus occupancy on a shared
directional link.  The link charges a turnaround penalty whenever
consecutive transfers change direction — under multi-threaded mixed
read/write traffic the turnarounds dominate and remote bandwidth
collapses (up to ~30x in the paper), which is guideline #4: avoid
mixed or multi-threaded accesses to remote NUMA nodes.
"""

from repro.sim.engine import DirectionalLink


class Interconnect:
    """The UPI link between the two sockets."""

    def __init__(self, config, name="upi", tracer=None):
        self._cfg = config
        self.name = name
        self._tracer = tracer
        self._link = DirectionalLink(name, config.turnaround_ns)

    @property
    def read_extra_ns(self):
        return self._cfg.read_extra_ns

    @property
    def write_extra_ns(self):
        return self._cfg.write_extra_ns

    @property
    def turnarounds(self):
        return self._link.turnarounds

    def read_transfer(self, now, source=None, heavy=True):
        """Book a 64 B read-response transfer; returns its end time."""
        turnarounds = self._link.turnarounds
        start, end = self._link.transfer(now, self._cfg.read_occ_ns,
                                         "rd", source=source, heavy=heavy)
        if self._tracer is not None:
            self._trace(now, start, end, "rd", source, turnarounds)
        return end

    def write_transfer(self, now, source=None, heavy=True):
        """Book a 64 B write transfer; returns its end time."""
        occ = self._cfg.write_occ_ns if heavy \
            else self._cfg.write_occ_light_ns
        turnarounds = self._link.turnarounds
        start, end = self._link.transfer(now, occ, "wr",
                                         source=source, heavy=heavy)
        if self._tracer is not None:
            self._trace(now, start, end, "wr", source, turnarounds)
        return end

    def _trace(self, now, start, end, direction, source, turnarounds):
        """One UPI transfer span, plus a turnaround instant if it paid one."""
        self._tracer.complete(
            start, "upi", "upi." + direction, end - start,
            track=self.name,
            args={"source": source, "queued_ns": start - now})
        if self._link.turnarounds > turnarounds:
            self._tracer.instant(
                start, "upi", "upi.turnaround", track=self.name,
                args={"direction": direction, "source": source})

    def reset(self):
        self._link.reset()
