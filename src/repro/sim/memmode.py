"""Memory Mode: 3D XPoint as big volatile memory behind a DRAM cache.

The platform's second operating mode (Section 2.1.2): each memory
channel's DRAM DIMM becomes a direct-mapped, 64 B-block, write-back
cache for its 3D XPoint DIMM ("near memory" caching "far memory"),
managed transparently by the iMC.  The CPU sees one big volatile
address space; nothing persists across power failure.

The paper studies App Direct mode and notes that the DRAM cache
"mitigates most or all of the effects" its guidelines account for
(Section 6) — which is exactly what this model shows: cache-resident
working sets behave like DRAM, larger ones degrade toward raw Optane.
"""

from repro._units import CACHELINE
from repro.sim.interleave import InterleavedMapping
from repro.sim.namespace import Namespace


class NearMemoryCache:
    """Direct-mapped DRAM cache in front of one 3D XPoint DIMM.

    Tracks tags and dirtiness exactly; timing charges one DRAM access
    per hit, and on a miss an Optane fill plus (if the victim block is
    dirty) an Optane write-back.
    """

    def __init__(self, dram_dimm, xp_dimm, capacity_bytes):
        self.dram = dram_dimm
        self.xp = xp_dimm
        self.blocks = capacity_bytes // CACHELINE
        self._tags = {}              # set index -> (tag, dirty)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, dev_addr):
        block = dev_addr // CACHELINE
        return block % self.blocks, block // self.blocks

    def access(self, now, dev_addr, is_write):
        """Serve one 64 B access; returns the data-ready/accept time."""
        index, tag = self._locate(dev_addr)
        entry = self._tags.get(index)
        if entry is not None and entry[0] == tag:
            self.hits += 1
            if is_write:
                self._tags[index] = (tag, True)
                return self.dram.ingest_write(now, dev_addr)
            return self.dram.read(now, dev_addr)
        # Miss: write back a dirty victim, fill from far memory.
        self.misses += 1
        t = now
        if entry is not None and entry[1]:
            self.writebacks += 1
            victim_addr = (entry[0] * self.blocks + index) * CACHELINE
            t = self.xp.ingest_write(t, victim_addr)
        ready = self.xp.read(t, dev_addr)
        self._tags[index] = (tag, is_write)
        if is_write:
            return self.dram.ingest_write(ready, dev_addr)
        self.dram.ingest_write(ready, dev_addr)     # install, off path
        return ready

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MemoryModeNamespace(Namespace):
    """A volatile namespace backed by DRAM-cached 3D XPoint."""

    def __init__(self, machine, name, devices, caches, mapping, socket):
        super().__init__(machine, name, devices, mapping, socket,
                         is_optane=True)
        self.volatile = True          # Memory Mode never persists
        self._near = caches

    def _dimm_access(self, thread, line, is_write):
        index, dev_addr = self._mapping.locate(line)
        channel, _ = self._devices[index]
        start = thread.now
        if self._remote(thread):
            start = self.machine.upi.read_transfer(
                start, source=thread.tid, heavy=True)
        ch_end = channel.transfer_read(start)
        return self._near[index].access(ch_end, dev_addr, is_write)

    def _load_line(self, thread, line):
        cfg = self._cfg.cache
        thread.now += cfg.issue_ns
        issued = thread.now
        cache = self._cache(thread)
        key = (self.ns_id, line)
        if cache.lookup(key):
            completion = thread.now + cfg.hit_ns
            thread.now = completion
            thread.bytes_read += CACHELINE
            thread.record_latency(completion - issued)
            return completion
        thread.admit_load()
        data_ready = self._dimm_access(thread, line, is_write=False)
        victim = cache.fill(key, ready_ns=data_ready)
        if victim is not None and victim[1]:
            self._evict_writeback(victim[0], thread.now)
        thread.track_load(data_ready)
        thread.bytes_read += CACHELINE
        thread.record_latency(data_ready - issued)
        return data_ready

    def _store_line(self, thread, line):
        cfg = self._cfg.cache
        thread.now += cfg.issue_ns
        cache = self._cache(thread)
        key = (self.ns_id, line)
        if cache.mark_dirty(key):
            return
        thread.admit_load()
        data_ready = self._dimm_access(thread, line, is_write=False)
        victim = cache.fill(key, dirty=True, ready_ns=data_ready)
        if victim is not None and victim[1]:
            self._evict_writeback(victim[0], thread.now)
        thread.track_load(data_ready)

    def _send_store(self, thread, line, instr, ordered, not_before=0.0):
        """Write-backs land in the near-memory cache, not the media."""
        insert_lat = 40.0
        thread.admit_store(lead_ns=insert_lat)
        issued = thread.now
        insert = max(thread.now, not_before) + insert_lat
        if ordered:
            thread.pending_persists.append(insert)
        if thread.latencies is not None:
            thread.record_latency(insert - issued)
        accept = self._dimm_access_at(insert, line)
        thread.track_store(accept)
        thread.bytes_written += CACHELINE
        # Memory Mode is volatile: nothing is copied to the persistent
        # view, ever.
        return insert

    def _dimm_access_at(self, now, line):
        index, dev_addr = self._mapping.locate(line)
        channel, _ = self._devices[index]
        ch_end = channel.transfer_writeback(now)
        return self._near[index].access(ch_end, dev_addr, is_write=True)

    def _evict_writeback(self, key_or_line, now):
        if isinstance(key_or_line, tuple):
            _, line = key_or_line
        else:
            line = key_or_line
        self._dimm_access_at(now, line)

    def hit_rate(self):
        """Aggregate near-memory hit rate across the DIMM pairs."""
        hits = sum(c.hits for c in self._near)
        misses = sum(c.misses for c in self._near)
        return hits / (hits + misses) if hits + misses else 0.0


def make_memory_mode_namespace(machine, socket=0):
    """Configure a socket's DIMMs in Memory Mode (one namespace).

    Pairs each channel's DRAM DIMM (as the direct-mapped cache) with
    its 3D XPoint DIMM, interleaved exactly like App Direct.
    """
    cfg = machine.config
    devices = machine.optane[socket]
    caches = []
    for d, (channel, xp) in enumerate(devices):
        _, dram = machine.dram[socket][d]
        caches.append(NearMemoryCache(dram, xp, cfg.dram_capacity))
    mapping = InterleavedMapping(cfg.interleave.block_bytes, len(devices))
    return MemoryModeNamespace(
        machine, "memory-mode", devices, caches, mapping, socket)
