"""Address math and sparse backing storage for simulated memories.

A :class:`DataStore` keeps the *contents* of a namespace as two sparse
page maps: the volatile view (what the CPU reads) and the persistent
view (what survives a simulated power failure).  Lines move from the
volatile to the persistent view exactly when the simulator decides the
corresponding store reached the ADR domain.
"""

from repro._units import CACHELINE, align_down

_PAGE = 4096


class DataStore:
    """Sparse byte storage with separate volatile and persistent views."""

    def __init__(self):
        self._volatile = {}
        self._persistent = {}

    # -- page helpers -------------------------------------------------------

    @staticmethod
    def _split(addr, size):
        """Yield (page_index, offset_in_page, chunk_len) covering the range."""
        end = addr + size
        while addr < end:
            page = addr // _PAGE
            off = addr % _PAGE
            chunk = min(_PAGE - off, end - addr)
            yield page, off, chunk
            addr += chunk

    def _page(self, view, page):
        buf = view.get(page)
        if buf is None:
            buf = bytearray(_PAGE)
            view[page] = buf
        return buf

    # -- volatile view ------------------------------------------------------

    def write(self, addr, data):
        """Write ``data`` into the volatile view at ``addr``."""
        page, off = divmod(addr, _PAGE)
        end = off + len(data)
        if end <= _PAGE:
            # Single-page write (every record/value/header in the KV
            # substrates): no generator, one slice assignment.
            buf = self._volatile.get(page)
            if buf is None:
                buf = self._volatile[page] = bytearray(_PAGE)
            buf[off:end] = data
            return
        pos = 0
        for page, off, chunk in self._split(addr, len(data)):
            self._page(self._volatile, page)[off:off + chunk] = \
                data[pos:pos + chunk]
            pos += chunk

    def read(self, addr, size):
        """Read ``size`` bytes from the volatile view."""
        page, off = divmod(addr, _PAGE)
        end = off + size
        if end <= _PAGE:
            buf = self._volatile.get(page)
            if buf is None:
                return bytes(size)
            return bytes(buf[off:end])
        out = bytearray(size)
        pos = 0
        for page, off, chunk in self._split(addr, size):
            buf = self._volatile.get(page)
            if buf is not None:
                out[pos:pos + chunk] = buf[off:off + chunk]
            pos += chunk
        return bytes(out)

    # -- persistence --------------------------------------------------------

    def persist_line(self, line_addr):
        """Copy one cache line from the volatile to the persistent view."""
        page, off = divmod(line_addr - (line_addr % CACHELINE), _PAGE)
        src = self._volatile.get(page)
        if src is None:
            return
        dst = self._persistent.get(page)
        if dst is None:
            dst = self._persistent[page] = bytearray(_PAGE)
        dst[off:off + CACHELINE] = src[off:off + CACHELINE]

    def persist_range(self, addr, size):
        """Persist every line overlapping ``[addr, addr+size)``."""
        start = align_down(addr, CACHELINE)
        end = addr + size
        while start < end:
            self.persist_line(start)
            start += CACHELINE

    def write_persistent(self, addr, data):
        """Overwrite bytes of the persistent view directly.

        Used by fault injection (torn-write rollback) — normal code
        moves data with :meth:`persist_line` only.
        """
        pos = 0
        for page, off, chunk in self._split(addr, len(data)):
            self._page(self._persistent, page)[off:off + chunk] = \
                data[pos:pos + chunk]
            pos += chunk

    def read_persistent(self, addr, size):
        """Read ``size`` bytes from the persistent (post-crash) view."""
        page, off = divmod(addr, _PAGE)
        end = off + size
        if end <= _PAGE:
            buf = self._persistent.get(page)
            if buf is None:
                return bytes(size)
            return bytes(buf[off:end])
        out = bytearray(size)
        pos = 0
        for page, off, chunk in self._split(addr, size):
            buf = self._persistent.get(page)
            if buf is not None:
                out[pos:pos + chunk] = buf[off:off + chunk]
            pos += chunk
        return bytes(out)

    def power_fail(self):
        """Drop the volatile view: only persisted data survives."""
        self._volatile = {
            page: bytearray(buf) for page, buf in self._persistent.items()
        }

    def persist_everything(self):
        """Force the persistent view to match the volatile view (test aid)."""
        self._persistent = {
            page: bytearray(buf) for page, buf in self._volatile.items()
        }


def split_lines(addr, size):
    """Split ``[addr, addr+size)`` into (line_addr, offset, length) pieces."""
    end = addr + size
    pieces = []
    cur = addr
    while cur < end:
        line = align_down(cur, CACHELINE)
        chunk = min(line + CACHELINE - cur, end - cur)
        pieces.append((line, cur, chunk))
        cur += chunk
    return pieces


def line_addresses(addr, size):
    """The distinct cache-line base addresses touched by a range."""
    first = addr - (addr % CACHELINE)
    last = addr + size - 1
    last -= last % CACHELINE
    return range(first, last + CACHELINE, CACHELINE)
