"""PMemKV: a persistent key-value engine (the cmap engine).

Public surface::

    from repro.pmdk import PmemPool
    from repro.pmemkv import CMap
    from repro.sim import Machine

    m = Machine()
    t = m.thread()
    pool = PmemPool.create(m, t)
    kv = CMap(pool)
    kv.put(t, b"key", b"value")
    assert kv.get(t, b"key") == b"value"
"""

from repro.pmemkv.btree import BPlusTree
from repro.pmemkv.cmap import CMap
from repro.pmemkv.smap import SMap
from repro.pmemkv.study import (
    OverwriteResult, degradation, figure19, overwrite_benchmark,
)

__all__ = [
    "BPlusTree", "CMap", "OverwriteResult", "SMap", "degradation",
    "figure19", "overwrite_benchmark",
]
