"""The sorted engine: PMemKV's vsmap/stree analogue.

A second storage engine over the persistent skiplist so the store
supports range queries, mirroring pmemkv's engine families (cmap for
concurrent hashing, sorted engines for ordered access).  Shares the
pool abstraction with :class:`~repro.pmemkv.cmap.CMap`.
"""

from repro.kvstore.persistent_skiplist import PersistentSkipList


class SMap:
    """Sorted persistent map with range scans (single-writer engine)."""

    def __init__(self, pool, arena_off=None, capacity=8 * 1024 * 1024,
                 seed=0):
        self.pool = pool
        if arena_off is None:
            arena_off = pool.heap.alloc(capacity) - pool.base
        self.arena_off = arena_off
        self.capacity = capacity
        self._index = PersistentSkipList(
            pool.ns, pool.base + arena_off, capacity, seed=seed)

    def put(self, thread, key, value):
        self._index.put(thread, key, value)

    def get(self, thread, key):
        return self._index.get(thread, key)

    def delete(self, thread, key):
        self._index.delete(thread, key)

    def __len__(self):
        return sum(1 for _, v in self._index.items() if v is not None)

    def get_range(self, thread, start=None, end=None, limit=None):
        """Ordered (key, value) pairs with keys in ``[start, end)``."""
        out = []
        for key, value in self._index.items():
            if value is None:
                continue
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                break
            out.append((key, value))
            if limit is not None and len(out) >= limit:
                break
        thread.sleep(20.0 * max(1, len(out)))
        return out

    def count_all(self):
        return len(self)

    @classmethod
    def open(cls, pool, arena_off, capacity=8 * 1024 * 1024):
        """Recover the engine from the persistent arena after a crash."""
        inst = cls.__new__(cls)
        inst.pool = pool
        inst.arena_off = arena_off
        inst.capacity = capacity
        inst._index = PersistentSkipList.recover(
            pool.ns, pool.base + arena_off, capacity)
        return inst
