"""The cmap engine: a concurrent persistent hash map (PMemKV's cmap).

Open-addressed bucket array in persistent memory; keys and values are
variable-size objects from the pool heap.  Concurrency follows cmap's
design: the table is partitioned into lock stripes; writers lock one
stripe (simulated lock acquisition spins on a shared resource so
contention costs show up in simulated time).

Crash consistency: an insert persists the key/value object first, then
publishes it with an 8-byte bucket-pointer store (atomic).  Updates of
equal-size values are done in place under the undo protocol of
:mod:`repro.pmdk.tx`-style snapshotting (simplified: value persisted,
then a version pointer swings).
"""

import struct
import zlib

_BUCKET = struct.Struct("<Q")
_OBJ_HEADER = struct.Struct("<HHI")        # klen | pad | vlen
#: Bucket sentinel for deleted slots (keeps probe chains intact).
#: Object offsets are 64-byte aligned, so 1 can never collide.
TOMBSTONE = 1

#: CPU cost of hashing + probing bookkeeping per operation.
_HASH_NS = 80.0
#: Cost of one stripe-lock acquire/release pair, uncontended.
_LOCK_NS = 30.0


def _hash(key):
    return zlib.crc32(key) & 0xFFFFFFFF


class CMap:
    """Concurrent persistent hash map over a :class:`PmemPool`."""

    def __init__(self, pool, buckets=4096, stripes=64, table_off=None,
                 atomic_updates=False, naive=False):
        self.pool = pool
        self.buckets = buckets
        self.stripes = stripes
        #: Out-of-place same-size updates (alloc + publish) instead of
        #: the in-place overwrite.  The in-place path is faster but a
        #: power failure can tear the value mid-overwrite — half old,
        #: half new bytes with nothing to detect it.  Chaos serving
        #: turns this on; ``--naive`` leaves the tear hazard in.
        self.atomic_updates = atomic_updates
        #: Hardening-stripped mode: in-place updates skip the sfence
        #: after the flush (the common "clflushopt is enough" mistake —
        #: pmcheck flags the ack as ack-before-fence).
        self.naive = naive
        self._vtable = [0] * buckets       # volatile mirror of buckets
        self._vindex = {}                  # key -> (bucket, obj_off)
        self._lock_free_at = [0.0] * stripes
        if table_off is None:
            table_off = self.pool.heap.alloc(
                buckets * _BUCKET.size) - self.pool.base
        self._table_off = table_off

    # -- persistence helpers ---------------------------------------------------

    def _bucket_addr(self, idx):
        return self._table_off + idx * _BUCKET.size

    def _encode_obj(self, key, value):
        return _OBJ_HEADER.pack(len(key), 0, len(value)) + key + value

    def _persist(self, thread, offset, data, fence=True):
        """Store + clflushopt + fence (pmemkv's persist evicts lines)."""
        addr = self.pool.addr(offset)
        self.pool.ns.store(thread, addr, len(data), data=data)
        self.pool.ns.clflushopt(thread, addr, len(data))
        if fence:
            thread.sfence()

    def _declare_publish_order(self, thread, obj_off, obj_len, idx):
        """Tell an installed pmcheck the object must be durable before
        the 8-byte bucket pointer publishes it (declared between the
        two persists, which is the point of no return for the rule)."""
        pmcheck = thread.machine.pmcheck
        if pmcheck is not None:
            ns = self.pool.ns
            pmcheck.require_order(
                [(ns, self.pool.addr(obj_off), obj_len)],
                [(ns, self.pool.addr(self._bucket_addr(idx)),
                  _BUCKET.size)],
                note="cmap publish: the key/value object must be "
                     "durable before the bucket pointer that makes it "
                     "reachable")

    def _stripe_for(self, idx):
        return idx % self.stripes

    def _lock(self, thread, stripe):
        """Acquire the stripe lock in simulated time."""
        free_at = self._lock_free_at[stripe]
        if free_at > thread.now:
            thread.now = free_at            # spin until the holder exits
        thread.sleep(_LOCK_NS)

    def _unlock(self, thread, stripe):
        self._lock_free_at[stripe] = thread.now

    # -- operations ----------------------------------------------------------------

    def put(self, thread, key, value):
        """Insert or update, durably."""
        thread.sleep(_HASH_NS)
        idx = self._probe_slot(key)
        stripe = self._stripe_for(idx)
        self._lock(thread, stripe)
        try:
            existing = self._vindex.get(key)
            if existing is not None:
                self._update(thread, existing, key, value)
                return
            obj = self._encode_obj(key, value)
            obj_off = self.pool.heap.alloc(len(obj)) - self.pool.base
            # 1. Persist the object, 2. publish the bucket pointer.
            self._persist(thread, obj_off, obj)
            self._declare_publish_order(thread, obj_off, len(obj), idx)
            self._persist(thread, self._bucket_addr(idx),
                          _BUCKET.pack(obj_off))
            self._vtable[idx] = obj_off
            self._vindex[key] = (idx, obj_off)
        finally:
            self._unlock(thread, stripe)

    def _update(self, thread, existing, key, value):
        idx, obj_off = existing
        old_vlen = self._obj_vlen(obj_off)
        if old_vlen == len(value) and not self.atomic_updates:
            # In-place value overwrite (read-modify-write).
            vaddr = obj_off + _OBJ_HEADER.size + len(key)
            self.pool.read(thread, vaddr, len(value))
            self._persist(thread, vaddr, value, fence=not self.naive)
            return
        obj = self._encode_obj(key, value)
        new_off = self.pool.heap.alloc(len(obj)) - self.pool.base
        self._persist(thread, new_off, obj)
        self._declare_publish_order(thread, new_off, len(obj), idx)
        self._persist(thread, self._bucket_addr(idx),
                      _BUCKET.pack(new_off))
        self.pool.heap.free(self.pool.base + obj_off,
                            _OBJ_HEADER.size + len(key) + old_vlen)
        self._vtable[idx] = new_off
        self._vindex[key] = (idx, new_off)

    def delete(self, thread, key):
        """Durably remove ``key``; returns True if it was present.

        The bucket is overwritten with a tombstone sentinel (an 8-byte
        atomic store) so linear-probe chains through it stay intact.
        """
        thread.sleep(_HASH_NS)
        found = self._vindex.get(key)
        if found is None:
            return False
        idx, obj_off = found
        stripe = self._stripe_for(idx)
        self._lock(thread, stripe)
        try:
            self._persist(thread, self._bucket_addr(idx),
                          _BUCKET.pack(TOMBSTONE))
            klen = len(key)
            vlen = self._obj_vlen(obj_off)
            self.pool.heap.free(self.pool.base + obj_off,
                                _OBJ_HEADER.size + klen + vlen)
            self._vtable[idx] = TOMBSTONE
            del self._vindex[key]
            return True
        finally:
            self._unlock(thread, stripe)

    def items(self):
        """All live (key, value) pairs, from the volatile view."""
        out = []
        for key, (idx, obj_off) in self._vindex.items():
            hdr = self.pool.read_volatile(obj_off, _OBJ_HEADER.size)
            klen, _, vlen = _OBJ_HEADER.unpack(hdr)
            body = self.pool.read_volatile(
                obj_off + _OBJ_HEADER.size, klen + vlen)
            out.append((key, body[klen:]))
        return sorted(out)

    def get(self, thread, key):
        """Durable-state-independent read of the latest value."""
        thread.sleep(_HASH_NS)
        found = self._vindex.get(key)
        if found is None:
            return None
        _, obj_off = found
        raw = self.pool.read(thread, obj_off, _OBJ_HEADER.size)
        klen, _, vlen = _OBJ_HEADER.unpack(raw)
        body = self.pool.read(thread, obj_off + _OBJ_HEADER.size,
                              klen + vlen)
        return body[klen:]

    def __len__(self):
        return len(self._vindex)

    # -- internals -----------------------------------------------------------------

    def _probe_slot(self, key):
        """Linear probing on the volatile mirror.

        Tombstoned slots are reusable for inserts but do not terminate
        a probe (the key may live beyond them).
        """
        idx = _hash(key) % self.buckets
        first_tombstone = None
        for _ in range(self.buckets):
            off = self._vtable[idx]
            if off == 0:
                return idx if first_tombstone is None else first_tombstone
            if off == TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = idx
            elif self._obj_key(off) == key:
                return idx
            idx = (idx + 1) % self.buckets
        if first_tombstone is not None:
            return first_tombstone
        raise RuntimeError("cmap full")

    def _obj_key(self, obj_off):
        raw = self.pool.read_volatile(obj_off, _OBJ_HEADER.size)
        klen, _, _ = _OBJ_HEADER.unpack(raw)
        return self.pool.read_volatile(obj_off + _OBJ_HEADER.size, klen)

    def _obj_vlen(self, obj_off):
        raw = self.pool.read_volatile(obj_off, _OBJ_HEADER.size)
        _, _, vlen = _OBJ_HEADER.unpack(raw)
        return vlen

    # -- recovery -----------------------------------------------------------------

    @classmethod
    def open(cls, pool, table_off, buckets=4096, stripes=64):
        """Rebuild the volatile index from the persistent table."""
        inst = cls(pool, buckets=buckets, stripes=stripes,
                   table_off=table_off)
        for idx in range(buckets):
            raw = pool.read_persistent(inst._bucket_addr(idx),
                                       _BUCKET.size)
            obj_off = _BUCKET.unpack(raw)[0]
            if obj_off == TOMBSTONE:
                inst._vtable[idx] = TOMBSTONE
                continue
            if not obj_off:
                continue
            hdr = pool.read_persistent(obj_off, _OBJ_HEADER.size)
            klen, _, vlen = _OBJ_HEADER.unpack(hdr)
            key = pool.read_persistent(obj_off + _OBJ_HEADER.size, klen)
            inst._vtable[idx] = obj_off
            inst._vindex[bytes(key)] = (idx, obj_off)
        return inst

    @classmethod
    def open_report(cls, pool, table_off, buckets=4096, stripes=64,
                    atomic_updates=False, naive=False):
        """Tolerant reopen: ``(cmap, RecoveryReport)``, never raises.

        Unlike :meth:`open`, media errors during the table scan are
        absorbed into the report instead of aborting recovery:

        * an unreadable bucket line loses however many entries pointed
          through it (counted, unattributable — the pointers are gone);
        * an unreadable object header or key likewise counts an
          unattributable loss;
        * a readable key whose *value* region is poisoned is a loss the
          report can name: the key lands in ``lost_keys`` and the entry
          is dropped from the index (a read returns "missing", which
          the durability oracle excuses because the loss is reported).

        The scan also repairs the reopened pool's volatile heap: the
        bump pointer is advanced past the table and the highest live
        object, so post-recovery allocations cannot overwrite reachable
        data (allocation state does not survive a crash).
        """
        from repro.faults.model import MediaError
        from repro.faults.report import RecoveryReport

        report = RecoveryReport(component="cmap")
        inst = cls(pool, buckets=buckets, stripes=stripes,
                   table_off=table_off, atomic_updates=atomic_updates,
                   naive=naive)
        high_water = table_off + buckets * _BUCKET.size
        for idx in range(buckets):
            try:
                raw = pool.read_persistent(inst._bucket_addr(idx),
                                           _BUCKET.size)
            except MediaError:
                report.lost += 1
                report.note("bucket %d unreadable (poisoned table "
                            "line)" % idx)
                continue
            obj_off = _BUCKET.unpack(raw)[0]
            if obj_off == TOMBSTONE:
                inst._vtable[idx] = TOMBSTONE
                continue
            if not obj_off:
                continue
            try:
                hdr = pool.read_persistent(obj_off, _OBJ_HEADER.size)
                klen, _, vlen = _OBJ_HEADER.unpack(hdr)
                key = bytes(pool.read_persistent(
                    obj_off + _OBJ_HEADER.size, klen))
            except MediaError:
                report.lost += 1
                report.note("object at +%#x unreadable (header/key "
                            "poisoned)" % obj_off)
                continue
            high_water = max(high_water,
                             obj_off + _OBJ_HEADER.size + klen + vlen)
            try:
                pool.read_persistent(obj_off + _OBJ_HEADER.size + klen,
                                     vlen)
            except MediaError:
                report.lost += 1
                report.lost_keys.append(key)
                report.note("value of %r poisoned" % key)
                continue
            inst._vtable[idx] = obj_off
            inst._vindex[key] = (idx, obj_off)
            report.recovered += 1
        pool.heap.reserve_to(pool.base + high_water)
        return inst, report

    @property
    def table_offset(self):
        return self._table_off
