"""PMemKV NUMA degradation (Figure 19).

The included pmemkv benchmark's ``overwrite`` workload: every
operation is a read-modify-write of an existing key.  We sweep thread
count for four placements of the pool (local/remote Optane,
local/remote DRAM): local Optane scales with threads; remote Optane
collapses once more than a couple of threads mix reads and writes over
the UPI link — the paper measures up to 4.5x degradation (18x versus
DRAM).
"""

import random
from dataclasses import dataclass

from repro._units import MIB, gb_per_s
from repro.pmdk.pool import PmemPool
from repro.pmemkv.cmap import CMap
from repro.sim import Machine, run_workloads

KEY_SIZE = 16
VALUE_SIZE = 1024


@dataclass
class OverwriteResult:
    """One point of Figure 19."""

    kind: str
    threads: int
    bandwidth_gbps: float
    kops_per_sec: float


def _populate(pool, cmap, thread, keys):
    for key in keys:
        cmap.put(thread, key, b"\x11" * VALUE_SIZE)


def overwrite_benchmark(kind="optane", threads=4, keys=1024,
                        ops_per_thread=400, machine=None, seed=3):
    """Run the overwrite (read-modify-write) workload."""
    m = machine if machine is not None else Machine()
    setup = m.thread(socket=0 if not kind.endswith("remote") else 1)
    pool = PmemPool.create(m, setup, kind=kind, size=32 * MIB)
    cmap = CMap(pool)
    key_list = [b"k%014d" % i for i in range(keys)]
    _populate(pool, cmap, setup, key_list)
    ts = m.threads(threads, socket=0)

    def worker(t):
        rng = random.Random(seed + t.tid)
        for _ in range(ops_per_thread):
            key = key_list[rng.randrange(keys)]
            old = cmap.get(t, key)
            new = bytes([(old[0] + 1) & 0xFF]) * VALUE_SIZE
            cmap.put(t, key, new)
            yield

    floor = max(t.now for t in ts + [setup])
    for t in ts:
        t.now = floor
    elapsed = run_workloads([(t, worker(t)) for t in ts]) - floor
    moved = threads * ops_per_thread * (KEY_SIZE + 2 * VALUE_SIZE)
    total_ops = threads * ops_per_thread
    return OverwriteResult(
        kind=kind, threads=threads,
        bandwidth_gbps=gb_per_s(moved, elapsed),
        kops_per_sec=total_ops / (elapsed / 1e9) / 1e3,
    )


def figure19(thread_counts=(1, 2, 4, 8, 12),
             kinds=("dram", "dram-remote", "optane", "optane-remote"),
             ops_per_thread=300):
    """All four curves: ``{kind: [(threads, OverwriteResult)]}``."""
    out = {}
    for kind in kinds:
        out[kind] = [
            (n, overwrite_benchmark(kind, threads=n,
                                    ops_per_thread=ops_per_thread))
            for n in thread_counts
        ]
    return out


def degradation(results, kind="optane"):
    """Peak local-to-remote bandwidth ratio for a memory type."""
    local = max(r.bandwidth_gbps for _, r in results[kind])
    remote = max(r.bandwidth_gbps for _, r in results[kind + "-remote"])
    return local / remote
