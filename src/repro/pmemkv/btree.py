"""An FPTree-style persistent B+-tree (the NVM-index family of §7).

The paper's related work is full of persistent B-trees (FPTree,
NV-Tree, BzTree, wB+Tree); this engine applies the paper's guidelines
to that design space:

* **Leaf nodes are persistent and unsorted** — an insert appends into
  the first free slot and flips one bit in a presence bitmap, so a
  put persists exactly one key/value slot plus one metadata line
  (small, *localised* stores: guideline #1 honoured by keeping the
  whole hot region of the leaf inside one XPLine where possible).
* **Fingerprints** — one hash byte per slot in the metadata line lets
  lookups probe a single cache line before touching key slots (fewer
  3D XPoint reads, FPTree's key trick).
* **Inner nodes are volatile** and rebuilt on recovery by scanning the
  leaf chain, exactly like FPTree rebuilds its DRAM-resident inners.

Leaf layout (``leaf_bytes`` total, default 256 = one XPLine)::

    u64 next_leaf | u8 count_hint | bitmap u16 | fp[SLOTS] | pad
    (key u64 | value u64) x SLOTS

Keys and values are fixed 8-byte integers (an index, not a heap);
variable payloads belong in the pool heap with the value as a pointer.
"""

import struct

from repro._units import CACHELINE

_HEADER = struct.Struct("<QBH")          # next | hint | bitmap
_SLOT = struct.Struct("<QQ")


def _fingerprint(key):
    x = key * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
    return (x >> 56) & 0xFF or 1


class _LeafView:
    """Decoder/encoder for one persistent leaf."""

    def __init__(self, tree, off):
        self.tree = tree
        self.off = off

    @property
    def _meta_size(self):
        return _HEADER.size + self.tree.slots

    def read_meta(self):
        raw = self.tree.pool.read_volatile(self.off, self._meta_size)
        nxt, hint, bitmap = _HEADER.unpack_from(raw)
        fps = list(raw[_HEADER.size:])
        return nxt, bitmap, fps

    def slot_addr(self, idx):
        return self.off + self._meta_size + idx * _SLOT.size

    def read_slot(self, idx):
        raw = self.tree.pool.read_volatile(self.slot_addr(idx),
                                           _SLOT.size)
        return _SLOT.unpack(raw)

    def write_slot(self, thread, idx, key, value):
        self.tree.pool.write(thread, self.slot_addr(idx),
                             _SLOT.pack(key, value), instr="clwb")

    def write_meta(self, thread, nxt, bitmap, fps):
        blob = _HEADER.pack(nxt, 0, bitmap) + bytes(fps)
        self.tree.pool.write(thread, self.off, blob, instr="clwb")


class BPlusTree:
    """Persistent B+-tree over a pool; volatile inner index."""

    def __init__(self, pool, leaf_bytes=256, head_off=None, slots=None,
                 use_fingerprints=True):
        self.pool = pool
        self.leaf_bytes = leaf_bytes
        self.use_fingerprints = use_fingerprints
        if slots is None:
            slots = (leaf_bytes - _HEADER.size) // (_SLOT.size + 1)
            while _HEADER.size + slots + slots * _SLOT.size > leaf_bytes:
                slots -= 1
        self.slots = min(slots, 16)             # bitmap is a u16
        if self.slots < 2 or _HEADER.size + self.slots \
                + self.slots * _SLOT.size > leaf_bytes:
            raise ValueError("leaf too small")
        if head_off is None:
            head_off = self._new_leaf_off()
        self.head = head_off
        # Volatile inner index: sorted list of (min_key, leaf_off).
        self._inners = [(-1, self.head)]
        self.count = 0

    # -- allocation --------------------------------------------------------------

    def _new_leaf_off(self):
        # XPLine-aligned leaves: the whole hot region of a 256 B leaf
        # stays inside one media line (guideline #1).
        return self.pool.heap.alloc(self.leaf_bytes,
                                    align=256) - self.pool.base

    def _init_leaf(self, thread, off, nxt=0):
        view = _LeafView(self, off)
        view.write_meta(thread, nxt, 0, [0] * self.slots)
        return view

    def format(self, thread):
        """Persist the empty head leaf (call once on a fresh tree)."""
        self._init_leaf(thread, self.head)

    # -- lookup helpers --------------------------------------------------------------

    def _leaf_for(self, key):
        lo, hi = 0, len(self._inners)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._inners[mid][0] <= key:
                lo = mid
            else:
                hi = mid
        return self._inners[lo][1]

    def _find_in_leaf(self, thread, leaf_off, key):
        view = _LeafView(self, leaf_off)
        # One cache-line read covers the whole metadata region.
        self.pool.read(thread, leaf_off, min(CACHELINE, self.leaf_bytes))
        nxt, bitmap, fps = view.read_meta()
        fp = _fingerprint(key)
        for idx in range(self.slots):
            if not bitmap & (1 << idx):
                continue
            if self.use_fingerprints and fps[idx] != fp:
                continue                 # one-byte probe spared a read
            self.pool.read(thread, view.slot_addr(idx), _SLOT.size)
            k, v = view.read_slot(idx)
            if k == key:
                return view, nxt, bitmap, fps, idx, v
        return view, nxt, bitmap, fps, None, None

    # -- operations -------------------------------------------------------------------

    def put(self, thread, key, value):
        """Durably insert or update one fixed-size pair."""
        leaf_off = self._leaf_for(key)
        view, nxt, bitmap, fps, idx, _ = self._find_in_leaf(
            thread, leaf_off, key)
        if idx is not None:
            view.write_slot(thread, idx, key, value)   # in-place update
            thread.sfence()
            return
        free = next((i for i in range(self.slots)
                     if not bitmap & (1 << i)), None)
        if free is None:
            self._split(thread, leaf_off)
            return self.put(thread, key, value)
        # 1. Persist the slot, fence; 2. flip bitmap+fingerprint (one
        # metadata line), fence — the FPTree commit protocol.
        view.write_slot(thread, free, key, value)
        thread.sfence()
        fps[free] = _fingerprint(key)
        view.write_meta(thread, nxt, bitmap | (1 << free), fps)
        thread.sfence()
        self.count += 1

    def get(self, thread, key):
        leaf_off = self._leaf_for(key)
        _, _, _, _, idx, value = self._find_in_leaf(thread, leaf_off, key)
        return value if idx is not None else None

    def delete(self, thread, key):
        """Durably remove a key: one bitmap-line update."""
        leaf_off = self._leaf_for(key)
        view, nxt, bitmap, fps, idx, _ = self._find_in_leaf(
            thread, leaf_off, key)
        if idx is None:
            return False
        fps[idx] = 0
        view.write_meta(thread, nxt, bitmap & ~(1 << idx), fps)
        thread.sfence()
        self.count -= 1
        return True

    def _split(self, thread, leaf_off):
        """Split a full leaf: persist the new right sibling first."""
        view = _LeafView(self, leaf_off)
        nxt, bitmap, fps = view.read_meta()
        pairs = sorted(view.read_slot(i) for i in range(self.slots)
                       if bitmap & (1 << i))
        half = len(pairs) // 2
        right_pairs = pairs[half:]
        sep = right_pairs[0][0]
        right_off = self._new_leaf_off()
        right = self._init_leaf(thread, right_off, nxt=nxt)
        rbitmap = 0
        rfps = [0] * self.slots
        for i, (k, v) in enumerate(right_pairs):
            right.write_slot(thread, i, k, v)
            rbitmap |= 1 << i
            rfps[i] = _fingerprint(k)
        right.write_meta(thread, nxt, rbitmap, rfps)
        thread.sfence()
        # Commit point: shrink the left leaf's bitmap + link the right
        # sibling in a single metadata-line persist.
        lbitmap = 0
        lfps = [0] * self.slots
        keep = {k for k, _ in pairs[:half]}
        for i in range(self.slots):
            if bitmap & (1 << i):
                k, _ = view.read_slot(i)
                if k in keep:
                    lbitmap |= 1 << i
                    lfps[i] = fps[i]
        view.write_meta(thread, right_off, lbitmap, lfps)
        thread.sfence()
        # Update the volatile inner index.
        import bisect
        bisect.insort(self._inners, (sep, right_off))

    def scan(self, thread, start=None, end=None):
        """Ordered (key, value) pairs with keys in ``[start, end)``."""
        out = []
        leaf_off = self._leaf_for(start if start is not None else -1)
        while leaf_off:
            view = _LeafView(self, leaf_off)
            self.pool.read(thread, leaf_off, self.leaf_bytes)
            nxt, bitmap, _ = view.read_meta()
            for i in range(self.slots):
                if bitmap & (1 << i):
                    k, v = view.read_slot(i)
                    if (start is None or k >= start) and \
                            (end is None or k < end):
                        out.append((k, v))
            if end is not None and out and max(k for k, _ in out) >= end:
                break
            leaf_off = nxt
        return sorted(out)

    # -- recovery --------------------------------------------------------------------

    @classmethod
    def recover(cls, pool, head_off, leaf_bytes=256):
        """Rebuild the volatile inner index from the persistent leaves."""
        tree = cls(pool, leaf_bytes=leaf_bytes, head_off=head_off)
        tree._inners = [(-1, head_off)]
        tree.count = 0
        off = head_off
        seen = set()
        while off and off not in seen:
            seen.add(off)
            raw = pool.read_persistent(off, leaf_bytes)
            nxt, _, bitmap = _HEADER.unpack_from(raw)
            min_key = None
            meta = _HEADER.size + tree.slots
            for i in range(tree.slots):
                if bitmap & (1 << i):
                    k, _ = _SLOT.unpack_from(raw, meta + i * _SLOT.size)
                    tree.count += 1
                    if min_key is None or k < min_key:
                        min_key = k
            if off != head_off and min_key is not None:
                tree._inners.append((min_key, off))
            off = nxt
        tree._inners.sort()
        return tree
