"""Figure regenerators that combine several lattester pieces.

Most figures map 1:1 onto a lattester function; the three here need
composite workloads of their own:

* :func:`figure13` — persistence-instruction bandwidth and latency;
* :func:`figure14` — bandwidth as a function of the sfence interval;
* :func:`figure18` — local/remote bandwidth across read:write mixes.
"""

import random

from repro._units import CACHELINE, KIB, gb_per_s
from repro.lattester.access import staggered_base
from repro.lattester.bandwidth import measure_bandwidth
from repro.sim import Machine, run_workloads


def figure13(access_sizes=(64, 256, 1024, 4096), threads=6,
             per_thread=128 * KIB, machine_config=None):
    """Bandwidth (6 threads, fenced per access) and single-thread
    latency per persistence instruction.

    Returns ``{"bandwidth": {instr: [(size, GB/s)]},
               "latency":   {instr: [(size, ns)]}}``.

    The "store" (no flush) curve only shows its write-back behaviour
    when the working set exceeds the LLC; pass a ``machine_config``
    with a small cache to measure it cheaply.
    """
    bandwidth = {}
    for op in ("ntstore", "clwb", "store"):
        pts = []
        for size in access_sizes:
            m = Machine(machine_config)
            r = measure_bandwidth(
                kind="optane", op=op, threads=threads, access=size,
                pattern="seq", per_thread=per_thread, machine=m,
                fence_every=size)
            pts.append((size, r.gbps))
        bandwidth[op] = pts

    latency = {"ntstore": [], "clwb": []}
    for size in access_sizes:
        for instr in ("ntstore", "clwb"):
            m = Machine(machine_config)
            ns = m.namespace("optane")
            t = m.thread()
            lats = []
            for i in range(64):
                addr = i * max(size, 4 * KIB)
                # Warm the lines, as the paper's latency experiment does.
                ns.load(t, addr, size)
                t.mfence()
                start = t.now
                if instr == "ntstore":
                    ns.ntstore(t, addr, size)
                else:
                    ns.store(t, addr, size)
                    ns.clwb(t, addr, size)
                t.sfence()
                lats.append(t.now - start)
            latency[instr].append((size, sum(lats) / len(lats)))
    return {"bandwidth": bandwidth, "latency": latency}


def figure14(write_sizes=(64, 1024, 64 * KIB, 1024 * KIB, 8 * 1024 * KIB),
             total_bytes=4 * 1024 * KIB, machine_config=None):
    """Single-thread Optane-NI bandwidth over the sfence interval.

    Three curves: clwb after every 64 B line, clwb after the whole
    write ("write size"), and ntstore — each fenced once per write.
    ``machine_config`` lets callers shrink the LLC so the
    beyond-cache-capacity regime is reachable quickly.
    """
    curves = {"clwb(every 64B)": [], "clwb(write size)": [], "ntstore": []}
    for size in write_sizes:
        span = max(total_bytes, size)
        writes = max(1, span // size)
        for label in curves:
            m = Machine(machine_config)
            ns = m.namespace("optane-ni")
            t = m.thread()
            start = t.now
            for w in range(writes):
                base = w * size
                if label == "ntstore":
                    ns.ntstore(t, base, size)
                elif label == "clwb(every 64B)":
                    for off in range(0, size, CACHELINE):
                        ns.store(t, base + off)
                        ns.clwb(t, base + off)
                else:
                    ns.store(t, base, size)
                    ns.clwb(t, base, size)
                t.sfence()
            elapsed = t.now - start
            curves[label].append((size, gb_per_s(writes * size, elapsed)))
    return curves


def figure18(mixes=(("R", 1.0), ("4:1", 0.8), ("3:1", 0.75),
                    ("2:1", 2 / 3), ("1:1", 0.5), ("W", 0.0)),
             thread_counts=(1, 4), per_thread=96 * KIB):
    """Local vs remote Optane bandwidth across read:write mixes.

    Returns ``{(kind, threads): [(mix_label, GB/s)]}`` for
    kind in {"optane", "optane-remote"}.
    """
    results = {}
    for kind in ("optane", "optane-remote"):
        for nthreads in thread_counts:
            pts = []
            for label, read_frac in mixes:
                pts.append((label, _mixed_bandwidth(
                    kind, nthreads, read_frac, per_thread)))
            results[kind, nthreads] = pts
    return results


def _mixed_bandwidth(kind, nthreads, read_frac, per_thread):
    m = Machine()
    ns = m.namespace(kind)
    ts = m.threads(nthreads, socket=0)

    def worker(t):
        rng = random.Random(7 + t.tid)
        base = staggered_base(t.tid, per_thread)
        for i in range(per_thread // CACHELINE):
            addr = base + i * CACHELINE
            if rng.random() < read_frac:
                ns.load(t, addr)
            else:
                ns.ntstore(t, addr)
            yield
        t.sfence()

    elapsed = run_workloads([(t, worker(t)) for t in ts])
    return gb_per_s(per_thread * nthreads, elapsed)
