"""The paper's contribution, distilled: guidelines, planning, experiments.

* :mod:`repro.core.guidelines` — the four best practices as an advisor
  and an access-pattern auditor;
* :mod:`repro.core.planner` — automatic instruction/layout planning;
* :mod:`repro.core.experiments` — the per-figure experiment registry;
* :mod:`repro.core.figures` — composite figure regenerators.
"""

from repro.core.experiments import Experiment, all_experiments, get
from repro.core.guidelines import (
    MAX_READERS_PER_DIMM, MAX_WRITERS_PER_DIMM, NTSTORE_CROSSOVER_BYTES,
    XPBUFFER_BYTES, AccessPlan, Advisor, Violation, audit_access_pattern,
)
from repro.core.planner import AccessPlanner, WritePlan, batched_log_append

__all__ = [
    "AccessPlan", "AccessPlanner", "Advisor", "Experiment",
    "MAX_READERS_PER_DIMM", "MAX_WRITERS_PER_DIMM",
    "NTSTORE_CROSSOVER_BYTES", "Violation", "WritePlan", "XPBUFFER_BYTES",
    "all_experiments", "audit_access_pattern", "batched_log_append", "get",
]
