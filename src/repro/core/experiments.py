"""Registry of every reproduced experiment.

Each entry maps a paper figure to the code that regenerates it: the
module-level function (resolved lazily, so importing this registry is
cheap) plus the benchmark file that prints the paper-comparable rows.
Figures 1 and 11 are architecture/mechanism diagrams with nothing to
measure and are intentionally absent.
"""

import importlib
from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproducible figure."""

    figure: str
    title: str
    section: str
    workload: str
    runner: str                 # "module:function" resolved lazily
    bench: str                  # benchmark file that regenerates it

    def run(self, **kwargs):
        """Resolve and execute the experiment's runner."""
        module_name, _, func_name = self.runner.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, func_name)(**kwargs)

    def run_cached(self, cache=None, **kwargs):
        """Run through the harness's content-addressed cache.

        Returns ``(result, cached)``; the result is in JSON-able form
        (dataclasses lowered to dicts) so a cache replay is
        indistinguishable from a live run.  Keys cover the figure id,
        the kwargs, the simulator configuration and the package
        version, so any of those changing forces a re-run.
        """
        from repro.harness import run_experiment_cached
        return run_experiment_cached(self, cache=cache, **kwargs)


REGISTRY = {
    "fig2": Experiment(
        figure="fig2", title="Best-case (idle) latency",
        section="3.2",
        workload="8 B loads seq/rand; fenced store+clwb / ntstore",
        runner="repro.lattester.latency:figure2",
        bench="benchmarks/test_fig02_idle_latency.py"),
    "fig3": Experiment(
        figure="fig3", title="Tail latency vs hotspot size",
        section="3.3",
        workload="fenced sequential ntstores inside 256 B..64 MB hotspots",
        runner="repro.lattester.tail:figure3",
        bench="benchmarks/test_fig03_tail_latency.py"),
    "fig4": Experiment(
        figure="fig4", title="Bandwidth vs thread count",
        section="3.4",
        workload="256 B sequential read/ntstore/store+clwb, 1-24 threads",
        runner="repro.lattester.bandwidth:bandwidth_vs_threads",
        bench="benchmarks/test_fig04_bw_threads.py"),
    "fig5": Experiment(
        figure="fig5", title="Bandwidth vs access size",
        section="3.4",
        workload="random accesses 64 B-2 MB at best thread counts",
        runner="repro.lattester.bandwidth:bandwidth_vs_access_size",
        bench="benchmarks/test_fig05_bw_access_size.py"),
    "fig6": Experiment(
        figure="fig6", title="Latency under load",
        section="3.5",
        workload="16 reader / 4 writer threads with inter-access delays",
        runner="repro.lattester.load:latency_bandwidth_curve",
        bench="benchmarks/test_fig06_latency_under_load.py"),
    "fig7": Experiment(
        figure="fig7", title="Microbenchmarks under emulation",
        section="4.1",
        workload="seq write latency/BW + read:write mixes on PMEP, "
                 "DRAM, DRAM-Remote vs Optane",
        runner="repro.emulation.study:figure7",
        bench="benchmarks/test_fig07_emulation.py"),
    "fig8": Experiment(
        figure="fig8", title="RocksDB persistence strategies",
        section="4.2",
        workload="db_bench SET, 20 B keys / 100 B values, sync each op",
        runner="repro.kvstore.study:figure8",
        bench="benchmarks/test_fig08_rocksdb.py"),
    "fig9": Experiment(
        figure="fig9", title="EWR vs device bandwidth (single DIMM)",
        section="5.1",
        workload="sweep of access size x threads x power budget",
        runner="repro.lattester.ewr:figure9_sweep",
        bench="benchmarks/test_fig09_ewr_correlation.py"),
    "fig10": Experiment(
        figure="fig10", title="Inferring XPBuffer capacity",
        section="5.1",
        workload="half-line/half-line rounds over N XPLines",
        runner="repro.lattester.xpbuffer_probe:figure10",
        bench="benchmarks/test_fig10_xpbuffer_probe.py"),
    "fig12": Experiment(
        figure="fig12", title="File IO latency (NOVA-datalog)",
        section="5.1.2",
        workload="64/256 B random overwrites + 4 KB reads on five "
                 "file-system configurations",
        runner="repro.fs.study:figure12",
        bench="benchmarks/test_fig12_nova_datalog.py"),
    "fig13": Experiment(
        figure="fig13", title="Persistence-instruction bandwidth/latency",
        section="5.2",
        workload="ntstore / store+clwb / store, 6 threads, 64 B-4 KB",
        runner="repro.core.figures:figure13",
        bench="benchmarks/test_fig13_persist_instructions.py"),
    "fig14": Experiment(
        figure="fig14", title="Bandwidth vs sfence interval",
        section="5.2",
        workload="single thread, clwb per line vs after write, vs ntstore",
        runner="repro.core.figures:figure14",
        bench="benchmarks/test_fig14_sfence_interval.py"),
    "fig15": Experiment(
        figure="fig15", title="Micro-buffering instruction tuning",
        section="5.2.1",
        workload="no-op transactions on 64 B-8 KB objects, NT vs CLWB "
                 "write-back",
        runner="repro.pmdk.study:figure15",
        bench="benchmarks/test_fig15_microbuffering.py"),
    "fig16": Experiment(
        figure="fig16", title="iMC contention (DIMMs per thread)",
        section="5.3",
        workload="fixed thread pool spread over 1..6 DIMMs",
        runner="repro.lattester.contention:figure16",
        bench="benchmarks/test_fig16_imc_contention.py"),
    "fig17": Experiment(
        figure="fig17", title="Multi-DIMM NOVA on FIO",
        section="5.3.1",
        workload="FIO 24 threads, seq/rand x read/write x sync/async, "
                 "interleaved vs pinned",
        runner="repro.fs.study:figure17",
        bench="benchmarks/test_fig17_multidimm_nova.py"),
    "fig18": Experiment(
        figure="fig18", title="Local vs remote bandwidth over R:W mix",
        section="5.4",
        workload="R, 4:1, 3:1, 2:1, 1:1, W mixes at 1 and 4 threads",
        runner="repro.core.figures:figure18",
        bench="benchmarks/test_fig18_numa_mix.py"),
    "fig19": Experiment(
        figure="fig19", title="PMemKV NUMA degradation",
        section="5.4.1",
        workload="cmap overwrite (read-modify-write), 1-12 threads, "
                 "4 memory placements",
        runner="repro.pmemkv.study:figure19",
        bench="benchmarks/test_fig19_pmemkv_numa.py"),
}


def get(figure):
    """Look up one experiment ('fig2' .. 'fig19')."""
    try:
        return REGISTRY[figure]
    except KeyError:
        raise KeyError(
            "unknown experiment %r (known: %s)"
            % (figure, ", ".join(sorted(REGISTRY)))) from None


def all_experiments():
    """All experiments, ordered by figure number."""
    return [REGISTRY[k] for k in sorted(
        REGISTRY, key=lambda s: int(s[3:]))]
