"""Access planning: apply the guidelines automatically.

:class:`AccessPlanner` turns an application-level write request into a
guideline-conformant execution plan (instruction choice, batching,
thread budget, DIMM pinning), and can execute it against a namespace.
This is the "how should I write this buffer?" layer applications such
as :mod:`repro.kvstore` and :mod:`repro.fs` build on.
"""

from dataclasses import dataclass

from repro._units import XPLINE, align_up
from repro.core.guidelines import (
    MAX_WRITERS_PER_DIMM, NTSTORE_CROSSOVER_BYTES, Advisor,
)


@dataclass
class WritePlan:
    """A concrete plan for persisting one buffer."""

    addr: int
    size: int
    instr: str                  # "ntstore" or "clwb"
    padded_size: int            # size after XPLine rounding, if chosen
    fence: bool = True

    @property
    def padding_overhead(self):
        return self.padded_size - self.size


class AccessPlanner:
    """Chooses persistence instructions and layouts per the guidelines."""

    def __init__(self, advisor=None, pad_to_xpline=False):
        self.advisor = advisor if advisor is not None else Advisor()
        self.pad_to_xpline = pad_to_xpline

    def plan_write(self, addr, size, fence=True):
        """Plan one durable write of ``size`` bytes at ``addr``."""
        instr = self.advisor.recommend_store_instruction(size)
        padded = align_up(size, XPLINE) if self.pad_to_xpline else size
        return WritePlan(addr=addr, size=size, instr=instr,
                         padded_size=padded, fence=fence)

    def execute(self, ns, thread, plan, data):
        """Run a :class:`WritePlan` against a namespace."""
        if len(data) != plan.size:
            raise ValueError("data length does not match the plan")
        if plan.padded_size != plan.size:
            data = bytes(data) + b"\x00" * (plan.padded_size - plan.size)
        ns.pwrite(thread, plan.addr, data, instr=plan.instr,
                  fence=plan.fence)
        return thread.now

    def writer_thread_budget(self, ns):
        """How many concurrent writers this namespace tolerates."""
        return max(1, len(ns.dimms) * MAX_WRITERS_PER_DIMM)

    def partition_for_threads(self, ns, threads, span, block=4096):
        """Assign each thread a DIMM-aligned private partition.

        For an interleaved namespace the partitions are staggered so
        thread i starts on DIMM ``i % dimms`` (the multi-DIMM NOVA
        trick of Section 5.3.1); for a non-interleaved one they are
        simply contiguous.
        """
        dimms = len(ns.dimms)
        stripe = block * dimms
        region = align_up(span, stripe)
        parts = []
        for i in range(threads):
            base = i * region + (i % dimms) * block
            parts.append((base, region))
        return parts


def batched_log_append(planner, ns, thread, tail, entries):
    """Append variable-size entries to a log, one plan per entry.

    Returns the new tail.  Demonstrates the planner on the paper's
    favourite write shape (sequential log appends).
    """
    for entry in entries:
        plan = planner.plan_write(tail, len(entry), fence=True)
        planner.execute(ns, thread, plan, entry)
        tail += plan.padded_size
    return tail


__all__ = [
    "AccessPlanner", "WritePlan", "batched_log_append",
    "NTSTORE_CROSSOVER_BYTES",
]
