"""The paper's four best practices, as checkable programmatic advice.

Section 5 distils the characterization into four guidelines:

1. Avoid random accesses smaller than 256 B (the XPLine).
2. Use non-temporal stores for large transfers; control cache evictions
   (flush promptly) otherwise.
3. Limit the number of concurrent threads writing to one DIMM.
4. Avoid NUMA accesses, especially mixed or multi-threaded ones.

:class:`Advisor` answers concrete tuning questions ("which persistence
instruction for an N-byte write?", "how many writer threads for this
namespace?") and :func:`audit_access_pattern` grades a planned workload
against all four rules, returning the violated guidelines with
explanations — the programmatic equivalent of the paper's Section 5
case-study analyses.
"""

from dataclasses import dataclass, field

from repro._units import KIB, XPLINE

#: Store size at which ntstore overtakes store+clwb (Figures 13/15
#: place the crossover between 512 B and 1 KB).
NTSTORE_CROSSOVER_BYTES = 512

#: Per-DIMM working-set limit under which small stores still combine
#: (the XPBuffer capacity inferred by Figure 10).
XPBUFFER_BYTES = 16 * KIB

#: Peak-bandwidth writer threads per 3D XPoint DIMM (Figure 4 center:
#: store throughput peaks between one and four threads per DIMM).
MAX_WRITERS_PER_DIMM = 1

#: Peak-bandwidth reader threads per DIMM (Optane-NI reads saturate at
#: about four threads).
MAX_READERS_PER_DIMM = 4


@dataclass
class Violation:
    """One guideline violation found by an audit."""

    guideline: int
    severity: str              # "high" | "medium" | "low"
    message: str

    GUIDELINE_NAMES = {
        1: "avoid small random accesses",
        2: "use the right persistence instruction",
        3: "limit concurrent threads per DIMM",
        4: "avoid remote NUMA accesses",
    }

    @property
    def name(self):
        return self.GUIDELINE_NAMES[self.guideline]

    def __str__(self):
        return "[G%d %s] %s" % (self.guideline, self.severity, self.message)


@dataclass
class AccessPlan:
    """A description of a planned access pattern, for auditing."""

    access_bytes: int
    pattern: str = "seq"              # "seq" | "rand"
    is_write: bool = True
    threads: int = 1
    dimms: int = 6
    remote: bool = False
    mixed_read_write: bool = False
    working_set_bytes: int = 0
    flushes_promptly: bool = True
    notes: list = field(default_factory=list)


class Advisor:
    """Answers tuning questions according to the guidelines."""

    def recommend_store_instruction(self, size_bytes):
        """'ntstore' for large transfers, 'clwb' for small ones (G2)."""
        if size_bytes >= NTSTORE_CROSSOVER_BYTES:
            return "ntstore"
        return "clwb"

    def recommend_access_size(self, size_bytes):
        """Round small random accesses up to the 256 B XPLine (G1)."""
        if size_bytes >= XPLINE:
            return size_bytes
        return XPLINE

    def max_concurrent_writers(self, dimms=6):
        """Writer-thread budget for a namespace spanning ``dimms`` (G3)."""
        return max(1, dimms * MAX_WRITERS_PER_DIMM)

    def max_concurrent_readers(self, dimms=6):
        return max(1, dimms * MAX_READERS_PER_DIMM)

    def working_set_budget_per_dimm(self):
        """Stay under the XPBuffer if small stores are unavoidable (G1)."""
        return XPBUFFER_BYTES

    def should_use_local_socket(self, mixed=False, threads=1):
        """Remote access is tolerable only single-threaded and unmixed (G4)."""
        return not (mixed or threads > 1)


def audit_access_pattern(plan):
    """Grade an :class:`AccessPlan`; returns a list of :class:`Violation`."""
    violations = []
    if plan.is_write and plan.pattern == "rand" \
            and plan.access_bytes < XPLINE:
        over_buffer = (plan.working_set_bytes
                       > XPBUFFER_BYTES * max(1, plan.dimms))
        violations.append(Violation(
            guideline=1,
            severity="high" if over_buffer else "medium",
            message=(
                "%d B random writes are below the 256 B XPLine; each one "
                "becomes an internal read-modify-write (EWR ~%.2f)"
                % (plan.access_bytes, plan.access_bytes / XPLINE)),
        ))
    if plan.is_write and not plan.flushes_promptly:
        violations.append(Violation(
            guideline=2,
            severity="medium",
            message=(
                "stores without prompt flushes let the cache scramble the "
                "eviction stream; flush each line (or use ntstore) to keep "
                "writes sequential at the DIMM"),
        ))
    if plan.is_write and plan.access_bytes >= NTSTORE_CROSSOVER_BYTES \
            and "instr=clwb" in plan.notes:
        violations.append(Violation(
            guideline=2,
            severity="low",
            message=(
                "transfers of %d B are faster with ntstore: the cached "
                "path pays an extra read of each line"
                % plan.access_bytes),
        ))
    if plan.is_write and plan.threads > plan.dimms * MAX_WRITERS_PER_DIMM:
        violations.append(Violation(
            guideline=3,
            severity="high",
            message=(
                "%d writer threads over %d DIMM(s) contend in the XPBuffer "
                "and the iMC write queues; bandwidth peaks at ~%d writer(s) "
                "per DIMM" % (plan.threads, plan.dimms,
                              MAX_WRITERS_PER_DIMM)),
        ))
    if plan.remote and (plan.mixed_read_write or plan.threads > 1):
        violations.append(Violation(
            guideline=4,
            severity="high",
            message=(
                "multi-threaded%s remote 3D XPoint traffic collapses (up to "
                "~30x vs local); keep persistent data NUMA-local"
                % (" mixed" if plan.mixed_read_write else "")),
        ))
    elif plan.remote:
        violations.append(Violation(
            guideline=4,
            severity="low",
            message="remote access adds latency even single-threaded",
        ))
    return violations
