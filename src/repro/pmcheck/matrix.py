"""The pmcheck matrix: every (workload, substrate) cell a harness point.

Each cell serves a quick closed-loop YCSB run with the checker
installed and returns the violation summary.  Cells are
content-addressed under the ``pmcheck.serve`` experiment so re-runs
replay from the cache, and the manifest is *normalized* (no wall-clock,
no job count, no cache-hit flags) so a ``--jobs 4`` run produces
byte-identical artifacts to ``--jobs 1`` — the CI determinism gate
leans on this.

The protected grid covers YCSB A–F x all four substrates and must be
violation-free; the ``naive`` grid strips the substrates' hardening
(see ``make_service``) and must trip the checker deterministically.
NOVA has no naive variant (its log format is CRC-framed by design), so
the naive grid excludes it.
"""

from dataclasses import dataclass, field

from repro.harness.cache import ResultCache
from repro.harness.manifest import RunManifest
from repro.harness.runner import run_cached_points
from repro.pmcheck.state import PmCheck
from repro.workloads.generators import get_workload
from repro.workloads.service import SUBSTRATES

#: Cache-key experiment name for pmcheck cells.
PMCHECK_EXPERIMENT = "pmcheck.serve"

#: The checker verdict must hold across every core mix, not just A.
CHECK_WORKLOADS = ("ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e",
                   "ycsb-f")

QUICK_SHAPE = {"records": 128, "ops": 320, "clients": 2}
FULL_SHAPE = {"records": 512, "ops": 2048, "clients": 4}

#: Per-cell worker budget: a stuck cell fails loudly, then retries once.
CASE_TIMEOUT_S = 180.0
CASE_RETRIES = 1


def build_pmcheck_grid(workload=None, substrate=None, quick=False,
                       seed=0, naive=False):
    """The cell payloads one pmcheck run covers, in deterministic order.

    ``workload``/``substrate`` restrict the matrix to one value (the
    CLI's positional arguments); ``None`` means "all".
    """
    shape = QUICK_SHAPE if quick else FULL_SHAPE
    workloads = [workload] if workload else list(CHECK_WORKLOADS)
    for name in workloads:
        get_workload(name)  # validate early, with the library's error
    if substrate:
        if substrate not in SUBSTRATES:
            raise ValueError("unknown substrate %r (choose from %s)"
                             % (substrate, ", ".join(sorted(SUBSTRATES))))
        if naive and substrate == "nova":
            raise ValueError("nova has no naive variant (its log format "
                             "is CRC-framed by design)")
        substrates = [substrate]
    else:
        substrates = [s for s in sorted(SUBSTRATES)
                      if not (naive and s == "nova")]
    base = dict(shape)
    base["seed"] = seed
    base["naive"] = bool(naive)
    return [dict(base, workload=wname, substrate=sname)
            for wname in workloads for sname in substrates]


def _cell_inner(payload):
    from repro.sim.platform import Machine
    from repro.workloads.loadloop import closed_loop
    from repro.workloads.service import make_service

    spec = get_workload(payload["workload"])
    machine = Machine()
    checker = PmCheck(machine).install()
    service = make_service(payload["substrate"], machine, spec,
                           records=payload["records"], ops=payload["ops"],
                           seed=payload["seed"],
                           naive=bool(payload.get("naive", False)))
    report = closed_loop(machine, service, spec,
                         records=payload["records"], ops=payload["ops"],
                         clients=payload["clients"], seed=payload["seed"])
    summary = checker.summary()
    checker.uninstall()
    return {
        "workload": payload["workload"],
        "substrate": payload["substrate"],
        "naive": bool(payload.get("naive", False)),
        "seed": payload["seed"],
        "records": payload["records"],
        "ops": payload["ops"],
        "clients": payload["clients"],
        "served": {"ops": report["ops"],
                   "achieved_kops": report["achieved_kops"],
                   "p99_us": report["latency_us"]["p99"]},
        "pmcheck": summary,
    }


def pmcheck_cell(payload):
    """One checked serving cell (harness point function, picklable)."""
    trace_path = payload.get("trace_path")
    if trace_path is None:
        return _cell_inner(payload)
    from repro.telemetry import recording, write_chrome_trace
    with recording() as tracer:
        record = _cell_inner(payload)
    write_chrome_trace(tracer, trace_path)
    record["trace"] = trace_path
    return record


@dataclass
class PmCheckRun:
    """One pmcheck matrix run: records, violations, provenance."""

    manifest: RunManifest
    records: list
    violations: list = field(default_factory=list)

    @property
    def failures(self):
        return self.manifest.failures

    @property
    def ok(self):
        """Clean = every cell ran *and* the checker stayed silent."""
        return not self.failures and not self.violations


def run_pmcheck(workload=None, substrate=None, quick=False, seed=0,
                naive=False, jobs=None, cache=None, progress=None,
                trace_dir=None):
    """Run the pmcheck matrix through the harness.

    Returns a :class:`PmCheckRun`; ``violations`` aggregates every
    persistency-order violation any cell's checker reported, each
    annotated with its cell.
    """
    if cache is None:
        cache = ResultCache()
    payloads = build_pmcheck_grid(workload=workload, substrate=substrate,
                                  quick=quick, seed=seed, naive=naive)
    outcomes, keys, traces = run_cached_points(
        pmcheck_cell, payloads, PMCHECK_EXPERIMENT, cache=cache,
        jobs=jobs, progress=progress, timeout_s=CASE_TIMEOUT_S,
        retries=CASE_RETRIES, trace_dir=trace_dir)

    # Normalized manifest: identical bytes for identical payloads+seed,
    # whatever the job count or cache state was.
    manifest = RunManifest(
        name="pmcheck-%s" % ("quick" if quick else "full"),
        grid={"workload": sorted({p["workload"] for p in payloads}),
              "substrate": sorted({p["substrate"] for p in payloads}),
              "seed": [seed],
              "naive": [bool(naive)]},
        jobs=1, started=0.0)
    records = []
    violations = []
    for payload, outcome, key, trace in zip(payloads, outcomes, keys,
                                            traces):
        record = outcome.value
        if outcome.ok and isinstance(record, dict):
            record = dict(record)
            record.pop("trace", None)     # path varies run to run
        manifest.add_point(params=payload, key=key, record=record,
                           cached=False, elapsed_s=0.0,
                           error=outcome.error, trace=trace)
        if not outcome.ok:
            continue
        records.append(outcome.value)
        for violation in outcome.value["pmcheck"]["violations"]:
            violations.append(dict(violation, cell={
                "workload": payload["workload"],
                "substrate": payload["substrate"],
                "naive": payload["naive"],
            }))
    manifest.wall_s = 0.0
    return PmCheckRun(manifest=manifest, records=records,
                      violations=violations)
