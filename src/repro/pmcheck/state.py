"""The persistency-order state machine.

``PmCheck`` observes every PM-bound store, flush, non-temporal store,
cache eviction, fence and power failure of one :class:`Machine` and
tracks each cache line through

    clean -> dirty -> pending (flushed / ntstored, in the WPQ)
                   -> durable (fence-ordered)

plus the side state *evicted* — a dirty line that left the cache on its
own.  An evicted line's bytes do reach media (the WPQ persists on
insert, ADR), but nothing *ordered* that write: software that relies on
it is durable by luck, which is exactly the class of bug the crash
matrix only catches when a sampled crash point happens to land in the
window.  The checker flags it every time.

Violation classes
-----------------

``unflushed-at-ack``
    An operation acked (see :meth:`op_begin`/:meth:`op_ack`) while a
    line it wrote was still dirty in cache (or only evicted) — a
    missing ``clwb``/``ntstore``.
``ack-before-fence``
    The flush was issued but no fence ordered it before the ack — a
    missing ``sfence``.
``fence-without-flush``
    An ``sfence`` that drained nothing while lines this thread stored
    since its last fence sit dirty in cache — the fence the programmer
    wrote orders nothing (clwb forgotten, fence kept).
``redundant-fence``
    An ``sfence`` with nothing pending and nothing dirty — pure cost
    (only exact because an empty ``sfence`` is a latency no-op in the
    engine; see ``ThreadCtx.sfence``).
``redundant-flush``
    Flushing a line that is clean, already pending or already durable —
    the perf bug the paper's eADR discussion warns about.
``unordered-dependent-writes``
    A :meth:`require_order` annotation (e.g. "WAL payload before commit
    record") whose *later* write became durable without — or in the
    same fence as — its *earlier* write.
``dirty-at-power-fail``
    Lines still dirty at :meth:`power_fail` that no in-flight operation
    excuses (skipped entirely when the machine models eADR, where the
    caches themselves are in the persistence domain).

Attribution: every violation carries the substrate call-site tag
(:func:`repro.pmcheck.sites.call_site`) and the virtual timestamp, is
deduplicated by ``(kind, site)`` with an occurrence count, and is
exported as a ``pmcheck`` telemetry instant when a tracer is installed.

Zero overhead when off: nothing here runs unless a checker is
installed — the sim hooks are a single ``machine.pmcheck is None`` test,
and installing the checker flips namespaces off the fused fast path
(``_recompute_plain``) onto the composed reference paths, which PR 4
proved byte-identical, so checker-on runs report the same simulated
results as checker-off runs.
"""

from contextlib import contextmanager

from repro._units import CACHELINE
from repro.pmcheck.sites import call_site
from repro.telemetry.events import CAT_PMCHECK

# Line states.  CLEAN is represented by an absent record.
CLEAN = 0
DIRTY = 1
PENDING = 2
DURABLE = 3
EVICTED = 4

_STATE_NAMES = {CLEAN: "clean", DIRTY: "dirty", PENDING: "pending",
                DURABLE: "durable", EVICTED: "evicted"}

V_UNFLUSHED_AT_ACK = "unflushed-at-ack"
V_ACK_BEFORE_FENCE = "ack-before-fence"
V_FENCE_WITHOUT_FLUSH = "fence-without-flush"
V_REDUNDANT_FENCE = "redundant-fence"
V_REDUNDANT_FLUSH = "redundant-flush"
V_UNORDERED = "unordered-dependent-writes"
V_DIRTY_AT_POWER_FAIL = "dirty-at-power-fail"

KINDS = (V_UNFLUSHED_AT_ACK, V_ACK_BEFORE_FENCE, V_FENCE_WITHOUT_FLUSH,
         V_REDUNDANT_FENCE, V_REDUNDANT_FLUSH, V_UNORDERED,
         V_DIRTY_AT_POWER_FAIL)

# Record layout (a list for in-place mutation):
_ST = 0      # line state
_EPOCH = 1   # bumped on every store/ntstore; stale WPQ entries don't durable it
_SITE = 2    # call site of the latest store (what an ack violation blames)
_TS = 3      # virtual time of the latest store
_SEQ = 4     # global fence sequence number that made the line durable


class PmCheck:
    """Durability-order checker for one machine.  See the module doc."""

    def __init__(self, machine):
        self.machine = machine
        self._lines = {}        # (ns_id, line) -> [state, epoch, site, ts, seq]
        self._pending = {}      # tid -> [((ns_id, line), epoch), ...]
        self._since_fence = {}  # tid -> set of keys cache-stored since a fence
        self._windows = {}      # tid -> [op label, set of keys written]
        self._rules = []        # open require_order annotations
        self._fence_seq = 0
        self._flagged = set()   # keys already blamed at an ack (dedup at crash)
        self._violations = []   # insertion-ordered, deduped by (kind, site)
        self._by_sig = {}

    # ------------------------------------------------------------------
    # install / uninstall

    def install(self):
        """Attach to the machine; namespaces leave the fused fast path."""
        if self.machine.pmcheck is not None:
            raise RuntimeError("a PmCheck is already installed on this machine")
        self.machine.pmcheck = self
        for ns in self.machine.namespaces():
            ns._recompute_plain()
        return self

    def uninstall(self):
        if self.machine.pmcheck is not self:
            raise RuntimeError("this PmCheck is not installed")
        self.machine.pmcheck = None
        for ns in self.machine.namespaces():
            ns._recompute_plain()
        return self

    # ------------------------------------------------------------------
    # sim hooks (called from namespace/engine/platform when installed)

    def on_store(self, thread, ns_id, line):
        """A cached store dirtied ``line``."""
        key = (ns_id, line)
        rec = self._lines.get(key)
        if rec is None:
            self._lines[key] = [DIRTY, 1, call_site(), thread.now, 0]
        else:
            rec[_ST] = DIRTY
            rec[_EPOCH] += 1
            rec[_SITE] = call_site()
            rec[_TS] = thread.now
        tid = thread.tid
        seen = self._since_fence.get(tid)
        if seen is None:
            seen = self._since_fence[tid] = set()
        seen.add(key)
        win = self._windows.get(tid)
        if win is not None:
            win[1].add(key)

    def on_ntstore(self, thread, ns_id, line):
        """A non-temporal store sent ``line`` straight to the WPQ."""
        key = (ns_id, line)
        rec = self._lines.get(key)
        if rec is None:
            rec = self._lines[key] = [PENDING, 1, call_site(), thread.now, 0]
        else:
            rec[_ST] = PENDING
            rec[_EPOCH] += 1
            rec[_SITE] = call_site()
            rec[_TS] = thread.now
        self._pending.setdefault(thread.tid, []).append((key, rec[_EPOCH]))
        win = self._windows.get(thread.tid)
        if win is not None:
            win[1].add(key)

    def on_flush(self, thread, ns_id, line):
        """A ``clwb``/``clflush``/``clflushopt`` targeted ``line``."""
        key = (ns_id, line)
        rec = self._lines.get(key)
        state = CLEAN if rec is None else rec[_ST]
        if state == DIRTY or state == EVICTED:
            # Flushing an evicted line is *not* redundant: the re-flush
            # gives the following fence something to order.
            rec[_ST] = PENDING
            self._pending.setdefault(thread.tid, []).append((key, rec[_EPOCH]))
        else:
            self._violation(
                V_REDUNDANT_FLUSH, key, thread.now, call_site(),
                "flush of a %s line costs issue slots and orders nothing"
                % _STATE_NAMES[state])

    def on_evict(self, ns_id, line):
        """The cache wrote back a dirty victim on its own."""
        rec = self._lines.get((ns_id, line))
        if rec is not None and rec[_ST] == DIRTY:
            rec[_ST] = EVICTED

    def on_sfence(self, thread):
        tid = thread.tid
        entries = self._pending.pop(tid, None)
        stored = self._since_fence.pop(tid, None)
        if entries:
            self._mark_durable(thread, entries)
            return
        # This fence drained nothing.  Either the flush is missing (the
        # stores this thread issued since its last fence are still
        # dirty) or the fence itself is pure cost.
        if stored:
            lines = self._lines
            dirty = [key for key in stored
                     if lines[key][_ST] in (DIRTY, EVICTED)]
            if dirty:
                self._violation(
                    V_FENCE_WITHOUT_FLUSH, min(dirty), thread.now, call_site(),
                    "sfence ordered nothing while %d stored line(s) sit "
                    "dirty in cache (missing clwb?)" % len(dirty))
                return
        self._violation(
            V_REDUNDANT_FENCE, None, thread.now, call_site(),
            "sfence with nothing flushed and nothing dirty — pure cost")

    def on_mfence(self, thread):
        """``mfence`` drains loads too; never flagged as redundant."""
        entries = self._pending.pop(thread.tid, None)
        self._since_fence.pop(thread.tid, None)
        if entries:
            self._mark_durable(thread, entries)

    def on_power_fail(self):
        """Audit-and-reset at a power failure.

        WPQ-pending and evicted lines made it to media (persistence on
        WPQ insert — ADR); dirty lines are lost.  Dirty lines inside an
        open (un-acked) operation window are legitimate in-flight state;
        dirty lines already blamed at an ack are not re-blamed here.
        Under eADR the caches are in the persistence domain and nothing
        is lost.  Either way, the new machine state after the failure is
        all-clean, so the checker resets.
        """
        if not self.machine.config.cache.eadr:
            excused = set(self._flagged)
            for win in self._windows.values():
                excused.update(win[1])
            now = max((t.now for t in self.machine._threads), default=0.0)
            for key in sorted(k for k, rec in self._lines.items()
                              if rec[_ST] == DIRTY and k not in excused):
                rec = self._lines[key]
                self._violation(
                    V_DIRTY_AT_POWER_FAIL, key, now, rec[_SITE],
                    "line stored at t=%.0fns was still dirty in cache at "
                    "power failure" % rec[_TS])
        self._lines.clear()
        self._pending.clear()
        self._since_fence.clear()
        self._windows.clear()
        del self._rules[:]
        self._flagged.clear()

    def _mark_durable(self, thread, entries):
        self._fence_seq += 1
        seq = self._fence_seq
        lines = self._lines
        for key, epoch in entries:
            rec = lines.get(key)
            # A WPQ entry only durables the *write it carried*: if the
            # line was re-dirtied since (epoch moved on), the new bytes
            # are not ordered by this fence.
            if rec is not None and rec[_EPOCH] == epoch and rec[_ST] == PENDING:
                rec[_ST] = DURABLE
                rec[_SEQ] = seq
        if self._rules:
            self._eval_rules(thread)

    # ------------------------------------------------------------------
    # ack boundaries

    def op_begin(self, thread, op):
        """Open an operation window: subsequent PM writes by this thread
        belong to ``op`` until :meth:`op_ack`.  Re-beginning (e.g. after
        a faulted request is retried) resets any stale window."""
        self._windows[thread.tid] = [op, set()]

    def op_ack(self, thread):
        """The operation acked: every line it wrote must be durable."""
        win = self._windows.pop(thread.tid, None)
        if win is None:
            return
        op, keys = win
        lines = self._lines
        for key in sorted(keys):
            rec = lines.get(key)
            state = CLEAN if rec is None else rec[_ST]
            if state == DIRTY:
                self._flagged.add(key)
                self._violation(
                    V_UNFLUSHED_AT_ACK, key, thread.now, rec[_SITE],
                    "%s acked with the line still dirty in cache "
                    "(missing clwb/ntstore)" % op)
            elif state == EVICTED:
                self._flagged.add(key)
                self._violation(
                    V_UNFLUSHED_AT_ACK, key, thread.now, rec[_SITE],
                    "%s acked; the line reached media only via a chance "
                    "cache eviction, never fence-ordered" % op)
            elif state == PENDING:
                self._violation(
                    V_ACK_BEFORE_FENCE, key, thread.now, rec[_SITE],
                    "%s acked with the flush issued but not fenced "
                    "(missing sfence)" % op)

    # ------------------------------------------------------------------
    # ordering annotations

    def require_order(self, earlier, later, site=None, note=""):
        """Declare "``earlier`` must be durable strictly before ``later``".

        Both arguments are iterables of ``(ns, addr, size)`` byte ranges
        (``ns`` a namespace object).  Lines the two sets share — e.g. a
        slot header in the same cache line as the start of its body —
        are checked only on the *later* side.

        Declare the rule after the earlier write is (supposed to be)
        durable and before the later write is issued: the rule arms on
        the epochs it sees at declaration, fires at the first fence
        after which every later line is durable *with a newer epoch*,
        and then checks that every earlier line is durable under a
        strictly smaller fence sequence number.  Same-fence durability
        is a violation — one fence cannot order two writes against each
        other.
        """
        later_keys = self._range_keys(later)
        earlier_keys = self._range_keys(earlier) - later_keys
        if not earlier_keys or not later_keys:
            return
        lines = self._lines
        armed = {}
        for key in sorted(later_keys):
            rec = lines.get(key)
            armed[key] = 0 if rec is None else rec[_EPOCH]
        self._rules.append({
            "earlier": sorted(earlier_keys),
            "later": armed,
            "site": call_site() if site is None else site,
            "note": note,
        })

    def _eval_rules(self, thread):
        lines = self._lines
        remaining = []
        for rule in self._rules:
            later_min = None
            done = True
            for key, armed_epoch in rule["later"].items():
                rec = lines.get(key)
                if rec is None or rec[_ST] != DURABLE or rec[_EPOCH] <= armed_epoch:
                    done = False
                    break
                if later_min is None or rec[_SEQ] < later_min:
                    later_min = rec[_SEQ]
            if not done:
                remaining.append(rule)
                continue
            bad = why = None
            for key in rule["earlier"]:
                rec = lines.get(key)
                state = CLEAN if rec is None else rec[_ST]
                if state == EVICTED:
                    bad, why = key, ("reached media only via a cache "
                                     "eviction, never fence-ordered")
                    break
                if state != DURABLE:
                    bad, why = key, "is %s, not durable" % _STATE_NAMES[state]
                    break
                if rec[_SEQ] >= later_min:
                    bad, why = key, ("became durable in the same fence as "
                                     "(or after) the dependent write")
                    break
            if bad is not None:
                prefix = rule["note"] + ": " if rule["note"] else ""
                self._violation(
                    V_UNORDERED, bad, thread.now, rule["site"],
                    prefix + "earlier line " + why)
        self._rules = remaining

    def _range_keys(self, ranges):
        keys = set()
        for ns, addr, size in ranges:
            if size <= 0:
                continue
            ns_id = ns.ns_id
            line = addr - addr % CACHELINE
            last = addr + size - 1
            last -= last % CACHELINE
            while line <= last:
                keys.add((ns_id, line))
                line += CACHELINE
        return keys

    # ------------------------------------------------------------------
    # reporting

    def _violation(self, kind, key, ts, site, note):
        sig = (kind, site)
        seen = self._by_sig.get(sig)
        if seen is not None:
            seen["count"] += 1
            return
        if key is None:
            ns_name = None
            line = None
        else:
            ns_name = self.machine._ns_by_id[key[0]].name
            line = key[1]
        entry = {"kind": kind, "site": site, "ns": ns_name, "line": line,
                 "ts": round(ts, 3), "note": note, "count": 1}
        self._by_sig[sig] = entry
        self._violations.append(entry)
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.instant(ts, CAT_PMCHECK, "pmcheck." + kind,
                           track="pmcheck",
                           args={"site": site, "ns": ns_name, "line": line})

    @property
    def violations(self):
        return list(self._violations)

    def summary(self):
        """JSON-able report: total, per-kind counts, deduped violations."""
        kinds = {}
        for entry in self._violations:
            kinds[entry["kind"]] = kinds.get(entry["kind"], 0) + entry["count"]
        return {
            "total": sum(kinds.values()),
            "kinds": dict(sorted(kinds.items())),
            "violations": [dict(entry) for entry in self._violations],
        }


@contextmanager
def checking(machine):
    """``with checking(machine) as checker: ...`` — install/uninstall."""
    checker = PmCheck(machine).install()
    try:
        yield checker
    finally:
        checker.uninstall()
