"""Call-site attribution for checker findings.

A violation is only actionable if it names the substrate line that
issued the store/flush/fence, not the simulator frame that modeled it.
``call_site`` walks the Python stack (only ever on checker paths, so
the cost is zero when checking is off) to the first frame *outside* the
simulator, the checker itself and the thin pool-IO wrapper, and renders
it as ``"<module path>:<function>:<line>"`` — stable across runs, hosts
and job counts, so violation reports stay byte-identical.
"""

import os
import sys

_SEP = os.sep
#: Stack frames from these locations model the hardware (or are the
#: checker observing it); the *caller* above them is the site to blame.
#: ``pmdk/pool.py`` is a raw-IO convenience wrapper shared by several
#: substrates — blaming it would attribute every pool write to one line.
_SKIP_PARTS = (
    "repro" + _SEP + "sim" + _SEP,
    "repro" + _SEP + "pmcheck" + _SEP,
    "repro" + _SEP + "pmdk" + _SEP + "pool.py",
)
_SHORTEN_MARK = "repro" + _SEP


def _shorten(filename):
    at = filename.rfind(_SHORTEN_MARK)
    if at >= 0:
        return filename[at + len(_SHORTEN_MARK):].replace(_SEP, "/")
    return os.path.basename(filename)


#: code object -> False (simulator frame, skip) or "file:func" prefix.
#: ``call_site`` runs on *every* checked store; the substring scan and
#: the path shortening depend only on the code object, so they are paid
#: once per function instead of once per store.  Only the line number
#: varies call to call.
_code_memo = {}


def call_site(skip=2):
    """The first stack frame outside the simulator/checker, as a tag.

    ``skip`` frames at the top (``call_site`` itself plus its caller
    inside the checker) are always ignored.
    """
    memo = _code_memo
    frame = sys._getframe(skip)
    while frame is not None:
        code = frame.f_code
        prefix = memo.get(code)
        if prefix is None:
            filename = code.co_filename
            for part in _SKIP_PARTS:
                if part in filename:
                    prefix = False
                    break
            else:
                prefix = "%s:%s" % (_shorten(filename), code.co_name)
            memo[code] = prefix
        if prefix is not False:
            return "%s:%d" % (prefix, frame.f_lineno)
        frame = frame.f_back
    return "<toplevel>"
