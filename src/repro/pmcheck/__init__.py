"""repro.pmcheck — dynamic persistency-order checking.

A pmemcheck-style durability-order checker for the simulated PM stack:
it hooks the persist path (stores, ``clwb``/``clflushopt``, ``ntstore``,
evictions, ``sfence``/``mfence``, ``power_fail``) of one machine and
tracks every PM line through *dirty -> flushed -> fenced/durable*,
flagging missing, misordered and redundant persists with substrate
call-site attribution.  The crash matrix (:mod:`repro.chaos_serve`)
only catches ordering bugs that happen to corrupt bytes at a sampled
crash point; the checker catches them on every execution.

Zero overhead when off: the sim hooks are one ``is None`` test, and the
fused fast paths are only vacated while a checker is installed.

Entry points: :class:`PmCheck` / :func:`checking` to check any run;
:func:`run_pmcheck` for the cached (workload, substrate) matrix behind
``python -m repro pmcheck``; ``--pmcheck`` on ``python -m repro serve``
checks the saturation search and chaos matrix.
"""

from repro.pmcheck.matrix import (
    CHECK_WORKLOADS,
    PMCHECK_EXPERIMENT,
    PmCheckRun,
    build_pmcheck_grid,
    pmcheck_cell,
    run_pmcheck,
)
from repro.pmcheck.report import format_summary, format_violation
from repro.pmcheck.state import KINDS, PmCheck, checking

__all__ = [
    "CHECK_WORKLOADS",
    "KINDS",
    "PMCHECK_EXPERIMENT",
    "PmCheck",
    "PmCheckRun",
    "build_pmcheck_grid",
    "checking",
    "format_summary",
    "format_violation",
    "pmcheck_cell",
    "run_pmcheck",
]
