"""Rendering pmcheck results for humans (the CLI and test output)."""


def format_violation(violation, cell=None):
    """One violation as a compact multi-line block.

    ``violation`` is an entry from :meth:`PmCheck.summary`; ``cell``
    optionally names the matrix cell (workload/substrate/naive) the
    violation came from.
    """
    where = ""
    if cell is not None:
        where = "%s/%s%s: " % (cell.get("workload"), cell.get("substrate"),
                               "(naive)" if cell.get("naive") else "")
    head = "%s%s at %s" % (where, violation["kind"], violation["site"])
    lines = [head]
    if violation.get("ns") is not None:
        lines.append("    line 0x%x in %s, t=%.0fns"
                     % (violation["line"], violation["ns"], violation["ts"]))
    else:
        lines.append("    t=%.0fns" % violation["ts"])
    lines.append("    %s" % violation["note"])
    if violation.get("count", 1) > 1:
        lines.append("    (%d occurrences, first shown)" % violation["count"])
    return "\n".join(lines)


def format_summary(summary):
    """One-line per-kind tally, e.g. ``3 violations (ack-before-fence x3)``."""
    total = summary.get("total", 0)
    if not total:
        return "clean"
    parts = ["%s x%d" % (kind, count)
             for kind, count in sorted(summary.get("kinds", {}).items())]
    return "%d violation%s (%s)" % (total, "s" if total != 1 else "",
                                    ", ".join(parts))
