"""Undo-log transactions (PMDK's pmemobj_tx model).

``Transaction`` protects in-place updates: ``add(offset, size)``
snapshots the range into the lane's undo log *before* modification;
``commit`` flushes every modified range and invalidates the log;
recovery applies intact undo entries backwards, restoring pre-tx state
for any transaction that never committed.

Undo-log entry: u64 offset | u32 size | u32 crc | data (64 B aligned);
the CRC covers the header fields *and* the data, so a torn header
(garbage offset/size) is rejected, not just torn data.  The lane
header holds a u64 entry count whose persist *completes* the entry
append (count-then-data torn states are rejected by CRC).
"""

import struct
import zlib

from repro._units import CACHELINE, align_up
from repro.faults.model import MediaError
from repro.faults.report import RecoveryReport
from repro.pmdk.pool import LANE_SIZE

_LANE_HEADER = struct.Struct("<Q")
_ENTRY_HEADER = struct.Struct("<QII")
_CRC_BODY = struct.Struct("<QI")          # the header fields under CRC


def _entry_crc(offset, size, data):
    return zlib.crc32(_CRC_BODY.pack(offset, size) + data) & 0xFFFFFFFF


class TransactionError(Exception):
    """Raised for misuse (nesting, double commit, oversized logs)."""


class Transaction:
    """One undo-log transaction on a pool lane."""

    def __init__(self, pool, thread, lane=0):
        self.pool = pool
        self.thread = thread
        self.lane = lane
        self._lane_base = pool.lane_base(lane)
        self._log_tail = self._lane_base + CACHELINE
        self._entries = 0
        self._modified = []          # [(offset, size)]
        self._staged = {}
        self._active = False

    # -- context manager ------------------------------------------------------

    def __enter__(self):
        self.begin()
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False

    # -- lifecycle ----------------------------------------------------------------

    def begin(self):
        if self._active:
            raise TransactionError("transaction already active")
        self._active = True
        self._entries = 0
        self._log_tail = self._lane_base + CACHELINE
        self._modified = []

    def add(self, offset, size):
        """Snapshot ``[offset, offset+size)`` before modifying it."""
        if not self._active:
            raise TransactionError("no active transaction")
        old = self.pool.read(self.thread, offset, size)
        header = _ENTRY_HEADER.pack(
            offset, size, _entry_crc(offset, size, old))
        blob = header + old
        span = align_up(len(blob), CACHELINE)
        if self._log_tail + span > self._lane_base + LANE_SIZE:
            raise TransactionError("undo log full")
        self.pool.ns.ntstore(self.thread, self._log_tail, span,
                             data=blob + b"\x00" * (span - len(blob)))
        # Two back-to-back fences, both load-bearing: the first orders
        # the entry body before the count that makes it reachable (a
        # single fence after both would admit a count-without-data torn
        # state the CRC could *usually* but not *always* reject — the
        # old data bytes might be valid-looking); the second orders the
        # count before the caller's in-place modification of the
        # snapshotted range, which must not outrun its own undo entry.
        pmcheck = self.thread.machine.pmcheck
        if pmcheck is not None:
            pmcheck.require_order(
                [(self.pool.ns, self._log_tail, span)],
                [(self.pool.ns, self._lane_base, _LANE_HEADER.size)],
                note="pmdk undo log: the entry body must be durable "
                     "before the lane count that makes it reachable")
        self.thread.sfence()
        # Persist the new entry count: the entry is now reachable.
        self._entries += 1
        self.pool.ns.ntstore(
            self.thread, self._lane_base, 8,
            data=_LANE_HEADER.pack(self._entries))
        self.thread.sfence()
        self._log_tail += span
        self._modified.append((offset, size))

    def store(self, offset, data, snapshot=True):
        """Convenience: add + in-place cached store."""
        if snapshot:
            self.add(offset, len(data))
        self.pool.ns.store(self.thread, self.pool.addr(offset),
                           len(data), data=data)
        if not snapshot:
            self._modified.append((offset, len(data)))

    def commit(self):
        """Flush modified ranges, then invalidate the undo log.

        The fence between the flushes and the log invalidation (inside
        :meth:`_invalidate_log`'s predecessor, the sfence below) is
        load-bearing: the new data must be durable before the undo log
        stops protecting it, or a crash in between replays stale bytes
        over a half-flushed range.  An empty transaction skips both
        steps — there is nothing to flush and the log was never armed,
        so the fences would be pure cost (pmcheck: redundant-fence).
        """
        if not self._active:
            raise TransactionError("no active transaction")
        if self._modified:
            for offset, size in self._modified:
                self.pool.ns.clwb(self.thread, self.pool.addr(offset),
                                  size)
            self.thread.sfence()
        if self._entries:
            self._invalidate_log()
        self._active = False

    def abort(self):
        """Roll back in-place modifications from the undo log."""
        if not self._active:
            raise TransactionError("no active transaction")
        for offset, size, data in reversed(self._read_log_volatile()):
            self.pool.ns.pwrite(self.thread, self.pool.addr(offset),
                                data, instr="clwb")
        if self._entries:
            self._invalidate_log()
        self._active = False

    def _invalidate_log(self):
        self.pool.ns.ntstore(self.thread, self._lane_base, 8,
                             data=_LANE_HEADER.pack(0))
        # Load-bearing fence: the zeroed count must be durable before
        # the *next* transaction appends entries, or a crash could pair
        # the old count with new (CRC-valid!) entries and roll back a
        # committed transaction.
        self.thread.sfence()
        self._entries = 0

    def _read_log_volatile(self):
        return _scan_lane(
            lambda a, n: self.pool.ns.read_volatile(a, n),
            self._lane_base)


def _scan_lane(read, lane_base, report=None):
    """Decode undo entries from a lane via the given reader.

    The lane count may claim more entries than actually decode (a torn
    append); the scan stops at the first entry whose CRC fails, and
    counts the shortfall as *truncated* in ``report`` when given.
    """
    count = _LANE_HEADER.unpack(read(lane_base, 8))[0]
    out = []
    tail = lane_base + CACHELINE
    lane_end = lane_base + LANE_SIZE
    for _ in range(count):
        if tail + _ENTRY_HEADER.size > lane_end:
            break
        header = read(tail, _ENTRY_HEADER.size)
        offset, size, crc = _ENTRY_HEADER.unpack(header)
        # A torn header can carry a garbage size: bound it before
        # reading the data (the CRC would reject it anyway).
        if size > lane_end - tail - _ENTRY_HEADER.size:
            break
        data = read(tail + _ENTRY_HEADER.size, size)
        if _entry_crc(offset, size, data) != crc:
            break                     # torn entry: stop (newest first)
        out.append((offset, size, data))
        tail += align_up(_ENTRY_HEADER.size + size, CACHELINE)
    if report is not None:
        report.recovered += len(out)
        if len(out) < count:
            report.truncated += count - len(out)
            report.note("lane @%#x: %d of %d undo entries torn"
                        % (lane_base, count - len(out), count))
    return out


def recover(pool, thread):
    """Post-crash recovery: roll back every lane's intact undo log.

    Returns the number of ranges restored.
    """
    restored, _ = recover_report(pool, thread)
    return restored


def recover_report(pool, thread):
    """Recovery with accounting: ``(restored, RecoveryReport)``.

    A poisoned lane (its header or entries behind a bad XPLine) is
    skipped — that transaction's rollback is *lost*, so its in-place
    updates may survive partially; everything else still recovers.
    """
    report = RecoveryReport(component="pmdk-tx")
    restored = 0
    for lane in range(pool.lanes):
        lane_base = pool.lane_base(lane)
        try:
            entries = _scan_lane(
                lambda a, n: pool.ns.read_persistent(a, n), lane_base,
                report=report)
        except MediaError:
            report.lost += 1
            report.note("lane %d unreadable: rollback lost" % lane)
            continue
        for offset, size, data in reversed(entries):
            pool.ns.pwrite(thread, pool.addr(offset), data, instr="clwb")
            restored += 1
        # Same fence discipline as _invalidate_log: the rollback's
        # restores are fenced by pwrite above; the count reset must be
        # durable before post-recovery transactions reuse the lane.
        pool.ns.ntstore(thread, lane_base, 8, data=_LANE_HEADER.pack(0))
        thread.sfence()
    return restored, report
