"""A PMDK-like transactional persistent-object library.

Public surface::

    from repro.pmdk import PmemPool, Transaction
    from repro.sim import Machine

    m = Machine()
    t = m.thread()
    pool = PmemPool.create(m, t)
    obj = pool.heap.alloc(256) - pool.base
    with Transaction(pool, t) as tx:
        tx.store(obj, b"hello")
"""

from repro.pmdk.alloc import Heap, class_bytes, size_class
from repro.pmdk.microbuffer import MicroBufferTx, recover_microbuffer
from repro.pmdk.pool import LANE_SIZE, PmemPool
from repro.pmdk.study import (
    TxLatency, crossover_size, figure15, noop_tx_latency,
)
from repro.pmdk.tx import Transaction, TransactionError, recover

__all__ = [
    "Heap", "LANE_SIZE", "MicroBufferTx", "PmemPool", "Transaction",
    "TransactionError", "TxLatency", "class_bytes", "crossover_size",
    "figure15", "noop_tx_latency", "recover", "recover_microbuffer",
    "size_class",
]
