"""Micro-buffering instruction tuning (Figure 15).

Latency of a no-op transaction (stage the object, commit it unchanged)
for object sizes 64 B - 8 KB, with non-temporal (PGL-NT) versus cached
store+clwb (PGL-CLWB) write-back.  The paper's crossover sits at
~1 KB: below it, the flush path's cheaper WPQ insertion wins; above
it, the non-temporal path's lower per-line cost and avoided cache
traffic win.
"""

import statistics
from dataclasses import dataclass

from repro._units import KIB, MIB
from repro.pmdk.microbuffer import MicroBufferTx
from repro.pmdk.pool import PmemPool
from repro.sim import Machine


@dataclass
class TxLatency:
    """Mean no-op transaction latency for one configuration."""

    variant: str
    object_size: int
    mean_ns: float


def noop_tx_latency(writeback, object_size, reps=100, machine=None,
                    kind="optane"):
    """One point of Figure 15."""
    m = machine if machine is not None else Machine()
    setup = m.thread()
    pool = PmemPool.create(m, setup, kind=kind, size=64 * MIB)
    t = m.thread()
    offsets = [pool.heap.alloc(object_size) - pool.base
               for _ in range(reps)]
    # Materialise the objects once so staging reads hit real data.
    for off in offsets:
        pool.write(setup, off, b"\x5A" * object_size, instr="ntstore")
    lats = []
    for off in offsets:
        start = t.now
        tx = MicroBufferTx(pool, t, writeback=writeback)
        tx.open(off, object_size)
        tx.commit()
        lats.append(t.now - start)
    return TxLatency(variant="PGL-NT" if writeback == "ntstore"
                     else "PGL-CLWB",
                     object_size=object_size,
                     mean_ns=statistics.fmean(lats))


def figure15(sizes=(64, 128, 256, 512, 1 * KIB, 2 * KIB, 4 * KIB,
                    8 * KIB), reps=60):
    """Both curves; returns ``{variant: [(size, mean_ns)]}``."""
    curves = {"PGL-NT": [], "PGL-CLWB": []}
    for size in sizes:
        for wb in ("ntstore", "clwb"):
            r = noop_tx_latency(wb, size, reps=reps)
            curves[r.variant].append((size, r.mean_ns))
    return curves


def crossover_size(curves):
    """The smallest size at which PGL-NT beats PGL-CLWB."""
    nt = dict(curves["PGL-NT"])
    clwb = dict(curves["PGL-CLWB"])
    for size in sorted(nt):
        if nt[size] < clwb[size]:
            return size
    return None
