"""Heap allocation for persistent pools.

A segregated-fit allocator over size classes (powers of two from 64 B),
with a bump region for large allocations.  Allocation state is
volatile here; crash-safe allocation is achieved the way PMDK does it —
allocations performed inside a transaction are logged so an aborted
(crashed) transaction's objects are reclaimed on recovery, and the
reachable-object graph (from the root) is what defines liveness.
"""

from repro._units import CACHELINE, align_up

MIN_CLASS = 64
NUM_CLASSES = 12                 # 64 B .. 128 KB


def size_class(nbytes):
    """Index of the smallest class that fits ``nbytes`` (or None)."""
    size = MIN_CLASS
    for idx in range(NUM_CLASSES):
        if nbytes <= size:
            return idx
        size <<= 1
    return None


def class_bytes(idx):
    return MIN_CLASS << idx


class Heap:
    """Segregated free lists + bump pointer over [base, base+span)."""

    def __init__(self, base, span):
        if span <= 0:
            raise ValueError("empty heap")
        self.base = base
        self.span = span
        self._bump = base
        self._free = [[] for _ in range(NUM_CLASSES)]
        self.live_bytes = 0

    def alloc(self, nbytes, align=CACHELINE):
        """Allocate ``nbytes`` at ``align``-byte alignment.

        Alignment matters on this hardware: an object aligned to the
        256 B XPLine dirties the fewest media lines (guideline #1).
        """
        idx = size_class(nbytes)
        if align <= CACHELINE and idx is not None and self._free[idx]:
            addr = self._free[idx].pop()
            self.live_bytes += class_bytes(idx)
            return addr
        need = class_bytes(idx) if idx is not None \
            else align_up(nbytes, CACHELINE)
        addr = align_up(self._bump, align)
        if addr + need > self.base + self.span:
            raise MemoryError("pool heap exhausted")
        self._bump = addr + need
        self.live_bytes += need
        return addr

    def reserve_to(self, addr):
        """Advance the bump pointer past ``addr`` (post-recovery).

        Allocation state is volatile, so a reopened pool starts with an
        empty heap even though live objects occupy it.  Recovery scans
        call this with the end of the highest live structure they find;
        anything allocated afterwards lands above it instead of
        overwriting reachable data.  Freed holes below are leaked —
        the same trade real allocators make when their run metadata is
        rebuilt conservatively.
        """
        addr = align_up(addr, CACHELINE)
        if addr > self.base + self.span:
            raise MemoryError("reserve_to beyond pool heap")
        self._bump = max(self._bump, addr)

    def free(self, addr, nbytes):
        idx = size_class(nbytes)
        if idx is None:
            # Large objects are not recycled (bump region); PMDK's
            # huge-chunk coalescing is out of scope.
            return
        self._free[idx].append(addr)
        self.live_bytes -= class_bytes(idx)

    @property
    def used_bytes(self):
        return self._bump - self.base
