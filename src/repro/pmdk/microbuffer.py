"""Micro-buffering (the Pangolin optimisation, Section 5.2.1).

Instead of issuing loads and undo-logged stores directly against
persistent memory, a micro-buffered transaction copies the object into
a DRAM staging buffer at ``open``, lets the program modify the staged
copy for free, and writes the whole object back at ``commit`` — with
non-temporal stores (``PGL-NT``, the original design) or with cached
stores plus clwb (``PGL-CLWB``, the paper's suggested tuning for small
objects).  Figure 15 measures the crossover (~1 KB).

Fault tolerance follows Pangolin: every object row belongs to a parity
group; commit updates the row's parity line with an XOR delta (one
64 B line per commit in this model).  ``redo=True`` selects a heavier
redo-image scheme instead (append the staged image to the lane log
before write-back), which :func:`recover_microbuffer` can replay after
a crash — useful when you need byte-exact recovery in tests.
"""

import struct
import zlib

from repro._units import CACHELINE, align_up
from repro.pmdk.pool import LANE_SIZE

_REDO_HEADER = struct.Struct("<QII")
_LANE_HEADER = struct.Struct("<Q")


class MicroBufferTx:
    """One micro-buffered transaction over a single object."""

    def __init__(self, pool, thread, lane=0, writeback="ntstore",
                 redo=False):
        if writeback not in ("ntstore", "clwb"):
            raise ValueError("writeback must be 'ntstore' or 'clwb'")
        self.pool = pool
        self.thread = thread
        self.lane = lane
        self.writeback = writeback
        self.redo = redo
        self._lane_base = pool.lane_base(lane)
        self._offset = None
        self._staged = None

    def open(self, offset, size):
        """Stage the object: one bulk read into DRAM."""
        if self._staged is not None:
            raise RuntimeError("an object is already staged")
        self._offset = offset
        self._staged = bytearray(self.pool.read(self.thread, offset, size))
        # The DRAM copy only exists once every fill has completed.
        self.thread.drain()
        return self._staged

    def commit(self):
        """Protect (parity or redo), write back, done."""
        if self._staged is None:
            raise RuntimeError("nothing staged")
        data = bytes(self._staged)
        if self.redo:
            self._append_redo(data)
        else:
            self._update_parity()
        self.pool.write(self.thread, self._offset, data,
                        instr=self.writeback)
        if self.redo:
            self._invalidate()
        self._offset = None
        self._staged = None

    def discard(self):
        self._offset = None
        self._staged = None

    # -- parity (default Pangolin-style protection) ---------------------------

    def _update_parity(self):
        """XOR-delta one parity line in the lane area and fence."""
        parity_addr = self._lane_base + LANE_SIZE - CACHELINE
        self.pool.ns.pwrite(self.thread, parity_addr, b"\x00" * CACHELINE,
                            instr="ntstore")

    # -- redo image (optional byte-exact recovery) -------------------------------

    def _append_redo(self, data):
        header = _REDO_HEADER.pack(self._offset, len(data),
                                   zlib.crc32(data) & 0xFFFFFFFF)
        blob = header + data
        span = align_up(len(blob), CACHELINE)
        if CACHELINE + span > LANE_SIZE:
            raise RuntimeError("object too large for the lane log")
        self.pool.ns.ntstore(
            self.thread, self._lane_base + CACHELINE, span,
            data=blob + b"\x00" * (span - len(blob)))
        self.pool.ns.ntstore(self.thread, self._lane_base, 8,
                             data=_LANE_HEADER.pack(1))
        self.thread.sfence()

    def _invalidate(self):
        self.pool.ns.ntstore(self.thread, self._lane_base, 8,
                             data=_LANE_HEADER.pack(0))
        self.thread.sfence()


def recover_microbuffer(pool, thread):
    """Replay any committed-but-unapplied redo image after a crash."""
    replayed = 0
    for lane in range(pool.lanes):
        lane_base = pool.lane_base(lane)
        count = _LANE_HEADER.unpack(
            pool.ns.read_persistent(lane_base, 8))[0]
        if not count:
            continue
        raw = pool.ns.read_persistent(lane_base + CACHELINE,
                                      _REDO_HEADER.size)
        offset, size, crc = _REDO_HEADER.unpack(raw)
        data = pool.ns.read_persistent(
            lane_base + CACHELINE + _REDO_HEADER.size, size)
        if zlib.crc32(data) & 0xFFFFFFFF == crc:
            pool.ns.pwrite(thread, pool.addr(offset), data,
                           instr="ntstore")
            replayed += 1
        pool.ns.ntstore(thread, lane_base, 8, data=_LANE_HEADER.pack(0))
        thread.sfence()
    return replayed
