"""Persistent object pools (the PMDK libpmemobj stand-in).

A pool is a namespace region with a header, a fixed undo-log area per
transaction lane, and a heap managed by :class:`~repro.pmdk.alloc.Heap`.
Objects are referenced by pool offset (a ``PMEMoid`` without the pool
uuid, since we keep one pool per namespace region).
"""

import struct

from repro._units import KIB, MIB
from repro.pmdk.alloc import Heap

_HEADER = struct.Struct("<8sQQQ")
_MAGIC = b"PMDKPOOL"

HEADER_SIZE = 4 * KIB
LANE_SIZE = 64 * KIB
DEFAULT_LANES = 4


class PmemPool:
    """One persistent object pool on a namespace."""

    def __init__(self, machine, kind="optane", base=0, size=64 * MIB,
                 lanes=DEFAULT_LANES, _open=False):
        self.machine = machine
        self.ns = machine.namespace(kind)
        self.base = base
        self.size = size
        self.lanes = lanes
        heap_base = base + HEADER_SIZE + lanes * LANE_SIZE
        self.heap = Heap(heap_base, base + size - heap_base)
        self._root_offset = 0
        if _open:
            self._read_header()

    # -- header ---------------------------------------------------------------

    def _write_header(self, thread):
        blob = _HEADER.pack(_MAGIC, self.size, self.lanes,
                            self._root_offset)
        self.ns.pwrite(thread, self.base, blob, instr="ntstore")

    def _read_header(self):
        raw = self.ns.read_persistent(self.base, _HEADER.size)
        magic, size, lanes, root = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise ValueError("no pool at %#x" % self.base)
        self.size = size
        self.lanes = lanes
        self._root_offset = root

    @classmethod
    def create(cls, machine, thread, kind="optane", base=0,
               size=64 * MIB, lanes=DEFAULT_LANES):
        pool = cls(machine, kind=kind, base=base, size=size, lanes=lanes)
        pool._write_header(thread)
        return pool

    @classmethod
    def open(cls, machine, kind="optane", base=0):
        return cls(machine, kind=kind, base=base, _open=True)

    # -- root object -----------------------------------------------------------

    def set_root(self, thread, offset):
        self._root_offset = offset
        self._write_header(thread)

    def root(self):
        return self._root_offset

    # -- lanes -------------------------------------------------------------------

    def lane_base(self, lane):
        if not 0 <= lane < self.lanes:
            raise ValueError("bad lane index")
        return self.base + HEADER_SIZE + lane * LANE_SIZE

    # -- raw object IO --------------------------------------------------------------

    def addr(self, offset):
        """Absolute namespace address of a pool offset."""
        return self.base + offset

    def read(self, thread, offset, size):
        return self.ns.pread(thread, self.addr(offset), size)

    def read_volatile(self, offset, size):
        return self.ns.read_volatile(self.addr(offset), size)

    def read_persistent(self, offset, size):
        return self.ns.read_persistent(self.addr(offset), size)

    def write(self, thread, offset, data, instr="clwb", fence=True):
        self.ns.pwrite(thread, self.addr(offset), data, instr=instr,
                       fence=fence)
