"""Write-ahead logging: the POSIX path and the FLEX path.

The two strategies of the paper's RocksDB case study (Section 4.2):

* **WalPosix** — the log is a file on a DAX file system, appended with
  ``write()`` + ``fsync()``.  The write copies the record through the
  cache hierarchy at the file's (unaligned) tail — so consecutive
  appends rewrite the shared tail line — and every fsync pays syscall
  overhead, flushes the dirty lines, and commits a metadata journal
  record.
* **WalFlex** — FLEX-style userspace logging: records are appended
  directly with cache-bypassing stores at 64 B alignment, one fence per
  sync, no block rewrite and no syscall.

Both recover by CRC-scanning the log (see :mod:`repro.kvstore.records`).
"""

from repro._units import CACHELINE, align_up
from repro.faults.model import overlaps_lost, tolerant_read
from repro.faults.report import RecoveryReport
from repro.kvstore import records

#: Syscall + VFS overhead per write() and per fsync() on the POSIX
#: path, and the DAX file-system's per-sync metadata journaling write.
POSIX_WRITE_SYSCALL_NS = 600.0
POSIX_FSYNC_SYSCALL_NS = 400.0
POSIX_JOURNAL_BYTES = 128
#: Record encode + bookkeeping cost of the userspace FLEX library.
FLEX_LIBRARY_NS = 190.0


class WalBase:
    """Common state: a log region [base, base+capacity) on a namespace."""

    #: Record alignment the replay scanner can resync at after an
    #: unreadable (poisoned) hole; None means records are unaligned and
    #: everything after the first hole is unrecoverable.
    RESYNC_ALIGN = None

    def __init__(self, ns, base, capacity, naive=False):
        self.ns = ns
        self.base = base
        self.capacity = capacity
        self.tail = 0            # bytes appended so far
        #: CRC-less replay (demonstration mode): trusts torn records.
        self.naive = naive

    @property
    def tail_addr(self):
        return self.base + self.tail

    def _check_space(self, nbytes):
        if self.tail + nbytes > self.capacity:
            raise RuntimeError("WAL full: %d + %d > %d"
                               % (self.tail, nbytes, self.capacity))

    def _advance(self, record_len):
        """Log-space consumed by one record (subclasses may pad)."""
        return record_len

    def replay(self):
        """Recover all intact records from the *persistent* view."""
        out, _ = self.replay_report()
        return out

    def replay_report(self):
        """Replay with full accounting: ``(records, RecoveryReport)``.

        Intact records are recovered; a torn tail (garbage that fails
        its CRC with no media fault underneath) truncates the log
        there; poisoned XPLines become *lost* records — the scanner
        resyncs past the hole when the record format allows it
        (:attr:`RESYNC_ALIGN`) instead of abandoning the rest of the
        log.
        """
        buf, lost_ranges = tolerant_read(self.ns, self.base, self.capacity)
        report = RecoveryReport(component="wal")
        verify = not self.naive
        out = []
        offset = 0
        while offset < self.capacity:
            rec = records.decode(buf, offset, verify_crc=verify)
            if rec is not None:
                key, value, end = rec
                out.append((key, value))
                report.recovered += 1
                offset += self._advance(end - offset)
                continue
            hole = next(((lo, ll) for lo, ll in lost_ranges
                         if lo + ll > offset), None)
            if hole is not None:
                hole_off, hole_len = hole
                report.lost += 1
                report.note("unreadable hole at +%d (%d bytes)"
                            % (hole_off, hole_len))
                if self.RESYNC_ALIGN is None:
                    report.note("records unaligned: log abandoned at +%d"
                                % offset)
                    break
                nxt = self._resync(buf, max(hole_off + hole_len,
                                            offset + 1), verify)
                if nxt is None:
                    break
                offset = nxt
                continue
            # Any non-zero byte past the last intact record is a torn
            # tail.  count(0) does the scan at memchr speed without
            # materializing an `any(buf[offset:])` copy of the (MiB-
            # scale) remainder — the old form dominated chaos recovery.
            if buf.count(0, offset) != len(buf) - offset:
                report.truncated += 1
                report.note("torn tail truncated at +%d" % offset)
            break
        self.tail = offset
        return out, report

    def _resync(self, buf, start, verify):
        """First aligned offset at/after ``start`` that decodes clean."""
        pos = align_up(start, self.RESYNC_ALIGN)
        while pos < self.capacity:
            if records.decode(buf, pos, verify_crc=verify) is not None:
                return pos
            pos += self.RESYNC_ALIGN
        return None

    def reset(self):
        """Logically truncate (a real system would rotate log files)."""
        self.tail = 0


class WalPosix(WalBase):
    """write()+fsync() through a DAX file system."""

    def append(self, thread, key, value, sync=True):
        record = records.encode(key, value)
        self._check_space(len(record))
        thread.sleep(POSIX_WRITE_SYSCALL_NS)
        # write(): the kernel copies the record through the cache
        # hierarchy at the unaligned tail, so back-to-back appends
        # rewrite the shared tail line.
        self.ns.store(thread, self.tail_addr, len(record), data=record)
        if sync:
            thread.sleep(POSIX_FSYNC_SYSCALL_NS)
            self.ns.clwb(thread, self.tail_addr, len(record))
            # Metadata journal commit (file-size update).
            self.ns.ntstore(thread, self.base + self.capacity
                            - POSIX_JOURNAL_BYTES, POSIX_JOURNAL_BYTES)
            thread.sfence()
        self.tail += len(record)


#: Zero padding up to one cache line, prebuilt so the per-append pad
#: concatenation reuses interned tails instead of allocating them.
_ZERO_PAD = tuple(b"\x00" * i for i in range(CACHELINE))


class WalFlex(WalBase):
    """FLEX: direct, 64 B-aligned non-temporal appends from userspace."""

    #: 64 B-aligned records let replay resync after a poisoned hole.
    RESYNC_ALIGN = CACHELINE

    def _advance(self, record_len):
        return align_up(record_len, CACHELINE)

    def append(self, thread, key, value, sync=True):
        record = records.encode(key, value)
        thread.sleep(FLEX_LIBRARY_NS)
        # Pad each record to cache-line alignment so appends never
        # rewrite a previously persisted line (FLEX's key trick).
        rlen = len(record)
        padded = align_up(rlen, CACHELINE)
        self._check_space(padded)
        self.ns.ntstore(thread, self.base + self.tail, padded,
                        data=record + _ZERO_PAD[padded - rlen])
        if sync and not self.naive:
            # The ntstore sits in the WPQ until something fences it; a
            # naive writer skips the sfence and acks a write nothing
            # ordered (pmcheck flags this as ack-before-fence).
            thread.sfence()
        self.tail += padded
