"""Write-ahead logging: the POSIX path and the FLEX path.

The two strategies of the paper's RocksDB case study (Section 4.2):

* **WalPosix** — the log is a file on a DAX file system, appended with
  ``write()`` + ``fsync()``.  The write copies the record through the
  cache hierarchy at the file's (unaligned) tail — so consecutive
  appends rewrite the shared tail line — and every fsync pays syscall
  overhead, flushes the dirty lines, and commits a metadata journal
  record.
* **WalFlex** — FLEX-style userspace logging: records are appended
  directly with cache-bypassing stores at 64 B alignment, one fence per
  sync, no block rewrite and no syscall.

Both recover by CRC-scanning the log (see :mod:`repro.kvstore.records`).
"""

from repro._units import CACHELINE, align_up
from repro.kvstore import records

#: Syscall + VFS overhead per write() and per fsync() on the POSIX
#: path, and the DAX file-system's per-sync metadata journaling write.
POSIX_WRITE_SYSCALL_NS = 600.0
POSIX_FSYNC_SYSCALL_NS = 400.0
POSIX_JOURNAL_BYTES = 128
#: Record encode + bookkeeping cost of the userspace FLEX library.
FLEX_LIBRARY_NS = 190.0


class WalBase:
    """Common state: a log region [base, base+capacity) on a namespace."""

    def __init__(self, ns, base, capacity):
        self.ns = ns
        self.base = base
        self.capacity = capacity
        self.tail = 0            # bytes appended so far

    @property
    def tail_addr(self):
        return self.base + self.tail

    def _check_space(self, nbytes):
        if self.tail + nbytes > self.capacity:
            raise RuntimeError("WAL full: %d + %d > %d"
                               % (self.tail, nbytes, self.capacity))

    def _advance(self, record_len):
        """Log-space consumed by one record (subclasses may pad)."""
        return record_len

    def replay(self):
        """Recover all intact records from the *persistent* view."""
        buf = self.ns.read_persistent(self.base, self.capacity)
        out = []
        offset = 0
        while True:
            rec = records.decode(buf, offset)
            if rec is None:
                break
            key, value, end = rec
            out.append((key, value))
            offset += self._advance(end - offset)
        self.tail = offset
        return out

    def reset(self):
        """Logically truncate (a real system would rotate log files)."""
        self.tail = 0


class WalPosix(WalBase):
    """write()+fsync() through a DAX file system."""

    def append(self, thread, key, value, sync=True):
        record = records.encode(key, value)
        self._check_space(len(record))
        thread.sleep(POSIX_WRITE_SYSCALL_NS)
        # write(): the kernel copies the record through the cache
        # hierarchy at the unaligned tail, so back-to-back appends
        # rewrite the shared tail line.
        self.ns.store(thread, self.tail_addr, len(record), data=record)
        if sync:
            thread.sleep(POSIX_FSYNC_SYSCALL_NS)
            self.ns.clwb(thread, self.tail_addr, len(record))
            # Metadata journal commit (file-size update).
            self.ns.ntstore(thread, self.base + self.capacity
                            - POSIX_JOURNAL_BYTES, POSIX_JOURNAL_BYTES)
            thread.sfence()
        self.tail += len(record)


class WalFlex(WalBase):
    """FLEX: direct, 64 B-aligned non-temporal appends from userspace."""

    def _advance(self, record_len):
        return align_up(record_len, CACHELINE)

    def append(self, thread, key, value, sync=True):
        record = records.encode(key, value)
        thread.sleep(FLEX_LIBRARY_NS)
        # Pad each record to cache-line alignment so appends never
        # rewrite a previously persisted line (FLEX's key trick).
        padded = align_up(len(record), CACHELINE)
        self._check_space(padded)
        self.ns.ntstore(thread, self.tail_addr, padded,
                        data=record + b"\x00" * (padded - len(record)))
        if sync:
            thread.sfence()
        self.tail += padded
