"""The RocksDB migration study (Figure 8).

db_bench-style SET workload: 20-byte keys, 100-byte values, database
synced after every operation — run against the three durability
strategies on DRAM-backed "persistent" memory and on real (simulated)
Optane.  The paper's punchline: DRAM emulation favours the persistent
memtable (+19 %), real 3D XPoint favours the FLEX WAL (+10 %) —
emulation inverts the design decision.
"""

import random
from dataclasses import dataclass

from repro._units import NS_PER_S
from repro.kvstore.lsm import LSMStore
from repro.sim import Machine

KEY_SIZE = 20
VALUE_SIZE = 100

#: Fixed per-operation engine overhead (request parsing, versioning,
#: db_bench accounting) charged as compute time, calibrated to put
#: absolute throughput in the paper's few-hundred-KOps range.
ENGINE_OVERHEAD_NS = 400.0


@dataclass
class SetResult:
    """Throughput of one db_bench SET run."""

    mode: str
    kind: str
    ops: int
    elapsed_ns: float

    @property
    def kops_per_sec(self):
        return self.ops / (self.elapsed_ns / NS_PER_S) / 1e3


def make_key(i):
    return b"%019d" % i


def make_value(rng):
    return bytes(rng.getrandbits(8) for _ in range(4)) * (VALUE_SIZE // 4)


def set_benchmark(mode, kind="optane", ops=8000, machine=None, seed=11,
                  sync=True, memtable_bytes=None):
    """Run SET for ``ops`` operations; returns a :class:`SetResult`."""
    m = machine if machine is not None else Machine()
    kwargs = {} if memtable_bytes is None else \
        {"memtable_bytes": memtable_bytes}
    store = LSMStore(m, mode=mode, kind=kind, seed=seed, **kwargs)
    t = m.thread()
    rng = random.Random(seed)
    keys = list(range(ops))
    rng.shuffle(keys)
    start = t.now
    for i in keys:
        t.sleep(ENGINE_OVERHEAD_NS)
        store.put(t, make_key(i), make_value(rng), sync=sync)
    return SetResult(mode=mode, kind=kind, ops=ops, elapsed_ns=t.now - start)


def get_benchmark(mode, kind="optane", ops=4000, populate=4000,
                  machine=None, seed=13):
    """db_bench readrandom: point lookups over a populated store."""
    m = machine if machine is not None else Machine()
    store = LSMStore(m, mode=mode, kind=kind, seed=seed)
    t = m.thread()
    rng = random.Random(seed)
    for i in range(populate):
        store.put(t, make_key(i), make_value(rng))
    start = t.now
    hits = 0
    for _ in range(ops):
        t.sleep(ENGINE_OVERHEAD_NS)
        if store.get(t, make_key(rng.randrange(populate))) is not None:
            hits += 1
    result = SetResult(mode=mode, kind=kind, ops=ops,
                       elapsed_ns=t.now - start)
    assert hits == ops, "readrandom missed %d keys" % (ops - hits)
    return result


def mixed_benchmark(mode, kind="optane", ops=4000, read_frac=0.5,
                    populate=2000, machine=None, seed=17):
    """db_bench readrandomwriterandom: interleaved GETs and SETs."""
    m = machine if machine is not None else Machine()
    store = LSMStore(m, mode=mode, kind=kind, seed=seed)
    t = m.thread()
    rng = random.Random(seed)
    for i in range(populate):
        store.put(t, make_key(i), make_value(rng))
    start = t.now
    for _ in range(ops):
        t.sleep(ENGINE_OVERHEAD_NS)
        i = rng.randrange(populate)
        if rng.random() < read_frac:
            store.get(t, make_key(i))
        else:
            store.put(t, make_key(i), make_value(rng))
    return SetResult(mode=mode, kind=kind, ops=ops,
                     elapsed_ns=t.now - start)


def figure8(ops=25000, modes=("wal-posix", "wal-flex",
                              "persistent-memtable"),
            kinds=("dram", "optane")):
    """Both panels of Figure 8: ``{(kind, mode): SetResult}``.

    Run at the paper's working-set relationship: the memtable is larger
    than the LLC (RocksDB defaults to a 64 MB memtable vs a 33 MB LLC),
    so skiplist splice targets are cache-cold.  We scale both down
    (8 MB memtable, 2 MB LLC) to keep the simulation fast.
    """
    from repro._units import MIB
    from repro.sim import MachineConfig
    results = {}
    for kind in kinds:
        for mode in modes:
            cfg = MachineConfig()
            cfg.cache.capacity_bytes = 2 * MIB
            machine = Machine(cfg)
            results[kind, mode] = set_benchmark(
                mode, kind=kind, ops=ops, machine=machine,
                memtable_bytes=8 * MIB)
    return results
