"""A crash-safe manifest: which SSTables exist, at which addresses.

Two slots, written alternately, each carrying a sequence number and a
CRC; recovery picks the newest intact slot.  This is the standard
atomic-superblock trick (LevelDB's MANIFEST/CURRENT collapsed into a
fixed-size record, which suffices here because tables are few).
"""

import struct
import zlib

from repro.faults.model import tolerant_read

_SLOT_HEADER = struct.Struct("<IQI")      # crc | seq | count
_ENTRY = struct.Struct("<QQQ")            # base | size | level
SLOT_SIZE = 4096
MAX_TABLES = (SLOT_SIZE - _SLOT_HEADER.size) // _ENTRY.size


class Manifest:
    """Persistent table-of-tables at a fixed namespace region."""

    def __init__(self, ns, base):
        self.ns = ns
        self.base = base
        self._seq = 0

    @property
    def capacity(self):
        return 2 * SLOT_SIZE

    def _encode(self, entries):
        if len(entries) > MAX_TABLES:
            raise ValueError("too many tables for one manifest slot")
        body = struct.pack("<QI", self._seq, len(entries))
        for base, size, level in entries:
            body += _ENTRY.pack(base, size, level)
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return struct.pack("<I", crc) + body

    def commit(self, thread, entries):
        """Durably record ``entries`` = [(base, size, level)]."""
        self._seq += 1
        blob = self._encode(entries)
        slot = self.base + (self._seq % 2) * SLOT_SIZE
        self.ns.pwrite(thread, slot, blob, instr="ntstore")

    def load(self):
        """Read back the newest intact slot from the persistent view.

        Returns ``(seq, [(base, size, level)])``; (0, []) if none.
        """
        best_seq, best = 0, []
        for slot in (self.base, self.base + SLOT_SIZE):
            # A poisoned slot must not take the other one down with it:
            # read tolerantly and let the CRC reject the zeroed bytes.
            raw, lost = tolerant_read(self.ns, slot, SLOT_SIZE)
            if lost and not any(raw):
                continue
            crc = struct.unpack_from("<I", raw)[0]
            seq, count = struct.unpack_from("<QI", raw, 4)
            body_len = 12 + count * _ENTRY.size
            if body_len > SLOT_SIZE - 4:
                continue
            body = bytes(raw[4:4 + body_len])
            if zlib.crc32(body) & 0xFFFFFFFF != crc:
                continue
            if seq > best_seq:
                entries = [
                    _ENTRY.unpack_from(body, 12 + i * _ENTRY.size)
                    for i in range(count)
                ]
                best_seq, best = seq, entries
        self._seq = best_seq
        return best_seq, best
