"""The LSM key-value store (the RocksDB stand-in of Section 4.2).

Three durability strategies, selected by ``mode``:

* ``"wal-posix"``          — volatile memtable + WAL via write()/fsync();
* ``"wal-flex"``           — volatile memtable + FLEX userspace log;
* ``"persistent-memtable"``— no WAL; the memtable *is* a
  crash-consistent skiplist in persistent memory.

Everything else (SSTable flushes, L0->L1 compaction, manifest commits,
recovery) is shared.  The store is real software over simulated
memory: every durable byte round-trips through the namespace and
crash-recovers via :meth:`LSMStore.recover`.
"""

from repro._units import KIB, MIB, align_up
from repro.faults.model import MediaError
from repro.faults.report import RecoveryReport
from repro.kvstore.manifest import Manifest
from repro.kvstore.memtable import VolatileMemtable
from repro.kvstore.persistent_skiplist import PersistentSkipList
from repro.kvstore.sstable import SSTable
from repro.kvstore.wal import WalFlex, WalPosix

MODES = ("wal-posix", "wal-flex", "persistent-memtable")

#: Region layout inside the namespace (fixed, so recovery needs no
#: external state).
MANIFEST_BASE = 0
WAL_BASE = 64 * KIB
WAL_CAPACITY = 8 * MIB
ARENA_BASE = WAL_BASE + WAL_CAPACITY
ARENA_CAPACITY = 16 * MIB
TABLES_BASE = ARENA_BASE + ARENA_CAPACITY

#: Flush the memtable once it holds this much payload.
DEFAULT_MEMTABLE_BYTES = 256 * KIB
#: Compact L0 into L1 when this many L0 tables accumulate.
L0_COMPACTION_TRIGGER = 6


class LSMStore:
    """An embedded ordered KV store over one pmem namespace."""

    def __init__(self, machine, mode="wal-flex", kind="optane",
                 memtable_bytes=DEFAULT_MEMTABLE_BYTES, seed=0,
                 naive=False, _recovering=False):
        if mode not in MODES:
            raise ValueError("unknown mode %r (choose from %s)"
                             % (mode, ", ".join(MODES)))
        self.machine = machine
        self.mode = mode
        self.ns = machine.namespace(kind)
        self.memtable_bytes = memtable_bytes
        self.seed = seed
        self.naive = naive           # CRC-less WAL replay (demo mode)
        self.manifest = Manifest(self.ns, MANIFEST_BASE)
        self.tables = []             # [(level, SSTable)] newest L0 first
        self._next_table_base = TABLES_BASE
        self._arena_epoch = 0
        self.recovery_report = None  # set by recover()
        self.degraded_reads = 0      # gets answered despite MediaError
        if not _recovering:
            self._fresh_memtable()

    # -- memtable/WAL plumbing ------------------------------------------------

    def _fresh_memtable(self):
        if self.mode == "persistent-memtable":
            base = ARENA_BASE + (self._arena_epoch % 2) * (ARENA_CAPACITY // 2)
            self.memtable = PersistentSkipList(
                self.ns, base, ARENA_CAPACITY // 2,
                seed=self.seed + self._arena_epoch)
            self.wal = None
        else:
            self.memtable = VolatileMemtable(
                seed=self.seed + self._arena_epoch)
            wal_cls = WalPosix if self.mode == "wal-posix" else WalFlex
            self.wal = wal_cls(self.ns, WAL_BASE, WAL_CAPACITY,
                               naive=self.naive)
        self._arena_epoch += 1

    # -- client operations -------------------------------------------------------

    def put(self, thread, key, value, sync=True):
        """Durably (if ``sync``) insert one pair."""
        if self.mode == "persistent-memtable":
            self.memtable.put(thread, key, value)
        else:
            self.wal.append(thread, key, value, sync=sync)
            self.memtable.put(thread, key, value)
        if self.memtable.approximate_bytes >= self.memtable_bytes:
            self.flush(thread)

    def delete(self, thread, key, sync=True):
        """Durably delete one key (a tombstone record)."""
        if self.mode == "persistent-memtable":
            self.memtable.delete(thread, key)
        else:
            self.wal.append(thread, key, None, sync=sync)
            self.memtable.delete(thread, key)
        if self.memtable.approximate_bytes >= self.memtable_bytes:
            self.flush(thread)

    def get(self, thread, key):
        """Point lookup: memtable, then tables newest-first.

        A tombstone anywhere shadows older versions (returns None).
        A :class:`MediaError` on one level degrades to the next-older
        version instead of crashing the read (counted in
        ``degraded_reads``); data behind poison is reported missing.
        """
        try:
            found, value = self.memtable.lookup(thread, key)
        except MediaError:
            self.degraded_reads += 1
            found = False
        if found:
            return value
        for _, table in self.tables:
            try:
                found, value = table.lookup(thread, key)
            except MediaError:
                self.degraded_reads += 1
                continue
            if found:
                return value
        return None

    def scan(self, thread, start=None, end=None):
        """Ordered iteration over the live keys in ``[start, end)``.

        Merges the memtable over the tables (newest version wins) and
        drops tombstones.  The merge itself is CPU work, charged per
        merged entry; the table bytes were already durable-read when
        written, so no additional device traffic is modelled here.
        """
        merged = {}
        for _, table in reversed(self.tables):       # oldest first
            for key, value in table.items():
                merged[key] = value
        for key, value in self.memtable.items():
            merged[key] = value
        out = []
        for key in sorted(merged):
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                break
            value = merged[key]
            if value is None:
                continue
            out.append((key, value))
        thread.sleep(25.0 * max(1, len(merged)))
        return out

    # -- flush / compaction --------------------------------------------------------

    def flush(self, thread):
        """Write the memtable out as an L0 SSTable and reset it."""
        pairs = list(self.memtable.items())
        if pairs:
            table = SSTable.build(self.ns, thread, self._next_table_base,
                                  pairs)
            self._next_table_base = align_up(
                self._next_table_base + table.size, 4 * KIB)
            self.tables.insert(0, (0, table))
            self._commit_manifest(thread)
        if self.wal is not None:
            self.wal.reset()
        if self.mode == "persistent-memtable":
            # Retire the old arena *after* the SSTable and manifest are
            # durable: zero its head pointer so recovery sees it empty.
            old_base = self.memtable.base
            self.ns.pwrite(thread, old_base, b"\x00" * 8, instr="ntstore")
        self._fresh_memtable()
        if sum(1 for lvl, _ in self.tables if lvl == 0) \
                >= L0_COMPACTION_TRIGGER:
            self.compact(thread)

    def compact(self, thread):
        """Merge every table into a single L1 run (newest value wins).

        A full merge sees every version of a key, so tombstones are
        dropped here rather than rewritten.
        """
        merged = {}
        for _, table in reversed(self.tables):   # oldest first
            for key, value in table.items():
                merged[key] = value
        pairs = sorted((k, v) for k, v in merged.items()
                       if v is not None)
        table = SSTable.build(self.ns, thread, self._next_table_base, pairs)
        self._next_table_base = align_up(
            self._next_table_base + table.size, 4 * KIB)
        self.tables = [(1, table)]
        self._commit_manifest(thread)

    def _commit_manifest(self, thread):
        self.manifest.commit(thread, [
            (table.base, table.size, level)
            for level, table in self.tables
        ])

    # -- recovery ----------------------------------------------------------------------

    @classmethod
    def recover(cls, machine, mode="wal-flex", kind="optane", seed=0,
                memtable_bytes=DEFAULT_MEMTABLE_BYTES, naive=False):
        """Rebuild a store from the namespace's persistent contents.

        Recovery degrades gracefully under media faults: torn tails are
        truncated, poisoned tables/log regions are skipped, and the
        whole accounting lands in ``store.recovery_report`` instead of
        an exception (or a silent success).
        """
        store = cls(machine, mode=mode, kind=kind, seed=seed,
                    memtable_bytes=memtable_bytes, naive=naive,
                    _recovering=True)
        report = RecoveryReport(component="lsm[%s]" % mode)
        try:
            _, entries = store.manifest.load()
        except MediaError:
            entries = []
            report.lost += 1
            report.note("manifest unreadable: table set lost")
        for base, size, level in entries:
            table, table_report = SSTable.open_report(store.ns, base, size)
            report.merge(table_report)
            if table is not None:
                store.tables.append((level, table))
            end = align_up(base + size, 4 * KIB)
            if end > store._next_table_base:
                store._next_table_base = end
        store.tables.sort(key=lambda t: (t[0], -t[1].base))
        if mode == "persistent-memtable":
            # Either arena may hold the live memtable; pick the fuller.
            candidates = []
            for half in (0, 1):
                arena = ARENA_BASE + half * (ARENA_CAPACITY // 2)
                try:
                    candidates.append(PersistentSkipList.recover(
                        store.ns, arena, ARENA_CAPACITY // 2))
                except MediaError:
                    report.lost += 1
                    report.note("memtable arena %d unreadable" % half)
            if not candidates:
                candidates = [PersistentSkipList(
                    store.ns, ARENA_BASE, ARENA_CAPACITY // 2, seed=seed)]
            store.memtable = max(candidates, key=len)
            report.recovered += len(store.memtable)
            store.wal = None
        else:
            store.memtable = VolatileMemtable(seed=seed)
            wal_cls = WalPosix if mode == "wal-posix" else WalFlex
            store.wal = wal_cls(store.ns, WAL_BASE, WAL_CAPACITY,
                                naive=naive)
            replay_thread = machine.thread()
            replayed, wal_report = store.wal.replay_report()
            report.merge(wal_report)
            for key, value in replayed:
                store.memtable.put(replay_thread, key, value)
        store._arena_epoch = 2
        store.recovery_report = report
        return store

    def scrub(self, thread, repair=False):
        """Verify every SSTable record; report (and optionally repair).

        Walks each table's persistent bytes, counting intact, torn and
        poisoned records.  With ``repair=True`` every damaged table is
        rewritten from its surviving records at a fresh base address
        (read-repair) and the manifest recommitted, so later reads no
        longer touch poisoned lines.
        """
        report = RecoveryReport(component="lsm-scrub")
        rebuilt = []
        changed = False
        for level, table in self.tables:
            pairs, table_report = table.scrub()
            report.merge(table_report)
            if repair and not table_report.clean:
                pairs.sort(key=lambda kv: kv[0])
                fresh = SSTable.build(self.ns, thread,
                                      self._next_table_base, pairs)
                self._next_table_base = align_up(
                    self._next_table_base + fresh.size, 4 * KIB)
                rebuilt.append((level, fresh))
                changed = True
                report.note("rebuilt table @%#x -> @%#x"
                            % (table.base, fresh.base))
            else:
                rebuilt.append((level, table))
        if changed:
            self.tables = rebuilt
            self._commit_manifest(thread)
        return report

    # -- introspection ------------------------------------------------------------------

    def stats(self):
        return {
            "mode": self.mode,
            "memtable_entries": len(self.memtable),
            "memtable_bytes": self.memtable.approximate_bytes,
            "tables": [(lvl, t.base, t.size) for lvl, t in self.tables],
        }
