"""Volatile (heap) memtable: a timed wrapper around the skiplist.

The WAL-based RocksDB configurations keep their memtable in ordinary
DRAM heap; its cost is CPU-bound skiplist traversal plus a node
allocation, charged to the simulated thread as compute time.
"""

from repro.kvstore.skiplist import SkipList
from repro.sim import engine as _engine

_COMPARE_NS = 12.0
_ALLOC_NS = 60.0
_COPY_NS_PER_BYTE = 0.8


class VolatileMemtable:
    """DRAM-resident memtable with simulated-time accounting."""

    def __init__(self, seed=0):
        self._sl = SkipList(seed=seed)

    def __len__(self):
        return len(self._sl)

    @property
    def approximate_bytes(self):
        return self._sl.approximate_bytes

    def put(self, thread, key, value):
        vlen = len(value) if value is not None else 0
        copy = (len(key) + vlen) * _COPY_NS_PER_BYTE
        if _engine.FASTPATH_ENABLED:
            # Fused: one traversal both counts seek steps (timing) and
            # finds the insert point.  Sleep and structure mutation
            # happen in the reference order, so clocks and the seeded
            # height draws are identical.
            steps, preds = self._sl.seek_preds(key)
            thread.sleep(steps * _COMPARE_NS + _ALLOC_NS + copy)
            self._sl.put_at(preds, key, value)
            return
        steps = self._sl.seek_steps(key)
        thread.sleep(steps * _COMPARE_NS + _ALLOC_NS + copy)
        self._sl.put(key, value)

    def delete(self, thread, key):
        """Record a tombstone (the LSM delete path)."""
        self.put(thread, key, None)

    def get(self, thread, key):
        return self.lookup(thread, key)[1]

    def lookup(self, thread, key):
        """Timed lookup distinguishing absent from tombstoned."""
        if _engine.FASTPATH_ENABLED:
            steps, found, value = self._sl.seek_lookup(key)
            thread.sleep(steps * _COMPARE_NS)
            return found, value
        steps = self._sl.seek_steps(key)
        thread.sleep(steps * _COMPARE_NS)
        return self._sl.lookup(key)

    def items(self):
        return self._sl.items()
