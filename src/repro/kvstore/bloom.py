"""A small Bloom filter for SSTable lookups.

Double hashing over two independent 64-bit hashes, ~10 bits per key
(false-positive rate under 1 %), like LevelDB's filter policy.
"""

import hashlib

BITS_PER_KEY = 10
NUM_PROBES = 7


def _hashes(key):
    digest = hashlib.blake2b(key, digest_size=16).digest()
    h1 = int.from_bytes(digest[:8], "little")
    h2 = int.from_bytes(digest[8:], "little") | 1
    return h1, h2


class BloomFilter:
    """Fixed-capacity Bloom filter over byte-string keys."""

    def __init__(self, capacity):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._nbits = max(64, capacity * BITS_PER_KEY)
        self._bits = bytearray((self._nbits + 7) // 8)
        self.added = 0

    def add(self, key):
        h1, h2 = _hashes(key)
        for i in range(NUM_PROBES):
            bit = (h1 + i * h2) % self._nbits
            self._bits[bit >> 3] |= 1 << (bit & 7)
        self.added += 1

    def may_contain(self, key):
        h1, h2 = _hashes(key)
        for i in range(NUM_PROBES):
            bit = (h1 + i * h2) % self._nbits
            if not self._bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True
