"""A crash-consistent skiplist stored directly in persistent memory.

This is the "fine-grained persistence" memtable of the RocksDB study:
no WAL — every insert persists the node and splices it into the list
with small flushed stores.  The access pattern is exactly what
guideline #1 warns about: sub-XPLine stores scattered over the arena
(node payloads land wherever the bump allocator put them; pointer
splices dirty one line of each predecessor node).

Crash consistency comes from ordering: (1) persist the node body and
fence, then (2) persist the 8-byte level-0 next-pointer splice of the
predecessor (atomic).  Upper-level pointers are hints, revalidated on
recovery.

Node layout (little-endian)::

    u16 klen | u16 height | u32 vlen | u64 next[height] | key | value
"""

import random
import struct

from repro.kvstore.skiplist import MAX_LEVEL

_HEADER = struct.Struct("<HHI")
_PTR = struct.Struct("<Q")
_TOMBSTONE_FLAG = 0x8000
_HEIGHT_MASK = 0x7FFF

#: CPU cost of one comparison/hop during a descent (simulated).
_COMPARE_NS = 12.0


class PersistentSkipList:
    """Skiplist over a namespace arena ``[base, base+capacity)``.

    Arena offset 0 holds the head node's next-pointer table, so offset
    0 also doubles as "null" for next-pointers (no node can live there).
    """

    def __init__(self, ns, base, capacity, seed=0):
        self.ns = ns
        self.base = base
        self.capacity = capacity
        self._rng = random.Random(seed)
        # Head pointer table, then the 8-byte allocator tail hint.
        self._alloc = _PTR.size * (MAX_LEVEL + 1)  # bump pointer (offset)
        self._count = 0
        # Volatile mirror for fast traversal; the persistent bytes stay
        # authoritative for recovery.
        self._vnexts = {0: [0] * MAX_LEVEL}       # offset -> next offsets
        self._vkeys = {}
        self._vvals = {}

    def __len__(self):
        return self._count

    @property
    def approximate_bytes(self):
        return self._alloc

    def _random_height(self):
        h = 1
        while h < MAX_LEVEL and self._rng.random() < 0.25:
            h += 1
        return h

    # -- persistent layout helpers ------------------------------------------

    @staticmethod
    def _node_bytes(key, value, height, nexts):
        if value is None:
            height_field = height | _TOMBSTONE_FLAG
            value = b""
        else:
            height_field = height
        header = _HEADER.pack(len(key), height_field, len(value))
        ptrs = b"".join(_PTR.pack(n) for n in nexts[:height])
        return header + ptrs + key + value

    def _ptr_addr(self, offset, level):
        """Address of a node's next[level] pointer (offset 0 = head)."""
        if offset == 0:
            return self.base + level * _PTR.size
        return self.base + offset + _HEADER.size + level * _PTR.size

    def _allocate(self, thread, nbytes):
        nbytes = (nbytes + 7) & ~7                # 8-byte alignment
        if self._alloc + nbytes > self.capacity:
            raise RuntimeError("persistent skiplist arena full")
        offset = self._alloc
        self._alloc += nbytes
        # Persist the allocator tail hint (speeds up recovery scans).
        # Rewriting the same 8 bytes every insert is exactly the
        # same-line overwrite pattern 3D XPoint punishes.
        self.ns.pwrite(thread, self._tail_hint_addr,
                       _PTR.pack(self._alloc), instr="clwb", fence=False)
        return offset

    @property
    def _tail_hint_addr(self):
        return self.base + MAX_LEVEL * _PTR.size

    def _find_predecessors(self, key):
        preds = [0] * MAX_LEVEL
        node = 0
        steps = 0
        for lvl in range(MAX_LEVEL - 1, -1, -1):
            nxt = self._vnexts[node][lvl]
            while nxt and self._vkeys[nxt] < key:
                node = nxt
                nxt = self._vnexts[node][lvl]
                steps += 1
            preds[lvl] = node
            steps += 1
        return preds, steps

    # -- operations -------------------------------------------------------------

    def put(self, thread, key, value):
        """Durably insert (or update) one pair; returns its arena offset.

        ``value=None`` inserts a tombstone (durable delete marker).
        """
        preds, steps = self._find_predecessors(key)
        thread.sleep(_COMPARE_NS * steps)
        existing = self._vnexts[preds[0]][0]
        if existing and self._vkeys.get(existing) == key:
            return self._update_value(thread, existing, key, value, preds)
        height = self._random_height()
        nexts = [self._vnexts[preds[lvl]][lvl] for lvl in range(height)]
        node = self._node_bytes(key, value, height, nexts)
        offset = self._allocate(thread, len(node))
        # (1) Persist the node body (fenced).
        self.ns.pwrite(thread, self.base + offset, node, instr="clwb")
        # (2) Splice: level 0 first (recovery-critical, fenced), upper
        # levels are hints (single fence at the end).
        for lvl in range(height):
            self.ns.pwrite(thread, self._ptr_addr(preds[lvl], lvl),
                           _PTR.pack(offset), instr="clwb",
                           fence=(lvl == 0))
            self._vnexts[preds[lvl]][lvl] = offset
        thread.sfence()
        self._vnexts[offset] = nexts + [0] * (MAX_LEVEL - height)
        self._vkeys[offset] = key
        self._vvals[offset] = value
        self._count += 1
        return offset

    def delete(self, thread, key):
        """Durably mark ``key`` deleted (tombstone node)."""
        return self.put(thread, key, None)

    def lookup(self, thread, key):
        """Timed lookup; returns ``(found, value)`` (tombstone: True, None)."""
        preds, steps = self._find_predecessors(key)
        thread.sleep(_COMPARE_NS * steps)
        candidate = self._vnexts[preds[0]][0]
        if candidate and self._vkeys.get(candidate) == key:
            value = self._vvals[candidate]
            self.ns.load(thread, self.base + candidate,
                         _HEADER.size + len(key)
                         + (len(value) if value is not None else 0))
            return True, value
        return False, None

    def _update_value(self, thread, offset, key, value, preds):
        old = self._vvals[offset]
        if value is not None and old is not None \
                and len(value) == len(old):
            height = self._persisted_height(offset)
            vaddr = (self.base + offset + _HEADER.size
                     + height * _PTR.size + len(key))
            self.ns.pwrite(thread, vaddr, value, instr="clwb")
            self._vvals[offset] = value
            return offset
        # Length changed: splice in a replacement node (the old node
        # becomes garbage; a real system would reclaim it on flush).
        del self._vkeys[offset]
        self._vvals.pop(offset)
        self._unlink(offset, preds)
        self._count -= 1
        return self.put(thread, key, value)

    def _persisted_height(self, offset):
        raw = self.ns.read_volatile(self.base + offset, _HEADER.size)
        _, height_field, _ = _HEADER.unpack(raw)
        return height_field & _HEIGHT_MASK

    def _unlink(self, offset, preds):
        """Unsplice ``offset`` at every level where a pred points to it."""
        victim_nexts = self._vnexts.pop(offset)
        for lvl in range(MAX_LEVEL):
            if self._vnexts[preds[lvl]][lvl] == offset:
                self._vnexts[preds[lvl]][lvl] = victim_nexts[lvl]

    def get(self, thread, key):
        """Timed lookup; returns the value or None."""
        return self.lookup(thread, key)[1]

    def items(self):
        """All (key, value) pairs in key order (volatile view)."""
        node = self._vnexts[0][0]
        while node:
            yield self._vkeys[node], self._vvals[node]
            node = self._vnexts[node][0]

    # -- recovery ----------------------------------------------------------------

    @classmethod
    def recover(cls, ns, base, capacity):
        """Rebuild from the *persistent* view after a crash.

        Walks the durable level-0 chain; upper-level pointers are taken
        as hints and kept only when they reference recovered nodes.
        """
        inst = cls(ns, base, capacity)
        raw = ns.read_persistent(base, capacity)
        offset = _PTR.unpack_from(raw, 0)[0]
        nodes = []
        alloc_high = _PTR.size * (MAX_LEVEL + 1)
        while offset:
            if offset + _HEADER.size > capacity:
                break
            klen, height_field, vlen = _HEADER.unpack_from(raw, offset)
            height = height_field & _HEIGHT_MASK
            tombstone = bool(height_field & _TOMBSTONE_FLAG)
            if height == 0 or height > MAX_LEVEL:
                break
            ptr_base = offset + _HEADER.size
            key_base = ptr_base + height * _PTR.size
            val_end = key_base + klen + vlen
            if val_end > capacity:
                break
            key = bytes(raw[key_base:key_base + klen])
            value = None if tombstone \
                else bytes(raw[key_base + klen:val_end])
            nexts = [_PTR.unpack_from(raw, ptr_base + i * _PTR.size)[0]
                     for i in range(height)]
            nodes.append((offset, key, value, nexts))
            alloc_high = max(alloc_high, val_end)
            offset = nexts[0]
        recovered = {n[0] for n in nodes}
        for offset, key, value, nexts in nodes:
            clean = [n if n in recovered else 0 for n in nexts]
            inst._vkeys[offset] = key
            inst._vvals[offset] = value
            inst._vnexts[offset] = clean + [0] * (MAX_LEVEL - len(clean))
        head = [0] * MAX_LEVEL
        for lvl in range(MAX_LEVEL):
            ptr = _PTR.unpack_from(raw, lvl * _PTR.size)[0]
            head[lvl] = ptr if ptr in recovered else 0
        if nodes:
            head[0] = nodes[0][0]
        inst._vnexts[0] = head
        inst._count = len(nodes)
        inst._alloc = (alloc_high + 7) & ~7
        return inst
