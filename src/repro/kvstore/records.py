"""On-media record encoding shared by the WAL and the SSTables.

A record is::

    u32 crc (of everything after it) | u16 flags+klen | u32 vlen |
    key | value

The top bit of the klen field marks a *tombstone* (a delete); decoding
a tombstone yields ``value = None``.  CRCs make recovery honest: a
torn append (crash mid-record) is detected and replay stops there,
exactly like LevelDB/RocksDB log replay.
"""

import struct
import zlib

_HEADER = struct.Struct("<IHI")
HEADER_SIZE = _HEADER.size
_TOMBSTONE_FLAG = 0x8000
_KLEN_MASK = 0x7FFF


def encode(key, value):
    """Serialize one record; ``value=None`` encodes a tombstone."""
    if len(key) > _KLEN_MASK:
        raise ValueError("key too long")
    if value is None:
        klen_field = len(key) | _TOMBSTONE_FLAG
        value = b""
    else:
        klen_field = len(key)
    body = struct.pack("<HI", klen_field, len(value)) + key + value
    return struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF) + body


def encoded_size(key, value):
    return HEADER_SIZE + len(key) + len(value or b"")


def decode(buf, offset=0, verify_crc=True):
    """Decode one record at ``offset``.

    Returns ``(key, value, next_offset)`` — ``value is None`` for a
    tombstone — or None if the bytes do not form a valid record (torn
    write, zeroed space, corruption).

    ``verify_crc=False`` is the deliberately *naive* mode: it trusts
    any length-plausible header, so torn or corrupt records decode into
    garbage.  It exists so the fault matrix can demonstrate that it
    catches exactly the corruption CRCs prevent.
    """
    if offset + HEADER_SIZE > len(buf):
        return None
    crc, klen_field, vlen = _HEADER.unpack_from(buf, offset)
    klen = klen_field & _KLEN_MASK
    end = offset + HEADER_SIZE + klen + vlen
    if end > len(buf):
        return None
    body = bytes(buf[offset + 4:end])
    if crc == 0 and not any(body):
        return None                  # zeroed space, in any mode
    if verify_crc and crc != (zlib.crc32(body) & 0xFFFFFFFF):
        return None
    key = body[6:6 + klen]
    value = body[6 + klen:]
    if klen_field & _TOMBSTONE_FLAG:
        return key, None, end
    return key, value, end


def scan(buf, offset=0):
    """Yield valid records until the first invalid one."""
    while True:
        rec = decode(buf, offset)
        if rec is None:
            return
        key, value, offset = rec
        yield key, value
