"""A deterministic skiplist: the memtable index structure.

This is the volatile variant (the persistent one lives in
:mod:`repro.kvstore.persistent_skiplist`).  Determinism matters for the
simulator: node heights come from a seeded RNG, so identical workloads
produce identical structures and identical simulated timings.
"""

import random

MAX_LEVEL = 12
_P = 0.25


class _Node:
    __slots__ = ("key", "value", "nexts")

    def __init__(self, key, value, height):
        self.key = key
        self.value = value
        self.nexts = [None] * height


class SkipList:
    """Ordered byte-string map with O(log n) expected operations."""

    def __init__(self, seed=0):
        self._head = _Node(None, None, MAX_LEVEL)
        self._rng = random.Random(seed)
        self._level = 1
        self._count = 0
        self._bytes = 0

    def __len__(self):
        return self._count

    @property
    def approximate_bytes(self):
        """Payload bytes stored (used for flush thresholds)."""
        return self._bytes

    def _random_height(self):
        h = 1
        while h < MAX_LEVEL and self._rng.random() < _P:
            h += 1
        return h

    def _find_predecessors(self, key):
        preds = [self._head] * MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
            preds[lvl] = node
        return preds

    def put(self, key, value):
        """Insert or overwrite; returns the number of pointer updates.

        ``value=None`` stores a tombstone (LSM deletes), which ``get``
        and ``items`` faithfully return as None.
        """
        return self.put_at(self._find_predecessors(key), key, value)

    def put_at(self, preds, key, value):
        """:meth:`put` with the predecessors already located.

        The fused memtable path finds predecessors while counting seek
        steps for timing, then inserts through here — one traversal
        instead of two.  ``preds`` must come from
        :meth:`_find_predecessors`/:meth:`seek_preds` for this exact
        ``key`` with no intervening mutation.
        """
        vlen = len(value) if value is not None else 0
        candidate = preds[0].nexts[0]
        if candidate is not None and candidate.key == key:
            old_vlen = len(candidate.value) \
                if candidate.value is not None else 0
            self._bytes += vlen - old_vlen
            candidate.value = value
            return 1
        height = self._random_height()
        if height > self._level:
            self._level = height
        node = _Node(key, value, height)
        for lvl in range(height):
            node.nexts[lvl] = preds[lvl].nexts[lvl]
            preds[lvl].nexts[lvl] = node
        self._count += 1
        self._bytes += len(key) + vlen
        return height

    def get(self, key):
        """Look up ``key``; returns None if absent (or tombstoned)."""
        return self.lookup(key)[1]

    def lookup(self, key):
        """Look up ``key``; returns ``(found, value)``.

        Distinguishes "absent" (False, None) from a stored tombstone
        (True, None).
        """
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
        candidate = node.nexts[0]
        if candidate is not None and candidate.key == key:
            return True, candidate.value
        return False, None

    def items(self):
        """All (key, value) pairs in key order."""
        node = self._head.nexts[0]
        while node is not None:
            yield node.key, node.value
            node = node.nexts[0]

    def seek_steps(self, key):
        """Number of node hops a lookup of ``key`` takes (for timing)."""
        steps = 0
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
                steps += 1
            steps += 1
        return steps

    def seek_preds(self, key):
        """One walk returning ``(seek_steps, predecessors)``.

        The walk is exactly :meth:`seek_steps`'s, recording the
        per-level predecessors :meth:`put_at` needs — step count and
        resulting structure match the two-walk composition.
        """
        preds = [self._head] * MAX_LEVEL
        steps = 0
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
                steps += 1
            steps += 1
            preds[lvl] = node
        return steps, preds

    def seek_lookup(self, key):
        """One walk returning ``(seek_steps, found, value)``."""
        steps = 0
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.nexts[lvl]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.nexts[lvl]
                steps += 1
            steps += 1
        candidate = node.nexts[0]
        if candidate is not None and candidate.key == key:
            return steps, True, candidate.value
        return steps, False, None
