"""SSTables: immutable sorted runs on persistent memory.

An SSTable is written once, sequentially, with non-temporal stores
(the paper-approved shape for bulk persistence) and read with binary
search over a sparse index.  Format::

    [record]*                      -- records.encode() back to back
    [index: u32 count | (u16 klen | key | u64 offset)*]
    [footer: u64 index_offset | u64 data_size | u32 magic]

A Bloom filter (built in DRAM at open/build time) short-circuits
lookups for absent keys, as in LevelDB/RocksDB.
"""

import struct

from repro.faults.model import tolerant_read
from repro.faults.report import RecoveryReport
from repro.kvstore import records
from repro.kvstore.bloom import BloomFilter

_FOOTER = struct.Struct("<QQI")
_MAGIC = 0x55AA1234
_INDEX_HEAD = struct.Struct("<I")
_INDEX_ENTRY_HEAD = struct.Struct("<H")
_OFFSET = struct.Struct("<Q")

#: Sparse index granularity: one index entry per this many records.
INDEX_EVERY = 8


def _tolerant_entries(blob, data_size, lost):
    """Scan the data area, skipping records destroyed by media faults.

    Returns ``([(offset, key, value)], RecoveryReport)``.  After an
    unreadable hole the scanner resyncs byte-wise on the next offset
    whose record decodes with a valid CRC (records are unaligned, but
    a 32-bit CRC makes false resyncs vanishingly unlikely).
    """
    report = RecoveryReport(component="sstable")
    entries = []
    offset = 0
    while offset < data_size:
        rec = records.decode(blob, offset)
        if rec is not None:
            key, value, end = rec
            entries.append((offset, key, value))
            report.recovered += 1
            offset = end
            continue
        hole = next(((lo, ll) for lo, ll in lost
                     if lo + ll > offset and lo < data_size), None)
        if hole is None:
            if any(blob[offset:data_size]):
                report.truncated += 1
                report.note("undecodable data truncated at +%d" % offset)
            break
        report.lost += 1
        report.note("unreadable hole at +%d (%d bytes)" % hole)
        pos = max(hole[0] + hole[1], offset + 1)
        while pos < data_size and records.decode(blob, pos) is None:
            pos += 1
        if pos >= data_size:
            break
        offset = pos
    return entries, report


class SSTable:
    """One immutable sorted run inside a namespace region."""

    def __init__(self, ns, base, size, index, bloom, smallest, largest):
        self.ns = ns
        self.base = base
        self.size = size
        self._index = index          # sorted [(key, offset)]
        self._bloom = bloom
        self.smallest = smallest
        self.largest = largest

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, ns, thread, base, pairs):
        """Write sorted ``pairs`` at ``base``; returns the table.

        ``pairs`` must be sorted by key (memtable iteration order).
        """
        data = bytearray()
        index = []
        bloom = BloomFilter(capacity=max(16, len(pairs)))
        for i, (key, value) in enumerate(pairs):
            if i % INDEX_EVERY == 0:
                index.append((key, len(data)))
            bloom.add(key)
            data += records.encode(key, value)
        data_size = len(data)
        index_blob = bytearray(_INDEX_HEAD.pack(len(index)))
        for key, offset in index:
            index_blob += _INDEX_ENTRY_HEAD.pack(len(key))
            index_blob += key
            index_blob += _OFFSET.pack(offset)
        blob = bytes(data) + bytes(index_blob) + _FOOTER.pack(
            data_size, data_size + len(index_blob), _MAGIC)
        ns.pwrite(thread, base, blob, instr="ntstore")
        smallest = pairs[0][0] if pairs else b""
        largest = pairs[-1][0] if pairs else b""
        return cls(ns, base, len(blob), index, bloom, smallest, largest)

    @classmethod
    def open(cls, ns, base, size):
        """Re-open a table from its persistent bytes (recovery path)."""
        blob = ns.read_persistent(base, size)
        data_size, footer_off, magic = _FOOTER.unpack_from(
            blob, size - _FOOTER.size)
        if magic != _MAGIC:
            raise ValueError("bad SSTable magic at %#x" % base)
        count = _INDEX_HEAD.unpack_from(blob, data_size)[0]
        pos = data_size + _INDEX_HEAD.size
        index = []
        for _ in range(count):
            klen = _INDEX_ENTRY_HEAD.unpack_from(blob, pos)[0]
            pos += _INDEX_ENTRY_HEAD.size
            key = bytes(blob[pos:pos + klen])
            pos += klen
            offset = _OFFSET.unpack_from(blob, pos)[0]
            pos += _OFFSET.size
            index.append((key, offset))
        bloom = BloomFilter(capacity=max(16, count * INDEX_EVERY))
        smallest = largest = b""
        for key, value in records.scan(blob[:data_size]):
            bloom.add(key)
            if not smallest:
                smallest = key
            largest = key
        return cls(ns, base, size, index, bloom, smallest, largest)

    @classmethod
    def open_report(cls, ns, base, size):
        """Fault-tolerant re-open: ``(table_or_None, RecoveryReport)``.

        Poisoned XPLines inside the data area cost only the records
        they cover (the index and Bloom filter are rebuilt from the
        surviving records); a destroyed footer loses the whole table.
        """
        report = RecoveryReport(component="sstable@%#x" % base)
        blob, lost = tolerant_read(ns, base, size)
        footer_off = size - _FOOTER.size
        data_size, _, magic = _FOOTER.unpack_from(blob, footer_off)
        if magic != _MAGIC or data_size > footer_off:
            if any(lo + ll > footer_off for lo, ll in lost):
                report.lost += 1
                report.note("footer unreadable: table lost")
            else:
                report.truncated += 1
                report.note("bad footer magic: table dropped")
            return None, report
        entries, scan_report = _tolerant_entries(blob, data_size, lost)
        report.merge(scan_report, prefix="")
        index = []
        bloom = BloomFilter(capacity=max(16, len(entries)))
        for i, (offset, key, _value) in enumerate(entries):
            if i % INDEX_EVERY == 0:
                index.append((key, offset))
            bloom.add(key)
        smallest = entries[0][1] if entries else b""
        largest = entries[-1][1] if entries else b""
        table = cls(ns, base, size, index, bloom, smallest, largest)
        return table, report

    # -- lookups -----------------------------------------------------------------

    def may_contain(self, key):
        return self._bloom.may_contain(key) and \
            self.smallest <= key <= self.largest

    def get(self, thread, key):
        """Timed point lookup; returns the value or None."""
        return self.lookup(thread, key)[1]

    def lookup(self, thread, key):
        """Timed lookup returning ``(found, value)``.

        A tombstone record yields ``(True, None)`` so LSM reads can
        stop searching older tables.
        """
        if not self.may_contain(key):
            return False, None
        lo, hi = 0, len(self._index)
        while hi - lo > 1:                       # binary search the index
            mid = (lo + hi) // 2
            if self._index[mid][0] <= key:
                lo = mid
            else:
                hi = mid
        offset = self._index[lo][1] if self._index else 0
        # Scan up to INDEX_EVERY records, loading each from the device.
        for _ in range(INDEX_EVERY):
            window = self.ns.read_volatile(
                self.base + offset, min(self.size - offset, 4096))
            rec = records.decode(window)
            if rec is None:
                return False, None
            rkey, rvalue, consumed = rec
            self.ns.load(thread, self.base + offset, consumed)
            if rkey == key:
                return True, rvalue
            if rkey > key:
                return False, None
            offset += consumed
        return False, None

    def items(self):
        """All surviving pairs, decoded from the volatile view.

        Records behind poisoned XPLines are skipped (scrub/compaction
        must keep working on a degraded table); use :meth:`scrub` to
        account for what was lost.
        """
        blob, lost = tolerant_read(self.ns, self.base, self.size,
                                   view="volatile")
        data_size, _, _ = _FOOTER.unpack_from(blob, self.size - _FOOTER.size)
        entries, _ = _tolerant_entries(blob, data_size, lost)
        return [(key, value) for _, key, value in entries]

    def scrub(self):
        """Verify every record against media faults and CRCs.

        Returns ``(surviving_pairs, RecoveryReport)`` from the
        persistent view — the honest post-crash contents.
        """
        report = RecoveryReport(component="sstable@%#x" % self.base)
        blob, lost = tolerant_read(self.ns, self.base, self.size)
        footer_off = self.size - _FOOTER.size
        data_size, _, magic = _FOOTER.unpack_from(blob, footer_off)
        if magic != _MAGIC or data_size > footer_off:
            report.lost += 1
            report.note("footer unreadable: table lost")
            return [], report
        entries, scan_report = _tolerant_entries(blob, data_size, lost)
        report.merge(scan_report, prefix="")
        return [(key, value) for _, key, value in entries], report
