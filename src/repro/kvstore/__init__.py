"""An LSM key-value store (the RocksDB stand-in of Section 4.2).

Public surface::

    from repro.kvstore import LSMStore
    from repro.sim import Machine

    m = Machine()
    db = LSMStore(m, mode="wal-flex", kind="optane")
    t = m.thread()
    db.put(t, b"key", b"value")
    assert db.get(t, b"key") == b"value"
    m.power_fail()
    db2 = LSMStore.recover(m, mode="wal-flex", kind="optane")
    assert db2.get(t, b"key") == b"value"
"""

from repro.kvstore.bloom import BloomFilter
from repro.kvstore.lsm import MODES, LSMStore
from repro.kvstore.manifest import Manifest
from repro.kvstore.memtable import VolatileMemtable
from repro.kvstore.persistent_skiplist import PersistentSkipList
from repro.kvstore.skiplist import SkipList
from repro.kvstore.sstable import SSTable
from repro.kvstore.study import (
    SetResult, figure8, get_benchmark, mixed_benchmark, set_benchmark,
)
from repro.kvstore.wal import WalFlex, WalPosix

__all__ = [
    "BloomFilter", "LSMStore", "MODES", "Manifest", "PersistentSkipList",
    "SSTable", "SetResult", "SkipList", "VolatileMemtable", "WalFlex",
    "WalPosix", "figure8", "get_benchmark", "mixed_benchmark",
    "set_benchmark",
]
