#!/usr/bin/env python3
"""Guideline explorer: watch each best practice appear in the data.

One compact experiment per guideline of Section 5, printed as
before/after pairs, plus the LATTester sweep that Figure 9 mines.

Run:  python examples/guideline_explorer.py
"""

from repro._units import KIB
from repro.lattester import (
    contention_experiment, ewr_experiment, measure_bandwidth, sweep_grid,
)
from repro.lattester.ewr import correlation


def guideline_1():
    print("G1: avoid random accesses below 256 B")
    small = ewr_experiment(access=64, pattern="rand",
                           per_thread=256 * KIB)
    full = ewr_experiment(access=256, pattern="rand",
                          per_thread=256 * KIB)
    print("   64 B random writes: %5.2f GB/s at EWR %.2f"
          % (small.device_bandwidth_gbps, small.ewr))
    print("  256 B random writes: %5.2f GB/s at EWR %.2f"
          % (full.device_bandwidth_gbps, full.ewr))


def guideline_2():
    print("\nG2: flush promptly, or use ntstore for large transfers")
    from repro.sim import Machine, MachineConfig
    cfg = MachineConfig()
    cfg.cache.capacity_bytes = 1024 * KIB
    unflushed = measure_bandwidth(kind="optane-ni", op="store",
                                  threads=2, per_thread=2048 * KIB,
                                  machine=Machine(cfg))
    flushed = measure_bandwidth(kind="optane-ni", op="clwb", threads=2,
                                per_thread=256 * KIB)
    nt = measure_bandwidth(kind="optane-ni", op="ntstore", threads=2,
                           per_thread=256 * KIB)
    print("  store only      : EWR %.2f (cache evictions scramble the "
          "stream)" % unflushed.ewr)
    print("  store + clwb    : EWR %.2f" % flushed.ewr)
    print("  ntstore         : EWR %.2f, %.2f GB/s (best for bulk)"
          % (nt.ewr, nt.gbps))


def guideline_3():
    print("\nG3: limit concurrent threads per DIMM")
    for threads in (1, 4, 8):
        r = measure_bandwidth(kind="optane-ni", op="ntstore",
                              threads=threads, per_thread=64 * KIB)
        print("  %2d writer(s) on one DIMM: %4.2f GB/s (EWR %.2f)"
              % (threads, r.gbps, r.ewr))
    pinned = contention_experiment(dimms_per_thread=1,
                                   per_thread=48 * KIB)
    spread = contention_experiment(dimms_per_thread=6,
                                   per_thread=48 * KIB)
    print("  6 threads pinned 1:1 to DIMMs: %.1f GB/s" %
          pinned.bandwidth_gbps)
    print("  6 threads spread over all 6  : %.1f GB/s  "
          "(head-of-line blocking)" % spread.bandwidth_gbps)


def guideline_4():
    print("\nG4: avoid remote-socket persistent memory")
    local = measure_bandwidth(kind="optane", op="ntstore", threads=4,
                              per_thread=64 * KIB)
    remote = measure_bandwidth(kind="optane-remote", op="ntstore",
                               threads=4, per_thread=64 * KIB)
    print("  4-thread writes: local %.1f GB/s, remote %.1f GB/s"
          % (local.gbps, remote.gbps))
    print("  (mixed read/write remote traffic is far worse — see "
          "examples/transactions_and_numa.py)")


def systematic_sweep():
    print("\nthe systematic sweep (Figure 9's raw material), "
          "small grid:")
    records = sweep_grid(grid={
        "kind": ("optane-ni",),
        "op": ("ntstore",),
        "pattern": ("seq", "rand"),
        "access": (64, 256, 1024),
        "threads": (1, 4, 8),
    }, per_thread=48 * KIB)
    from repro.lattester.ewr import EWRPoint
    pts = [EWRPoint(op="ntstore", access=r["access"],
                    threads=r["threads"], pattern=r["pattern"],
                    power_budget=1.0, ewr=r["ewr"],
                    device_bandwidth_gbps=r["gbps"])
           for r in records if r["ewr"] != float("inf")]
    slope, r2 = correlation(pts)
    print("  %d runs; bandwidth vs EWR: slope %.2f GB/s per EWR, "
          "r^2 = %.2f (paper: 1.03, 0.97)" % (len(pts), slope, r2))


def main():
    guideline_1()
    guideline_2()
    guideline_3()
    guideline_4()
    systematic_sweep()


if __name__ == "__main__":
    main()
