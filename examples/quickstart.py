#!/usr/bin/env python3
"""Quickstart: the simulated Optane platform in five minutes.

Builds the machine, measures the paper's headline numbers, writes some
durable data, pulls the plug, and checks what survived.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.core import Advisor, AccessPlan, audit_access_pattern
from repro.lattester import read_latency, write_latency, measure_bandwidth


def main():
    # --- 1. Build the machine and a persistent namespace. -----------------
    machine = Machine()
    pmem = machine.namespace("optane")      # 6 DIMMs, 4 KB interleaved
    t = machine.thread()

    # --- 2. Durable writes, and what a power failure keeps. ---------------
    pmem.pwrite(t, 0, b"synced and fenced", instr="ntstore")
    pmem.store(t, 4096, 64, data=b"X" * 64)         # cached, never flushed
    machine.power_fail()
    print("after power failure:")
    print("  fenced ntstore :", pmem.read_persistent(0, 17))
    print("  unflushed store:", pmem.read_persistent(4096, 16), "(lost!)")

    # --- 3. The paper's headline latencies (Figure 2). --------------------
    print("\nidle latency (ns)          DRAM    Optane   (paper)")
    for label, fn, args, paper in (
        ("sequential read ", read_latency, ("seq",), "81 / 169"),
        ("random read     ", read_latency, ("rand",), "101 / 305"),
        ("store+clwb+fence", write_latency, ("clwb",), "57 / 62"),
        ("ntstore+fence   ", write_latency, ("ntstore",), "86 / 90"),
    ):
        dram = fn("dram", *args, samples=200).mean_ns
        opt = fn("optane", *args, samples=200).mean_ns
        print("  %s %7.1f  %7.1f   (%s)" % (label, dram, opt, paper))

    # --- 4. Bandwidth asymmetry (Figure 4). -------------------------------
    read4 = measure_bandwidth(kind="optane-ni", op="read", threads=4)
    write1 = measure_bandwidth(kind="optane-ni", op="ntstore", threads=1)
    write8 = measure_bandwidth(kind="optane-ni", op="ntstore", threads=8)
    print("\nsingle DIMM: read %.1f GB/s, write %.1f GB/s (%.1fx gap)"
          % (read4.gbps, write1.gbps, read4.gbps / write1.gbps))
    print("8 writer threads: %.1f GB/s, EWR %.2f  "
          "<- guideline #3: limit writers" % (write8.gbps, write8.ewr))

    # --- 5. Ask the guidelines before designing your data structure. ------
    advisor = Advisor()
    print("\nadvisor says: persist a 2 KB object with '%s', "
          "a 64 B object with '%s'"
          % (advisor.recommend_store_instruction(2048),
             advisor.recommend_store_instruction(64)))
    plan = AccessPlan(access_bytes=64, pattern="rand", is_write=True,
                      threads=24, dimms=6, remote=True,
                      mixed_read_write=True)
    print("auditing a worst-practice plan:")
    for violation in audit_access_pattern(plan):
        print("  ", violation)


if __name__ == "__main__":
    main()
