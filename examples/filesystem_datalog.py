#!/usr/bin/env python3
"""NOVA and NOVA-datalog: tuning a file system for 3D XPoint.

Runs the Section 5.1.2 experiment: small random overwrites on stock
NOVA (copy-on-write 4 KB pages) versus NOVA-datalog (data embedded in
the inode log), shows the device-level reason (EWR / media traffic),
and finishes with a crash to prove datalog keeps NOVA's atomicity.

Run:  python examples/filesystem_datalog.py
"""

import random

from repro._units import KIB
from repro.fs import NovaFS, PAGE
from repro.sim import Machine


def overwrite_run(datalog, ops=400):
    machine = Machine()
    fs = NovaFS(machine, datalog=datalog)
    t = machine.thread()
    inode = fs.create(t)
    for b in range(64):                        # a 256 KB file
        fs.write(t, inode, b * PAGE, b"\xAB" * PAGE)
    dimms = fs.devices[0].dimms
    snaps = [d.counters.snapshot() for d in dimms]
    rng = random.Random(3)
    start = t.now
    for _ in range(ops):
        offset = rng.randrange(64 * PAGE // 64) * 64
        fs.write(t, inode, offset, b"\x11" * 64)
    elapsed = t.now - start
    media = sum(d.counters.delta(s).media_write_bytes
                for d, s in zip(dimms, snaps))
    return elapsed / ops, media / ops, machine, fs, inode


def main():
    print("64 B random overwrites on a 256 KB file:")
    lat_cow, media_cow, *_ = overwrite_run(datalog=False)
    lat_dl, media_dl, machine, fs, inode = overwrite_run(datalog=True)
    print("  NOVA (COW 4 KB pages): %6.2f us/op, %5.0f media bytes/op"
          % (lat_cow / 1000, media_cow))
    print("  NOVA-datalog         : %6.2f us/op, %5.0f media bytes/op"
          % (lat_dl / 1000, media_dl))
    print("  speedup: %.1fx (paper: 7x) — a 64 B write no longer "
          "rewrites a 4 KB page" % (lat_cow / lat_dl))

    # Atomicity is preserved: crash, remount, verify.
    t = machine.thread()
    fs.write(t, inode, 100, b"last-durable-write")
    machine.power_fail()
    remounted = NovaFS.mount(machine, datalog=True)
    got = remounted.read_persistent_file(inode, 100, 18)
    print("\nafter power failure, remount reads:", got)
    assert got == b"last-durable-write"

    # The log cleaner keeps the log bounded.
    t2 = machine.thread()
    before = remounted._files[inode].log.length
    remounted.clean(t2, inode)
    after = remounted._files[inode].log.length
    print("log cleaner: %d entries -> %d (embedded data merged into "
          "pages)" % (before, after))

    # Multi-DIMM awareness (Section 5.3.1), in one line each:
    from repro.fs.fio import run_fio
    m2 = Machine()
    interleaved = run_fio(NovaFS(m2, kinds=("optane",)), m2, op="write",
                          threads=12, block_size=4 * KIB,
                          file_blocks=16, ios=32)
    m3 = Machine()
    pinned_fs = NovaFS(m3, kinds=[m3.namespace("optane-ni", dimm=d)
                                  for d in range(6)], pinned=True)
    pinned = run_fio(pinned_fs, m3, op="write", threads=12,
                     block_size=4 * KIB, file_blocks=16, ios=32)
    print("\nFIO 12-writer bandwidth: interleaved %.1f GB/s, "
          "DIMM-pinned %.1f GB/s (+%.0f%%)"
          % (interleaved.bandwidth_gbps, pinned.bandwidth_gbps,
             100 * (pinned.bandwidth_gbps / interleaved.bandwidth_gbps
                    - 1)))


if __name__ == "__main__":
    main()
