#!/usr/bin/env python3
"""A crash-safe key-value store on persistent memory.

Demonstrates the RocksDB case study (Section 4.2): the same workload
on the three durability strategies, with a mid-run power failure and
full recovery — and why the winning strategy depends on the memory
technology underneath.

Run:  python examples/kvstore_crash_recovery.py
"""

import random

from repro.kvstore import LSMStore
from repro.kvstore.study import set_benchmark
from repro.sim import Machine


def crash_and_recover(mode):
    """Write 2000 records, pull the plug, recover, verify."""
    machine = Machine()
    db = LSMStore(machine, mode=mode)
    t = machine.thread()
    rng = random.Random(7)
    written = {}
    for i in range(2000):
        key = b"user:%08d" % rng.randrange(500)
        value = b"profile-v%d" % i
        db.put(t, key, value)              # synced: survives any crash
        written[key] = value

    machine.power_fail()                    # yank the cord

    recovered = LSMStore.recover(machine, mode=mode)
    checker = machine.thread()
    lost = sum(1 for k, v in written.items()
               if recovered.get(checker, k) != v)
    print("  %-20s recovered %d/%d keys, %d lost, %d table(s) on media"
          % (mode, len(written) - lost, len(written), lost,
             len(recovered.tables)))
    assert lost == 0


def strategy_shootout():
    """The Figure 8 inversion, in miniature."""
    print("\nSET throughput (20 B keys, 100 B values, sync each op):")
    for kind in ("dram", "optane"):
        results = {}
        for mode in ("wal-posix", "wal-flex", "persistent-memtable"):
            results[mode] = set_benchmark(mode, kind=kind,
                                          ops=4000).kops_per_sec
        best = max(results, key=results.get)
        rows = "  ".join("%s=%.0fK" % (m, v) for m, v in results.items())
        print("  %-7s %s   -> best: %s" % (kind, rows, best))
    print("\nOn DRAM 'persistent memory', skip the WAL and persist the "
          "memtable.\nOn real 3D XPoint, the FLEX log's sequential "
          "appends win — emulation\ninverts the design decision "
          "(Section 4.2).")


def main():
    print("crash recovery, all three durability strategies:")
    for mode in ("wal-posix", "wal-flex", "persistent-memtable"):
        crash_and_recover(mode)
    strategy_shootout()


if __name__ == "__main__":
    main()
