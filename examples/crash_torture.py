#!/usr/bin/env python3
"""Crash torture: power-fail at every persist boundary and recover.

The simulator is deterministic, so crash consistency can be tested
*exhaustively*: run a workload once to enumerate every instant at
which a cache line reaches the ADR domain, then replay it once per
instant, cutting power exactly there, and verify that recovery always
lands in a legal state.  This is the style of testing the paper's
crash-consistent systems (NOVA's logs, PMDK's undo transactions)
implicitly demand and rarely get.

Run:  python examples/crash_torture.py
"""

from repro.fs import NovaFS, PAGE
from repro.kvstore import LSMStore
from repro.pmdk import PmemPool, Transaction, recover
from repro.sim import count_persists, exhaustive_crash_test


def torture_kvstore():
    keys = [b"account-%02d" % i for i in range(8)]

    def workload(machine):
        db = LSMStore(machine, mode="wal-flex")
        t = machine.thread()
        for i, key in enumerate(keys):
            db.put(t, key, b"balance-%04d" % (100 * i))

    failures = []

    def check(machine, crashed_at):
        db = LSMStore.recover(machine, mode="wal-flex")
        t = machine.thread()
        present = [db.get(t, k) is not None for k in keys]
        # Synced puts must survive as a prefix: no holes.
        if False in present and any(present[present.index(False):]):
            failures.append(crashed_at)

    total = count_persists(workload)
    exercised = exhaustive_crash_test(workload, check)
    print("kv store : crashed at all %d/%d persist points — %s"
          % (exercised, total,
             "no holes, no torn values" if not failures
             else "FAILURES at %s" % failures))
    assert not failures


def torture_filesystem():
    def workload(machine):
        fs = NovaFS(machine, datalog=True)
        t = machine.thread()
        inode = fs.create(t)
        fs.write(t, inode, 0, b"v1" * (PAGE // 2))
        fs.write(t, inode, 10, b"patch-one")
        fs.write(t, inode, 2000, b"patch-two")

    bad = []

    def check(machine, crashed_at):
        fs = NovaFS.mount(machine, datalog=True)
        if 1 not in fs._files:
            return
        spot = fs.read_persistent_file(1, 10, 9)
        if spot not in (b"", b"v1" * 4 + b"v", b"patch-one"):
            bad.append((crashed_at, spot))

    exercised = exhaustive_crash_test(workload, check, stride=3)
    print("filesystem: crashed at %d points — %s"
          % (exercised, "old-or-new every time" if not bad
             else "TORN: %s" % bad))
    assert not bad


def torture_transactions():
    def workload(machine):
        t = machine.thread()
        pool = PmemPool.create(machine, t)
        obj = pool.heap.alloc(128) - pool.base
        pool.write(t, obj, b"OLD!" * 32, instr="ntstore")
        with Transaction(pool, t) as tx:
            tx.store(obj, b"NEW!" * 32)

    mixed = []

    def check(machine, crashed_at):
        try:
            pool = PmemPool.open(machine)
        except ValueError:
            return
        t = machine.thread()
        recover(pool, t)
        obj = pool.heap.alloc(128) - pool.base - 128
        value = pool.read_persistent(obj, 128)
        if value not in (b"\x00" * 128, b"OLD!" * 32, b"NEW!" * 32):
            mixed.append(crashed_at)

    exercised = exhaustive_crash_test(workload, check, stride=2)
    print("pmdk tx  : crashed at %d points — %s"
          % (exercised, "atomic (old xor new)" if not mixed
             else "MIXED at %s" % mixed))
    assert not mixed


def main():
    torture_kvstore()
    torture_filesystem()
    torture_transactions()
    print("\nall substrates recover to a legal state from every "
          "possible power-failure instant.")


if __name__ == "__main__":
    main()
