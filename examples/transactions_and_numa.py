#!/usr/bin/env python3
"""Transactions, micro-buffering, and the NUMA trap.

Part 1 — a persistent object updated with PMDK-style undo-log
transactions, including a crash mid-transaction and recovery.
Part 2 — the micro-buffering instruction crossover (Figure 15).
Part 3 — why you keep persistent memory NUMA-local (Figures 18/19).

Run:  python examples/transactions_and_numa.py
"""

import struct

from repro.pmdk import MicroBufferTx, PmemPool, Transaction, recover
from repro.pmdk.study import noop_tx_latency
from repro.pmemkv import CMap, overwrite_benchmark
from repro.sim import Machine

ACCOUNT = struct.Struct("<Q56x")          # one cache line per account


def transfer(pool, t, a_off, b_off, amount):
    """Atomically move money between two persistent accounts."""
    with Transaction(pool, t) as tx:
        a = ACCOUNT.unpack(pool.read_volatile(a_off, ACCOUNT.size))[0]
        b = ACCOUNT.unpack(pool.read_volatile(b_off, ACCOUNT.size))[0]
        tx.store(a_off, ACCOUNT.pack(a - amount))
        tx.store(b_off, ACCOUNT.pack(b + amount))


def part1_transactions():
    machine = Machine()
    t = machine.thread()
    pool = PmemPool.create(machine, t)
    a = pool.heap.alloc(ACCOUNT.size) - pool.base
    b = pool.heap.alloc(ACCOUNT.size) - pool.base
    pool.write(t, a, ACCOUNT.pack(1000), instr="ntstore")
    pool.write(t, b, ACCOUNT.pack(0), instr="ntstore")

    transfer(pool, t, a, b, 250)

    # Crash in the middle of a transfer: snapshots taken, new values
    # partially flushed, no commit.
    tx = Transaction(pool, t)
    tx.begin()
    tx.store(a, ACCOUNT.pack(999999))
    pool.ns.clwb(t, pool.addr(a), 64)
    t.sfence()
    machine.power_fail()

    pool2 = PmemPool.open(machine)
    t2 = machine.thread()
    rolled_back = recover(pool2, t2)
    bal_a = ACCOUNT.unpack(pool2.read_persistent(a, ACCOUNT.size))[0]
    bal_b = ACCOUNT.unpack(pool2.read_persistent(b, ACCOUNT.size))[0]
    print("part 1: after crash + recovery (%d range(s) rolled back): "
          "a=%d b=%d, total %d" % (rolled_back, bal_a, bal_b,
                                   bal_a + bal_b))
    assert bal_a + bal_b == 1000


def part2_microbuffering():
    print("\npart 2: micro-buffering no-op tx latency (ns)")
    print("  size      PGL-NT   PGL-CLWB   winner")
    for size in (64, 256, 1024, 4096):
        nt = noop_tx_latency("ntstore", size, reps=30).mean_ns
        cl = noop_tx_latency("clwb", size, reps=30).mean_ns
        print("  %5d B  %7.0f  %9.0f   %s"
              % (size, nt, cl, "clwb" if cl < nt else "ntstore"))
    print("  -> flush small objects, stream large ones (guideline #2)")


def part3_numa():
    print("\npart 3: PMemKV overwrite (read-modify-write), 4 threads")
    for kind in ("optane", "optane-remote", "dram", "dram-remote"):
        r = overwrite_benchmark(kind, threads=4, ops_per_thread=100)
        print("  pool on %-14s %6.2f GB/s" % (kind, r.bandwidth_gbps))
    print("  -> remote 3D XPoint collapses under mixed traffic; remote "
          "DRAM barely notices (guideline #4)")

    # And the store still works remotely — it is just slow.
    machine = Machine()
    t = machine.thread()
    pool = PmemPool.create(machine, t, kind="optane-remote")
    kv = CMap(pool, buckets=64)
    kv.put(t, b"placement", b"matters")
    assert kv.get(t, b"placement") == b"matters"


def main():
    part1_transactions()
    part2_microbuffering()
    part3_numa()


if __name__ == "__main__":
    main()
