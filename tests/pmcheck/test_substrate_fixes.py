"""Regression tests for the ordering fixes the checker drove.

Satellite fixes this PR made to the substrates and the engine:

* ``ThreadCtx.sfence`` on nothing pending is a true latency no-op
  (tests live in ``tests/sim/test_engine.py``);
* an empty PMDK transaction neither fences nor touches its lane;
* the protected substrates carry ``require_order`` annotations that
  hold under direct use, not just under YCSB traffic.
"""

from repro.pmcheck import PmCheck, checking
from repro.pmdk import PmemPool, Transaction
from repro.sim import Machine


def make_pool():
    m = Machine()
    t = m.thread()
    return m, t, PmemPool.create(m, t)


class TestEmptyTransaction:
    def test_empty_commit_costs_no_time(self):
        m, t, pool = make_pool()
        before = t.now
        with Transaction(pool, t):
            pass
        assert t.now == before

    def test_empty_commit_is_clean_under_the_checker(self):
        m, t, pool = make_pool()
        with checking(m) as checker:
            with Transaction(pool, t):
                pass
            assert checker.summary()["total"] == 0

    def test_empty_abort_leaves_the_lane_alone(self):
        m, t, pool = make_pool()
        tx = Transaction(pool, t)
        tx.begin()
        before = t.now
        tx.abort()
        assert t.now == before


class TestProtectedTransaction:
    def test_add_store_commit_is_clean(self):
        m, t, pool = make_pool()
        obj = pool.heap.alloc(64) - pool.base
        pool.write(t, obj, b"a" * 64)
        with checking(m) as checker:
            with Transaction(pool, t) as tx:
                tx.store(obj, b"b" * 64)
            assert checker.summary()["total"] == 0, \
                checker.summary()["violations"]

    def test_recovery_after_crash_is_clean(self):
        m, t, pool = make_pool()
        obj = pool.heap.alloc(64) - pool.base
        pool.write(t, obj, b"a" * 64)
        tx = Transaction(pool, t)
        tx.begin()
        tx.store(obj, b"b" * 64)
        # Make the in-place damage durable, then crash before commit.
        pool.ns.clwb(t, pool.addr(obj), 64)
        t.sfence()
        m.power_fail()
        pool2 = PmemPool.open(m)
        t2 = m.thread()
        checker = PmCheck(m).install()
        from repro.pmdk import recover
        assert recover(pool2, t2) == 1
        assert checker.summary()["total"] == 0, \
            checker.summary()["violations"]
        checker.uninstall()
