"""The ``pmcheck`` verb and ``serve --pmcheck``."""

import json
import os

import pytest

from repro.__main__ import main


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


class TestPmCheckCli:
    def test_protected_cell_exits_0_with_report(self, cache_env,
                                                capsys):
        out = str(cache_env / "pmcheck.json")
        assert main(["pmcheck", "ycsb-a", "lsm", "--quick",
                     "--jobs", "1", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "persistency-order check (quick)" in stdout
        assert "clean" in stdout
        with open(out) as fh:
            report = json.load(fh)
        assert report["violations"] == []
        assert len(report["cells"]) == 1
        assert os.path.exists(out + ".manifest.json")

    def test_naive_detects_violations_and_exits_1(self, cache_env,
                                                  capsys):
        out = str(cache_env / "naive.json")
        assert main(["pmcheck", "ycsb-a", "lsm", "--quick", "--naive",
                     "--jobs", "1", "--out", out]) == 1
        stdout = capsys.readouterr().out
        assert "PERSISTENCY-ORDER VIOLATIONS" in stdout
        assert "ack-before-fence" in stdout
        assert "kvstore/wal.py" in stdout
        with open(out) as fh:
            report = json.load(fh)
        assert report["violations"]

    def test_naive_nova_exits_2(self, cache_env, capsys):
        assert main(["pmcheck", "ycsb-a", "nova", "--quick",
                     "--naive"]) == 2
        assert "naive" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, cache_env, capsys):
        assert main(["pmcheck", "nope", "lsm", "--quick"]) == 2


class TestServePmCheck:
    def test_serve_pmcheck_clean_exits_0(self, cache_env, capsys):
        out = str(cache_env / "serve.json")
        assert main(["serve", "ycsb-a", "lsm", "--quick", "--pmcheck",
                     "--jobs", "1", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "pmcheck: persist ordering clean" in stdout
        with open(out) as fh:
            report = json.load(fh)
        assert report["pmcheck"] == {"total": 0, "violations": []}

    def test_serve_without_pmcheck_has_no_section(self, cache_env,
                                                  capsys):
        out = str(cache_env / "plain.json")
        assert main(["serve", "ycsb-a", "lsm", "--quick",
                     "--jobs", "1", "--out", out]) == 0
        capsys.readouterr()
        with open(out) as fh:
            report = json.load(fh)
        assert "pmcheck" not in report
