"""The pmcheck matrix: grids, cells, determinism, checker transparency."""

import json

import pytest

from repro.harness.cache import ResultCache
from repro.pmcheck import (
    CHECK_WORKLOADS, PmCheck, build_pmcheck_grid, pmcheck_cell,
    run_pmcheck,
)
from repro.pmcheck.state import (
    V_ACK_BEFORE_FENCE, V_UNORDERED,
)
from repro.sim.platform import Machine
from repro.workloads.generators import get_workload
from repro.workloads.loadloop import closed_loop
from repro.workloads.service import SUBSTRATES, make_service

#: A shape small enough to cover the whole matrix inside tier-1 time.
TINY = {"seed": 0, "records": 64, "ops": 128, "clients": 2}


def cell(workload, substrate, naive=False, **overrides):
    payload = dict(TINY, workload=workload, substrate=substrate,
                   naive=naive)
    payload.update(overrides)
    return pmcheck_cell(payload)


class TestGrid:
    def test_quick_grid_covers_every_pair(self):
        payloads = build_pmcheck_grid(quick=True)
        assert len(payloads) == len(CHECK_WORKLOADS) * len(SUBSTRATES)

    def test_naive_grid_excludes_nova(self):
        payloads = build_pmcheck_grid(quick=True, naive=True)
        assert not any(p["substrate"] == "nova" for p in payloads)
        assert len(payloads) == len(CHECK_WORKLOADS) * 3

    def test_naive_nova_raises(self):
        with pytest.raises(ValueError):
            build_pmcheck_grid(substrate="nova", naive=True)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            build_pmcheck_grid(workload="nope")

    def test_unknown_substrate_raises(self):
        with pytest.raises(ValueError):
            build_pmcheck_grid(substrate="nope")


class TestProtectedMatrix:
    @pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
    @pytest.mark.parametrize("workload", CHECK_WORKLOADS)
    def test_protected_cell_is_clean(self, workload, substrate):
        record = cell(workload, substrate)
        assert record["pmcheck"]["total"] == 0, \
            record["pmcheck"]["violations"]

    def test_cell_reports_served_traffic(self):
        record = cell("ycsb-a", "lsm")
        assert record["served"]["ops"] == TINY["ops"]


class TestNaiveMatrix:
    def test_naive_lsm_acks_before_the_fence(self):
        summary = cell("ycsb-a", "lsm", naive=True)["pmcheck"]
        assert set(summary["kinds"]) == {V_ACK_BEFORE_FENCE}
        assert summary["violations"][0]["site"].startswith(
            "kvstore/wal.py")

    def test_naive_pmemkv_acks_before_the_fence(self):
        summary = cell("ycsb-a", "pmemkv", naive=True)["pmcheck"]
        assert set(summary["kinds"]) == {V_ACK_BEFORE_FENCE}
        assert summary["violations"][0]["site"].startswith(
            "pmemkv/cmap.py")

    def test_naive_pmdk_breaks_publish_order(self):
        summary = cell("ycsb-a", "pmdk", naive=True)["pmcheck"]
        assert V_UNORDERED in summary["kinds"]

    def test_naive_verdict_is_deterministic(self):
        first = cell("ycsb-a", "lsm", naive=True)
        second = cell("ycsb-a", "lsm", naive=True)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)


class TestCheckerTransparency:
    """Checker-on runs must report the same simulated results."""

    @pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
    def test_report_is_byte_identical_with_checker_on(self, substrate):
        spec = get_workload("ycsb-a")

        def serve(check):
            machine = Machine()
            checker = PmCheck(machine).install() if check else None
            service = make_service(substrate, machine, spec,
                                   records=TINY["records"],
                                   ops=TINY["ops"], seed=0)
            report = closed_loop(machine, service, spec,
                                 records=TINY["records"],
                                 ops=TINY["ops"],
                                 clients=TINY["clients"], seed=0)
            if checker is not None:
                assert checker.summary()["total"] == 0
                checker.uninstall()
            return report

        assert json.dumps(serve(False), sort_keys=True) == \
            json.dumps(serve(True), sort_keys=True)


class TestRunPmCheck:
    def _run(self, tmp_path, tag, jobs, **kw):
        cache = ResultCache(root=str(tmp_path / tag))
        return run_pmcheck(workload="ycsb-a", substrate="lsm",
                           quick=True, jobs=jobs, cache=cache, **kw)

    def test_manifest_is_byte_identical_across_job_counts(self,
                                                          tmp_path):
        serial = self._run(tmp_path, "c1", jobs=1)
        parallel = self._run(tmp_path, "c2", jobs=2)
        a = str(tmp_path / "serial.json")
        b = str(tmp_path / "parallel.json")
        serial.manifest.save(a)
        parallel.manifest.save(b)
        with open(a, "rb") as fh:
            first = fh.read()
        with open(b, "rb") as fh:
            second = fh.read()
        assert first == second

    def test_protected_run_is_ok(self, tmp_path):
        run = self._run(tmp_path, "ok", jobs=1)
        assert run.ok
        assert not run.violations

    def test_naive_run_reports_annotated_violations(self, tmp_path):
        run = self._run(tmp_path, "naive", jobs=1, naive=True)
        assert not run.ok
        assert run.violations
        assert run.violations[0]["cell"] == {
            "workload": "ycsb-a", "substrate": "lsm", "naive": True}

    def test_cached_rerun_keeps_records_identical(self, tmp_path):
        cache = ResultCache(root=str(tmp_path / "cache"))
        cold = run_pmcheck(workload="ycsb-a", substrate="lsm",
                           quick=True, jobs=1, cache=cache)
        warm = run_pmcheck(workload="ycsb-a", substrate="lsm",
                           quick=True, jobs=1, cache=cache)
        assert json.dumps(cold.records, sort_keys=True) == \
            json.dumps(warm.records, sort_keys=True)
