"""Unit tests for the persistency-order state machine."""

import pytest

from repro._units import CACHELINE
from repro.pmcheck import KINDS, PmCheck, checking
from repro.pmcheck.state import (
    V_ACK_BEFORE_FENCE, V_DIRTY_AT_POWER_FAIL, V_FENCE_WITHOUT_FLUSH,
    V_REDUNDANT_FENCE, V_REDUNDANT_FLUSH, V_UNFLUSHED_AT_ACK,
    V_UNORDERED,
)
from repro.sim.platform import Machine


@pytest.fixture
def rig():
    machine = Machine()
    checker = PmCheck(machine).install()
    ns = machine.namespace("optane")
    thread = machine.thread()
    return machine, checker, ns, thread


def kinds(checker):
    return checker.summary()["kinds"]


class TestCleanProtocols:
    def test_store_clwb_sfence_ack_is_clean(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        ns.clwb(t, 0)
        t.sfence()
        checker.op_ack(t)
        assert checker.summary()["total"] == 0

    def test_ntstore_sfence_ack_is_clean(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "insert")
        ns.ntstore(t, 0, 256)
        t.sfence()
        checker.op_ack(t)
        assert checker.summary()["total"] == 0

    def test_mfence_orders_pending_and_never_flags(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        ns.clwb(t, 0)
        t.mfence()
        checker.op_ack(t)
        t.mfence()        # empty mfence: drains loads, never redundant
        assert checker.summary()["total"] == 0


class TestAckViolations:
    def test_dirty_line_at_ack_is_unflushed(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        checker.op_ack(t)
        assert kinds(checker) == {V_UNFLUSHED_AT_ACK: 1}

    def test_pending_line_at_ack_is_ack_before_fence(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        ns.clwb(t, 0)
        checker.op_ack(t)
        assert kinds(checker) == {V_ACK_BEFORE_FENCE: 1}

    def test_evicted_line_at_ack_is_unflushed(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        checker.on_evict(ns.ns_id, 0)
        checker.op_ack(t)
        summary = checker.summary()
        assert summary["kinds"] == {V_UNFLUSHED_AT_ACK: 1}
        assert "eviction" in summary["violations"][0]["note"]

    def test_redirtied_line_is_not_durabled_by_stale_wpq_entry(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        ns.clwb(t, 0)
        ns.store(t, 0)     # re-dirty: the pending entry is now stale
        t.sfence()
        checker.op_ack(t)
        assert kinds(checker) == {V_UNFLUSHED_AT_ACK: 1}

    def test_ack_without_window_is_a_noop(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        checker.op_ack(t)   # never began: nothing to audit
        assert checker.summary()["total"] == 0


class TestFenceViolations:
    def test_sfence_over_dirty_lines_is_fence_without_flush(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        t.sfence()
        assert kinds(checker) == {V_FENCE_WITHOUT_FLUSH: 1}

    def test_sfence_with_nothing_is_redundant(self, rig):
        _, checker, ns, t = rig
        t.sfence()
        assert kinds(checker) == {V_REDUNDANT_FENCE: 1}

    def test_back_to_back_sfence_after_real_work_is_redundant(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        ns.clwb(t, 0)
        t.sfence()
        t.sfence()
        assert kinds(checker) == {V_REDUNDANT_FENCE: 1}


class TestFlushViolations:
    def test_flush_of_clean_line_is_redundant(self, rig):
        _, checker, ns, t = rig
        ns.clwb(t, 0)
        assert kinds(checker) == {V_REDUNDANT_FLUSH: 1}

    def test_double_flush_is_redundant(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        ns.clwb(t, 0)
        ns.clwb(t, 0)
        assert kinds(checker) == {V_REDUNDANT_FLUSH: 1}

    def test_flush_of_durable_line_is_redundant(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        ns.clwb(t, 0)
        t.sfence()
        ns.clwb(t, 0)
        assert kinds(checker) == {V_REDUNDANT_FLUSH: 1}

    def test_flush_after_eviction_is_not_redundant(self, rig):
        _, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        checker.on_evict(ns.ns_id, 0)
        ns.clwb(t, 0)      # re-flush gives the fence something to order
        t.sfence()
        checker.op_ack(t)
        assert checker.summary()["total"] == 0


class TestPowerFail:
    def test_dirty_line_at_power_fail_is_flagged(self, rig):
        machine, checker, ns, t = rig
        ns.store(t, 0)
        machine.power_fail()
        assert kinds(checker) == {V_DIRTY_AT_POWER_FAIL: 1}

    def test_open_window_excuses_in_flight_dirty_lines(self, rig):
        machine, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        machine.power_fail()
        assert checker.summary()["total"] == 0

    def test_already_blamed_lines_are_not_reblamed(self, rig):
        machine, checker, ns, t = rig
        checker.op_begin(t, "update")
        ns.store(t, 0)
        checker.op_ack(t)                       # unflushed-at-ack
        machine.power_fail()
        assert kinds(checker) == {V_UNFLUSHED_AT_ACK: 1}

    def test_eadr_machines_lose_nothing(self):
        machine = Machine()
        machine.config.cache.eadr = True
        checker = PmCheck(machine).install()
        ns = machine.namespace("optane")
        t = machine.thread()
        ns.store(t, 0)
        machine.power_fail()
        assert checker.summary()["total"] == 0

    def test_power_fail_resets_line_state(self, rig):
        machine, checker, ns, t = rig
        ns.store(t, 0)
        machine.power_fail()
        # Post-failure world is all-clean: the same protocol replayed
        # correctly reports nothing new.
        checker.op_begin(t, "update")
        ns.store(t, 0)
        ns.clwb(t, 0)
        t.sfence()
        checker.op_ack(t)
        assert kinds(checker) == {V_DIRTY_AT_POWER_FAIL: 1}


class TestRequireOrder:
    def _durable(self, ns, t, addr, size=CACHELINE):
        ns.ntstore(t, addr, size)
        t.sfence()

    def test_ordered_writes_pass(self, rig):
        _, checker, ns, t = rig
        self._durable(ns, t, 0)
        checker.require_order([(ns, 0, 64)], [(ns, 128, 8)],
                              note="body before header")
        self._durable(ns, t, 128, 8)
        assert checker.summary()["total"] == 0

    def test_same_fence_durability_is_a_violation(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        ns.clwb(t, 0)
        checker.require_order([(ns, 0, 64)], [(ns, 128, 8)])
        ns.ntstore(t, 128, 8)
        t.sfence()         # one fence orders both: nothing orders them
        assert V_UNORDERED in kinds(checker)

    def test_later_without_earlier_is_a_violation(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)     # earlier written but never flushed
        checker.require_order([(ns, 0, 64)], [(ns, 128, 8)])
        self._durable(ns, t, 128, 8)
        summary = checker.summary()
        assert summary["kinds"] == {V_UNORDERED: 1}
        assert "dirty" in summary["violations"][0]["note"]

    def test_rule_waits_for_a_fresh_later_epoch(self, rig):
        _, checker, ns, t = rig
        # The later line is already durable from a previous occupant;
        # the rule must not fire until it is re-written and re-fenced.
        self._durable(ns, t, 128, 8)
        self._durable(ns, t, 0)
        checker.require_order([(ns, 0, 64)], [(ns, 128, 8)])
        assert checker._rules
        self._durable(ns, t, 128, 8)
        assert not checker._rules
        assert checker.summary()["total"] == 0

    def test_shared_lines_are_checked_on_the_later_side(self, rig):
        _, checker, ns, t = rig
        # Header at 0, body at 0..256: the shared first line must not
        # make the rule unsatisfiable against itself.
        self._durable(ns, t, 0, 256)
        checker.require_order([(ns, 0, 256)], [(ns, 0, 8)])
        self._durable(ns, t, 0, 8)
        assert checker.summary()["total"] == 0


class TestReporting:
    def test_violations_dedupe_by_site_with_counts(self, rig):
        _, checker, ns, t = rig
        for _ in range(5):
            t.sfence()
        summary = checker.summary()
        assert summary["total"] == 5
        assert len(summary["violations"]) == 1
        assert summary["violations"][0]["count"] == 5

    def test_site_attribution_names_this_test_file(self, rig):
        _, checker, ns, t = rig
        ns.store(t, 0)
        t.sfence()
        site = checker.summary()["violations"][0]["site"]
        assert "test_state.py" in site

    def test_kinds_is_the_full_catalogue(self):
        assert len(KINDS) == 7
        assert len(set(KINDS)) == 7

    def test_double_install_raises(self, rig):
        machine, checker, _, _ = rig
        with pytest.raises(RuntimeError):
            PmCheck(machine).install()

    def test_checking_contextmanager_installs_and_uninstalls(self):
        machine = Machine()
        with checking(machine) as checker:
            assert machine.pmcheck is checker
        assert machine.pmcheck is None
