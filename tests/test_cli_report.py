"""Tests for the CLI (python -m repro) and the report formatting."""

import pytest

from repro.__main__ import build_parser, main
from repro.lattester.report import (
    bandwidth_table, comparison, format_value, latency_table,
    series_table, table,
)


class TestReportFormatting:
    def test_format_value_floats(self):
        assert format_value(1.234) == "1.23"
        assert format_value(1234.5) == "1234"
        assert format_value(float("nan")) == "nan"

    def test_format_value_passthrough(self):
        assert format_value("x") == "x"
        assert format_value(7) == "7"

    def test_table_alignment(self):
        text = table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_table_title(self):
        text = table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_series_table_merges_x_values(self):
        text = series_table({"a": [(1, 10), (2, 20)], "b": [(2, 5)]},
                            x_label="n")
        assert "n" in text and "a" in text and "b" in text
        assert "20" in text and "5" in text

    def test_latency_table(self):
        from repro.lattester.latency import LatencyResult
        text = latency_table(
            {"read": LatencyResult(mean_ns=100.0, stdev_ns=1.0,
                                   samples=10)})
        assert "read" in text and "100.00" in text

    def test_bandwidth_table(self):
        from repro.lattester.bandwidth import BandwidthResult
        r = BandwidthResult(gbps=2.5, elapsed_ns=10.0, total_bytes=100,
                            ewr=float("inf"), threads=2, op="read",
                            access=64, pattern="seq")
        text = bandwidth_table([r])
        assert "read" in text and "2.50" in text and "-" in text

    def test_comparison_line(self):
        line = comparison("x", 1.0, 2.0, "ns")
        assert "measured" in line and "paper" in line


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "fig19" in out

    def test_guidelines(self, capsys):
        assert main(["guidelines"]) == 0
        assert "Best practices" in capsys.readouterr().out

    def test_audit_clean_plan(self, capsys):
        rc = main(["audit", "--access", "4096", "--pattern", "seq"])
        assert rc == 0
        assert "ship it" in capsys.readouterr().out

    def test_audit_bad_plan_nonzero_exit(self, capsys):
        rc = main(["audit", "--access", "64", "--threads", "24",
                   "--remote", "--mixed"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "G1" in out and "G3" in out and "G4" in out

    def test_run_dispatches_experiment(self, capsys):
        rc = main(["run", "fig10"])
        assert rc == 0
        assert "XPBuffer" in capsys.readouterr().out

    def test_unknown_figure_exits_2_with_figure_list(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        assert "fig2" in err and "fig19" in err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
