"""Tests for the PMemKV cmap engine and the Figure 19 study."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmdk import PmemPool
from repro.pmemkv import CMap, overwrite_benchmark
from repro.sim import Machine, run_workloads


def make_kv(buckets=512):
    m = Machine()
    t = m.thread()
    pool = PmemPool.create(m, t)
    return m, t, pool, CMap(pool, buckets=buckets)


class TestCMapFunctional:
    def test_put_get(self):
        _, t, _, kv = make_kv()
        kv.put(t, b"alpha", b"1")
        assert kv.get(t, b"alpha") == b"1"
        assert kv.get(t, b"beta") is None

    def test_same_size_overwrite(self):
        _, t, _, kv = make_kv()
        kv.put(t, b"k", b"aaaa")
        kv.put(t, b"k", b"bbbb")
        assert kv.get(t, b"k") == b"bbbb"
        assert len(kv) == 1

    def test_resize_overwrite(self):
        _, t, _, kv = make_kv()
        kv.put(t, b"k", b"small")
        kv.put(t, b"k", b"considerably-larger-value")
        assert kv.get(t, b"k") == b"considerably-larger-value"

    def test_collisions_resolved(self):
        _, t, _, kv = make_kv(buckets=8)
        for i in range(6):
            kv.put(t, b"key-%d" % i, b"v%d" % i)
        for i in range(6):
            assert kv.get(t, b"key-%d" % i) == b"v%d" % i

    @given(st.dictionaries(st.binary(min_size=1, max_size=10),
                           st.binary(min_size=1, max_size=24),
                           max_size=40))
    @settings(max_examples=20, deadline=None)
    def test_matches_dict(self, model):
        _, t, _, kv = make_kv()
        for k, v in model.items():
            kv.put(t, k, v)
        for k, v in model.items():
            assert kv.get(t, k) == v
        assert len(kv) == len(model)


class TestCMapCrash:
    def test_inserts_survive_crash(self):
        m, t, pool, kv = make_kv()
        for i in range(60):
            kv.put(t, b"k%02d" % i, b"v%02d" % i)
        table = kv.table_offset
        m.power_fail()
        pool2 = PmemPool.open(m)
        kv2 = CMap.open(pool2, table, buckets=512)
        t2 = m.thread()
        for i in range(60):
            assert kv2.get(t2, b"k%02d" % i) == b"v%02d" % i

    def test_publish_is_atomic(self):
        # Object persisted before the bucket pointer: a crash between
        # the two leaves the old mapping intact, never a dangling one.
        m, t, pool, kv = make_kv()
        kv.put(t, b"k", b"1111")
        table = kv.table_offset
        m.power_fail()
        kv2 = CMap.open(PmemPool.open(m), table, buckets=512)
        assert kv2.get(m.thread(), b"k") == b"1111"


class TestConcurrency:
    def test_concurrent_writers_all_land(self):
        m, t, pool, kv = make_kv()
        ts = m.threads(4)

        def worker(t):
            for i in range(40):
                kv.put(t, b"t%d-%02d" % (t.tid, i), b"x" * 32)
                yield

        run_workloads([(w, worker(w)) for w in ts])
        checker = m.thread()
        for w in ts:
            for i in range(40):
                assert kv.get(checker, b"t%d-%02d" % (w.tid, i)) == b"x" * 32

    def test_stripe_lock_serializes_time(self):
        _, t, _, kv = make_kv(buckets=2)   # both keys on stripe 0/1
        other = kv.pool.machine.thread()
        kv.put(t, b"a", b"1")
        unlock_times = list(kv._lock_free_at[:2])
        held = max(unlock_times)
        # A second thread hitting the same stripe at an earlier clock
        # is pushed past the first writer's unlock point.
        stripe = max(range(2), key=lambda i: kv._lock_free_at[i])
        kv._lock(other, stripe)
        assert other.now >= held


class TestFigure19Shape:
    def test_remote_optane_collapses_more_than_dram(self):
        local_o = overwrite_benchmark("optane", threads=4,
                                      ops_per_thread=80).bandwidth_gbps
        remote_o = overwrite_benchmark("optane-remote", threads=4,
                                       ops_per_thread=80).bandwidth_gbps
        local_d = overwrite_benchmark("dram", threads=4,
                                      ops_per_thread=80).bandwidth_gbps
        remote_d = overwrite_benchmark("dram-remote", threads=4,
                                       ops_per_thread=80).bandwidth_gbps
        opt_loss = local_o / remote_o
        dram_loss = local_d / remote_d
        assert opt_loss > 1.3
        assert dram_loss < opt_loss

    def test_local_scales_with_threads(self):
        one = overwrite_benchmark("optane", threads=1,
                                  ops_per_thread=80).bandwidth_gbps
        four = overwrite_benchmark("optane", threads=4,
                                   ops_per_thread=80).bandwidth_gbps
        assert four > 2 * one


class TestSMap:
    def make(self):
        from repro.pmemkv import SMap
        m = Machine()
        t = m.thread()
        pool = PmemPool.create(m, t)
        return m, t, pool, SMap(pool, capacity=1 << 20)

    def test_put_get_delete(self):
        _, t, _, kv = self.make()
        kv.put(t, b"k", b"v")
        assert kv.get(t, b"k") == b"v"
        kv.delete(t, b"k")
        assert kv.get(t, b"k") is None

    def test_range_query(self):
        _, t, _, kv = self.make()
        for i in range(10):
            kv.put(t, b"%02d" % i, b"v%02d" % i)
        got = kv.get_range(t, start=b"03", end=b"07")
        assert [k for k, _ in got] == [b"03", b"04", b"05", b"06"]

    def test_range_limit(self):
        _, t, _, kv = self.make()
        for i in range(10):
            kv.put(t, b"%02d" % i, b"x")
        assert len(kv.get_range(t, limit=3)) == 3

    def test_range_skips_deleted(self):
        _, t, _, kv = self.make()
        kv.put(t, b"a", b"1")
        kv.put(t, b"b", b"2")
        kv.delete(t, b"a")
        assert kv.get_range(t) == [(b"b", b"2")]

    def test_crash_recovery(self):
        from repro.pmemkv import SMap
        m, t, pool, kv = self.make()
        for i in range(30):
            kv.put(t, b"k%02d" % i, b"v%02d" % i)
        kv.delete(t, b"k05")
        arena = kv.arena_off
        m.power_fail()
        pool2 = PmemPool.open(m)
        kv2 = SMap.open(pool2, arena, capacity=1 << 20)
        t2 = m.thread()
        assert kv2.get(t2, b"k04") == b"v04"
        assert kv2.get(t2, b"k05") is None
        assert len(kv2) == 29
