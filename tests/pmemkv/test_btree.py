"""Tests for the FPTree-style persistent B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pmdk import PmemPool
from repro.pmemkv.btree import BPlusTree
from repro.sim import Machine


def make_tree(leaf_bytes=256):
    m = Machine()
    t = m.thread()
    pool = PmemPool.create(m, t)
    tree = BPlusTree(pool, leaf_bytes=leaf_bytes)
    tree.format(t)
    return m, t, pool, tree


class TestBasics:
    def test_put_get(self):
        _, t, _, tree = make_tree()
        tree.put(t, 42, 4200)
        assert tree.get(t, 42) == 4200
        assert tree.get(t, 43) is None

    def test_update_in_place(self):
        _, t, _, tree = make_tree()
        tree.put(t, 1, 10)
        tree.put(t, 1, 20)
        assert tree.get(t, 1) == 20
        assert tree.count == 1

    def test_delete(self):
        _, t, _, tree = make_tree()
        tree.put(t, 5, 50)
        assert tree.delete(t, 5)
        assert tree.get(t, 5) is None
        assert not tree.delete(t, 5)

    def test_many_inserts_with_splits(self):
        _, t, _, tree = make_tree()
        n = 200                       # far beyond one leaf
        for i in range(n):
            tree.put(t, i * 7 % n, i * 7 % n + 1000)
        for i in range(n):
            assert tree.get(t, i) == i + 1000
        assert len(tree._inners) > 1   # splits happened

    def test_scan_ordered(self):
        _, t, _, tree = make_tree()
        keys = random.Random(3).sample(range(1000), 80)
        for k in keys:
            tree.put(t, k, k + 1)
        got = tree.scan(t)
        assert got == sorted((k, k + 1) for k in keys)

    def test_scan_range(self):
        _, t, _, tree = make_tree()
        for k in range(100):
            tree.put(t, k, k)
        got = tree.scan(t, start=20, end=30)
        assert [k for k, _ in got] == list(range(20, 30))

    def test_tiny_leaf_rejected(self):
        m = Machine()
        t = m.thread()
        pool = PmemPool.create(m, t)
        with pytest.raises(ValueError):
            BPlusTree(pool, leaf_bytes=32)


class TestCrashRecovery:
    def test_inserts_survive(self):
        m, t, pool, tree = make_tree()
        for k in range(150):
            tree.put(t, k, k * 2)
        head = tree.head
        m.power_fail()
        pool2 = PmemPool.open(m)
        rec = BPlusTree.recover(pool2, head)
        t2 = m.thread()
        for k in range(150):
            assert rec.get(t2, k) == k * 2
        assert rec.count == 150

    def test_deletes_survive(self):
        m, t, pool, tree = make_tree()
        for k in range(60):
            tree.put(t, k, k)
        tree.delete(t, 30)
        head = tree.head
        m.power_fail()
        rec = BPlusTree.recover(PmemPool.open(m), head)
        t2 = m.thread()
        assert rec.get(t2, 30) is None
        assert rec.get(t2, 31) == 31

    def test_crash_mid_put_is_atomic(self):
        # The slot is persisted before the bitmap flips: crash between
        # the two leaves the key absent, never half-present.
        from repro.sim.crashpoints import (
            SimulatedPowerFailure, CrashInjector,
        )
        baseline_m, bt, bpool, btree = make_tree()
        btree.put(bt, 1, 11)
        head = btree.head

        for crash_at in range(1, 12):
            m = Machine()
            t = m.thread()
            pool = PmemPool.create(m, t)
            tree = BPlusTree(pool, leaf_bytes=256)
            tree.format(t)
            tree.put(t, 1, 11)
            CrashInjector(m, crash_at=crash_at)
            try:
                tree.put(t, 2, 22)
            except SimulatedPowerFailure:
                pass
            m._persist_hook = None
            m.power_fail()
            rec = BPlusTree.recover(PmemPool.open(m), tree.head)
            t2 = m.thread()
            assert rec.get(t2, 1) == 11          # old key intact
            assert rec.get(t2, 2) in (None, 22)  # new key atomic

    @given(st.dictionaries(st.integers(0, 500), st.integers(0, 1 << 32),
                           min_size=1, max_size=60))
    @settings(max_examples=15, deadline=None)
    def test_recovery_matches_model(self, model):
        m, t, pool, tree = make_tree()
        for k, v in model.items():
            tree.put(t, k, v)
        head = tree.head
        m.power_fail()
        rec = BPlusTree.recover(PmemPool.open(m), head)
        t2 = m.thread()
        for k, v in model.items():
            assert rec.get(t2, k) == v
        assert rec.scan(t2) == sorted(model.items())


class TestGuidelineCaseStudy:
    def test_xpline_sized_leaves_minimise_media_traffic(self):
        """Guideline #1 applied to index design: a 256 B leaf keeps each
        insert's stores inside one XPLine; an XPLine-misaligned leaf
        spreads them over two."""
        def media_writes_per_insert(leaf_bytes, n=120):
            m = Machine()
            t = m.thread()
            pool = PmemPool.create(m, t)
            tree = BPlusTree(pool, leaf_bytes=leaf_bytes)
            tree.format(t)
            ns = pool.ns
            snaps = ns.counter_snapshots()
            for k in range(n):
                tree.put(t, k, k)
            for dimm in ns.dimms:
                dimm.drain(t.now)
            from repro.sim import aggregate
            delta = aggregate(ns.counter_deltas(snaps))
            return delta.media_write_bytes / n

        aligned = media_writes_per_insert(256)
        oversized = media_writes_per_insert(384)    # spans 2 XPLines
        assert aligned <= oversized
