"""Generator statistics: determinism, skew, coverage (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    LatestGenerator, RequestStream, ScrambledZipfianGenerator,
    UniformGenerator, WORKLOADS, ZipfianGenerator, fnv64, get_workload,
    key_index, make_key, make_value, zeta,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestFnv64:
    def test_known_stability(self):
        # Pinned outputs: a silent change to the scramble would quietly
        # invalidate every cached serve point.
        assert fnv64(0) == 0xA8C7F832281A39C5
        assert fnv64(1) != fnv64(0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=50, deadline=None)
    def test_in_64_bit_range(self, value):
        assert 0 <= fnv64(value) < 2**64


class TestZipfian:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_seed(self, seed):
        a = ZipfianGenerator(1000, seed=seed)
        b = ZipfianGenerator(1000, seed=seed)
        assert [a.next() for _ in range(200)] == \
            [b.next() for _ in range(200)]

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_ranks_in_range(self, seed):
        gen = ZipfianGenerator(100, seed=seed)
        assert all(0 <= gen.next() < 100 for _ in range(500))

    def test_rank_zero_frequency_matches_theta(self):
        # P(rank 0) = 1/zeta(n, theta); check the sampler hits it
        # within a loose statistical tolerance.
        n, theta, draws = 1000, 0.99, 20000
        gen = ZipfianGenerator(n, theta=theta, seed=7)
        hits = sum(1 for _ in range(draws) if gen.next() == 0)
        expected = draws / zeta(n, theta)
        assert math.isclose(hits, expected, rel_tol=0.15)

    def test_higher_theta_is_more_skewed(self):
        def top10_mass(theta):
            gen = ZipfianGenerator(1000, theta=theta, seed=3)
            return sum(1 for _ in range(5000) if gen.next() < 10)
        assert top10_mass(0.99) > top10_mass(0.5) > top10_mass(0.1)

    def test_zeta_incremental_matches_direct(self):
        direct = sum(1.0 / (i ** 0.99) for i in range(1, 501))
        assert math.isclose(zeta(500, 0.99), direct, rel_tol=1e-12)
        # A smaller n after a larger one must not reuse the larger sum.
        assert zeta(10, 0.99) < zeta(500, 0.99)


class TestScrambledZipfian:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_seed(self, seed):
        a = ScrambledZipfianGenerator(512, seed=seed)
        b = ScrambledZipfianGenerator(512, seed=seed)
        assert [a.next() for _ in range(200)] == \
            [b.next() for _ in range(200)]

    def test_hot_keys_spread_over_keyspace(self):
        # The raw zipfian clusters at low ranks; the scramble must
        # spread the mass across the whole keyspace.
        gen = ScrambledZipfianGenerator(1000, seed=11)
        draws = [gen.next() for _ in range(5000)]
        low_half = sum(1 for d in draws if d < 500)
        assert 0.3 < low_half / len(draws) < 0.7

    def test_covers_keyspace(self):
        items = 64
        gen = ScrambledZipfianGenerator(items, seed=5)
        seen = {gen.next() for _ in range(20000)}
        # Every index is reachable; a tiny tail may not be drawn.
        assert len(seen) >= items * 0.85
        assert all(0 <= index < items for index in seen)


class TestUniformAndLatest:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_uniform_deterministic_and_in_range(self, seed):
        a = UniformGenerator(128, seed=seed)
        b = UniformGenerator(128, seed=seed)
        draws = [a.next() for _ in range(300)]
        assert draws == [b.next() for _ in range(300)]
        assert all(0 <= d < 128 for d in draws)

    def test_uniform_covers_keyspace(self):
        gen = UniformGenerator(32, seed=9)
        assert {gen.next() for _ in range(3000)} == set(range(32))

    def test_latest_skews_to_most_recent(self):
        gen = LatestGenerator(1000, seed=13)
        draws = [gen.next() for _ in range(5000)]
        recent = sum(1 for d in draws if d >= 900)
        assert recent / len(draws) > 0.5

    def test_latest_tracks_inserts(self):
        gen = LatestGenerator(100, seed=1)
        assert gen.last == 99
        gen.note_insert(150)
        assert gen.last == 150
        draws = [gen.next() for _ in range(2000)]
        assert max(draws) == 150


class TestRequestStream:
    @given(seeds, st.sampled_from(sorted(WORKLOADS)))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_per_seed_and_client(self, seed, name):
        spec = get_workload(name)
        a = RequestStream(spec, 128, seed=seed, client=1)
        b = RequestStream(spec, 128, seed=seed, client=1)
        assert list(a.requests(100)) == list(b.requests(100))

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_clients_never_insert_the_same_key(self, seed):
        spec = get_workload("log-append")
        streams = [RequestStream(spec, 64, seed=seed, client=c)
                   for c in range(4)]
        inserted = [
            {r.key_index for r in s.requests(50)} for s in streams
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (inserted[i] & inserted[j])

    def test_mix_proportions_within_tolerance(self):
        spec = get_workload("ycsb-a")          # 50/50 read/update
        stream = RequestStream(spec, 256, seed=0)
        ops = [r.op for r in stream.requests(4000)]
        reads = ops.count("read") / len(ops)
        assert 0.45 < reads < 0.55
        assert set(ops) == {"read", "update"}

    def test_pointer_chase_is_a_deterministic_chain(self):
        spec = get_workload("pointer-chase")
        stream = RequestStream(spec, 128, seed=0)
        first = [r.key_index for r in stream.requests(50)]
        again = RequestStream(spec, 128, seed=0)
        assert [r.key_index for r in again.requests(50)] == first
        # The walk must roam the keyspace, not orbit a short cycle.
        assert len(set(first)) > 25

    def test_log_append_is_monotonic_inserts(self):
        spec = get_workload("log-append")
        stream = RequestStream(spec, 32, seed=0)
        reqs = list(stream.requests(40))
        assert all(r.op == "insert" for r in reqs)
        indices = [r.key_index for r in reqs]
        assert indices == sorted(indices)
        assert indices[0] == 32

    def test_scan_lengths_bounded_by_spec(self):
        spec = get_workload("ycsb-e")
        stream = RequestStream(spec, 128, seed=2)
        scans = [r for r in stream.requests(500) if r.op == "scan"]
        assert scans
        assert all(1 <= r.scan_len <= spec.scan_max for r in scans)


class TestKeysAndValues:
    @given(st.integers(min_value=0, max_value=10**11))
    @settings(max_examples=50, deadline=None)
    def test_key_roundtrip(self, index):
        assert key_index(make_key(index)) == index

    def test_values_are_never_all_zero(self):
        # Zero-filled (lost) media must read back as *missing*, never
        # as a valid value.
        spec = get_workload("ycsb-a")
        for index in range(64):
            for version in range(3):
                value = make_value(spec, index, version)
                assert len(value) == spec.value_size
                assert value != b"\x00" * len(value)

    def test_versions_produce_distinct_values(self):
        spec = get_workload("ycsb-a")
        values = {make_value(spec, 5, v) for v in range(40)}
        assert len(values) > 1


class TestRegistry:
    def test_all_presets_present(self):
        assert set(WORKLOADS) == {
            "ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f",
            "pointer-chase", "log-append",
        }

    def test_mix_weights_sum_to_one(self):
        for spec in WORKLOADS.values():
            assert math.isclose(sum(w for _, w in spec.mix), 1.0)

    def test_unknown_workload_lists_names(self):
        try:
            get_workload("nope")
        except KeyError as exc:
            assert "ycsb-a" in str(exc)
        else:
            raise AssertionError("expected KeyError")
