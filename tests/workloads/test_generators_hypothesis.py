"""Property tests: batched generator emission equals sequential draws.

The serving fast path consumes keys and requests in batches
(``next_n`` / ``next_requests``); these properties pin the batch APIs
to their sequential references draw for draw, over every workload,
seed and client split hypothesis cares to try.  Skipped wholesale when
hypothesis is not installed — ``test_generators.py`` still pins the
example-based behavior.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.workloads.generators import (
    LatestGenerator, RequestStream, ScrambledZipfianGenerator,
    UniformGenerator, WORKLOADS, ZipfianGenerator, get_workload,
)

KEY_GENERATORS = {
    "zipfian": ZipfianGenerator,
    "scrambled": ScrambledZipfianGenerator,
    "uniform": UniformGenerator,
    "latest": LatestGenerator,
}

seeds = st.integers(min_value=0, max_value=2**32 - 1)
item_counts = st.integers(min_value=1, max_value=512)
batch_sizes = st.lists(st.integers(min_value=0, max_value=64),
                       min_size=1, max_size=6)


@settings(max_examples=40, deadline=None)
@given(kind=st.sampled_from(sorted(KEY_GENERATORS)), items=item_counts,
       seed=seeds, batches=batch_sizes)
def test_next_n_equals_sequential_next(kind, items, seed, batches):
    make = KEY_GENERATORS[kind]
    batched = make(items, seed=seed)
    sequential = make(items, seed=seed)
    for count in batches:
        assert batched.next_n(count) == \
            [sequential.next() for _ in range(count)]


@settings(max_examples=25, deadline=None)
@given(items=item_counts, seed=seeds,
       inserts=st.integers(min_value=1, max_value=8),
       count=st.integers(min_value=1, max_value=64))
def test_latest_next_n_tracks_inserts(items, seed, inserts, count):
    # ``latest`` retargets to the newest key as clients insert; a batch
    # drawn after inserts must match sequential draws after the same.
    batched = LatestGenerator(items, seed=seed)
    sequential = LatestGenerator(items, seed=seed)
    for i in range(inserts):
        batched.note_insert(items + i)
        sequential.note_insert(items + i)
    assert batched.next_n(count) == \
        [sequential.next() for _ in range(count)]


@settings(max_examples=60, deadline=None)
@given(workload=st.sampled_from(sorted(WORKLOADS)),
       records=st.integers(min_value=1, max_value=256), seed=seeds,
       client=st.integers(min_value=0, max_value=7),
       batches=batch_sizes)
def test_next_requests_equals_sequential_next_request(
        workload, records, seed, client, batches):
    spec = get_workload(workload)
    batched = RequestStream(spec, records, seed=seed, client=client)
    sequential = RequestStream(spec, records, seed=seed, client=client)
    for count in batches:
        assert batched.next_requests(count) == \
            [sequential.next_request() for _ in range(count)]


@settings(max_examples=60, deadline=None)
@given(workload=st.sampled_from(sorted(WORKLOADS)),
       records=st.integers(min_value=1, max_value=256), seed=seeds,
       client=st.integers(min_value=0, max_value=7),
       count=st.integers(min_value=0, max_value=128))
def test_next_requests_equals_requests_generator(
        workload, records, seed, client, count):
    spec = get_workload(workload)
    batched = RequestStream(spec, records, seed=seed, client=client)
    generator = RequestStream(spec, records, seed=seed, client=client)
    assert batched.next_requests(count) == \
        list(generator.requests(count))


@settings(max_examples=40, deadline=None)
@given(workload=st.sampled_from(sorted(WORKLOADS)),
       records=st.integers(min_value=1, max_value=256), seed=seeds,
       clients=st.integers(min_value=1, max_value=4),
       count=st.integers(min_value=1, max_value=32))
def test_client_split_streams_are_independent(
        workload, records, seed, clients, count):
    # A client's stream does not depend on whether (or how) the other
    # clients' streams were drawn — the partition the batched prefetch
    # relies on.
    spec = get_workload(workload)
    alone = [RequestStream(spec, records, seed=seed, client=c)
             .next_requests(count) for c in range(clients)]
    interleaved = [RequestStream(spec, records, seed=seed, client=c)
                   for c in range(clients)]
    drawn = [[] for _ in range(clients)]
    for _ in range(count):
        for c in range(clients):
            drawn[c].append(interleaved[c].next_request())
    assert drawn == alone
