"""The serving fast path is byte-identical to the reference paths.

The batched request execution in the load loops and the fused
substrate hot loops are *optimisations*, not semantics: with
``REPRO_FASTPATH=0`` (here: ``set_fastpath(False)``) every loop and
substrate falls back to the composed per-beat/per-line reference
implementation, and the two must agree to the byte — same latencies,
same counters, same chaos oracle verdicts.  These tests run both
paths in one process and compare the JSON-serialised reports, which
is exactly the comparison the CI determinism gate makes across whole
manifests.
"""

import json

import pytest

from repro.chaos_serve import chaos_serve_cell
from repro.sim.engine import set_fastpath
from repro.sim.platform import Machine
from repro.workloads import closed_loop, get_workload, make_service, open_loop

SUBSTRATES = ("lsm", "pmemkv", "nova", "pmdk")
QUICK = dict(records=96, ops=240)


@pytest.fixture
def both_paths():
    """Run a thunk under the fast path and the reference path."""
    def run_both(thunk):
        prior = set_fastpath(True)
        try:
            fast = thunk()
            set_fastpath(False)
            reference = thunk()
        finally:
            set_fastpath(prior)
        return fast, reference
    return run_both


def as_bytes(report):
    return json.dumps(report, sort_keys=True).encode()


def run_closed(substrate, workload="ycsb-a", seed=0, clients=3):
    spec = get_workload(workload)
    machine = Machine()
    service = make_service(substrate, machine, spec, seed=seed, **QUICK)
    return closed_loop(machine, service, spec, clients=clients,
                       seed=seed, **QUICK)


def run_open(substrate, workload="ycsb-b", seed=0, workers=2,
             rate_kops=400.0):
    spec = get_workload(workload)
    machine = Machine()
    service = make_service(substrate, machine, spec, seed=seed, **QUICK)
    return open_loop(machine, service, spec, rate_kops=rate_kops,
                     workers=workers, seed=seed, **QUICK)


class TestClosedLoopIdentity:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_report_byte_identical(self, substrate, both_paths):
        fast, reference = both_paths(lambda: run_closed(substrate))
        assert as_bytes(fast) == as_bytes(reference)

    def test_latency_percentiles_match(self, both_paths):
        fast, reference = both_paths(lambda: run_closed("lsm"))
        assert fast["latency_us"] == reference["latency_us"]
        assert fast["ops_by_type"] == reference["ops_by_type"]

    def test_write_heavy_workload_matches(self, both_paths):
        fast, reference = both_paths(
            lambda: run_closed("nova", workload="ycsb-f", seed=3))
        assert as_bytes(fast) == as_bytes(reference)


class TestOpenLoopIdentity:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_report_byte_identical(self, substrate, both_paths):
        fast, reference = both_paths(lambda: run_open(substrate))
        assert as_bytes(fast) == as_bytes(reference)

    def test_saturated_rate_matches(self, both_paths):
        # Past the knee the backlog (and the deadline check) dominates.
        fast, reference = both_paths(
            lambda: run_open("pmemkv", rate_kops=4000.0))
        assert as_bytes(fast) == as_bytes(reference)


class TestChaosIdentity:
    CELL = {"workload": "ycsb-a", "substrate": "lsm",
            "scenario": "power-fail", "mode": "closed", "naive": False,
            "seed": 0, "records": 128, "ops": 320, "clients": 2}

    def run_cell(self, **overrides):
        return chaos_serve_cell(dict(self.CELL, **overrides))

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_closed_cell_byte_identical(self, substrate, both_paths):
        fast, reference = both_paths(
            lambda: self.run_cell(substrate=substrate))
        assert as_bytes(fast) == as_bytes(reference)

    def test_open_cell_byte_identical(self, both_paths):
        fast, reference = both_paths(
            lambda: self.run_cell(mode="open", rate_kops=400.0))
        assert as_bytes(fast) == as_bytes(reference)

    def test_oracle_verdicts_match_even_when_naive(self, both_paths):
        # The naive open-loop cell is the one that *finds* violations;
        # the fast path must find the very same ones.
        fast, reference = both_paths(
            lambda: self.run_cell(mode="open", rate_kops=400.0,
                                  naive=True))
        assert fast["violations"] == reference["violations"]
        assert len(fast["violations"]) >= 1
        assert as_bytes(fast) == as_bytes(reference)


class TestPmcheckForcesComposedPath:
    def test_install_clears_plain_and_reports_identically(self):
        from repro.pmcheck import PmCheck
        spec = get_workload("ycsb-a")

        def run(with_fastpath):
            prior = set_fastpath(with_fastpath)
            try:
                machine = Machine()
                checker = PmCheck(machine).install()
                # Installing the checker flips every namespace off the
                # fused fast path regardless of the master switch.
                assert all(not ns._plain
                           for ns in machine.namespaces())
                service = make_service("lsm", machine, spec, seed=0,
                                       **QUICK)
                report = closed_loop(machine, service, spec,
                                     clients=2, seed=0, **QUICK)
                summary = checker.summary()
                checker.uninstall()
            finally:
                set_fastpath(prior)
            return report, summary

        fast, fast_summary = run(True)
        reference, reference_summary = run(False)
        assert as_bytes(fast) == as_bytes(reference)
        assert as_bytes(fast_summary) == as_bytes(reference_summary)
