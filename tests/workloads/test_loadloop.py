"""Closed/open loops, report shape, determinism, and the knee."""

import json

import pytest

from repro.sim.platform import Machine
from repro.workloads import closed_loop, get_workload, make_service, open_loop

QUICK = dict(records=96, ops=240)


def run_closed(substrate, workload="ycsb-a", seed=0, clients=2):
    spec = get_workload(workload)
    machine = Machine()
    service = make_service(substrate, machine, spec, seed=seed,
                           **QUICK)
    return closed_loop(machine, service, spec, clients=clients,
                       seed=seed, **QUICK)


def run_open(substrate, rate_kops, workload="ycsb-a", seed=0,
             workers=2):
    spec = get_workload(workload)
    machine = Machine()
    service = make_service(substrate, machine, spec, seed=seed,
                           **QUICK)
    return open_loop(machine, service, spec, rate_kops=rate_kops,
                     workers=workers, seed=seed, **QUICK)


class TestClosedLoop:
    def test_report_shape(self):
        report = run_closed("lsm")
        assert report["mode"] == "closed"
        assert report["ops"] == QUICK["ops"]
        assert report["clients"] == 2
        assert sum(report["ops_by_type"].values()) == QUICK["ops"]
        lat = report["latency_us"]
        assert lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]
        assert report["achieved_kops"] > 0
        json.dumps(report, sort_keys=True, allow_nan=False)

    def test_deterministic_across_runs(self):
        assert run_closed("pmemkv") == run_closed("pmemkv")

    def test_seed_changes_the_traffic(self):
        assert run_closed("lsm", seed=0) != run_closed("lsm", seed=1)

    def test_more_clients_more_throughput(self):
        one = run_closed("pmemkv", clients=1)
        four = run_closed("pmemkv", clients=4)
        assert four["achieved_kops"] > one["achieved_kops"]


class TestOpenLoop:
    def test_report_shape(self):
        report = run_open("lsm", rate_kops=500.0)
        assert report["mode"] == "open"
        assert report["offered_kops"] == 500.0
        assert report["workers"] == 2
        assert sum(report["ops_by_type"].values()) == QUICK["ops"]
        json.dumps(report, sort_keys=True, allow_nan=False)

    def test_deterministic_across_runs(self):
        a = run_open("pmemkv", rate_kops=1000.0)
        assert a == run_open("pmemkv", rate_kops=1000.0)

    def test_light_load_latency_is_service_time(self):
        closed = run_closed("lsm")
        light = run_open("lsm", rate_kops=0.1 * closed["achieved_kops"])
        # At 10% load there is almost no queueing: open-loop p50 sits
        # near the closed-loop p50.
        assert light["latency_us"]["p50"] < \
            5 * max(closed["latency_us"]["p50"], 0.1)

    @pytest.mark.parametrize("substrate", ("lsm", "pmemkv"))
    def test_p99_diverges_past_the_knee(self, substrate):
        # The acceptance criterion: open-loop p99 diverges past the
        # closed-loop max-throughput point while achieved throughput
        # stays pinned at the ceiling.
        closed = run_closed(substrate)
        ceiling = closed["achieved_kops"]
        below = run_open(substrate, rate_kops=round(0.5 * ceiling, 3))
        above = run_open(substrate, rate_kops=round(1.5 * ceiling, 3))
        assert above["latency_us"]["p99"] > \
            5 * below["latency_us"]["p99"]
        # Offered 1.5x, achieved ~1x: the substrate saturated.
        assert above["achieved_kops"] < 1.2 * ceiling

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            run_open("lsm", rate_kops=0.0)


class TestTelemetry:
    def test_serve_spans_reach_the_tracer(self):
        from repro.telemetry import recording
        from repro.telemetry.events import CAT_SERVE
        spec = get_workload("ycsb-a")
        with recording() as tracer:
            machine = Machine()
            service = make_service("lsm", machine, spec, seed=0,
                                   **QUICK)
            closed_loop(machine, service, spec, clients=2, seed=0,
                        **QUICK)
        serve_events = [ev for ev in tracer.events()
                        if ev.cat == CAT_SERVE]
        assert len(serve_events) == QUICK["ops"]
        tracks = {ev.track for ev in serve_events}
        assert len(tracks) == 2                       # one per client
        names = {ev.name for ev in serve_events}
        assert names <= {"read", "update", "insert", "scan", "rmw",
                         "delete"}
