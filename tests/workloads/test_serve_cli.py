"""``python -m repro serve`` and the saturation controller."""

import json
import os

import pytest

from repro.__main__ import main
from repro.workloads.saturation import serve


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path


class TestServeVerb:
    def test_quick_serve_writes_report_and_manifest(self, cache_env,
                                                    capsys):
        out = str(cache_env / "serve.json")
        assert main(["serve", "ycsb-a", "lsm", "--quick",
                     "--jobs", "1", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "closed loop" in stdout
        assert "SLO" in stdout
        with open(out) as fh:
            report = json.load(fh)
        assert report["workload"] == "ycsb-a"
        assert report["substrate"] == "lsm"
        assert report["curve"]
        assert report["saturation"]["probes"]
        assert os.path.exists(out + ".manifest.json")

    def test_rerun_is_byte_identical(self, cache_env, capsys):
        a = str(cache_env / "a.json")
        b = str(cache_env / "b.json")
        assert main(["serve", "ycsb-a", "lsm", "--quick",
                     "--jobs", "1", "--out", a]) == 0
        assert main(["serve", "ycsb-a", "lsm", "--quick",
                     "--jobs", "1", "--out", b]) == 0
        capsys.readouterr()
        with open(a, "rb") as fh:
            first = fh.read()
        with open(b, "rb") as fh:
            second = fh.read()
        assert first == second

    def test_serial_and_parallel_reports_match(self, tmp_path,
                                               monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c1"))
        serial = str(tmp_path / "serial.json")
        assert main(["serve", "ycsb-c", "pmemkv", "--quick",
                     "--jobs", "1", "--out", serial]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c2"))
        parallel = str(tmp_path / "parallel.json")
        assert main(["serve", "ycsb-c", "pmemkv", "--quick",
                     "--jobs", "2", "--out", parallel]) == 0
        capsys.readouterr()
        with open(serial, "rb") as fh:
            a = fh.read()
        with open(parallel, "rb") as fh:
            b = fh.read()
        assert a == b

    def test_explicit_slo_is_respected(self, cache_env, capsys):
        out = str(cache_env / "slo.json")
        assert main(["serve", "ycsb-a", "lsm", "--quick",
                     "--jobs", "1", "--slo-p99-us", "3.5",
                     "--out", out]) == 0
        capsys.readouterr()
        with open(out) as fh:
            report = json.load(fh)
        assert report["saturation"]["slo_p99_us"] == 3.5
        assert report["saturation"]["slo_explicit"] is True

    def test_trace_dir_writes_valid_traces(self, cache_env, capsys):
        from repro.telemetry.export import load_and_validate
        out = str(cache_env / "serve.json")
        traces = str(cache_env / "traces")
        assert main(["serve", "ycsb-a", "pmdk", "--quick",
                     "--jobs", "1", "--out", out,
                     "--trace-dir", traces]) == 0
        capsys.readouterr()
        written = sorted(os.listdir(traces))
        assert written
        for name in written:
            assert load_and_validate(os.path.join(traces, name)) == []

    def test_unknown_workload_exits_2(self, cache_env, capsys):
        assert main(["serve", "nope", "lsm", "--quick"]) == 2
        err = capsys.readouterr().err
        assert "valid workloads" in err
        assert "ycsb-a" in err

    def test_unknown_substrate_exits_2(self, cache_env, capsys):
        assert main(["serve", "ycsb-a", "nope", "--quick"]) == 2
        err = capsys.readouterr().err
        assert "valid substrates" in err
        assert "pmemkv" in err


class TestCliErrorConvention:
    def test_unknown_verb_exits_2_with_verb_list(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "valid commands" in err
        assert "serve" in err
        assert "sweep" in err

    def test_unknown_argument_exits_2_with_verb_list(self, capsys):
        assert main(["serve", "ycsb-a", "lsm", "--bogus"]) == 2
        err = capsys.readouterr().err
        assert "valid commands" in err

    def test_unknown_argument_on_old_verbs_too(self, capsys):
        assert main(["sweep", "--bogus"]) == 2
        err = capsys.readouterr().err
        assert "valid commands" in err

    def test_missing_verb_exits_2(self, capsys):
        assert main([]) == 2
        assert "valid commands" in capsys.readouterr().err

    def test_help_returns_0(self, capsys):
        assert main(["--help"]) == 0
        assert "serve" in capsys.readouterr().out


class TestSaturationController:
    def test_search_brackets_the_knee(self, cache_env):
        report, manifest = serve("ycsb-a", "lsm", quick=True, jobs=1)
        sat = report["saturation"]
        assert sat["saturated"] is True
        assert sat["slo_met"] is True
        assert 0 < sat["max_kops"] < 1.25 * sat["closed_kops"]
        # Every probe at or below max_kops that was measured met the
        # SLO; the first failing probe is above it.
        for probe in sat["probes"]:
            if probe["rate_kops"] <= sat["max_kops"]:
                assert probe["meets_slo"]
        assert manifest.points

    def test_curve_shows_divergence(self, cache_env):
        report, _ = serve("ycsb-a", "pmemkv", quick=True, jobs=1)
        curve = report["curve"]
        assert curve[0]["offered_kops"] < curve[-1]["offered_kops"]
        assert curve[-1]["p99_us"] > 3 * curve[0]["p99_us"]

    def test_probes_reuse_the_cache(self, cache_env):
        serve("ycsb-a", "lsm", quick=True, jobs=1)
        report, manifest = serve("ycsb-a", "lsm", quick=True, jobs=1)
        # Second run: every curve point replays from cache.
        assert all(p["cached"] for p in manifest.points)
        assert report["saturation"]["probes"]

    def test_unknown_names_raise_with_choices(self, cache_env):
        with pytest.raises(KeyError, match="ycsb-a"):
            serve("nope", "lsm", quick=True)
        with pytest.raises(KeyError, match="nova"):
            serve("ycsb-a", "nope", quick=True)
