"""The Service protocol: every substrate behind the same five ops."""

import pytest

from repro.sim.platform import Machine
from repro.workloads import get_workload, make_key, make_service, make_value
from repro.workloads.loadloop import preload

ALL_SUBSTRATES = ("lsm", "pmemkv", "nova", "pmdk")


def build(substrate, records=32, ops=64):
    spec = get_workload("ycsb-a")
    machine = Machine()
    service = make_service(substrate, machine, spec, records=records,
                           ops=ops, seed=0)
    return machine, service, spec


@pytest.mark.parametrize("substrate", ALL_SUBSTRATES)
class TestProtocol:
    def test_put_get_roundtrip(self, substrate):
        machine, service, spec = build(substrate)
        thread = machine.thread()
        value = make_value(spec, 3, 1)
        service.put(thread, make_key(3), value)
        assert service.get(thread, make_key(3)) == value
        assert service.get(thread, make_key(99)) is None

    def test_overwrite_returns_latest(self, substrate):
        machine, service, spec = build(substrate)
        thread = machine.thread()
        service.put(thread, make_key(7), make_value(spec, 7, 1))
        newer = make_value(spec, 7, 2)
        service.put(thread, make_key(7), newer)
        assert service.get(thread, make_key(7)) == newer

    def test_delete(self, substrate):
        machine, service, spec = build(substrate)
        thread = machine.thread()
        service.put(thread, make_key(5), make_value(spec, 5, 1))
        assert service.delete(thread, make_key(5)) is True
        assert service.get(thread, make_key(5)) is None
        assert service.delete(thread, make_key(5)) is False

    def test_scan_returns_ordered_pairs(self, substrate):
        machine, service, spec = build(substrate)
        thread = machine.thread()
        for index in range(10):
            service.put(thread, make_key(index),
                        make_value(spec, index, 1))
        pairs = service.scan(thread, make_key(4), 3)
        assert [key for key, _ in pairs] == [
            make_key(4), make_key(5), make_key(6)]
        assert pairs[0][1] == make_value(spec, 4, 1)

    def test_operations_advance_virtual_time(self, substrate):
        machine, service, spec = build(substrate)
        thread = machine.thread()
        before = thread.now
        service.put(thread, make_key(1), make_value(spec, 1, 1))
        service.get(thread, make_key(1))
        assert thread.now > before

    def test_stats_are_jsonable(self, substrate):
        import json
        machine, service, spec = build(substrate)
        thread = machine.thread()
        service.put(thread, make_key(1), make_value(spec, 1, 1))
        json.dumps(service.stats(), sort_keys=True, allow_nan=False)


@pytest.mark.parametrize("substrate", ALL_SUBSTRATES)
class TestRecovery:
    def test_recover_after_power_fail(self, substrate):
        spec = get_workload("ycsb-a")
        machine = Machine()
        service = make_service(substrate, machine, spec, records=24,
                               ops=32, seed=0)
        preload(service, machine, spec, 24)
        thread = machine.thread()
        updated = make_value(spec, 3, 9)
        service.put(thread, make_key(3), updated)        # durable
        machine.power_fail()
        recovered, _report = service.recover()
        check = machine.thread()
        assert recovered.get(check, make_key(3)) == updated
        for index in range(24):
            assert recovered.get(check, make_key(index)) is not None

    def test_recovered_service_keeps_serving(self, substrate):
        spec = get_workload("ycsb-a")
        machine = Machine()
        service = make_service(substrate, machine, spec, records=8,
                               ops=32, seed=0)
        preload(service, machine, spec, 8)
        machine.power_fail()
        recovered, _ = service.recover()
        thread = machine.thread()
        value = make_value(spec, 2, 5)
        recovered.put(thread, make_key(2), value)
        assert recovered.get(thread, make_key(2)) == value


class TestMakeService:
    def test_unknown_substrate_lists_names(self):
        spec = get_workload("ycsb-a")
        with pytest.raises(KeyError, match="lsm"):
            make_service("nope", Machine(), spec, records=8)

    def test_insert_only_mix_fits_fixed_tables(self):
        # log-append writes `ops` fresh keys: cmap buckets and the
        # pmdk slot table must be sized for records + ops, not records.
        spec = get_workload("log-append")
        for substrate in ("pmemkv", "pmdk"):
            machine = Machine()
            service = make_service(substrate, machine, spec, records=8,
                                   ops=200, seed=0)
            thread = machine.thread()
            for index in range(8 + 200):
                service.put(thread, make_key(index),
                            make_value(spec, index, 1))
